//! Community search on a social network with planted ground truth:
//! CTC algorithms vs the MDC / QDC / k-core baselines, scored by F1.
//!
//! A planted-partition "social circles" graph is generated (the Exp-3
//! setup at demo scale); query sets are sampled from single ground-truth
//! communities; every model's detected community is compared against the
//! planted one.
//!
//! Run with: `cargo run --release --example social_circles`

use ctc::eval::{fmt_secs, mean_std};
use ctc::gen::planted_equal;
use ctc::prelude::*;
use std::time::Instant;

fn main() {
    // 30 circles of 30 people, dense inside, noisy between.
    let gt = planted_equal(30, 30, 0.55, 1.0, 0x50C1A1);
    let g = &gt.graph;
    println!(
        "social network: {} people, {} friendships, {} planted circles\n",
        g.num_vertices(),
        g.num_edges(),
        gt.communities.len()
    );

    let searcher = CtcSearcher::new(g);
    let cfg = CtcConfig::default();
    let mut qgen = QueryGenerator::new(g, 7);

    let trials = 25;
    let mut scores: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    let mut times: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
    for _ in 0..trials {
        let (q, ci) = qgen.sample_from_ground_truth(&gt, 3).expect("sampling");
        let truth = &gt.communities[ci];
        let mut record = |name: &'static str, result: Result<Community, String>, secs: f64| {
            let f1 = result
                .map(|c| f1_score(&c.vertices, truth).f1)
                .unwrap_or(0.0);
            scores.entry(name).or_default().push(f1);
            times.entry(name).or_default().push(secs);
        };
        let run = |f: &dyn Fn() -> Result<Community, String>| -> (Result<Community, String>, f64) {
            let t = Instant::now();
            let r = f();
            (r, t.elapsed().as_secs_f64())
        };
        let (r, s) = run(&|| searcher.local(&q, &cfg).map_err(|e| e.to_string()));
        record("LCTC", r, s);
        let (r, s) = run(&|| searcher.bulk_delete(&q, &cfg).map_err(|e| e.to_string()));
        record("BD", r, s);
        let (r, s) = run(&|| searcher.truss_only(&q, &cfg).map_err(|e| e.to_string()));
        record("Truss", r, s);
        let (r, s) = run(&|| mdc(g, &q, &MdcConfig::default()).map_err(|e| e.to_string()));
        record("MDC", r, s);
        let (r, s) = run(&|| qdc(g, &q, &QdcConfig::default()).map_err(|e| e.to_string()));
        record("QDC", r, s);
        let (r, s) = run(&|| kcore_community(g, &q).map_err(|e| e.to_string()));
        record("k-core", r, s);
    }

    let mut table = Table::new(["model", "mean F1", "std", "mean time"]);
    for (name, f1s) in &scores {
        let (mean, std) = mean_std(f1s);
        let (t_mean, _) = mean_std(&times[name]);
        table.row([
            name.to_string(),
            format!("{mean:.3}"),
            format!("{std:.3}"),
            fmt_secs(t_mean),
        ]);
    }
    println!("{}", table.render());
    println!(
        "({} query sets of 3 members each, sampled inside single planted circles)",
        trials
    );
}
