//! Community search on an *uncertain* network — the paper's §8 future-work
//! direction, implemented in `ctc-prob`.
//!
//! A protein-interaction-style graph where edges carry confidence scores:
//! the (k, γ)-truss decomposition finds reliably-dense substructures, and
//! Monte-Carlo CTC reports per-vertex inclusion confidence for a query.
//!
//! Run with: `cargo run --release --example uncertain_network`

use ctc::prelude::*;
use ctc::prob::{monte_carlo_ctc, prob_truss_decomposition, ProbGraph};
use ctc::truss::fixtures::{figure1_graph, Figure1Ids};

fn main() {
    // Figure 1's topology, but interactions have confidences: the dense
    // community edges are well-attested (0.95), the free-rider clique is
    // mid-confidence (0.7), and the bridge through t is speculative (0.3).
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let mut probs = vec![0.95; g.num_edges()];
    for pair in [
        (f.q3, f.p1),
        (f.q3, f.p2),
        (f.q3, f.p3),
        (f.p1, f.p2),
        (f.p1, f.p3),
        (f.p2, f.p3),
    ] {
        probs[g.edge_between(pair.0, pair.1).unwrap().index()] = 0.7;
    }
    for pair in [(f.q1, f.t), (f.t, f.q3)] {
        probs[g.edge_between(pair.0, pair.1).unwrap().index()] = 0.3;
    }
    let pg = ProbGraph::new(g.clone(), probs).expect("valid probabilities");
    println!(
        "uncertain network: {} vertices, {} possible edges, {:.1} expected edges\n",
        g.num_vertices(),
        g.num_edges(),
        pg.expected_edges()
    );

    // (k, γ)-truss decomposition at different confidence levels.
    println!("(k,γ)-truss: max probabilistic trussness by confidence γ");
    let mut t = Table::new(["γ", "max k", "edges at max k"]);
    for gamma in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let d = prob_truss_decomposition(&pg, gamma);
        let at_max = d.edge_truss.iter().filter(|&&t| t == d.max_truss).count();
        t.row([
            format!("{gamma}"),
            d.max_truss.to_string(),
            at_max.to_string(),
        ]);
    }
    println!("{}", t.render());

    // Monte-Carlo CTC for the three query vertices.
    let q = [f.q1, f.q2, f.q3];
    let mc = monte_carlo_ctc(&pg, &q, &CtcConfig::default(), 200, 7).expect("search");
    println!(
        "Monte-Carlo CTC over {} worlds (query reliable in {:.0}% of them, mean k = {:.2}):",
        mc.worlds,
        100.0 * mc.query_reliability(),
        mc.expected_k
    );
    let names = [
        "q1", "q2", "q3", "v1", "v2", "v3", "v4", "v5", "p1", "p2", "p3", "t",
    ];
    let mut t = Table::new(["vertex", "inclusion", "verdict"]);
    for v in g.vertices() {
        let inc = mc.inclusion[v.index()];
        if inc == 0.0 {
            continue;
        }
        let verdict = if inc >= 0.9 {
            "core member"
        } else if inc >= 0.4 {
            "borderline"
        } else {
            "unlikely"
        };
        t.row([
            names[v.index()].to_string(),
            format!("{:.2}", inc),
            verdict.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "community at 90% confidence: {:?}",
        mc.at_confidence(0.9)
            .iter()
            .map(|v| names[v.index()])
            .collect::<Vec<_>>()
    );
}
