//! Persistent index serving: build → save → load → batch query.
//!
//! The offline/online split of the paper (§4.3: the `O(ρ·m)` index build
//! is paid once; queries are fast thereafter) made durable: the truss
//! index is persisted as a checksummed `.ctci` snapshot, a warm process
//! loads it without re-running the decomposition, and a
//! `CommunityEngine` answers a whole batch of queries concurrently.
//!
//! Run with: `cargo run --release --example persistent_index`

use ctc::prelude::*;
use ctc_gen::mini_network;
use std::time::Instant;

fn main() {
    let net = mini_network("facebook", 7).expect("mini preset");
    let g = net.graph;
    println!(
        "network: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // --- Offline: build once, persist. -----------------------------------
    let t = Instant::now();
    let snap = Snapshot::build(g);
    let build_ms = t.elapsed().as_secs_f64() * 1e3;
    let dir = std::env::temp_dir().join("ctc_persistent_index_example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("facebook-mini.ctci");
    snap.save(&path).expect("save snapshot");
    let file_kb = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0) / 1024;
    println!(
        "offline: built index (max trussness {}) in {build_ms:.1}ms, wrote {} ({file_kb} KiB)",
        snap.index.max_truss(),
        path.display()
    );

    // --- Warm start: load without decomposing. ---------------------------
    let t = Instant::now();
    let engine = CommunityEngine::load(&path)
        .expect("load snapshot")
        .with_batch_parallelism(Parallelism::threads(0)); // all cores
    let load_ms = t.elapsed().as_secs_f64() * 1e3;
    println!("warm start: loaded + validated snapshot in {load_ms:.1}ms\n");

    // --- Online: answer a batch of queries against the shared index. -----
    let mut qg = QueryGenerator::new(engine.graph(), 11);
    let queries: Vec<EngineQuery> = (0..8)
        .map(|i| {
            let q = qg.sample(2, DegreeRank::top(0.8), 2).expect("query");
            let algo = if i % 2 == 0 {
                SearchAlgo::Local
            } else {
                SearchAlgo::Basic
            };
            EngineQuery::new(q).algo(algo)
        })
        .collect();
    let t = Instant::now();
    let answers = engine.search_batch(&queries);
    let batch_ms = t.elapsed().as_secs_f64() * 1e3;

    let mut table = Table::new(["query", "algo", "k", "|V|", "|E|", "diameter"]);
    for (query, answer) in queries.iter().zip(&answers) {
        let qs: Vec<String> = query.vertices.iter().map(|v| v.to_string()).collect();
        let row = match answer {
            Ok(c) => [
                qs.join(","),
                format!("{:?}", query.algo),
                c.k.to_string(),
                c.num_vertices().to_string(),
                c.num_edges().to_string(),
                c.diameter().to_string(),
            ],
            Err(e) => [
                qs.join(","),
                format!("{:?}", query.algo),
                "-".into(),
                "-".into(),
                "-".into(),
                e.to_string(),
            ],
        };
        table.row(row);
    }
    println!("{}", table.render());
    println!(
        "online: answered {} queries in {batch_ms:.1}ms total — the index build \
         never ran in the warm path",
        answers.len()
    );
}
