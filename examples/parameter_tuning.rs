//! LCTC parameter exploration: the η / γ knobs and the fixed-k tradeoff.
//!
//! Mirrors Exp-5 and Exp-6 of the paper at demo scale: sweep the expansion
//! budget η, the truss-distance penalty γ, and the fixed trussness `k`
//! ("trading trussness for diameter", §7.1), showing how each knob moves
//! community size, diameter and trussness.
//!
//! Run with: `cargo run --release --example parameter_tuning`

use ctc::gen::planted_equal;
use ctc::prelude::*;

fn main() {
    // Dense planted circles (60 members, p_in = 0.5) give a deep truss
    // hierarchy, so the fixed-k sweep has room to show the tradeoff.
    let gt = planted_equal(40, 60, 0.5, 1.2, 0x7E57);
    let g = &gt.graph;
    println!(
        "planted network: {} vertices, {} edges\n",
        g.num_vertices(),
        g.num_edges()
    );
    let searcher = CtcSearcher::new(g);
    let mut qgen = QueryGenerator::new(g, 3);
    // Two workloads: a *spread* query (members in different circles) where
    // the exploration knobs bite, and a *tight* in-circle query where the
    // paper's "parameter-free is safe" story shows.
    let spread = qgen
        .sample(3, DegreeRank::top(0.8), 2)
        .expect("spread query");
    let (tight, _) = qgen.sample_from_ground_truth(&gt, 3).expect("tight query");
    println!(
        "spread query: {:?}   tight query: {:?}\n",
        spread.iter().map(|v| v.0).collect::<Vec<_>>(),
        tight.iter().map(|v| v.0).collect::<Vec<_>>()
    );
    let q = spread;

    // Sweep η.
    let mut t = Table::new(["η", "k", "|V|", "diameter", "time"]);
    for eta in [50usize, 100, 250, 500, 1000, 2000] {
        let cfg = CtcConfig::new().eta(eta);
        match searcher.local(&q, &cfg) {
            Ok(c) => {
                t.row([
                    eta.to_string(),
                    c.k.to_string(),
                    c.num_vertices().to_string(),
                    c.diameter().to_string(),
                    format!("{:.1}ms", c.timings.total.as_secs_f64() * 1e3),
                ]);
            }
            Err(e) => {
                t.row([
                    eta.to_string(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    e.to_string(),
                ]);
            }
        }
    }
    println!("varying η (γ = 3):\n{}", t.render());

    // Sweep γ.
    let mut t = Table::new(["γ", "k", "|V|", "diameter"]);
    for gamma in [0.0, 1.0, 3.0, 5.0, 9.0] {
        let cfg = CtcConfig::new().gamma(gamma);
        match searcher.local(&q, &cfg) {
            Ok(c) => {
                t.row([
                    format!("{gamma}"),
                    c.k.to_string(),
                    c.num_vertices().to_string(),
                    c.diameter().to_string(),
                ]);
            }
            Err(e) => {
                t.row([format!("{gamma}"), "-".into(), "-".into(), e.to_string()]);
            }
        }
    }
    println!("varying γ (η = 1000):\n{}", t.render());

    // Fixed-k sweep (Fig. 14 / §7.1) on the tight query, where the full
    // truss hierarchy is available.
    let q = tight;
    let max_k = searcher
        .local(&q, &CtcConfig::default())
        .map(|c| c.k)
        .unwrap_or(2);
    let mut t = Table::new(["fixed k", "|V|", "diameter"]);
    for k in 2..=max_k {
        let cfg = CtcConfig::new().fixed_k(k);
        match searcher.local(&q, &cfg) {
            Ok(c) => {
                t.row([
                    k.to_string(),
                    c.num_vertices().to_string(),
                    c.diameter().to_string(),
                ]);
            }
            Err(e) => {
                t.row([k.to_string(), "-".into(), e.to_string()]);
            }
        }
    }
    println!("trading trussness for diameter (fixed k):\n{}", t.render());
}
