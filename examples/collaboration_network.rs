//! The Figure 11 case study on a synthetic collaboration network.
//!
//! The paper queries four database researchers on DBLP: the bare maximal
//! truss (`G0`, 73 authors, diameter 4, density 0.18) drags in entire
//! adjacent research groups, while LCTC returns the tight 14-author
//! community (diameter 2, density 0.89). This example reproduces that
//! shape on a generated co-authorship network with named authors.
//!
//! Run with: `cargo run --release --example collaboration_network`

use ctc::gen::case_study_network;
use ctc::prelude::*;

fn main() {
    let net = case_study_network(0xD81);
    let g = &net.graph;
    println!(
        "collaboration network: {} authors, {} co-author edges",
        g.num_vertices(),
        g.num_edges()
    );
    let q = net.query_authors.clone();
    let names: Vec<&str> = q.iter().map(|&v| net.names[v.index()].as_str()).collect();
    println!("query authors: {}\n", names.join(", "));

    let searcher = CtcSearcher::new(g);
    let cfg = CtcConfig::default();

    // The "Truss" view: maximal connected k-truss containing the query.
    let g0 = searcher.truss_only(&q, &cfg).unwrap();
    println!(
        "G0 (max connected {}-truss): {} authors, {} edges, diameter {}, density {:.2}",
        g0.k,
        g0.num_vertices(),
        g0.num_edges(),
        g0.diameter(),
        g0.density()
    );

    // LCTC: the closest truss community.
    let lctc = searcher.local(&q, &cfg).unwrap();
    println!(
        "LCTC community:            {} authors, {} edges, diameter {}, density {:.2}\n",
        lctc.num_vertices(),
        lctc.num_edges(),
        lctc.diameter(),
        lctc.density()
    );
    lctc.validate(&q).unwrap();

    println!("members of the LCTC community:");
    for &v in &lctc.vertices {
        let marker = if q.contains(&v) { "  [query]" } else { "" };
        println!("  {}{}", net.names[v.index()], marker);
    }

    let trimmed = g0.num_vertices() - lctc.num_vertices();
    println!(
        "\nLCTC removed {trimmed} free-rider authors ({}% of G0) while keeping the \
         trussness at {} — the paper's Fig. 11 story.",
        100 * trimmed / g0.num_vertices().max(1),
        lctc.k
    );
}
