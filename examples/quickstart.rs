//! Quickstart: the paper's Figure 1 worked end to end.
//!
//! Builds the running-example graph, runs all three CTC algorithms for
//! `Q = {q1, q2, q3}` and prints what each returns — including the
//! free-rider vertices `p1, p2, p3` that Basic removes and BulkDelete
//! keeps (Examples 4 and 7 of the paper).
//!
//! Run with: `cargo run --release --example quickstart`

use ctc::prelude::*;
use ctc::truss::fixtures::{figure1_graph, Figure1Ids};

fn main() {
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let q = [f.q1, f.q2, f.q3];
    println!(
        "Figure 1 graph: {} vertices, {} edges; query = q1, q2, q3\n",
        g.num_vertices(),
        g.num_edges()
    );

    let searcher = CtcSearcher::new(&g);
    println!(
        "max edge trussness τ̄(∅) = {}\n",
        searcher.index().max_truss()
    );

    let cfg = CtcConfig::default();
    let mut table = Table::new([
        "algorithm",
        "k",
        "|V|",
        "|E|",
        "diameter",
        "density",
        "free riders removed",
    ]);
    for (name, community) in [
        (
            "Truss (FindG0 only)",
            searcher.truss_only(&q, &cfg).unwrap(),
        ),
        ("Basic (Alg. 1)", searcher.basic(&q, &cfg).unwrap()),
        (
            "BulkDelete (Alg. 4)",
            searcher.bulk_delete(&q, &cfg).unwrap(),
        ),
        ("LCTC (Alg. 5)", searcher.local(&q, &cfg).unwrap()),
    ] {
        let riders_removed = [f.p1, f.p2, f.p3]
            .iter()
            .filter(|p| !community.vertices.contains(p))
            .count();
        table.row([
            name.to_string(),
            community.k.to_string(),
            community.num_vertices().to_string(),
            community.num_edges().to_string(),
            community.diameter().to_string(),
            format!("{:.2}", community.density()),
            format!("{riders_removed}/3"),
        ]);
        community
            .validate(&q)
            .expect("every result is a connected k-truss containing Q");
    }
    println!("{}", table.render());

    println!(
        "Basic recovers the paper's Figure 1(b): the 4-truss on {{q1,q2,q3,v1..v5}} \
         with diameter 3 — the optimal closest truss community.\n\
         BulkDelete trades that optimality for speed (Example 7 keeps all of G0),\n\
         and LCTC gets the same community by looking only at a local neighborhood."
    );
}
