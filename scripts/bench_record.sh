#!/bin/sh
# Record (or check) the committed benchmark trajectories.
#
#   scripts/bench_record.sh            re-measure BENCH_7.json (search
#                                      phases + online-update medians);
#                                      the committed BENCH_6.json is the
#                                      frozen PR-6 baseline and is NOT
#                                      rewritten
#   scripts/bench_record.sh --bench6   re-measure BENCH_6.json's "after"
#                                      section instead (the committed
#                                      "before" baseline is preserved)
#   scripts/bench_record.sh --bench8   re-measure BENCH_8.json: the
#                                      evented-serving p50/p99 trajectory
#                                      under a zipfian two-tenant load at
#                                      concurrency 1/4/16/64
#   scripts/bench_record.sh --check    CI mode: validate ALL committed
#                                      files — BENCH_6.json (schema, >=2x
#                                      lctc locate bar, no locate/peel
#                                      regressions), BENCH_7.json
#                                      (schema, >=10x maintain-vs-rebuild
#                                      bar on mini-facebook, search phases
#                                      within 10% of the BENCH_6 bars) and
#                                      BENCH_8.json (schema, exact request
#                                      accounting per level, p50<=p99) —
#                                      and smoke every measurement
#                                      harness with one quick pass each
#
# Methodology (see docs/PERF.md): median locate/peel/finish/total
# microseconds per algorithm over the mini presets, measured through the
# PhaseTimings every search reports, on a warm CommunityEngine; plus, for
# BENCH_7, the median wall time of 32 single-edge updates (delete+insert
# restore cycles) through the maintained DynamicIndex against one full
# TrussIndex::build — the cost a rebuild-per-update design pays per op.
set -eu
cd "$(dirname "$0")/.."

cargo build --release -p ctc-bench --bin bench_record

if [ "${1:-}" = "--check" ]; then
    ./target/release/bench_record --check BENCH_6.json
    ./target/release/bench_record --check BENCH_7.json
    exec ./target/release/bench_record --check BENCH_8.json
fi

if [ "${1:-}" = "--bench6" ]; then
    shift
    ./target/release/bench_record --out BENCH_6.json "$@"
    echo "BENCH_6.json updated; review the after/ section before committing."
    exit 0
fi

if [ "${1:-}" = "--bench8" ]; then
    shift
    ./target/release/bench_record --out8 BENCH_8.json "$@"
    echo "BENCH_8.json updated; review before committing."
    exit 0
fi

./target/release/bench_record --out7 BENCH_7.json "$@"
echo "BENCH_7.json updated; review before committing."
