#!/bin/sh
# Record (or check) the phase benchmark trajectory in BENCH_6.json.
#
#   scripts/bench_record.sh            re-measure and update the "after"
#                                      section (the committed "before"
#                                      baseline is preserved)
#   scripts/bench_record.sh --check    CI mode: validate the committed
#                                      file's schema and recorded bars
#                                      (>=2x peel on bd/lctc, >=2x locate
#                                      on lctc, no basic/truss locate
#                                      regression), and smoke the recorder
#                                      harness with one quick pass
#
# Methodology (see docs/PERF.md): median locate/peel/finish/total
# microseconds per algorithm over the mini presets, measured through the
# PhaseTimings every search reports, on a warm CommunityEngine. The
# "before" section of BENCH_6.json is the pre-bitset-kernel baseline
# captured on the same machine; BENCH_5.json pins the previous (peel
# refactor) trajectory.
set -eu
cd "$(dirname "$0")/.."

cargo build --release -p ctc-bench --bin bench_record

if [ "${1:-}" = "--check" ]; then
    exec ./target/release/bench_record --check BENCH_6.json
fi

./target/release/bench_record --out BENCH_6.json "$@"
echo "BENCH_6.json updated; review the after/ section before committing."
