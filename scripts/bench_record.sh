#!/bin/sh
# Record (or check) the peel-phase benchmark trajectory in BENCH_5.json.
#
#   scripts/bench_record.sh            re-measure and update the "after"
#                                      section (the committed "before"
#                                      baseline is preserved)
#   scripts/bench_record.sh --check    CI mode: validate the committed
#                                      file's schema and recorded ≥2× peel
#                                      bar, and smoke the recorder harness
#                                      with one quick measurement pass
#
# Methodology (see docs/PERF.md): median locate/peel/total microseconds
# per algorithm over the mini presets, measured through the PhaseTimings
# every search reports, on a warm CommunityEngine.
set -eu
cd "$(dirname "$0")/.."

cargo build --release -p ctc-bench --bin bench_record

if [ "${1:-}" = "--check" ]; then
    exec ./target/release/bench_record --check BENCH_5.json
fi

./target/release/bench_record --out BENCH_5.json "$@"
echo "BENCH_5.json updated; review the after/ section before committing."
