#!/usr/bin/env bash
# Crash smoke test: kill -9 the serving daemon mid-stream and prove the
# write-ahead delta log brings back every acknowledged update.
#
#   1. serve --log, POST /update batches, SIGKILL the daemon;
#   2. `index recover` must report a clean (or torn-tail-repaired) log and
#      land on exactly the state an offline replica of the same update
#      sequence reaches;
#   3. a deliberately torn log tail must exit 3 (repaired), and a stale
#      pre-compaction log resurrected next to a compacted snapshot must
#      exit 4 (quarantined to <log>.stale, snapshot fallback);
#   4. the restarted `serve --log` answers /search identically to the
#      replica, keeps journaling new updates, and shuts down cleanly.
#
# Exit-code contract under test (docs/RELIABILITY.md):
#   0 clean, 3 repaired, 4 quarantined, 1 fatal.
#
# Run from the repo root: bash scripts/crash_smoke.sh
set -euo pipefail

cargo build --release --bin ctc-cli
BIN=target/release/ctc-cli

TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

"$BIN" generate mini-facebook "$TMP/fb.txt"
"$BIN" index build "$TMP/fb.txt" -o "$TMP/fb.ctci" --threads 0
# The offline replica: same snapshot, same update sequence, no crash.
cp "$TMP/fb.ctci" "$TMP/replica.ctci"

start_server() {
    "$BIN" serve "$TMP/fb.ctci" --addr 127.0.0.1:0 --threads 2 --log "$TMP/fb.ctcd" \
        > "$TMP/serve.log" 2>&1 &
    SERVER_PID=$!
    ADDR=""
    for _ in $(seq 1 100); do
        ADDR=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$TMP/serve.log" | head -1)
        [ -n "$ADDR" ] && break
        kill -0 "$SERVER_PID" 2>/dev/null \
            || { echo "FAIL: server died:"; cat "$TMP/serve.log"; exit 1; }
        sleep 0.1
    done
    [ -n "$ADDR" ] || { echo "FAIL: no listening line:"; cat "$TMP/serve.log"; exit 1; }
    HOST=${ADDR%:*}
    PORT=${ADDR##*:}
}

# One request over /dev/tcp. Connection: close makes EOF the framing.
request() {
    local method=$1 target=$2 body=$3
    exec 3<>"/dev/tcp/$HOST/$PORT"
    printf '%s %s HTTP/1.1\r\nHost: crash-smoke\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
        "$method" "$target" "${#body}" "$body" >&3
    cat <&3
    exec 3<&- 3>&-
}

expect_200() {
    printf '%s\n' "$1" | head -1 | grep -q '^HTTP/1.1 200 OK' \
        || { echo "FAIL: non-200 ($2):"; printf '%s\n' "$1" | head -5; exit 1; }
}

# --- Phase 1: serve, acknowledge updates, SIGKILL -------------------------
start_server
echo "crash-smoke: server on $ADDR"

R=$(request POST /update '{"updates":[{"op":"insert","u":0,"v":399},{"op":"insert","u":1,"v":398}]}')
expect_200 "$R" "update batch 1"
R=$(request POST /update '{"updates":[{"op":"insert","u":2,"v":397},{"op":"delete","u":0,"v":399}]}')
expect_200 "$R" "update batch 2"

# Every one of those 200s implied a synced append: SIGKILL now and the
# log must still carry them.
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=""
echo "crash-smoke: daemon killed with SIGKILL after 2 acknowledged batches"

# The replica applies the identical sequence (same accept/reject
# semantics), so its snapshot is the ground truth for recovery.
"$BIN" index update "$TMP/replica.ctci" --insert 0,399 --insert 1,398 > /dev/null
"$BIN" index update "$TMP/replica.ctci" --insert 2,397 --delete 0,399 > /dev/null
EXPECTED_EDGES=$("$BIN" index info "$TMP/replica.ctci" \
    | sed -n 's/^edges[[:space:]]*\([0-9][0-9]*\).*/\1/p')
[ -n "$EXPECTED_EDGES" ] || { echo "FAIL: could not read replica edge count"; exit 1; }
DIRECT=$("$BIN" search --index "$TMP/replica.ctci" --query 0,1 --algo lctc)
EXPECTED_K=$(printf '%s\n' "$DIRECT" | sed -n 's/^community: k = \([0-9]*\),.*/\1/p')
[ -n "$EXPECTED_K" ] || { echo "FAIL: could not extract k from: $DIRECT"; exit 1; }

# --- Phase 2: recovery exit codes ----------------------------------------
# After SIGKILL every synced byte survives: clean (0) or, at worst, a
# torn tail from an append the daemon never acknowledged (3).
set +e
REC=$("$BIN" index recover "$TMP/fb.ctci" --log "$TMP/fb.ctcd")
RC=$?
set -e
[ "$RC" -eq 0 ] || [ "$RC" -eq 3 ] \
    || { echo "FAIL: post-kill recover exited $RC:"; printf '%s\n' "$REC"; exit 1; }
REC_EDGES=$(printf '%s\n' "$REC" | sed -n 's/^recovered: [0-9]* vertices, \([0-9]*\) edges.*/\1/p')
[ "$REC_EDGES" = "$EXPECTED_EDGES" ] \
    || { echo "FAIL: recovered $REC_EDGES edges, replica has $EXPECTED_EDGES:"; printf '%s\n' "$REC"; exit 1; }
echo "crash-smoke: post-kill recover exit $RC, $REC_EDGES edges == replica"

# A torn tail (partial final append) must repair: exit 3.
cp "$TMP/fb.ctcd" "$TMP/torn.ctcd"
truncate -s -10 "$TMP/torn.ctcd"
set +e
REC=$("$BIN" index recover "$TMP/fb.ctci" --log "$TMP/torn.ctcd")
RC=$?
set -e
[ "$RC" -eq 3 ] || { echo "FAIL: torn-tail recover exited $RC (want 3):"; printf '%s\n' "$REC"; exit 1; }
printf '%s\n' "$REC" | grep -q 'torn tail' \
    || { echo "FAIL: no torn-tail report:"; printf '%s\n' "$REC"; exit 1; }
echo "crash-smoke: torn tail repaired (exit 3)"

# The mid-compaction crash window: a compacted snapshot next to the old
# pre-compaction log. The stale log must be quarantined, not replayed:
# exit 4, serving from the snapshot.
cp "$TMP/fb.ctci" "$TMP/stale.ctci"
cp "$TMP/fb.ctcd" "$TMP/stale.ctcd"
"$BIN" index update "$TMP/stale.ctci" --log "$TMP/stale.ctcd" --compact > /dev/null
cp "$TMP/fb.ctcd" "$TMP/stale.ctcd"
set +e
REC=$("$BIN" index recover "$TMP/stale.ctci" --log "$TMP/stale.ctcd")
RC=$?
set -e
[ "$RC" -eq 4 ] || { echo "FAIL: stale-log recover exited $RC (want 4):"; printf '%s\n' "$REC"; exit 1; }
[ -f "$TMP/stale.ctcd.stale" ] \
    || { echo "FAIL: stale log was not archived to stale.ctcd.stale"; exit 1; }
echo "crash-smoke: stale pre-compaction log quarantined (exit 4)"

# --- Phase 3: restart and differential -----------------------------------
start_server
echo "crash-smoke: restarted on $ADDR, expecting k = $EXPECTED_K"

RESPONSE=$(request POST /search '{"query":[0,1],"algo":"lctc"}')
expect_200 "$RESPONSE" "post-recovery search"
printf '%s' "$RESPONSE" | grep -q "{\"k\":$EXPECTED_K," \
    || { echo "FAIL: served k does not match replica k=$EXPECTED_K:"; printf '%s\n' "$RESPONSE" | tail -1; exit 1; }

STATS=$(request GET /stats '')
printf '%s' "$STATS" | grep -q "\"num_edges\":$EXPECTED_EDGES" \
    || { echo "FAIL: served edge count != replica $EXPECTED_EDGES:"; printf '%s\n' "$STATS" | tail -1; exit 1; }

HEALTH=$(request GET /healthz '')
printf '%s' "$HEALTH" | grep -q '{"status":"ok"}' \
    || { echo "FAIL: bad healthz after recovery:"; printf '%s\n' "$HEALTH"; exit 1; }

# The restarted daemon must keep journaling: one more acknowledged
# update, graceful shutdown, and a final clean recover that lands on the
# replica's state again.
R=$(request POST /update '{"updates":[{"op":"insert","u":3,"v":396}]}')
expect_200 "$R" "post-recovery update"
"$BIN" index update "$TMP/replica.ctci" --insert 3,396 > /dev/null
EXPECTED_EDGES=$("$BIN" index info "$TMP/replica.ctci" \
    | sed -n 's/^edges[[:space:]]*\([0-9][0-9]*\).*/\1/p')

request POST /shutdown '' > /dev/null
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server still alive after /shutdown"; exit 1
fi
wait "$SERVER_PID" || { echo "FAIL: server exited non-zero"; cat "$TMP/serve.log"; exit 1; }
SERVER_PID=""
grep -q 'drained' "$TMP/serve.log" || { echo "FAIL: no drain report:"; cat "$TMP/serve.log"; exit 1; }

set +e
REC=$("$BIN" index recover "$TMP/fb.ctci" --log "$TMP/fb.ctcd")
RC=$?
set -e
[ "$RC" -eq 0 ] || { echo "FAIL: final recover exited $RC (want 0):"; printf '%s\n' "$REC"; exit 1; }
REC_EDGES=$(printf '%s\n' "$REC" | sed -n 's/^recovered: [0-9]* vertices, \([0-9]*\) edges.*/\1/p')
[ "$REC_EDGES" = "$EXPECTED_EDGES" ] \
    || { echo "FAIL: final state $REC_EDGES edges, replica has $EXPECTED_EDGES"; exit 1; }

echo "crash-smoke: OK (kill -9 recovered, torn tail exit 3, stale log exit 4, differential matched)"
