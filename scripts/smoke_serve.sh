#!/usr/bin/env bash
# End-to-end smoke test of the serving path, std-only on the client side
# too (bash /dev/tcp): build release, index the mini facebook preset,
# start `ctc-cli serve` on an ephemeral port, issue one /search, assert
# 200 + the same k a direct `ctc-cli search --index` reports, then shut
# down gracefully via POST /shutdown and require exit code 0.
#
# Run from the repo root: bash scripts/smoke_serve.sh
set -euo pipefail

cargo build --release --bin ctc-cli
BIN=target/release/ctc-cli

TMP=$(mktemp -d)
SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

"$BIN" generate mini-facebook "$TMP/fb.txt"
"$BIN" index build "$TMP/fb.txt" -o "$TMP/fb.ctci" --threads 0

# The expected answer, straight from the engine (no server involved).
DIRECT=$("$BIN" search --index "$TMP/fb.ctci" --query 0,1 --algo lctc)
EXPECTED_K=$(printf '%s\n' "$DIRECT" | sed -n 's/^community: k = \([0-9]*\),.*/\1/p')
[ -n "$EXPECTED_K" ] || { echo "FAIL: could not extract k from: $DIRECT"; exit 1; }

"$BIN" serve "$TMP/fb.ctci" --addr 127.0.0.1:0 --threads 2 --cache-cap 64 \
    > "$TMP/serve.log" 2>&1 &
SERVER_PID=$!

# Wait for the daemon to print its bound address.
ADDR=""
for _ in $(seq 1 100); do
    ADDR=$(sed -n 's/.*listening on \([0-9.]*:[0-9]*\).*/\1/p' "$TMP/serve.log" | head -1)
    [ -n "$ADDR" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "FAIL: server died:"; cat "$TMP/serve.log"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: no listening line:"; cat "$TMP/serve.log"; exit 1; }
HOST=${ADDR%:*}
PORT=${ADDR##*:}
echo "smoke: server on $ADDR, expecting k = $EXPECTED_K"

# One request over /dev/tcp. Connection: close makes EOF the framing.
request() {
    local method=$1 target=$2 body=$3
    exec 3<>"/dev/tcp/$HOST/$PORT"
    printf '%s %s HTTP/1.1\r\nHost: smoke\r\nContent-Length: %s\r\nConnection: close\r\n\r\n%s' \
        "$method" "$target" "${#body}" "$body" >&3
    cat <&3
    exec 3<&- 3>&-
}

RESPONSE=$(request POST /search '{"query":[0,1],"algo":"lctc"}')
printf '%s\n' "$RESPONSE" | head -1 | grep -q '^HTTP/1.1 200 OK' \
    || { echo "FAIL: non-200 response:"; printf '%s\n' "$RESPONSE" | head -5; exit 1; }
printf '%s' "$RESPONSE" | grep -q "{\"k\":$EXPECTED_K," \
    || { echo "FAIL: served k does not match direct k=$EXPECTED_K:"; printf '%s\n' "$RESPONSE" | tail -1; exit 1; }

HEALTH=$(request GET /healthz '')
printf '%s' "$HEALTH" | grep -q '{"status":"ok"}' \
    || { echo "FAIL: bad healthz:"; printf '%s\n' "$HEALTH"; exit 1; }

# Graceful shutdown: the daemon must drain and exit 0 on its own.
request POST /shutdown '' > /dev/null
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "FAIL: server still alive after /shutdown"; exit 1
fi
wait "$SERVER_PID" || { echo "FAIL: server exited non-zero"; cat "$TMP/serve.log"; exit 1; }
SERVER_PID=""
grep -q 'drained' "$TMP/serve.log" || { echo "FAIL: no drain report:"; cat "$TMP/serve.log"; exit 1; }

echo "smoke: OK (k = $EXPECTED_K, graceful shutdown confirmed)"
