#!/usr/bin/env sh
# Checks that every relative markdown link in README.md and docs/*.md
# points at a file that exists, so docs can't rot silently as the tree
# moves. External (http*) and pure-anchor (#...) links are skipped.
# Run from the repo root; exits non-zero listing every broken link.
set -u

status=0
for f in README.md docs/*.md; do
    [ -f "$f" ] || continue
    dir=$(dirname "$f")
    # Extract the (target) of every [text](target) link, one per line.
    links=$(grep -oE '\]\([^)]+\)' "$f" | sed -E 's/^\]\(//; s/\)$//')
    for link in $links; do
        case "$link" in
            http://* | https://* | \#*) continue ;;
        esac
        target=${link%%#*}
        [ -n "$target" ] || continue
        if [ ! -e "$dir/$target" ]; then
            echo "$f: broken relative link -> $link"
            status=1
        fi
    done
done
exit $status
