//! Command-line front end for closest truss community search.
//!
//! ```text
//! ctc-cli stats <edge-list> [--threads N]
//! ctc-cli decompose <edge-list> [--threads N]
//! ctc-cli index build <edge-list> -o graph.ctci [--threads N]
//! ctc-cli index info graph.ctci
//! ctc-cli index update graph.ctci [--insert U,V]... [--delete U,V]...
//!                                 [--log graph.ctcd] [--compact]
//! ctc-cli index recover graph.ctci [--log graph.ctcd]
//! ctc-cli search <edge-list> --query 3,17,42 [--algo basic|bd|lctc|truss]
//!                            [--gamma 3] [--eta 1000] [--k K] [--threads N]
//!                            [--timings]
//! ctc-cli search --index graph.ctci --query 3,17,42 [...same flags]
//! ctc-cli serve graph.ctci [--addr 127.0.0.1:7341] [--threads N]
//!                          [--cache-cap C] [--log graph.ctcd]
//! ctc-cli generate <preset> <out-path>    # facebook|amazon|dblp|youtube|...
//!                                         # mini-facebook|mini-dblp
//! ```
//!
//! Edge lists are SNAP format: `u v` per line, `#` comments. Vertex labels
//! in `--query` refer to the file's original labels (preserved inside
//! `.ctci` snapshots, so `search --index` answers label-addressed queries
//! identically to a cold `search`). `--threads N` spreads the truss
//! decomposition (and LCTC's local decompositions) over `N` worker
//! threads; `0` means all available cores, `1` (the default) is the serial
//! reference path.
//!
//! `index build` pays the offline `O(ρ·m)` construction once and writes a
//! checksummed snapshot; `search --index` then skips straight to the
//! online query phase. `index update` applies edge insertions/deletions
//! to an existing snapshot with *local* truss maintenance — no `O(ρ·m)`
//! rebuild. With `--log` the updates append to a `.ctcd` write-ahead
//! delta log and the snapshot stays untouched until `--compact` folds the
//! log back in; without `--log` the snapshot is rewritten in place
//! (temp-file + rename). `serve` keeps the warm engine resident: a
//! std-only HTTP daemon (`POST /search`, `POST /update`, `GET /healthz`,
//! `GET /stats`, `POST /shutdown` — see `docs/SERVING.md`) with a fixed
//! worker pool and a class-invalidated LRU answer cache; `serve --log`
//! runs crash recovery over the snapshot + delta-log pair before binding
//! (repairing a torn log tail, quarantining corruption) and journals
//! applied `/update` batches back into the log, so a killed server
//! restarts with its acknowledged updates intact. `index recover` runs
//! the same protocol standalone with typed exit codes (see
//! `docs/RELIABILITY.md`).

use ctc::prelude::*;
use ctc_graph::io::{load_edge_list_path, save_edge_list_path};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Commands return their exit code so `index recover` can report the
    // recovery outcome through typed codes (0 clean, 3 repaired, 4
    // quarantined) instead of flattening everything to success/failure.
    let result: Result<ExitCode, String> = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("decompose") => cmd_decompose(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("index") => cmd_index(&args[1..]),
        Some("search") => cmd_search(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("serve") => cmd_serve(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("generate") => cmd_generate(&args[1..]).map(|()| ExitCode::SUCCESS),
        _ => {
            eprintln!(
                "usage: ctc-cli <stats|decompose|index|search|serve|generate> ...\n\
                 \n\
                 stats <edge-list> [--threads N]       graph summary + truss levels\n\
                 decompose <edge-list> [--threads N]   trussness histogram\n\
                 index build <edge-list> -o g.ctci     build + persist the truss index\n\
                        [--threads N]\n\
                 index info g.ctci                     inspect a snapshot\n\
                 index update g.ctci                   apply edge updates with local\n\
                        [--insert U,V]... [--delete U,V]...   truss maintenance\n\
                        [--log g.ctcd] [--compact]     (see docs/INDEX_FORMAT.md)\n\
                 index recover g.ctci [--log g.ctcd]   crash recovery: repair a torn\n\
                        log tail or quarantine corruption (exit 0 clean,\n\
                        3 repaired, 4 quarantined, 1 fatal; docs/RELIABILITY.md)\n\
                 search <edge-list> --query a,b,c      find the closest truss community\n\
                        [--algo basic|bd|lctc|truss] [--gamma G] [--eta N] [--k K]\n\
                        [--threads N] [--timings]      (--timings: per-phase breakdown)\n\
                 search --index g.ctci --query a,b,c   same, warm-started from a snapshot\n\
                 serve g.ctci [--addr HOST:PORT]       HTTP query server over the snapshot\n\
                        [--threads N] [--cache-cap C]  (POST /search, GET /healthz|/stats)\n\
                        [--tenant NAME=PATH]...        extra engines at /t/NAME/...\n\
                        [--max-conns N] [--queue-cap N]  admission bounds (503 on overflow)\n\
                        [--tenant-cap N] [--mem-budget BYTES]  429 cap / eviction budget\n\
                 generate <preset> <out>               write a synthetic network\n\
                        presets: facebook amazon dblp youtube livejournal orkut\n\
                                 mini-facebook mini-dblp (small, for smoke tests)\n\
                 \n\
                 --threads N: worker threads for truss decomposition\n\
                        (0 = all cores, 1 = serial; default 1)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load(args: &[String]) -> Result<(ctc_graph::CsrGraph, Vec<u64>), String> {
    let path = args.first().ok_or("missing edge-list path")?;
    load_edge_list_path(path).map_err(|e| format!("loading {path}: {e}"))
}

/// Parses `--threads N` (0 = all cores; absent = serial).
fn flag_parallelism(args: &[String]) -> Result<Parallelism, String> {
    match flag_value(args, "--threads") {
        None => Ok(Parallelism::serial()),
        Some(raw) => {
            let n: usize = raw.parse().map_err(|_| format!("bad --threads {raw:?}"))?;
            Ok(Parallelism::threads(n))
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (g, _) = load(args)?;
    let par = flag_parallelism(args)?;
    let s = ctc_graph::graph_stats(&g);
    let idx = TrussIndex::build_par(&g, par);
    let mut t = Table::new(["metric", "value"]);
    t.row(["vertices".to_string(), s.num_vertices.to_string()]);
    t.row(["edges".to_string(), s.num_edges.to_string()]);
    t.row(["max degree".to_string(), s.max_degree.to_string()]);
    t.row(["avg degree".to_string(), format!("{:.2}", s.avg_degree)]);
    t.row(["triangles".to_string(), s.triangles.to_string()]);
    t.row([
        "avg clustering".to_string(),
        format!("{:.4}", s.avg_clustering),
    ]);
    t.row([
        "max trussness τ̄(∅)".to_string(),
        idx.max_truss().to_string(),
    ]);
    println!("{}", t.render());
    Ok(())
}

fn cmd_decompose(args: &[String]) -> Result<(), String> {
    let (g, _) = load(args)?;
    let par = flag_parallelism(args)?;
    let d = ctc::truss::truss_decomposition_par(&g, par);
    let mut hist: std::collections::BTreeMap<u32, usize> = Default::default();
    for &t in &d.edge_truss {
        *hist.entry(t).or_default() += 1;
    }
    let mut t = Table::new(["trussness", "edges"]);
    for (k, count) in hist {
        t.row([k.to_string(), count.to_string()]);
    }
    println!("{}", t.render());
    Ok(())
}

fn cmd_index(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_index_build(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("info") => cmd_index_info(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("update") => cmd_index_update(&args[1..]).map(|()| ExitCode::SUCCESS),
        Some("recover") => cmd_index_recover(&args[1..]),
        _ => Err("usage: index <build|info|update|recover> ...".into()),
    }
}

/// `index recover`: runs the startup recovery protocol over a snapshot
/// and (optionally) its delta log, reporting what was repaired. Exit
/// codes type the outcome for scripts:
///
/// * `0` — clean: nothing needed repair;
/// * `3` — recovered: a torn log tail was truncated and resealed (the
///   legal prefix survives);
/// * `4` — quarantined: the log was archived (`.corrupt` / `.stale`) and
///   the snapshot alone carries the state;
/// * `1` — fatal: the snapshot itself is unreadable or corrupt.
fn cmd_index_recover(args: &[String]) -> Result<ExitCode, String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: index recover <g.ctci> [--log g.ctcd]")?;
    let log_path = flag_value(args, "--log").map(std::path::Path::new);
    let (snap, _, report) = ctc::truss::recover(path, log_path).map_err(|e| {
        format!("recovering {path}: {e} (snapshot unusable — restore from backup or rebuild)")
    })?;
    for line in report.describe() {
        println!("{line}");
    }
    println!(
        "recovered: {} vertices, {} edges, max trussness {}, {} replayed updates",
        snap.graph.num_vertices(),
        snap.graph.num_edges(),
        snap.index.max_truss(),
        report.replayed,
    );
    Ok(if report.log.was_quarantined() {
        ExitCode::from(4)
    } else if report.log.was_repaired() {
        ExitCode::from(3)
    } else {
        ExitCode::SUCCESS
    })
}

fn cmd_index_build(args: &[String]) -> Result<(), String> {
    let (g, labels) = load(args)?;
    let out = flag_value(args, "-o")
        .or_else(|| flag_value(args, "--out"))
        .ok_or("missing -o <out.ctci>")?;
    let par = flag_parallelism(args)?;
    let t0 = std::time::Instant::now();
    let snap = Snapshot::build_par(g, par)
        .with_labels(labels)
        .map_err(|e| e.to_string())?;
    let built = t0.elapsed();
    snap.save(out).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "indexed {} vertices, {} edges (max trussness {}) in {:.1}ms; wrote {} ({} bytes)",
        snap.graph.num_vertices(),
        snap.graph.num_edges(),
        snap.index.max_truss(),
        built.as_secs_f64() * 1e3,
        out,
        std::fs::metadata(out).map(|m| m.len()).unwrap_or(0),
    );
    Ok(())
}

fn cmd_index_info(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("missing snapshot path")?;
    let t0 = std::time::Instant::now();
    let snap = Snapshot::load(path).map_err(|e| format!("loading {path}: {e}"))?;
    let loaded = t0.elapsed();
    let mut t = Table::new(["field", "value"]);
    t.row([
        "vertices".to_string(),
        snap.graph.num_vertices().to_string(),
    ]);
    t.row(["edges".to_string(), snap.graph.num_edges().to_string()]);
    t.row([
        "max trussness τ̄(∅)".to_string(),
        snap.index.max_truss().to_string(),
    ]);
    t.row([
        "label table".to_string(),
        if snap.labels.is_empty() {
            "identity (dense ids)".to_string()
        } else {
            format!("{} labels", snap.labels.len())
        },
    ]);
    t.row([
        "load time".to_string(),
        format!("{:.1}ms", loaded.as_secs_f64() * 1e3),
    ]);
    println!("{}", t.render());
    Ok(())
}

/// Parses one `--insert U,V` / `--delete U,V` value into a label pair.
fn parse_edge_pair(raw: &str) -> Result<(u64, u64), String> {
    let (u, v) = raw
        .split_once(',')
        .ok_or(format!("bad edge {raw:?} (want U,V)"))?;
    let parse = |s: &str| {
        s.trim()
            .parse::<u64>()
            .map_err(|_| format!("bad vertex label {s:?} in {raw:?}"))
    };
    Ok((parse(u)?, parse(v)?))
}

/// `index update`: edge insertions/deletions over a snapshot with local
/// truss maintenance (never an `O(ρ·m)` rebuild). Persistence modes:
///
/// * no `--log` — the maintained state is rewritten into the snapshot
///   (temp-file + rename, so a crash leaves old or new, never torn);
/// * `--log g.ctcd` — updates append to the write-ahead delta log (and
///   replay any records already in it first); the snapshot stays as-is;
/// * `--log g.ctcd --compact` — after applying, the replayed state is
///   folded into a fresh snapshot and the log resets to empty.
fn cmd_index_update(args: &[String]) -> Result<(), String> {
    use ctc::truss::{DeltaLogFile, DeltaOp, DeltaRecord, DynamicIndex};
    use ctc_graph::io::fnv1a64;

    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing snapshot path")?;
    // Collect updates in command-line order: interleaved --insert /
    // --delete flags apply exactly as written.
    let mut ops: Vec<(bool, u64, u64)> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            flag @ ("--insert" | "--delete") => {
                let raw = args.get(i + 1).ok_or(format!("missing value for {flag}"))?;
                let (u, v) = parse_edge_pair(raw)?;
                ops.push((flag == "--insert", u, v));
                i += 2;
            }
            _ => i += 1,
        }
    }
    let log_path = flag_value(args, "--log");
    let compact = args.iter().any(|a| a == "--compact");
    if compact && log_path.is_none() {
        return Err(
            "--compact requires --log (without a log the snapshot is always rewritten)".into(),
        );
    }
    if ops.is_empty() && !compact {
        return Err(
            "nothing to do: pass --insert U,V / --delete U,V (and/or --log ... --compact)".into(),
        );
    }

    let bytes = std::fs::read(path).map_err(|e| format!("loading {path}: {e}"))?;
    let snap = Snapshot::from_bytes(&bytes).map_err(|e| format!("loading {path}: {e}"))?;
    let mut dynx = DynamicIndex::new(&snap.graph, &snap.index);
    let mut logfile = match log_path {
        Some(lp) => {
            let lf = DeltaLogFile::open_or_create(lp, fnv1a64(&bytes))
                .map_err(|e| format!("opening {lp}: {e}"))?;
            lf.log()
                .replay(&mut dynx)
                .map_err(|e| format!("replaying {lp}: {e}"))?;
            if !lf.log().is_empty() {
                println!("replayed {} logged updates from {lp}", lf.log().len());
            }
            Some(lf)
        }
        None => None,
    };

    let (mut applied, mut rejected, mut max_class) = (0usize, 0usize, 0u32);
    for &(insert, lu, lv) in &ops {
        let verb = if insert { "insert" } else { "delete" };
        let resolve = |label: u64| {
            snap.vertex_of_label(label)
                .ok_or(format!("label {label} not in graph"))
        };
        let outcome = resolve(lu)
            .and_then(|u| Ok((u, resolve(lv)?)))
            .and_then(|(u, v)| {
                let r = if insert {
                    dynx.insert_edge(u, v)
                } else {
                    dynx.delete_edge(u, v)
                }
                .map_err(|e| e.to_string())?;
                if let Some(lf) = &mut logfile {
                    let op = if insert {
                        DeltaOp::Insert
                    } else {
                        DeltaOp::Delete
                    };
                    lf.append(DeltaRecord::new(op, u.0, v.0))
                        .map_err(|e| format!("appending to {}: {e}", lf.path().display()))?;
                }
                Ok(r)
            });
        match outcome {
            Ok(r) => {
                applied += 1;
                max_class = max_class.max(r.max_class);
                println!(
                    "{verb} {lu},{lv}: trussness {}, {} other edges retrussed (class {})",
                    r.edge_truss, r.changed, r.max_class
                );
            }
            Err(e) => {
                rejected += 1;
                println!("{verb} {lu},{lv}: rejected ({e})");
            }
        }
    }

    match &mut logfile {
        Some(lf) if compact => {
            let (graph, index) = dynx.materialize().map_err(|e| e.to_string())?;
            let new_snap = Snapshot {
                graph,
                index,
                labels: snap.labels.clone(),
            };
            let base = lf
                .compact(path, &new_snap)
                .map_err(|e| format!("compacting into {path}: {e}"))?;
            println!(
                "compacted {} into {path} ({} vertices, {} edges, max trussness {}); \
                 log reset, bound to snapshot {base:016x}",
                lf.path().display(),
                new_snap.graph.num_vertices(),
                new_snap.graph.num_edges(),
                new_snap.index.max_truss(),
            );
        }
        Some(lf) => println!(
            "{} now holds {} updates over {path} (compact with: index update {path} --log {} --compact)",
            lf.path().display(),
            lf.log().len(),
            lf.path().display(),
        ),
        None => {
            if applied > 0 {
                let (graph, index) = dynx.materialize().map_err(|e| e.to_string())?;
                let new_snap = Snapshot {
                    graph,
                    index,
                    labels: snap.labels.clone(),
                };
                // Snapshot::save is durable end to end: temp file, fsync,
                // rename, directory fsync — a crash leaves old or new,
                // never torn, and the rename survives power loss.
                new_snap
                    .save(path)
                    .map_err(|e| format!("writing {path}: {e}"))?;
                println!(
                    "rewrote {path}: {} vertices, {} edges, max trussness {}",
                    new_snap.graph.num_vertices(),
                    new_snap.graph.num_edges(),
                    new_snap.index.max_truss(),
                );
            }
        }
    }
    println!("applied {applied}, rejected {rejected}, max touched class {max_class}");
    Ok(())
}

/// Loads the graph for `search`: warm from `--index <file.ctci>`, or cold
/// from a positional edge-list path (building the index in-process).
///
/// Query labels are validated against the label table *before* the
/// `O(ρ·m)` index build on the cold path, so a typo fails in milliseconds
/// rather than after a full decomposition of a large graph.
fn load_search_engine(
    args: &[String],
    par: Parallelism,
    query_labels: &[u64],
) -> Result<CommunityEngine, String> {
    match flag_value(args, "--index") {
        Some(path) => {
            let snap = Snapshot::load(path).map_err(|e| format!("loading {path}: {e}"))?;
            Ok(CommunityEngine::from_snapshot(snap))
        }
        None => {
            let (g, labels) = load(args)?;
            for &label in query_labels {
                if ctc::truss::snapshot::vertex_of_label(&labels, g.num_vertices(), label).is_none()
                {
                    return Err(format!("label {label} not in graph"));
                }
            }
            let snap = Snapshot::build_par(g, par)
                .with_labels(labels)
                .map_err(|e| e.to_string())?;
            Ok(CommunityEngine::from_snapshot(snap))
        }
    }
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let query_raw = flag_value(args, "--query").ok_or("missing --query a,b,c")?;
    // Parse the query labels first: syntax errors never cost a graph load.
    let mut query_labels = Vec::new();
    for tok in query_raw.split(',') {
        let label: u64 = tok
            .trim()
            .parse()
            .map_err(|_| format!("bad query label {tok:?}"))?;
        query_labels.push(label);
    }
    let mut cfg = CtcConfig::default();
    if let Some(gm) = flag_value(args, "--gamma") {
        cfg.gamma = gm.parse().map_err(|_| "bad --gamma")?;
    }
    if let Some(eta) = flag_value(args, "--eta") {
        cfg.eta = eta.parse().map_err(|_| "bad --eta")?;
    }
    if let Some(k) = flag_value(args, "--k") {
        cfg.fixed_k = Some(k.parse().map_err(|_| "bad --k")?);
    }
    let par = flag_parallelism(args)?;
    cfg.parallelism = par;
    let algo: SearchAlgo = flag_value(args, "--algo").unwrap_or("lctc").parse()?;
    let engine = load_search_engine(args, par, &query_labels)?.with_config(cfg);
    // Map original labels to dense ids.
    let mut q = Vec::new();
    for &label in &query_labels {
        let dense = engine
            .vertex_of_label(label)
            .ok_or(format!("label {label} not in graph"))?;
        q.push(dense);
    }
    let c = engine.search(&q, algo).map_err(|e| e.to_string())?;
    println!(
        "community: k = {}, {} vertices, {} edges, diameter {}, density {:.3}, \
         query distance {}, found in {:.1}ms",
        c.k,
        c.num_vertices(),
        c.num_edges(),
        c.diameter(),
        c.density(),
        c.query_distance,
        c.timings.total.as_secs_f64() * 1e3
    );
    if args.iter().any(|a| a == "--timings") {
        println!(
            "timings: locate {:.3}ms, peel {:.3}ms, finish {:.3}ms, total {:.3}ms",
            c.timings.locate.as_secs_f64() * 1e3,
            c.timings.peel.as_secs_f64() * 1e3,
            c.timings.finish.as_secs_f64() * 1e3,
            c.timings.total.as_secs_f64() * 1e3,
        );
    }
    let members: Vec<String> = c
        .vertices
        .iter()
        .map(|&v| engine.label_of(v).to_string())
        .collect();
    println!("members: {}", members.join(" "));
    Ok(())
}

/// Starts the HTTP query server over a `.ctci` snapshot and blocks until
/// a `POST /shutdown` request (or process termination).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let path = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("missing snapshot path (build one with: index build <edge-list> -o g.ctci)")?;
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7341");
    let pool = flag_parallelism(args)?;
    let cache_cap = match flag_value(args, "--cache-cap") {
        None => 1024,
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad --cache-cap {raw:?}"))?,
    };
    // With --log, start through the recovery protocol: sweep strays,
    // truncate a torn log tail, quarantine interior corruption (serving
    // falls back to the snapshot), replay the surviving records, and
    // keep the log handle so applied /update batches journal through it.
    let (engine, logfile) = match flag_value(args, "--log") {
        Some(lp) => {
            let (engine, logfile, report) =
                CommunityEngine::recover(path, Some(std::path::Path::new(lp)))
                    .map_err(|e| format!("recovering {path}: {e}"))?;
            for line in report.describe() {
                println!("recovery: {line}");
            }
            if report.replayed > 0 {
                println!("replayed {} logged updates from {lp}", report.replayed);
            }
            (engine, logfile)
        }
        None => {
            let snap = Snapshot::load(path).map_err(|e| format!("loading {path}: {e}"))?;
            (CommunityEngine::from_snapshot(snap), None)
        }
    };
    let parse_usize = |name: &str, default: usize| -> Result<usize, String> {
        match flag_value(args, name) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("bad {name} {raw:?}")),
        }
    };
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        pool,
        cache_cap,
        max_conns: parse_usize("--max-conns", defaults.max_conns)?,
        queue_cap: parse_usize("--queue-cap", defaults.queue_cap)?,
        tenant_inflight: parse_usize("--tenant-cap", 0)? as u64,
        mem_budget: parse_usize("--mem-budget", 0)?,
        ..defaults
    };
    let stats = engine.stats();
    let state = std::sync::Arc::new(AppState::new(engine, &cfg));
    // Journal applied /update batches into the recovered log, so a crash
    // (kill -9 included) loses at most the in-flight record.
    if let Some(lf) = logfile {
        state.attach_default_wal(lf);
    }
    // Additional named tenants (`--tenant NAME=PATH`, repeatable): lazily
    // loaded snapshots served at /t/NAME/search|update|stats, evicted
    // LRU-by-bytes when --mem-budget is exceeded.
    let mut tenants = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg != "--tenant" {
            continue;
        }
        let spec = it.next().ok_or("--tenant needs NAME=PATH")?;
        let (name, tpath) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --tenant {spec:?}: want NAME=PATH"))?;
        state
            .add_tenant_path(name, std::path::PathBuf::from(tpath))
            .map_err(|e| format!("registering tenant {name:?}: {e}"))?;
        tenants += 1;
    }
    let server =
        CtcServer::bind_state(state, addr, &cfg).map_err(|e| format!("binding {addr}: {e}"))?;
    println!(
        "ctc-serve listening on {} ({} vertices, {} edges, max trussness {}; \
         {} workers, cache capacity {}, {} named tenants)",
        server.local_addr(),
        stats.num_vertices,
        stats.num_edges,
        stats.max_truss,
        pool.get(),
        cache_cap,
        tenants,
    );
    let report = server.serve();
    println!(
        "ctc-serve drained: {} connections, {} requests ({} search ok, {} search err, \
         {} cache hits, {} rejects)",
        report.connections,
        report.counters.total,
        report.counters.search_ok,
        report.counters.search_err,
        report.counters.cache_hits,
        report.counters.http_rejects,
    );
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let preset = args.first().ok_or("missing preset name")?;
    let out = args.get(1).ok_or("missing output path")?;
    if let Some(mini) = preset.strip_prefix("mini-") {
        let net = ctc::gen::mini_network(mini, 7).ok_or(format!("unknown preset {preset}"))?;
        save_edge_list_path(&net.graph, out).map_err(|e| e.to_string())?;
        println!(
            "wrote {}: {} vertices, {} edges ({} ground-truth communities)",
            out,
            net.graph.num_vertices(),
            net.graph.num_edges(),
            net.communities.len()
        );
        return Ok(());
    }
    let net = ctc::gen::network_by_name(preset).ok_or(format!("unknown preset {preset}"))?;
    save_edge_list_path(&net.data.graph, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} vertices, {} edges ({} ground-truth communities)",
        out,
        net.data.graph.num_vertices(),
        net.data.graph.num_edges(),
        net.data.communities.len()
    );
    Ok(())
}
