//! Command-line front end for closest truss community search.
//!
//! ```text
//! ctc-cli stats <edge-list> [--threads N]
//! ctc-cli decompose <edge-list> [--threads N]
//! ctc-cli search <edge-list> --query 3,17,42 [--algo basic|bd|lctc|truss]
//!                            [--gamma 3] [--eta 1000] [--k K] [--threads N]
//! ctc-cli generate <preset> <out-path>    # facebook|amazon|dblp|youtube|...
//! ```
//!
//! Edge lists are SNAP format: `u v` per line, `#` comments. Vertex labels
//! in `--query` refer to the file's original labels. `--threads N` spreads
//! the truss decomposition (and LCTC's local decompositions) over `N`
//! worker threads; `0` means all available cores, `1` (the default) is the
//! serial reference path.

use ctc::prelude::*;
use ctc_graph::io::{load_edge_list_path, save_edge_list_path};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("stats") => cmd_stats(&args[1..]),
        Some("decompose") => cmd_decompose(&args[1..]),
        Some("search") => cmd_search(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        _ => {
            eprintln!(
                "usage: ctc-cli <stats|decompose|search|generate> ...\n\
                 \n\
                 stats <edge-list> [--threads N]       graph summary + truss levels\n\
                 decompose <edge-list> [--threads N]   trussness histogram\n\
                 search <edge-list> --query a,b,c      find the closest truss community\n\
                        [--algo basic|bd|lctc|truss] [--gamma G] [--eta N] [--k K]\n\
                        [--threads N]\n\
                 generate <preset> <out>               write a synthetic network\n\
                        presets: facebook amazon dblp youtube livejournal orkut\n\
                 \n\
                 --threads N: worker threads for truss decomposition\n\
                        (0 = all cores, 1 = serial; default 1)"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn load(args: &[String]) -> Result<(ctc_graph::CsrGraph, Vec<u64>), String> {
    let path = args.first().ok_or("missing edge-list path")?;
    load_edge_list_path(path).map_err(|e| format!("loading {path}: {e}"))
}

/// Parses `--threads N` (0 = all cores; absent = serial).
fn flag_parallelism(args: &[String]) -> Result<Parallelism, String> {
    match flag_value(args, "--threads") {
        None => Ok(Parallelism::serial()),
        Some(raw) => {
            let n: usize = raw.parse().map_err(|_| format!("bad --threads {raw:?}"))?;
            Ok(Parallelism::threads(n))
        }
    }
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let (g, _) = load(args)?;
    let par = flag_parallelism(args)?;
    let s = ctc_graph::graph_stats(&g);
    let idx = TrussIndex::build_par(&g, par);
    let mut t = Table::new(["metric", "value"]);
    t.row(["vertices".to_string(), s.num_vertices.to_string()]);
    t.row(["edges".to_string(), s.num_edges.to_string()]);
    t.row(["max degree".to_string(), s.max_degree.to_string()]);
    t.row(["avg degree".to_string(), format!("{:.2}", s.avg_degree)]);
    t.row(["triangles".to_string(), s.triangles.to_string()]);
    t.row([
        "avg clustering".to_string(),
        format!("{:.4}", s.avg_clustering),
    ]);
    t.row([
        "max trussness τ̄(∅)".to_string(),
        idx.max_truss().to_string(),
    ]);
    println!("{}", t.render());
    Ok(())
}

fn cmd_decompose(args: &[String]) -> Result<(), String> {
    let (g, _) = load(args)?;
    let par = flag_parallelism(args)?;
    let d = ctc::truss::truss_decomposition_par(&g, par);
    let mut hist: std::collections::BTreeMap<u32, usize> = Default::default();
    for &t in &d.edge_truss {
        *hist.entry(t).or_default() += 1;
    }
    let mut t = Table::new(["trussness", "edges"]);
    for (k, count) in hist {
        t.row([k.to_string(), count.to_string()]);
    }
    println!("{}", t.render());
    Ok(())
}

fn cmd_search(args: &[String]) -> Result<(), String> {
    let (g, labels) = load(args)?;
    let query_raw = flag_value(args, "--query").ok_or("missing --query a,b,c")?;
    // Map original labels to dense ids.
    let mut q = Vec::new();
    for tok in query_raw.split(',') {
        let label: u64 = tok
            .trim()
            .parse()
            .map_err(|_| format!("bad query label {tok:?}"))?;
        let dense = labels
            .iter()
            .position(|&l| l == label)
            .ok_or(format!("label {label} not in graph"))?;
        q.push(VertexId::from(dense));
    }
    let mut cfg = CtcConfig::default();
    if let Some(gm) = flag_value(args, "--gamma") {
        cfg.gamma = gm.parse().map_err(|_| "bad --gamma")?;
    }
    if let Some(eta) = flag_value(args, "--eta") {
        cfg.eta = eta.parse().map_err(|_| "bad --eta")?;
    }
    if let Some(k) = flag_value(args, "--k") {
        cfg.fixed_k = Some(k.parse().map_err(|_| "bad --k")?);
    }
    let par = flag_parallelism(args)?;
    cfg.parallelism = par;
    let algo = flag_value(args, "--algo").unwrap_or("lctc");
    let searcher = CtcSearcher::with_parallelism(&g, par);
    let c = match algo {
        "basic" => searcher.basic(&q, &cfg),
        "bd" => searcher.bulk_delete(&q, &cfg),
        "lctc" => searcher.local(&q, &cfg),
        "truss" => searcher.truss_only(&q, &cfg),
        other => return Err(format!("unknown --algo {other}")),
    }
    .map_err(|e| e.to_string())?;
    println!(
        "community: k = {}, {} vertices, {} edges, diameter {}, density {:.3}, \
         query distance {}, found in {:.1}ms",
        c.k,
        c.num_vertices(),
        c.num_edges(),
        c.diameter(),
        c.density(),
        c.query_distance,
        c.timings.total.as_secs_f64() * 1e3
    );
    let members: Vec<String> = c
        .vertices
        .iter()
        .map(|v| labels[v.index()].to_string())
        .collect();
    println!("members: {}", members.join(" "));
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let preset = args.first().ok_or("missing preset name")?;
    let out = args.get(1).ok_or("missing output path")?;
    let net = ctc::gen::network_by_name(preset).ok_or(format!("unknown preset {preset}"))?;
    save_edge_list_path(&net.data.graph, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {}: {} vertices, {} edges ({} ground-truth communities)",
        out,
        net.data.graph.num_vertices(),
        net.data.graph.num_edges(),
        net.data.communities.len()
    );
    Ok(())
}
