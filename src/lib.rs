//! # ctc — closest truss community search
//!
//! A from-scratch Rust reproduction of *Approximate Closest Community
//! Search in Networks* (Huang, Lakshmanan, Yu, Cheng — VLDB 2015): given
//! query vertices `Q` in an undirected graph, find a connected k-truss
//! containing `Q` with the largest `k` and approximately minimum diameter.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`graph`] — CSR graph substrate, traversal, triangles, distances;
//! * [`truss`] — truss decomposition, truss index, FindG0, maintenance;
//! * [`gen`] — synthetic networks with ground truth + query workloads;
//! * [`core`] — the CTC algorithms (Basic / BulkDelete / LCTC);
//! * [`baselines`] — MDC, QDC and k-core comparison models;
//! * [`eval`] — F1 metrics, timing harness, table rendering;
//! * [`prob`] — probabilistic-graph extension ((k,γ)-truss, Monte-Carlo CTC);
//! * [`server`] — `ctc-serve`: the std-only concurrent HTTP query server
//!   (`ctc-cli serve`).
//!
//! ```
//! use ctc::prelude::*;
//!
//! let g = ctc::truss::fixtures::figure1_graph();
//! let f = ctc::truss::fixtures::Figure1Ids::default();
//! let searcher = CtcSearcher::new(&g);
//! let c = searcher.basic(&[f.q1, f.q2, f.q3], &CtcConfig::default()).unwrap();
//! assert_eq!((c.k, c.diameter()), (4, 3));
//! ```

pub use ctc_baselines as baselines;
pub use ctc_core as core;
pub use ctc_eval as eval;
pub use ctc_gen as gen;
pub use ctc_graph as graph;
pub use ctc_prob as prob;
pub use ctc_server as server;
pub use ctc_truss as truss;

/// The common imports for application code.
pub mod prelude {
    pub use ctc_baselines::{kcore_community, mdc, qdc, MdcConfig, QdcConfig};
    pub use ctc_core::{
        Community, CommunityEngine, CtcConfig, CtcSearcher, EngineQuery, SearchAlgo, SteinerMode,
    };
    pub use ctc_eval::{f1_score, Table};
    pub use ctc_gen::{DegreeRank, QueryGenerator};
    pub use ctc_graph::{CsrGraph, GraphBuilder, Parallelism, VertexId};
    pub use ctc_server::{AppState, CtcServer, ServeConfig};
    pub use ctc_truss::{find_g0, Snapshot, TrussIndex};
}
