//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` header,
//! `ident in strategy` bindings, [`prop_assert!`]/[`prop_assert_eq!`],
//! range and tuple strategies, and [`collection::vec`]. Cases are sampled
//! from a generator seeded deterministically from the test name, so runs
//! are reproducible; there is no shrinking (a failing case prints its
//! inputs via the assertion message instead).

#![warn(missing_docs)]

// Re-exported for use by the macros.
#[doc(hidden)]
pub use rand;

/// Strategy trait and implementations for ranges and tuples.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SampleRange};
    use std::ops::Range;

    /// A source of random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T: Copy> Strategy for Range<T>
    where
        Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen_range(self.clone())
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `S` and length in a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `vec(element, len_range)`: vectors of `len_range` samples of `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(
            size.start < size.end,
            "proptest::collection::vec: empty size range"
        );
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Configuration and error types for generated test runners.
pub mod test_runner {
    use std::fmt;

    /// Controls how many cases each property test runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
        /// Accepted for compatibility; this stand-in never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    /// A failed property case.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Result type of a single property case body.
    pub type TestCaseResult = Result<(), TestCaseError>;
}

/// The common imports for property tests.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines deterministic property tests. See the crate docs for the
/// supported grammar (a subset of upstream proptest's).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            // FNV-1a over the test name: a stable per-test seed.
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in stringify!($name).bytes() {
                seed = (seed ^ b as u64).wrapping_mul(0x1_0000_0000_01b3);
            }
            let mut rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(seed);
            for case in 0..cfg.cases {
                // Cheap checkpoint (the RNG is a few words) so the failing
                // case's inputs can be re-sampled and reported lazily — the
                // passing path never formats anything.
                let checkpoint = rng.clone();
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let outcome: $crate::test_runner::TestCaseResult =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    let mut replay = checkpoint;
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut replay);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)+),
                        $(&$arg),+
                    );
                    panic!(
                        "proptest '{}' failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case, cfg.cases, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)+);
    }};
}

/// `assert_ne!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_tuples(x in 0u32..10, pair in (0u32..4, 0u32..4)) {
            prop_assert!(x < 10);
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }

        #[test]
        fn vectors_respect_bounds(
            v in crate::collection::vec((0u32..8, 0u32..8), 1..20),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            for (a, b) in v {
                prop_assert!(a < 8);
                prop_assert!(b < 8);
            }
        }

        #[test]
        fn early_return_ok_works(n in 0usize..4) {
            if n == 0 {
                return Ok(());
            }
            prop_assert_ne!(n, 0);
        }
    }

    // No `#![proptest_config(..)]` header: the default config applies.
    proptest! {
        #[test]
        fn default_config_applies(x in 0u8..2) {
            prop_assert!(x < 2);
        }
    }

    // Not annotated #[test]: invoked via catch_unwind below to check the
    // failure path (inputs are re-sampled lazily and named in the panic).
    proptest! {
        #![proptest_config(ProptestConfig { cases: 4, ..ProptestConfig::default() })]

        fn always_fails(x in 0u32..4, v in crate::collection::vec(0u32..4, 1..3)) {
            let _ = &v;
            prop_assert!(x > 100, "x was {x}");
        }
    }

    #[test]
    fn failing_case_reports_its_inputs() {
        let err = std::panic::catch_unwind(always_fails).expect_err("must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .expect("panic carries a formatted message");
        assert!(
            msg.contains("failed at case 0/4"),
            "unexpected message: {msg}"
        );
        assert!(msg.contains("inputs: x = "), "inputs missing from: {msg}");
        assert!(msg.contains("v = ["), "vec input missing from: {msg}");
    }
}
