//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the benchmark-group API subset this workspace's benches use
//! and reports simple wall-clock statistics (min/mean over a fixed, small
//! number of iterations) to stdout. No statistical analysis, plots or
//! report directories — but the bench binaries compile, run fast and give
//! usable relative numbers. When invoked with `--test` (as `cargo test`
//! does for `harness = false` bench targets) each benchmark body runs
//! exactly once as a smoke test.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Drives benchmark iterations inside a benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, running it `iters` times (once in `--test` mode).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.elapsed.clear();
        for _ in 0..self.iters {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed.push(t0.elapsed());
        }
    }
}

/// The top-level harness handle passed to every bench function.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        let test_mode = self.test_mode;
        run_one("", sample_size, test_mode, &id.into(), f);
        self
    }
}

/// A named collection of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Accepted for API compatibility; this stand-in iterates a fixed
    /// number of times instead of filling a time budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (no warm-up phase here).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(
            &self.name,
            sample_size,
            self.criterion.test_mode,
            &id.into(),
            |b| f(b, input),
        );
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(
            &self.name,
            sample_size,
            self.criterion.test_mode,
            &id.into(),
            f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    sample_size: usize,
    test_mode: bool,
    id: &BenchmarkId,
    mut f: F,
) {
    let label = if group.is_empty() {
        id.id.clone()
    } else {
        format!("{}/{}", group, id.id)
    };
    let iters = if test_mode {
        1
    } else {
        sample_size.max(1) as u64
    };
    let mut b = Bencher {
        iters,
        elapsed: Vec::new(),
    };
    f(&mut b);
    if b.elapsed.is_empty() {
        println!("bench {label:<40} (no iterations recorded)");
        return;
    }
    let min = b.elapsed.iter().min().copied().unwrap_or_default();
    let total: Duration = b.elapsed.iter().sum();
    let mean = total / b.elapsed.len() as u32;
    if test_mode {
        println!("test bench {label:<40} ... ok ({mean:.2?})");
    } else {
        println!("bench {label:<40} min {min:>12.2?}   mean {mean:>12.2?}   ({iters} iters)");
    }
}

/// Declares a group of bench functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", "p").id, "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).id, "7");
    }
}
