//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this vendored crate
//! provides the small, deterministic API subset the workspace actually
//! uses: [`Rng::gen_range`], [`Rng::gen`], [`SeedableRng::seed_from_u64`]
//! and [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — high-quality and reproducible, though the exact streams
//! differ from upstream `rand`'s `StdRng` (fine: the workspace only relies
//! on determinism per seed, never on specific values).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`, which must be non-empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Samples a value of type `T` from its standard distribution
    /// (`f64`/`f32`: uniform on `[0, 1)`; integers: uniform over the type;
    /// `bool`: fair coin).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the standard distribution for this type.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let unit = f64::sample_standard(rng);
        self.start + (self.end - self.start) * unit
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        let unit = f32::sample_standard(rng);
        self.start + (self.end - self.start) * unit
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.gen_range(0u32..1_000_000)).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.gen_range(0u32..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
