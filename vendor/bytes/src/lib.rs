//! Offline stand-in for the `bytes` crate.
//!
//! Implements just what `ctc-graph`'s binary graph image needs: a growable
//! [`BytesMut`] with little-endian put methods, a frozen immutable
//! [`Bytes`], and the [`Buf`]/[`BufMut`] traits (with `Buf` implemented on
//! `&[u8]`, advancing the slice as bytes are consumed).

#![warn(missing_docs)]

use std::ops::Deref;

/// Read access to a buffer of bytes, consuming from the front.
pub trait Buf {
    /// Number of bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes into `dst` and advances. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u32` and advances. Panics on underflow.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64` and advances. Panics on underflow.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "Buf::copy_to_slice: underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends `src`.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.inner.extend_from_slice(src);
    }
}

/// Immutable byte buffer produced by [`BytesMut::freeze`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Vec<u8>,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `data` into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            inner: data.to_vec(),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(inner: Vec<u8>) -> Self {
        Bytes { inner }
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    inner: Vec<u8>,
}

impl BytesMut {
    /// The empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            inner: Vec::with_capacity(cap),
        }
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { inner: self.inner }
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let mut buf = BytesMut::with_capacity(16);
        buf.put_slice(b"HDR!");
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        let frozen = buf.freeze();
        let mut rd: &[u8] = &frozen;
        assert_eq!(rd.remaining(), 16);
        let mut hdr = [0u8; 4];
        rd.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(rd.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(rd.get_u64_le(), 42);
        assert_eq!(rd.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut rd: &[u8] = b"ab";
        rd.get_u32_le();
    }
}
