//! Search configuration shared by all CTC algorithms.

use ctc_graph::Parallelism;

/// How Steiner-tree truss distances (Def. 7) are evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SteinerMode {
    /// Exact Def. 7 semantics: `d̂(u,v) = min_P len(P) + γ(τ̄(∅) −
    /// min_{e∈P} τ(e))`, evaluated by sweeping trussness thresholds and
    /// BFS-ing the `τ ≥ t` subgraphs. Default.
    PathMinExact,
    /// Additive surrogate: Dijkstra with per-edge weight
    /// `1 + γ(τ̄(∅) − τ(e))`. Upper-bounds the exact distance; cheaper on
    /// graphs with many truss levels. Kept as an ablation (DESIGN.md §4).
    EdgeAdditive,
}

/// Configuration for CTC searches.
///
/// Defaults follow the paper's experiment setup: `γ = 3`, `η = 1000`
/// (§6: "we set the parameters η = 1,000 and γ = 3").
#[derive(Clone, Debug)]
pub struct CtcConfig {
    /// Trussness penalty weight γ in the truss distance (Def. 7).
    pub gamma: f64,
    /// LCTC expansion size budget η (max vertices of `Gt`).
    pub eta: usize,
    /// Optional fixed trussness (§7.1 "trading trussness for diameter" /
    /// Fig. 14): search for a k-truss at exactly this level instead of the
    /// maximum.
    pub fixed_k: Option<u32>,
    /// Hard cap on peeling iterations (safety valve; `None` = unbounded,
    /// the paper's semantics).
    pub max_iterations: Option<usize>,
    /// Truss-distance evaluation mode for the LCTC Steiner stage.
    pub steiner_mode: SteinerMode,
    /// Worker threads for the parallel phases (support computation and
    /// truss decomposition — LCTC's local decomposition honors this).
    /// Defaults to serial, which is the reference code path.
    pub parallelism: Parallelism,
}

impl Default for CtcConfig {
    fn default() -> Self {
        CtcConfig {
            gamma: 3.0,
            eta: 1000,
            fixed_k: None,
            max_iterations: None,
            steiner_mode: SteinerMode::PathMinExact,
            parallelism: Parallelism::serial(),
        }
    }
}

impl CtcConfig {
    /// Starts from defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets γ.
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.gamma = gamma;
        self
    }

    /// Sets η.
    pub fn eta(mut self, eta: usize) -> Self {
        self.eta = eta.max(1);
        self
    }

    /// Fixes the target trussness.
    pub fn fixed_k(mut self, k: u32) -> Self {
        self.fixed_k = Some(k.max(2));
        self
    }

    /// Caps peeling iterations.
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Chooses the Steiner truss-distance mode.
    pub fn steiner_mode(mut self, mode: SteinerMode) -> Self {
        self.steiner_mode = mode;
        self
    }

    /// Sets the worker-thread count for the parallel phases (`0` = all
    /// available cores, `1` = serial).
    pub fn threads(mut self, n: usize) -> Self {
        self.parallelism = Parallelism::threads(n);
        self
    }

    /// Sets the parallelism policy directly.
    pub fn parallelism(mut self, par: Parallelism) -> Self {
        self.parallelism = par;
        self
    }

    /// The answer-affecting projection of this configuration.
    ///
    /// Two configs with equal fingerprints produce identical answers for
    /// every query and algorithm, so the fingerprint is the correct
    /// config component of a response-cache key. [`CtcConfig::parallelism`]
    /// is deliberately excluded: thread count changes wall time, never
    /// answers (the workspace-wide invariant pinned by the parallel
    /// property tests).
    ///
    /// ```
    /// use ctc_core::CtcConfig;
    ///
    /// let a = CtcConfig::new().threads(8);
    /// let b = CtcConfig::new(); // serial
    /// assert_eq!(a.fingerprint(), b.fingerprint());
    /// assert_ne!(a.fingerprint(), CtcConfig::new().gamma(5.0).fingerprint());
    /// ```
    pub fn fingerprint(&self) -> ConfigFingerprint {
        ConfigFingerprint {
            gamma_bits: self.gamma.to_bits(),
            eta: self.eta,
            fixed_k: self.fixed_k,
            max_iterations: self.max_iterations,
            steiner_additive: self.steiner_mode == SteinerMode::EdgeAdditive,
        }
    }
}

/// The hashable projection of a [`CtcConfig`] onto the knobs that can
/// change a search answer. See [`CtcConfig::fingerprint`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ConfigFingerprint {
    /// Bit pattern of γ (f64 is not `Hash`/`Eq`; bits are).
    gamma_bits: u64,
    /// LCTC expansion budget η.
    eta: usize,
    /// Fixed target trussness, if any.
    fixed_k: Option<u32>,
    /// Peeling iteration cap, if any.
    max_iterations: Option<usize>,
    /// Whether the additive Steiner surrogate replaces the exact mode.
    steiner_additive: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CtcConfig::default();
        assert_eq!(c.gamma, 3.0);
        assert_eq!(c.eta, 1000);
        assert_eq!(c.fixed_k, None);
        assert_eq!(c.steiner_mode, SteinerMode::PathMinExact);
        assert!(c.parallelism.is_serial(), "parallelism is opt-in");
    }

    #[test]
    fn builder_chains() {
        let c = CtcConfig::new()
            .gamma(5.0)
            .eta(0)
            .fixed_k(1)
            .max_iterations(10)
            .steiner_mode(SteinerMode::EdgeAdditive)
            .threads(4);
        assert_eq!(c.gamma, 5.0);
        assert_eq!(c.eta, 1, "eta clamps to ≥ 1");
        assert_eq!(c.fixed_k, Some(2), "k clamps to ≥ 2");
        assert_eq!(c.max_iterations, Some(10));
        assert_eq!(c.steiner_mode, SteinerMode::EdgeAdditive);
        assert_eq!(c.parallelism.get(), 4);
        assert!(CtcConfig::new().threads(0).parallelism.get() >= 1);
        assert!(CtcConfig::new()
            .parallelism(Parallelism::serial())
            .parallelism
            .is_serial());
    }

    #[test]
    fn fingerprint_tracks_answer_knobs_only() {
        let base = CtcConfig::default();
        // Parallelism never changes answers, so it must not change the key.
        assert_eq!(
            base.fingerprint(),
            CtcConfig::new().threads(8).fingerprint()
        );
        // Every answer-affecting knob must change the key.
        assert_ne!(
            base.fingerprint(),
            CtcConfig::new().gamma(2.5).fingerprint()
        );
        assert_ne!(base.fingerprint(), CtcConfig::new().eta(500).fingerprint());
        assert_ne!(
            base.fingerprint(),
            CtcConfig::new().fixed_k(4).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            CtcConfig::new().max_iterations(3).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            CtcConfig::new()
                .steiner_mode(SteinerMode::EdgeAdditive)
                .fingerprint()
        );
    }
}
