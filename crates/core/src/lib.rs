//! # ctc-core — closest truss community search
//!
//! The primary contribution of *Approximate Closest Community Search in
//! Networks* (Huang, Lakshmanan, Yu, Cheng — VLDB 2015): given an undirected
//! graph `G` and query vertices `Q`, find a connected k-truss containing `Q`
//! with the largest `k` and (approximately) minimum diameter.
//!
//! Three algorithms, one API:
//!
//! | method | paper | guarantee |
//! |---|---|---|
//! | [`CtcSearcher::basic`] | Alg. 1 | 2-approximation (Thm. 3) |
//! | [`CtcSearcher::bulk_delete`] | Alg. 4 | (2+ε)-approximation (Thm. 6) |
//! | [`CtcSearcher::local`] | Alg. 5 | heuristic, locally explored |
//!
//! ```
//! use ctc_core::{CtcSearcher, CtcConfig};
//! use ctc_truss::fixtures::{figure1_graph, Figure1Ids};
//!
//! let g = figure1_graph();
//! let f = Figure1Ids::default();
//! let searcher = CtcSearcher::new(&g);
//! let community = searcher
//!     .basic(&[f.q1, f.q2, f.q3], &CtcConfig::default())
//!     .unwrap();
//! assert_eq!(community.k, 4);        // largest trussness covering Q
//! assert_eq!(community.diameter(), 3); // the optimum for Figure 1
//! ```
//!
//! For serving, [`CommunityEngine`] separates the offline index build from
//! the online queries: build (or [load](CommunityEngine::load) from a
//! `.ctci` snapshot) once, then answer singles and batches warm:
//!
//! ```
//! use ctc_core::{CommunityEngine, EngineQuery, SearchAlgo};
//! use ctc_truss::fixtures::{figure1_graph, Figure1Ids};
//!
//! let engine = CommunityEngine::build(figure1_graph());
//! let f = Figure1Ids::default();
//! let batch = vec![EngineQuery::new(vec![f.q1, f.q2, f.q3]).algo(SearchAlgo::Basic)];
//! assert_eq!(engine.search_batch(&batch)[0].as_ref().unwrap().k, 4);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod decision;
pub mod engine;
pub mod local;
pub mod peel;
pub mod result;
pub mod searcher;
pub mod steiner;

pub use config::{ConfigFingerprint, CtcConfig, SteinerMode};
pub use decision::{decide_ctck, CtckAnswer};
pub use engine::{
    BatchReport, CommunityEngine, EngineQuery, EngineStats, EngineUpdate, SearchAlgo,
};
pub use peel::{
    peel, peel_reference, peel_rounds, peel_with, DeletePolicy, PeelOutcome, PeelScratch, PeelStats,
};
pub use result::{community_from_induced, Community, PhaseTimings};
pub use searcher::CtcSearcher;
pub use steiner::{steiner_tree, SteinerTree};
