//! Local exploration for LCTC (Algorithm 5, steps 2–3): expand the Steiner
//! tree into a bounded neighborhood graph `Gt`.
//!
//! Starting from the tree vertices, a multi-source BFS follows only edges
//! with trussness ≥ `kt` (the tree's minimum edge trussness) and stops
//! admitting new vertices once `η` are selected. The final `Gt` is closed
//! under qualifying edges between selected vertices, which maximizes the
//! trussness the local decomposition can certify.

use crate::steiner::SteinerTree;
use ctc_graph::{CsrGraph, GraphBuilder, Subgraph, VertexId};
use ctc_truss::TrussIndex;

/// Expands `tree` into a locality `Gt` of at most `eta` vertices.
pub fn expand_tree(_g: &CsrGraph, idx: &TrussIndex, tree: &SteinerTree, eta: usize) -> Subgraph {
    let kt = tree.min_truss;
    let mut from_parent: ctc_graph::FxHashMap<u32, u32> = Default::default();
    let mut to_parent: Vec<u32> = Vec::new();
    let mut queue: std::collections::VecDeque<VertexId> = Default::default();
    for &v in &tree.vertices {
        if let std::collections::hash_map::Entry::Vacant(e) = from_parent.entry(v.0) {
            e.insert(to_parent.len() as u32);
            to_parent.push(v.0);
            queue.push_back(v);
        }
    }
    let budget = eta.max(to_parent.len());
    while let Some(v) = queue.pop_front() {
        if to_parent.len() >= budget {
            break;
        }
        for (nb, _, _) in idx.incident_at_least(v, kt) {
            if to_parent.len() >= budget {
                break;
            }
            if let std::collections::hash_map::Entry::Vacant(e) = from_parent.entry(nb.0) {
                e.insert(to_parent.len() as u32);
                to_parent.push(nb.0);
                queue.push_back(nb);
            }
        }
    }
    // Close Gt under τ ≥ kt edges among the selected vertices.
    let mut b = GraphBuilder::new();
    b.ensure_vertices(to_parent.len());
    for (lu, &pu) in to_parent.iter().enumerate() {
        for (nb, _, _) in idx.incident_at_least(VertexId(pu), kt) {
            if nb.0 <= pu {
                continue;
            }
            if let Some(&lv) = from_parent.get(&nb.0) {
                b.add_edge(lu as u32, lv);
            }
        }
    }
    // The tree's own edges are τ ≥ kt by definition of kt, so they are
    // already included; Q is therefore connected inside Gt.
    Subgraph {
        graph: b.build(),
        to_parent,
        from_parent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SteinerMode;
    use crate::steiner::steiner_tree;
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};

    fn setup() -> (CsrGraph, TrussIndex, Figure1Ids) {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        (g, idx, Figure1Ids::default())
    }

    #[test]
    fn expansion_contains_tree_and_respects_kt() {
        let (g, idx, f) = setup();
        let q = [f.q1, f.q2, f.q3];
        let tree = steiner_tree(&g, &idx, &q, 3.0, SteinerMode::PathMinExact).unwrap();
        let gt = expand_tree(&g, &idx, &tree, 1000);
        for &v in &tree.vertices {
            assert!(gt.local(v).is_some(), "tree vertex {v} missing from Gt");
        }
        // kt = 4 here: Gt must exclude t (its edges have trussness 2).
        assert!(gt.local(f.t).is_none());
        // Every Gt edge has parent trussness ≥ kt.
        for (_, lu, lv) in gt.graph.edges() {
            let (pu, pv) = (gt.parent(lu), gt.parent(lv));
            assert!(idx.truss_of_pair(pu, pv).unwrap() >= tree.min_truss);
        }
    }

    #[test]
    fn eta_bounds_vertex_count() {
        let (g, idx, f) = setup();
        let tree = steiner_tree(&g, &idx, &[f.q1], 3.0, SteinerMode::PathMinExact).unwrap();
        let gt = expand_tree(&g, &idx, &tree, 3);
        assert!(gt.num_vertices() <= 3);
        assert!(gt.local(f.q1).is_some());
    }

    #[test]
    fn large_eta_captures_whole_truss_level() {
        let (g, idx, f) = setup();
        let q = [f.q1, f.q2, f.q3];
        let tree = steiner_tree(&g, &idx, &q, 3.0, SteinerMode::PathMinExact).unwrap();
        let gt = expand_tree(&g, &idx, &tree, 10_000);
        // All 11 grey vertices are reachable via trussness-4 edges.
        assert_eq!(gt.num_vertices(), 11);
        assert_eq!(gt.num_edges(), 23);
    }

    #[test]
    fn tree_edges_survive_expansion() {
        let (g, idx, f) = setup();
        let q = [f.q2, f.v3];
        let tree = steiner_tree(&g, &idx, &q, 3.0, SteinerMode::PathMinExact).unwrap();
        let gt = expand_tree(&g, &idx, &tree, 1000);
        for &e in &tree.edges {
            let (u, v) = g.edge_endpoints(e);
            let (lu, lv) = (gt.local(u).unwrap(), gt.local(v).unwrap());
            assert!(gt.graph.has_edge(lu, lv), "tree edge ({u},{v}) missing");
        }
    }
}
