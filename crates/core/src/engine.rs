//! The warm-start query engine: load a snapshot once, answer many queries.
//!
//! [`CommunityEngine`] is the serving-side counterpart of the offline
//! pipeline. It holds a graph and its truss index behind [`Arc`]s, so the
//! expensive state is built (or loaded from a `.ctci` [`Snapshot`]) exactly
//! once per process and then shared freely: cloning the engine is two
//! reference bumps, every [`CommunityEngine::searcher`] borrows rather than
//! rebuilds, and [`CommunityEngine::search_batch`] fans a query batch out
//! across the [`Parallelism`] substrate with no per-query setup cost.
//!
//! ```
//! use ctc_core::{CommunityEngine, EngineQuery, SearchAlgo};
//! use ctc_truss::fixtures::{figure1_graph, Figure1Ids};
//!
//! let engine = CommunityEngine::build(figure1_graph());
//! let f = Figure1Ids::default();
//! let queries = vec![
//!     EngineQuery::new(vec![f.q1, f.q2, f.q3]).algo(SearchAlgo::Basic),
//!     EngineQuery::new(vec![f.q3]),
//! ];
//! let answers = engine.search_batch(&queries);
//! assert_eq!(answers.len(), 2);
//! assert_eq!(answers[0].as_ref().unwrap().k, 4);
//! ```

use crate::config::CtcConfig;
use crate::peel::PeelScratch;
use crate::result::Community;
use crate::searcher::CtcSearcher;
use ctc_graph::error::Result;
use ctc_graph::{CsrGraph, Parallelism, VertexId};
use ctc_truss::snapshot::snapshot_to_bytes;
use ctc_truss::{DeltaLogFile, DynamicIndex, RecoveryReport, Snapshot, TrussIndex, UpdateReport};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Which of the paper's algorithms answers a query.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SearchAlgo {
    /// Algorithm 1 (**Basic**): 2-approximation, single-vertex peeling.
    Basic,
    /// Algorithm 4 (**BulkDelete**): (2+ε)-approximation, batch peeling.
    BulkDelete,
    /// Algorithm 5 (**LCTC**): the local heuristic — the fast default.
    #[default]
    Local,
    /// The **Truss** baseline: bare `FindG0`, no diameter minimization.
    TrussOnly,
}

impl std::str::FromStr for SearchAlgo {
    type Err = String;

    /// Parses the CLI spellings: `basic`, `bd`, `lctc`, `truss`.
    fn from_str(s: &str) -> std::result::Result<Self, String> {
        match s {
            "basic" => Ok(SearchAlgo::Basic),
            "bd" => Ok(SearchAlgo::BulkDelete),
            "lctc" => Ok(SearchAlgo::Local),
            "truss" => Ok(SearchAlgo::TrussOnly),
            other => Err(format!("unknown algorithm {other:?}")),
        }
    }
}

/// One query of a batch: the query vertices plus the algorithm to run.
#[derive(Clone, Debug)]
pub struct EngineQuery {
    /// Query vertices (dense ids).
    pub vertices: Vec<VertexId>,
    /// Algorithm answering this query.
    pub algo: SearchAlgo,
}

impl EngineQuery {
    /// A query answered by the default algorithm (LCTC).
    pub fn new(vertices: Vec<VertexId>) -> Self {
        EngineQuery {
            vertices,
            algo: SearchAlgo::default(),
        }
    }

    /// Overrides the algorithm.
    pub fn algo(mut self, algo: SearchAlgo) -> Self {
        self.algo = algo;
        self
    }
}

/// A size/shape summary of a running engine — what a serving process
/// reports from its stats endpoint without walking the graph per request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineStats {
    /// Vertices of the served graph.
    pub num_vertices: usize,
    /// Undirected edges of the served graph.
    pub num_edges: usize,
    /// Maximum trussness `τ̄(∅)` of the index.
    pub max_truss: u32,
    /// `true` when a non-identity label table rides along.
    pub labeled: bool,
}

/// A shared pool of [`PeelScratch`] workspaces, so the warm query path
/// (`search` / `search_batch` / every server worker holding an engine
/// clone) reuses peel buffers instead of allocating per request. Capped:
/// the pool never holds more scratches than the process has concurrent
/// search calls, and stragglers beyond the cap are simply dropped.
#[derive(Default)]
struct ScratchPool {
    pool: Mutex<Vec<PeelScratch>>,
}

impl ScratchPool {
    /// At most this many idle scratches are retained.
    const MAX_IDLE: usize = 64;

    fn checkout(&self) -> PeelScratch {
        self.pool
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    fn restore(&self, scratch: PeelScratch) {
        let mut pool = self.pool.lock().expect("scratch pool poisoned");
        if pool.len() < Self::MAX_IDLE {
            pool.push(scratch);
        }
    }
}

/// One edge mutation of a [`CommunityEngine::apply_batch`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EngineUpdate {
    /// `true` for an insertion, `false` for a deletion.
    pub insert: bool,
    /// One endpoint (dense id).
    pub u: VertexId,
    /// The other endpoint (dense id).
    pub v: VertexId,
}

impl EngineUpdate {
    /// An edge insertion.
    pub fn insert(u: VertexId, v: VertexId) -> Self {
        EngineUpdate { insert: true, u, v }
    }

    /// An edge deletion.
    pub fn delete(u: VertexId, v: VertexId) -> Self {
        EngineUpdate {
            insert: false,
            u,
            v,
        }
    }
}

/// What one [`CommunityEngine::apply_batch`] call did.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Updates applied.
    pub applied: usize,
    /// Updates rejected (duplicate insert, missing delete, bad endpoint).
    pub rejected: usize,
    /// Largest trussness class any applied update touched (0 when none
    /// applied) — the cache-invalidation key: cached answers at level
    /// `k > max_class` are provably unaffected (see
    /// [`UpdateReport::max_class`]).
    pub max_class: u32,
    /// Per-update outcome, in input order.
    pub results: Vec<Result<UpdateReport>>,
}

/// A loaded-once, query-many CTC engine.
///
/// Cheap to clone (all heavy state is behind [`Arc`]) and safe to share
/// across threads — batch workers borrow the same graph, index and
/// scratch pool.
#[derive(Clone)]
pub struct CommunityEngine {
    graph: Arc<CsrGraph>,
    index: Arc<TrussIndex>,
    labels: Arc<Vec<u64>>,
    cfg: CtcConfig,
    batch_par: Parallelism,
    scratch: Arc<ScratchPool>,
    /// Warm dynamic-maintenance state, created lazily on first mutation.
    /// `None` on read-only engines (and on [`CommunityEngine::frozen_clone`]s,
    /// so reader clones never force the writer's copy-on-write).
    dynamic: Option<Arc<DynamicIndex>>,
}

impl CommunityEngine {
    /// Builds graph + index cold, serially (the offline cost a snapshot
    /// avoids).
    pub fn build(graph: CsrGraph) -> Self {
        Self::build_par(graph, Parallelism::serial())
    }

    /// Builds cold with the decomposition spread over `par` threads.
    pub fn build_par(graph: CsrGraph, par: Parallelism) -> Self {
        Self::from_snapshot(Snapshot::build_par(graph, par))
    }

    /// Adopts a built or loaded [`Snapshot`] — the warm path: no
    /// decomposition runs.
    pub fn from_snapshot(snap: Snapshot) -> Self {
        CommunityEngine {
            graph: Arc::new(snap.graph),
            index: Arc::new(snap.index),
            labels: Arc::new(snap.labels),
            cfg: CtcConfig::default(),
            batch_par: Parallelism::serial(),
            scratch: Arc::new(ScratchPool::default()),
            dynamic: None,
        }
    }

    /// Loads a `.ctci` snapshot file and warm-starts from it.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        Ok(Self::from_snapshot(Snapshot::load(path)?))
    }

    /// Crash-recovers a serving state: loads the snapshot, repairs or
    /// quarantines the delta log per the [`ctc_truss::recover()`] taxonomy
    /// (torn tail → truncate; stale/corrupt → archive aside), replays the
    /// surviving records, and returns the warm engine plus a log handle
    /// valid for further appends and a [`RecoveryReport`] of what was
    /// done. The startup path for any process that serves with a WAL.
    pub fn recover<P: AsRef<Path>>(
        snapshot_path: P,
        log_path: Option<&Path>,
    ) -> Result<(Self, Option<DeltaLogFile>, RecoveryReport)> {
        let (snap, logfile, report) = ctc_truss::recover(snapshot_path.as_ref(), log_path)?;
        Ok((Self::from_snapshot(snap), logfile, report))
    }

    /// Persists the engine's graph + index + labels as a `.ctci` snapshot
    /// with crash-safety discipline (temp file → fsync → rename →
    /// parent-directory fsync).
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        let bytes = snapshot_to_bytes(&self.graph, &self.index, &self.labels);
        ctc_graph::storage::write_durable(&ctc_graph::storage::RealEnv, path.as_ref(), &bytes)
    }

    /// Replaces the per-query configuration (γ, η, fixed k, ...).
    pub fn with_config(mut self, cfg: CtcConfig) -> Self {
        self.cfg = cfg;
        self
    }

    /// Sets how many worker threads a [`CommunityEngine::search_batch`]
    /// call spreads its queries over (default: serial).
    pub fn with_batch_parallelism(mut self, par: Parallelism) -> Self {
        self.batch_par = par;
        self
    }

    /// The served graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// The shared truss index.
    pub fn index(&self) -> &TrussIndex {
        &self.index
    }

    /// Dense id → original label table (empty ⇒ identity).
    pub fn labels(&self) -> &[u64] {
        &self.labels
    }

    /// The per-query configuration.
    pub fn config(&self) -> &CtcConfig {
        &self.cfg
    }

    /// The original label of dense vertex `v`.
    pub fn label_of(&self, v: VertexId) -> u64 {
        ctc_truss::snapshot::label_of(&self.labels, v)
    }

    /// The dense id carrying original label `label`, if any.
    pub fn vertex_of_label(&self, label: u64) -> Option<VertexId> {
        ctc_truss::snapshot::vertex_of_label(&self.labels, self.graph.num_vertices(), label)
    }

    /// Resolves a whole query of original labels to dense ids, in input
    /// order; fails with the first label the graph does not carry. The
    /// wire-facing entry point for label-addressed queries.
    ///
    /// ```
    /// use ctc_core::CommunityEngine;
    /// use ctc_truss::fixtures::figure1_graph;
    ///
    /// let engine = CommunityEngine::build(figure1_graph());
    /// assert_eq!(engine.resolve_labels(&[2, 0]).unwrap().len(), 2);
    /// assert_eq!(engine.resolve_labels(&[2, 999]), Err(999));
    /// ```
    pub fn resolve_labels(&self, labels: &[u64]) -> std::result::Result<Vec<VertexId>, u64> {
        labels
            .iter()
            .map(|&l| self.vertex_of_label(l).ok_or(l))
            .collect()
    }

    /// A constant-time summary of the served graph + index.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            num_vertices: self.graph.num_vertices(),
            num_edges: self.graph.num_edges(),
            max_truss: self.index.max_truss(),
            labeled: !self.labels.is_empty(),
        }
    }

    /// Approximate resident bytes of the engine's immutable state: CSR
    /// graph, truss index, and label table. This is the cost weight a
    /// serving registry uses to decide which cold snapshot to evict under
    /// a memory budget; scratch pools and dynamic-maintenance overlays are
    /// transient and deliberately excluded.
    pub fn memory_bytes(&self) -> usize {
        self.graph.memory_bytes()
            + self.index.memory_bytes()
            + self.labels.len() * std::mem::size_of::<u64>()
    }

    /// A zero-cost searcher borrowing the engine's graph and index.
    pub fn searcher(&self) -> CtcSearcher<'_> {
        CtcSearcher::with_borrowed_index(&self.graph, &self.index)
    }

    /// Answers one query with `algo` under the engine's configuration.
    ///
    /// Peel working memory comes from the engine's shared scratch pool, so
    /// a warm engine answers without allocating in the peeling loop.
    pub fn search(&self, q: &[VertexId], algo: SearchAlgo) -> Result<Community> {
        let searcher = self.searcher();
        let mut scratch = self.scratch.checkout();
        let out = match algo {
            SearchAlgo::Basic => searcher.basic_with_scratch(q, &self.cfg, &mut scratch),
            SearchAlgo::BulkDelete => searcher.bulk_delete_with_scratch(q, &self.cfg, &mut scratch),
            SearchAlgo::Local => searcher.local_with_scratch(q, &self.cfg, &mut scratch),
            // No peeling, but the pooled locate-phase scratch still pays.
            SearchAlgo::TrussOnly => searcher.truss_only_with_scratch(q, &self.cfg, &mut scratch),
        };
        self.scratch.restore(scratch);
        out
    }

    /// Answers a batch of queries, spread over the engine's batch
    /// [`Parallelism`]; results come back in input order, each query
    /// failing or succeeding independently.
    ///
    /// Queries share the read-only graph and index, so the fan-out is
    /// contention-free; per-query inner parallelism (LCTC's local
    /// decomposition) stays whatever the engine config says, which for
    /// batch serving should normally remain serial.
    pub fn search_batch(&self, queries: &[EngineQuery]) -> Vec<Result<Community>> {
        self.batch_par
            .map_chunks(queries.len(), |range| {
                range
                    .map(|i| self.search(&queries[i].vertices, queries[i].algo))
                    .collect::<Vec<_>>()
            })
            .into_iter()
            .flatten()
            .collect()
    }

    /// Inserts edge `{u, v}` (dense ids) with local truss maintenance and
    /// republishes the engine's graph + index. See
    /// [`CommunityEngine::apply_batch`] for the mechanics.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateReport> {
        let mut batch = self.apply_batch(&[EngineUpdate::insert(u, v)])?;
        batch.results.pop().expect("one update, one result")
    }

    /// Deletes edge `{u, v}` (dense ids) with local truss maintenance and
    /// republishes the engine's graph + index.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateReport> {
        let mut batch = self.apply_batch(&[EngineUpdate::delete(u, v)])?;
        batch.results.pop().expect("one update, one result")
    }

    /// Applies a batch of edge updates through the warm
    /// [`DynamicIndex`], then republishes the mutated graph + index as
    /// fresh [`Arc`]s — concurrent readers holding clones keep their old
    /// (consistent) view; searches on `self` see the new one.
    ///
    /// Each update succeeds or is rejected independently (duplicate
    /// inserts, missing deletes and bad endpoints reject with typed
    /// errors and leave no trace); one materialization at the end covers
    /// the whole batch. The vertex set and label table are fixed.
    ///
    /// The first mutation on an engine adopts the current index into the
    /// dynamic state in `O(n + m)`; later batches reuse it, so steady-state
    /// per-update cost is the local repair cascade plus the `O(n + m)`
    /// republication — still far below the `O(ρm)` rebuild (see
    /// `BENCH_7.json`).
    ///
    /// The outer `Err` only reports internal materialization failures
    /// (never caused by rejected updates); per-update outcomes live in
    /// [`BatchReport::results`].
    pub fn apply_batch(&mut self, updates: &[EngineUpdate]) -> Result<BatchReport> {
        let mut report = BatchReport {
            results: Vec::with_capacity(updates.len()),
            ..BatchReport::default()
        };
        if self.dynamic.is_none() {
            self.dynamic = Some(Arc::new(DynamicIndex::new(&self.graph, &self.index)));
        }
        let dynx = Arc::make_mut(self.dynamic.as_mut().expect("just installed"));
        for up in updates {
            let r = if up.insert {
                dynx.insert_edge(up.u, up.v)
            } else {
                dynx.delete_edge(up.u, up.v)
            };
            match &r {
                Ok(rep) => {
                    report.applied += 1;
                    report.max_class = report.max_class.max(rep.max_class);
                }
                Err(_) => report.rejected += 1,
            }
            report.results.push(r);
        }
        if report.applied > 0 {
            let (g, idx) = self
                .dynamic
                .as_ref()
                .expect("installed above")
                .materialize()?;
            self.graph = Arc::new(g);
            self.index = Arc::new(idx);
        }
        Ok(report)
    }

    /// A clone for publishing to concurrent readers: shares all heavy
    /// state but drops the warm dynamic-maintenance handle, so readers
    /// holding it never force the writing engine's copy-on-write.
    pub fn frozen_clone(&self) -> Self {
        let mut c = self.clone();
        c.dynamic = None;
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::error::GraphError;
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};

    fn engine() -> CommunityEngine {
        CommunityEngine::build(figure1_graph())
    }

    #[test]
    fn engine_answers_match_cold_searcher() {
        let g = figure1_graph();
        let cold = CtcSearcher::new(&g);
        let eng = engine();
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let cfg = CtcConfig::default();
        for (algo, cold_answer) in [
            (SearchAlgo::Basic, cold.basic(&q, &cfg).unwrap()),
            (SearchAlgo::BulkDelete, cold.bulk_delete(&q, &cfg).unwrap()),
            (SearchAlgo::Local, cold.local(&q, &cfg).unwrap()),
            (SearchAlgo::TrussOnly, cold.truss_only(&q, &cfg).unwrap()),
        ] {
            let warm = eng.search(&q, algo).unwrap();
            assert_eq!(warm.k, cold_answer.k, "{algo:?}");
            assert_eq!(warm.vertices, cold_answer.vertices, "{algo:?}");
            assert_eq!(warm.edges, cold_answer.edges, "{algo:?}");
        }
    }

    #[test]
    fn batch_preserves_order_and_isolates_failures() {
        let eng = engine();
        let f = Figure1Ids::default();
        let queries = vec![
            EngineQuery::new(vec![f.q1, f.q2]).algo(SearchAlgo::Basic),
            EngineQuery::new(vec![]), // empty query must fail alone
            EngineQuery::new(vec![f.t]).algo(SearchAlgo::TrussOnly),
        ];
        let answers = eng.search_batch(&queries);
        assert_eq!(answers.len(), 3);
        assert_eq!(answers[0].as_ref().unwrap().k, 4);
        assert_eq!(*answers[1].as_ref().unwrap_err(), GraphError::EmptyQuery);
        assert!(answers[2].is_ok());
    }

    #[test]
    fn batch_isolates_out_of_range_vertices_from_valid_neighbors() {
        let eng = engine();
        let f = Figure1Ids::default();
        let good = [f.q1, f.q2, f.q3];
        // Invalid queries (out-of-range vertex, empty set) interleaved
        // between identical valid ones, on every algorithm: each failure
        // must surface as its own error and the valid answers must be
        // exactly what an unpolluted batch returns.
        for algo in [
            SearchAlgo::Basic,
            SearchAlgo::BulkDelete,
            SearchAlgo::Local,
            SearchAlgo::TrussOnly,
        ] {
            let queries = vec![
                EngineQuery::new(good.to_vec()).algo(algo),
                EngineQuery::new(vec![VertexId(9999)]).algo(algo),
                EngineQuery::new(good.to_vec()).algo(algo),
                EngineQuery::new(vec![]).algo(algo),
                EngineQuery::new(vec![f.q1, VertexId(u32::MAX)]).algo(algo),
                EngineQuery::new(good.to_vec()).algo(algo),
            ];
            let answers = eng.search_batch(&queries);
            assert_eq!(answers.len(), 6, "{algo:?}");
            let clean = eng.search(&good, algo).unwrap();
            for i in [0usize, 2, 5] {
                let a = answers[i].as_ref().unwrap_or_else(|e| {
                    panic!("{algo:?}: valid query {i} poisoned by neighbors: {e}")
                });
                assert_eq!(a.k, clean.k, "{algo:?} query {i}");
                assert_eq!(a.vertices, clean.vertices, "{algo:?} query {i}");
                assert_eq!(a.edges, clean.edges, "{algo:?} query {i}");
            }
            assert_eq!(
                *answers[1].as_ref().unwrap_err(),
                GraphError::VertexOutOfRange {
                    vertex: 9999,
                    n: 12
                },
                "{algo:?}"
            );
            assert_eq!(*answers[3].as_ref().unwrap_err(), GraphError::EmptyQuery);
            assert_eq!(
                *answers[4].as_ref().unwrap_err(),
                GraphError::VertexOutOfRange {
                    vertex: u32::MAX,
                    n: 12
                },
                "{algo:?}: mixed valid+invalid vertex query must still fail"
            );
        }
    }

    #[test]
    fn parallel_batch_isolates_failures_like_serial() {
        let eng = engine().with_batch_parallelism(Parallelism::threads(4));
        let f = Figure1Ids::default();
        let queries: Vec<EngineQuery> = (0..16)
            .map(|i| {
                if i % 3 == 1 {
                    EngineQuery::new(vec![VertexId(100 + i)])
                } else {
                    EngineQuery::new(vec![f.q1, f.q2])
                }
            })
            .collect();
        let answers = eng.search_batch(&queries);
        for (i, a) in answers.iter().enumerate() {
            if i % 3 == 1 {
                assert!(
                    matches!(a, Err(GraphError::VertexOutOfRange { .. })),
                    "query {i}: {a:?}"
                );
            } else {
                assert!(a.is_ok(), "query {i} poisoned: {a:?}");
            }
        }
    }

    #[test]
    fn resolve_labels_and_stats() {
        let eng = engine();
        assert_eq!(
            eng.resolve_labels(&[3, 0]),
            Ok(vec![VertexId(3), VertexId(0)])
        );
        assert_eq!(eng.resolve_labels(&[0, 777, 888]), Err(777));
        let s = eng.stats();
        assert_eq!(s.num_vertices, 12);
        assert_eq!(s.num_edges, 25);
        assert_eq!(s.max_truss, 4);
        assert!(!s.labeled);
        let snap = Snapshot::build(figure1_graph())
            .with_labels((0..12).map(|i| 1000 + i as u64).collect())
            .unwrap();
        let eng = CommunityEngine::from_snapshot(snap);
        assert!(eng.stats().labeled);
        assert_eq!(eng.resolve_labels(&[1005]), Ok(vec![VertexId(5)]));
        assert_eq!(eng.resolve_labels(&[5]), Err(5));
    }

    #[test]
    fn memory_bytes_counts_graph_index_and_labels() {
        let bare = engine();
        assert!(bare.memory_bytes() > 0);
        let snap = Snapshot::build(figure1_graph())
            .with_labels((0..12).map(|i| 1000 + i as u64).collect())
            .unwrap();
        let labeled = CommunityEngine::from_snapshot(snap);
        assert_eq!(
            labeled.memory_bytes(),
            bare.memory_bytes() + 12 * std::mem::size_of::<u64>()
        );
    }

    #[test]
    fn parallel_batch_matches_serial_batch() {
        let eng = engine();
        let f = Figure1Ids::default();
        let queries: Vec<EngineQuery> = [
            vec![f.q1],
            vec![f.q2, f.q3],
            vec![f.q1, f.q2, f.q3],
            vec![f.t],
            vec![f.p1, f.q1],
        ]
        .into_iter()
        .flat_map(|q| {
            [
                EngineQuery::new(q.clone()).algo(SearchAlgo::Basic),
                EngineQuery::new(q).algo(SearchAlgo::Local),
            ]
        })
        .collect();
        let serial = eng.search_batch(&queries);
        let par = eng
            .clone()
            .with_batch_parallelism(Parallelism::threads(4))
            .search_batch(&queries);
        assert_eq!(serial.len(), par.len());
        for (a, b) in serial.iter().zip(&par) {
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    assert_eq!(x.k, y.k);
                    assert_eq!(x.vertices, y.vertices);
                    assert_eq!(x.edges, y.edges);
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                other => panic!("serial/parallel disagree: {other:?}"),
            }
        }
    }

    #[test]
    fn snapshot_save_load_roundtrips_through_engine() {
        let dir = std::env::temp_dir().join("ctc_engine_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.ctci");
        let eng = engine();
        eng.save(&path).unwrap();
        let loaded = CommunityEngine::load(&path).unwrap();
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let a = eng.search(&q, SearchAlgo::Basic).unwrap();
        let b = loaded.search(&q, SearchAlgo::Basic).unwrap();
        assert_eq!(a.vertices, b.vertices);
        assert_eq!(
            loaded.index().edge_truss_slice(),
            eng.index().edge_truss_slice()
        );
    }

    #[test]
    fn engine_clone_is_shared_not_copied() {
        let eng = engine();
        let clone = eng.clone();
        assert!(Arc::ptr_eq(&eng.graph, &clone.graph));
        assert!(Arc::ptr_eq(&eng.index, &clone.index));
    }

    #[test]
    fn label_mapping_identity_and_table() {
        let eng = engine();
        assert_eq!(eng.label_of(VertexId(3)), 3);
        assert_eq!(eng.vertex_of_label(3), Some(VertexId(3)));
        assert_eq!(eng.vertex_of_label(999), None);
        let snap = Snapshot::build(figure1_graph())
            .with_labels((0..12).map(|i| 100 - i as u64).collect())
            .unwrap();
        let eng = CommunityEngine::from_snapshot(snap);
        assert_eq!(eng.label_of(VertexId(0)), 100);
        assert_eq!(eng.vertex_of_label(100), Some(VertexId(0)));
    }

    #[test]
    fn mutation_republishes_and_readers_keep_their_view() {
        let mut eng = engine();
        let reader = eng.frozen_clone();
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let before = reader.search(&q, SearchAlgo::Basic).unwrap();
        let rep = eng.delete_edge(f.q1, f.q2).unwrap();
        assert!(rep.max_class >= rep.edge_truss);
        // The mutated engine serves the new graph…
        assert_eq!(eng.graph().num_edges(), 24);
        let after = eng.search(&q, SearchAlgo::Basic).unwrap();
        // …and matches a cold engine built from the mutated edge list.
        let cold = CommunityEngine::build(eng.graph().clone());
        let cold_after = cold.search(&q, SearchAlgo::Basic).unwrap();
        assert_eq!(after.vertices, cold_after.vertices);
        assert_eq!(after.k, cold_after.k);
        // The reader clone still sees the pre-update world, consistently.
        assert_eq!(reader.graph().num_edges(), 25);
        let still = reader.search(&q, SearchAlgo::Basic).unwrap();
        assert_eq!(still.vertices, before.vertices);
        // Undo restores the original index byte for byte.
        eng.insert_edge(f.q1, f.q2).unwrap();
        assert_eq!(
            eng.index().edge_truss_slice(),
            reader.index().edge_truss_slice()
        );
    }

    #[test]
    fn batch_isolates_rejections_and_counts() {
        let mut eng = engine();
        let f = Figure1Ids::default();
        let updates = vec![
            EngineUpdate::delete(f.q1, f.q2),                 // ok
            EngineUpdate::delete(f.q1, f.q2),                 // now missing
            EngineUpdate::insert(f.q1, f.q2),                 // ok (restores)
            EngineUpdate::insert(f.q1, f.q2),                 // duplicate
            EngineUpdate::insert(VertexId(0), VertexId(999)), // out of range
            EngineUpdate::insert(f.t, f.t),                   // self-loop
        ];
        let rep = eng.apply_batch(&updates).unwrap();
        assert_eq!(rep.applied, 2);
        assert_eq!(rep.rejected, 4);
        assert_eq!(rep.results.len(), 6);
        assert!(rep.results[0].is_ok());
        assert!(matches!(
            rep.results[1],
            Err(GraphError::MissingEdge { .. })
        ));
        assert!(rep.results[2].is_ok());
        assert!(matches!(
            rep.results[3],
            Err(GraphError::DuplicateEdge { .. })
        ));
        assert!(matches!(
            rep.results[4],
            Err(GraphError::VertexOutOfRange { vertex: 999, .. })
        ));
        assert!(matches!(rep.results[5], Err(GraphError::SelfLoop { v }) if v == f.t.0));
        // Net effect: nothing changed.
        let cold = CommunityEngine::build(figure1_graph());
        assert_eq!(
            eng.index().edge_truss_slice(),
            cold.index().edge_truss_slice()
        );
    }

    #[test]
    fn all_rejected_batch_publishes_nothing() {
        let mut eng = engine();
        let g0 = Arc::clone(&eng.graph);
        let rep = eng
            .apply_batch(&[EngineUpdate::insert(VertexId(0), VertexId(0))])
            .unwrap();
        assert_eq!(rep.applied, 0);
        assert_eq!(rep.max_class, 0);
        // No republication happened: same Arc.
        assert!(Arc::ptr_eq(&g0, &eng.graph));
    }

    #[test]
    fn algo_parses_cli_spellings() {
        assert_eq!("basic".parse(), Ok(SearchAlgo::Basic));
        assert_eq!("bd".parse(), Ok(SearchAlgo::BulkDelete));
        assert_eq!("lctc".parse(), Ok(SearchAlgo::Local));
        assert_eq!("truss".parse(), Ok(SearchAlgo::TrussOnly));
        assert!("nope".parse::<SearchAlgo>().is_err());
    }
}
