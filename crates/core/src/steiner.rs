//! Truss-distance Steiner trees (Def. 7, §5.2).
//!
//! LCTC seeds its local exploration with a Steiner tree over the query
//! nodes. A hop-count tree can run through low-trussness bridges (the `T1`
//! vs `T2` example in §5.2), so path weight is the paper's *truss distance*
//! `d̂_P(u,v) = dist_P(u,v) + γ·(τ̄(∅) − min_{e∈P} τ(e))`: length plus a
//! penalty for the weakest edge on the path.
//!
//! The tree is built with the classic Kou–Markowsky–Berman 2-approximation
//! skeleton (metric closure over `Q` → MST → path substitution → prune),
//! with two interchangeable distance oracles:
//!
//! * [`SteinerMode::PathMinExact`] — exact Def. 7 semantics. Because the
//!   penalty depends only on the *minimum* trussness along the path, the
//!   exact distance is `min_t (hops in the τ≥t subgraph + γ(τ̄ − t))` over
//!   the distinct trussness levels `t`; one BFS per (query, level).
//! * [`SteinerMode::EdgeAdditive`] — Dijkstra with additive weights
//!   `1 + γ(τ̄ − τ(e))`, an upper bound kept for the ablation bench.

use crate::config::SteinerMode;
use ctc_graph::{BfsScratch, CsrGraph, EdgeId, FilteredGraph, UnionFind, VertexId, INF};
use ctc_truss::TrussIndex;

/// A Steiner tree over the query set, in parent-graph ids.
#[derive(Clone, Debug)]
pub struct SteinerTree {
    /// Tree edges (parent edge ids). Empty for singleton queries.
    pub edges: Vec<EdgeId>,
    /// Tree vertices (includes all query vertices).
    pub vertices: Vec<VertexId>,
    /// `kt = min_{e∈T} τ(e)` — the expansion threshold for LCTC. For a
    /// singleton query this is the vertex trussness.
    pub min_truss: u32,
}

/// Builds a truss-distance Steiner tree connecting `q`.
///
/// Returns `None` when the query vertices are not mutually reachable.
pub fn steiner_tree(
    g: &CsrGraph,
    idx: &TrussIndex,
    q: &[VertexId],
    gamma: f64,
    mode: SteinerMode,
) -> Option<SteinerTree> {
    match q {
        [] => None,
        [only] => Some(SteinerTree {
            edges: Vec::new(),
            vertices: vec![*only],
            min_truss: idx.vertex_truss(*only).max(2),
        }),
        _ => match mode {
            SteinerMode::PathMinExact => steiner_path_min(g, idx, q, gamma),
            SteinerMode::EdgeAdditive => steiner_additive(g, idx, q, gamma),
        },
    }
}

/// Distinct trussness levels of the graph, descending.
fn distinct_levels(idx: &TrussIndex) -> Vec<u32> {
    let mut levels: Vec<u32> = idx.edge_truss_slice().to_vec();
    levels.sort_unstable_by(|a, b| b.cmp(a));
    levels.dedup();
    levels
}

fn steiner_path_min(
    g: &CsrGraph,
    idx: &TrussIndex,
    q: &[VertexId],
    gamma: f64,
) -> Option<SteinerTree> {
    let r = q.len();
    let tau_bar = idx.max_truss();
    // Levels above the best query vertex trussness are unreachable from at
    // least one endpoint of every pair involving that vertex; globally cap
    // at the max vertex trussness among the query set.
    let cap = q.iter().map(|&v| idx.vertex_truss(v)).max().unwrap_or(2);
    let levels: Vec<u32> = distinct_levels(idx)
        .into_iter()
        .filter(|&t| t <= cap)
        .collect();
    let mut scratch = BfsScratch::new(g.num_vertices());
    // Metric closure: best (cost, level) per query pair.
    let mut closure = vec![vec![(f64::INFINITY, 0u32); r]; r];
    for &t in &levels {
        let penalty = gamma * (tau_bar - t) as f64;
        // A path found at this or any lower level costs ≥ penalty + 1;
        // once every pair already beats that, no further level can help.
        let worst = closure
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().filter(move |(j, _)| *j != i))
            .map(|(_, &(c, _))| c)
            .fold(0.0f64, f64::max);
        if worst <= penalty + 1.0 {
            break;
        }
        let view = FilteredGraph::new(g, |e| idx.edge_truss(e) >= t);
        for (i, &qi) in q.iter().enumerate() {
            // Depth beyond which no pair of this source can improve.
            let room = closure[i]
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, &(c, _))| c)
                .fold(0.0f64, f64::max)
                - penalty;
            if room < 1.0 {
                continue;
            }
            let depth = if room.is_infinite() {
                u32::MAX
            } else {
                room.floor() as u32
            };
            scratch.run_bounded(&view, qi, depth);
            for (j, &qj) in q.iter().enumerate() {
                if j == i {
                    continue;
                }
                let d = scratch.dist(qj);
                if d != INF {
                    let cost = d as f64 + penalty;
                    if cost < closure[i][j].0 {
                        closure[i][j] = (cost, t);
                        closure[j][i] = (cost, t);
                    }
                }
            }
        }
    }
    build_tree_from_closure(g, idx, q, closure, |g, idx, src, dst, level| {
        bfs_path(g, idx, src, dst, level)
    })
}

/// BFS path from `src` to `dst` in the `τ ≥ level` subgraph.
fn bfs_path(
    g: &CsrGraph,
    idx: &TrussIndex,
    src: VertexId,
    dst: VertexId,
    level: u32,
) -> Option<Vec<EdgeId>> {
    let n = g.num_vertices();
    let mut parent_edge: Vec<u32> = vec![u32::MAX; n];
    let mut parent: Vec<u32> = vec![u32::MAX; n];
    let mut visited = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    visited[src.index()] = true;
    queue.push_back(src);
    'bfs: while let Some(v) = queue.pop_front() {
        for (nb, e) in g.incident(v) {
            if idx.edge_truss(e) < level || visited[nb.index()] {
                continue;
            }
            visited[nb.index()] = true;
            parent[nb.index()] = v.0;
            parent_edge[nb.index()] = e.0;
            if nb == dst {
                break 'bfs;
            }
            queue.push_back(nb);
        }
    }
    if !visited[dst.index()] {
        return None;
    }
    let mut path = Vec::new();
    let mut cur = dst;
    while cur != src {
        path.push(EdgeId(parent_edge[cur.index()]));
        cur = VertexId(parent[cur.index()]);
    }
    Some(path)
}

fn steiner_additive(
    g: &CsrGraph,
    idx: &TrussIndex,
    q: &[VertexId],
    gamma: f64,
) -> Option<SteinerTree> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    const SCALE: u64 = 1024;
    let r = q.len();
    let tau_bar = idx.max_truss();
    let n = g.num_vertices();
    let weight = |e: EdgeId| -> u64 {
        SCALE + (gamma * (tau_bar - idx.edge_truss(e)) as f64 * SCALE as f64) as u64
    };
    // Dijkstra from each query vertex, keeping parents for path extraction.
    let mut parents: Vec<Vec<(u32, u32)>> = Vec::with_capacity(r); // (parent, edge)
    let mut dists: Vec<Vec<u64>> = Vec::with_capacity(r);
    for &src in q {
        let mut dist = vec![u64::MAX; n];
        let mut par = vec![(u32::MAX, u32::MAX); n];
        let mut heap: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
        dist[src.index()] = 0;
        heap.push(Reverse((0, src.0)));
        while let Some(Reverse((d, v))) = heap.pop() {
            if d > dist[v as usize] {
                continue;
            }
            for (nb, e) in g.incident(VertexId(v)) {
                let nd = d + weight(e);
                if nd < dist[nb.index()] {
                    dist[nb.index()] = nd;
                    par[nb.index()] = (v, e.0);
                    heap.push(Reverse((nd, nb.0)));
                }
            }
        }
        parents.push(par);
        dists.push(dist);
    }
    let mut closure = vec![vec![(f64::INFINITY, 0u32); r]; r];
    for i in 0..r {
        for j in 0..r {
            if i == j {
                continue;
            }
            let d = dists[i][q[j].index()];
            if d != u64::MAX {
                closure[i][j] = (d as f64 / SCALE as f64, i as u32);
            }
        }
    }
    build_tree_from_closure(g, idx, q, closure, |_, _, src, dst, src_idx| {
        // `level` carries the source's index into the parents table.
        let par = &parents[src_idx as usize];
        let _ = src;
        let mut path = Vec::new();
        let mut cur = dst;
        while par[cur.index()].0 != u32::MAX {
            path.push(EdgeId(par[cur.index()].1));
            cur = VertexId(par[cur.index()].0);
        }
        Some(path)
    })
}

/// Shared KMB tail: MST over the closure, path substitution, leaf pruning.
fn build_tree_from_closure(
    g: &CsrGraph,
    idx: &TrussIndex,
    q: &[VertexId],
    closure: Vec<Vec<(f64, u32)>>,
    extract_path: impl Fn(&CsrGraph, &TrussIndex, VertexId, VertexId, u32) -> Option<Vec<EdgeId>>,
) -> Option<SteinerTree> {
    let r = q.len();
    // Prim over the metric closure.
    let mut in_tree = vec![false; r];
    let mut best = vec![(f64::INFINITY, 0usize); r];
    in_tree[0] = true;
    for j in 1..r {
        best[j] = (closure[0][j].0, 0);
    }
    let mut mst_edges: Vec<(usize, usize)> = Vec::with_capacity(r - 1);
    for _ in 1..r {
        let (j, &(cost, from)) = best
            .iter()
            .enumerate()
            .filter(|(j, _)| !in_tree[*j])
            .min_by(|a, b| a.1 .0.partial_cmp(&b.1 .0).expect("no NaN costs"))?;
        if cost.is_infinite() {
            return None; // some query vertex unreachable
        }
        in_tree[j] = true;
        mst_edges.push((from, j));
        for t in 1..r {
            if !in_tree[t] && closure[j][t].0 < best[t].0 {
                best[t] = (closure[j][t].0, j);
            }
        }
    }
    // Substitute each closure edge by a concrete path.
    let mut edge_set: ctc_graph::FxHashSet<u32> = Default::default();
    for (i, j) in mst_edges {
        let level = closure[i][j].1;
        let path = extract_path(g, idx, q[i], q[j], level)?;
        for e in path {
            edge_set.insert(e.0);
        }
    }
    prune_to_tree(g, idx, q, edge_set)
}

/// Reduces the union of paths to a tree (drop cycle extras via a spanning
/// forest) and prunes non-terminal leaves.
fn prune_to_tree(
    g: &CsrGraph,
    idx: &TrussIndex,
    q: &[VertexId],
    edge_set: ctc_graph::FxHashSet<u32>,
) -> Option<SteinerTree> {
    // Keep a spanning forest of the union, preferring high-trussness edges.
    let mut edges: Vec<EdgeId> = edge_set.iter().map(|&e| EdgeId(e)).collect();
    edges.sort_unstable_by_key(|&e| (std::cmp::Reverse(idx.edge_truss(e)), e.0));
    let mut uf = UnionFind::new(g.num_vertices());
    let mut tree: Vec<EdgeId> = Vec::new();
    for &e in &edges {
        let (u, v) = g.edge_endpoints(e);
        if uf.union(u.0, v.0) {
            tree.push(e);
        }
    }
    // Iteratively prune degree-1 vertices that are not query terminals.
    let mut degree: ctc_graph::FxHashMap<u32, u32> = Default::default();
    for &e in &tree {
        let (u, v) = g.edge_endpoints(e);
        *degree.entry(u.0).or_insert(0) += 1;
        *degree.entry(v.0).or_insert(0) += 1;
    }
    let is_terminal = |v: u32| q.iter().any(|&x| x.0 == v);
    let mut alive: ctc_graph::FxHashSet<u32> = tree.iter().map(|&e| e.0).collect();
    loop {
        let mut pruned = false;
        for &e in &tree {
            if !alive.contains(&e.0) {
                continue;
            }
            let (u, v) = g.edge_endpoints(e);
            for x in [u.0, v.0] {
                if degree[&x] == 1 && !is_terminal(x) && alive.contains(&e.0) {
                    alive.remove(&e.0);
                    *degree.get_mut(&u.0).expect("endpoint tracked") -= 1;
                    *degree.get_mut(&v.0).expect("endpoint tracked") -= 1;
                    pruned = true;
                }
            }
        }
        if !pruned {
            break;
        }
    }
    let final_edges: Vec<EdgeId> = tree.into_iter().filter(|e| alive.contains(&e.0)).collect();
    // Verify all query vertices are still connected through the tree.
    let mut uf2 = UnionFind::new(g.num_vertices());
    for &e in &final_edges {
        let (u, v) = g.edge_endpoints(e);
        uf2.union(u.0, v.0);
    }
    let q_raw: Vec<u32> = q.iter().map(|v| v.0).collect();
    if !uf2.all_connected(&q_raw) {
        return None;
    }
    let vertices = ctc_truss::edge_list_vertices(g, &final_edges);
    let min_truss = final_edges
        .iter()
        .map(|&e| idx.edge_truss(e))
        .min()
        .unwrap_or_else(|| idx.vertex_truss(q[0]).max(2));
    Some(SteinerTree {
        edges: final_edges,
        vertices,
        min_truss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};

    fn setup() -> (CsrGraph, TrussIndex, Figure1Ids) {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        (g, idx, Figure1Ids::default())
    }

    #[test]
    fn paper_example_prefers_high_truss_tree() {
        // §5.2: with γ = 3, the tree through t (trussness-2 edges) costs
        // 3 + 3·(4−2) = 9 while the tree through v4 costs 3. The Steiner
        // tree must avoid t.
        let (g, idx, f) = setup();
        let q = [f.q1, f.q2, f.q3];
        for mode in [SteinerMode::PathMinExact, SteinerMode::EdgeAdditive] {
            let t = steiner_tree(&g, &idx, &q, 3.0, mode).unwrap();
            assert!(
                !t.vertices.contains(&f.t),
                "{mode:?}: tree runs through the weak bridge t"
            );
            assert_eq!(t.min_truss, 4, "{mode:?}: kt should be 4");
            // Tree spans Q with r-1 ≤ |edges| ≤ small.
            assert!(
                t.edges.len() >= 3,
                "{mode:?}: tree too small: {:?}",
                t.edges
            );
        }
    }

    #[test]
    fn gamma_zero_follows_hop_count() {
        // With γ = 0 the truss distance is plain hop count and the q1–t–q3
        // shortcut (2 hops) beats any trussness-4 detour (3 hops).
        let (g, idx, f) = setup();
        let t = steiner_tree(&g, &idx, &[f.q1, f.q3], 0.0, SteinerMode::PathMinExact).unwrap();
        assert!(
            t.vertices.contains(&f.t),
            "γ=0 should take the short bridge"
        );
        assert_eq!(t.min_truss, 2);
    }

    #[test]
    fn singleton_query() {
        let (g, idx, f) = setup();
        let t = steiner_tree(&g, &idx, &[f.q2], 3.0, SteinerMode::PathMinExact).unwrap();
        assert!(t.edges.is_empty());
        assert_eq!(t.vertices, vec![f.q2]);
        assert_eq!(t.min_truss, 4);
    }

    #[test]
    fn empty_query_is_none() {
        let (g, idx, _) = setup();
        assert!(steiner_tree(&g, &idx, &[], 3.0, SteinerMode::PathMinExact).is_none());
    }

    #[test]
    fn disconnected_query_is_none() {
        let g = ctc_graph::graph_from_edges(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let idx = TrussIndex::build(&g);
        let t = steiner_tree(
            &g,
            &idx,
            &[VertexId(0), VertexId(3)],
            3.0,
            SteinerMode::PathMinExact,
        );
        assert!(t.is_none());
    }

    #[test]
    fn tree_is_acyclic_and_spans_q() {
        let (g, idx, f) = setup();
        let q = [f.q1, f.q2, f.q3, f.v3];
        let t = steiner_tree(&g, &idx, &q, 3.0, SteinerMode::PathMinExact).unwrap();
        // |E| = |V| - 1 for a tree.
        assert_eq!(t.edges.len() + 1, t.vertices.len());
        for qi in q {
            assert!(t.vertices.contains(&qi));
        }
        // Leaves are terminals.
        let mut deg: std::collections::HashMap<u32, u32> = Default::default();
        for &e in &t.edges {
            let (u, v) = g.edge_endpoints(e);
            *deg.entry(u.0).or_default() += 1;
            *deg.entry(v.0).or_default() += 1;
        }
        for (&v, &d) in &deg {
            if d == 1 {
                assert!(q.iter().any(|&x| x.0 == v), "non-terminal leaf {v}");
            }
        }
    }

    #[test]
    fn additive_mode_upper_bounds_exact() {
        // Both modes must produce valid trees; additive may be worse but
        // never invalid.
        let (g, idx, f) = setup();
        let q = [f.q1, f.v3];
        let exact = steiner_tree(&g, &idx, &q, 3.0, SteinerMode::PathMinExact).unwrap();
        let add = steiner_tree(&g, &idx, &q, 3.0, SteinerMode::EdgeAdditive).unwrap();
        assert!(exact.min_truss >= add.min_truss.min(exact.min_truss));
        assert!(!exact.edges.is_empty() && !add.edges.is_empty());
    }
}
