//! The decision version of CTC search — Problem 2 (`CTCk-Problem`): does
//! `G` contain a connected k-truss with diameter ≤ `d` containing `Q`?
//!
//! The problem is NP-hard (Theorem 1), so this module provides the best
//! polynomial-time answer available from the paper's machinery: a
//! **one-sided, three-valued decider** built on the 2-approximation.
//!
//! * If the greedy community already achieves diameter ≤ `d` → **Yes**
//!   (constructive witness).
//! * If the optimal query distance `dist_R(R,Q)` — which lower-bounds the
//!   optimal diameter (Lemma 2 + Lemma 5) — exceeds `d` → **No**.
//! * Otherwise → **Unknown** (the gap where only exponential search could
//!   tell; `brute_force` in the integration tests resolves small cases).

use crate::config::CtcConfig;
use crate::result::Community;
use crate::searcher::CtcSearcher;
use ctc_graph::error::Result;
use ctc_graph::VertexId;

/// Outcome of the approximate CTCk decision.
#[derive(Clone, Debug)]
pub enum CtckAnswer {
    /// A connected k-truss with diameter ≤ d exists; here is one.
    Yes(Box<Community>),
    /// No such subgraph exists (certified by the query-distance bound).
    No {
        /// The certified lower bound on any candidate's diameter.
        diameter_lower_bound: u32,
    },
    /// The decider cannot tell (optimal lies in `(d, 2d]` territory).
    Unknown {
        /// Best diameter achieved by the 2-approximation.
        achieved_diameter: u32,
        /// The certified lower bound.
        diameter_lower_bound: u32,
    },
}

impl CtckAnswer {
    /// `true` for [`CtckAnswer::Yes`].
    pub fn is_yes(&self) -> bool {
        matches!(self, CtckAnswer::Yes(_))
    }

    /// `true` for [`CtckAnswer::No`].
    pub fn is_no(&self) -> bool {
        matches!(self, CtckAnswer::No { .. })
    }
}

/// Decides (approximately) whether a connected k-truss with diameter ≤ `d`
/// containing `q` exists in the searcher's graph.
///
/// Soundness: `Yes` answers carry a witness; `No` answers are certified by
/// `dist_R(R, Q) > d` — by Lemma 5 the returned `R` minimizes the query
/// distance over *all* connected k-trusses containing `Q`, and any
/// subgraph's diameter is at least its query distance (Lemma 2), so no
/// candidate can beat `d`.
pub fn decide_ctck(
    searcher: &CtcSearcher<'_>,
    q: &[VertexId],
    k: u32,
    d: u32,
) -> Result<CtckAnswer> {
    let cfg = CtcConfig::new().fixed_k(k);
    let community = match searcher.basic(q, &cfg) {
        Ok(c) if c.k == k => c,
        // No k-truss at exactly this level containing Q: certified No.
        _ => {
            return Ok(CtckAnswer::No {
                diameter_lower_bound: 0,
            })
        }
    };
    let lb = community.query_distance;
    if lb > d {
        return Ok(CtckAnswer::No {
            diameter_lower_bound: lb,
        });
    }
    let achieved = community.diameter();
    if achieved <= d {
        return Ok(CtckAnswer::Yes(Box::new(community)));
    }
    Ok(CtckAnswer::Unknown {
        achieved_diameter: achieved,
        diameter_lower_bound: lb,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};

    fn setup() -> (ctc_graph::CsrGraph, Figure1Ids) {
        (figure1_graph(), Figure1Ids::default())
    }

    #[test]
    fn yes_with_witness_on_figure1() {
        let (g, f) = setup();
        let s = CtcSearcher::new(&g);
        let q = [f.q1, f.q2, f.q3];
        // A 4-truss with diameter ≤ 3 exists (Figure 1(b)).
        match decide_ctck(&s, &q, 4, 3).unwrap() {
            CtckAnswer::Yes(c) => {
                assert_eq!(c.k, 4);
                assert!(c.diameter() <= 3);
                c.validate(&q).unwrap();
            }
            other => panic!("expected Yes, got {other:?}"),
        }
    }

    #[test]
    fn no_when_distance_bound_certifies() {
        let (g, f) = setup();
        let s = CtcSearcher::new(&g);
        let q = [f.q1, f.q2, f.q3];
        // No 4-truss of diameter ≤ 1 contains all three query vertices:
        // the optimal query distance alone is ≥ 2.
        let ans = decide_ctck(&s, &q, 4, 1).unwrap();
        assert!(ans.is_no(), "got {ans:?}");
        if let CtckAnswer::No {
            diameter_lower_bound,
        } = ans
        {
            assert!(diameter_lower_bound >= 2);
        }
    }

    #[test]
    fn no_when_level_is_infeasible() {
        let (g, f) = setup();
        let s = CtcSearcher::new(&g);
        // τ̄(∅) = 4: no 5-truss exists at all.
        let ans = decide_ctck(&s, &[f.q1], 5, 10).unwrap();
        assert!(ans.is_no());
    }

    #[test]
    fn k2_low_diameter_is_yes_via_cycle() {
        let (g, f) = setup();
        let s = CtcSearcher::new(&g);
        let q = [f.q1, f.q2, f.q3];
        // Example 2: at k = 2 a diameter-2 subgraph exists (the 5-cycle).
        // The greedy may or may not find it — Yes or Unknown are both
        // sound; No would be a soundness bug.
        let ans = decide_ctck(&s, &q, 2, 2).unwrap();
        assert!(
            !ans.is_no(),
            "No would contradict the 5-cycle witness: {ans:?}"
        );
    }

    #[test]
    fn decision_is_monotone_in_d() {
        // As d grows the answer moves No → Unknown → Yes and never back.
        let (g, f) = setup();
        let s = CtcSearcher::new(&g);
        let q = [f.q1, f.q2, f.q3];
        let mut phase = 0; // 0 = No, 1 = Unknown, 2 = Yes
        for d in 0..=6 {
            let next = match decide_ctck(&s, &q, 4, d).unwrap() {
                CtckAnswer::No { .. } => 0,
                CtckAnswer::Unknown { .. } => 1,
                CtckAnswer::Yes(_) => 2,
            };
            assert!(next >= phase, "answer regressed at d={d}: {next} < {phase}");
            phase = next;
        }
        assert_eq!(phase, 2, "diameter-3 witness must certify Yes for large d");
    }
}
