//! The shared greedy peeling engine behind Basic (Alg. 1), BulkDelete
//! (Alg. 4) and the LCTC inner loop (§5.2).
//!
//! Each iteration measures vertex query distances (`|Q|` BFS passes), picks
//! a victim set according to the deletion policy, removes it, and lets the
//! truss maintainer (Alg. 3) cascade. Removal times are stamped per vertex
//! and edge so the best intermediate snapshot `R = argmin_G dist_G(G, Q)`
//! is reconstructed afterwards without storing any intermediate graph —
//! the paper's `O(m')` space argument (§4.4).

use ctc_graph::{query_connected, BfsScratch, CsrGraph, DynGraph, VertexId, INF};
use ctc_truss::TrussMaintainer;

/// Victim-selection policy for one peeling iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeletePolicy {
    /// Algorithm 1: the single vertex maximizing `dist(u, Q)` (smallest id
    /// among ties, for determinism).
    SingleFurthest,
    /// Algorithm 4: every vertex with `dist(u, Q) ≥ d − 1` where `d` is the
    /// smallest graph query distance observed so far. Guarantees ≥ k
    /// deletions per round (Lemma 6).
    BulkAtLeast,
    /// LCTC variant (§5.2): among `L' = {u : dist(u, Q) ≥ d}`, delete only
    /// the vertices with the largest total distance to the query set —
    /// slower convergence, smaller final diameter.
    LocalGreedy,
}

/// Outcome of a peeling run.
#[derive(Clone, Debug)]
pub struct PeelOutcome {
    /// Vertices of the best snapshot (local ids of the peeled graph).
    pub vertices: Vec<VertexId>,
    /// Edges of the best snapshot as local vertex pairs.
    pub edges: Vec<(VertexId, VertexId)>,
    /// `dist_R(R, Q)` of the best snapshot.
    pub query_distance: u32,
    /// Iterations executed (snapshots examined).
    pub iterations: usize,
}

/// Per-vertex query-distance profile: max and sum over the query set.
fn query_profile(
    live: &DynGraph<'_>,
    q: &[VertexId],
    scratch: &mut BfsScratch,
    max_out: &mut [u32],
    sum_out: &mut [u64],
) {
    max_out.iter_mut().for_each(|x| *x = 0);
    sum_out.iter_mut().for_each(|x| *x = 0);
    for &qv in q {
        scratch.run(live, qv);
        for v in 0..max_out.len() {
            let d = scratch.dist(VertexId::from(v));
            max_out[v] = max_out[v].max(d);
            sum_out[v] = sum_out[v].saturating_add(d as u64);
        }
    }
    for v in 0..max_out.len() {
        if !live.is_vertex_alive(VertexId::from(v)) {
            max_out[v] = INF;
            sum_out[v] = u64::MAX;
        }
    }
}

/// Runs the peeling loop on `sub` (a connected k-truss containing the local
/// query `q`) at trussness level `k`.
pub fn peel(
    sub: &CsrGraph,
    q: &[VertexId],
    k: u32,
    policy: DeletePolicy,
    max_iterations: Option<usize>,
) -> PeelOutcome {
    let n = sub.num_vertices();
    let m = sub.num_edges();
    let mut live = DynGraph::new(sub);
    let mut maint = TrussMaintainer::new(&live, k);
    let mut scratch = BfsScratch::new(n);
    let mut dist_max = vec![0u32; n];
    let mut dist_sum = vec![0u64; n];
    // Removal stamps: iteration at which each vertex/edge died.
    let mut vertex_removed_at = vec![u32::MAX; n];
    let mut edge_removed_at = vec![u32::MAX; m];

    let mut best_dist = INF;
    let mut best_iter = 0u32;
    let mut iter = 0u32;
    let mut victims: Vec<VertexId> = Vec::new();

    while query_connected(&live, q, &mut scratch) {
        if let Some(cap) = max_iterations {
            if iter as usize >= cap {
                break;
            }
        }
        query_profile(&live, q, &mut scratch, &mut dist_max, &mut dist_sum);
        // Graph query distance of the current snapshot.
        let d_graph = live
            .alive_vertices()
            .map(|v| dist_max[v.index()])
            .max()
            .unwrap_or(0);
        if d_graph < best_dist {
            best_dist = d_graph;
            best_iter = iter;
        }
        if d_graph == 0 {
            break; // community collapsed onto Q itself; nothing to peel
        }
        victims.clear();
        match policy {
            DeletePolicy::SingleFurthest => {
                let u = live
                    .alive_vertices()
                    .max_by(|&a, &b| {
                        dist_max[a.index()]
                            .cmp(&dist_max[b.index()])
                            .then(b.0.cmp(&a.0)) // ties → smaller id wins
                    })
                    .expect("connected query implies alive vertices");
                victims.push(u);
            }
            DeletePolicy::BulkAtLeast => {
                let threshold = best_dist.saturating_sub(1).max(1);
                victims.extend(
                    live.alive_vertices()
                        .filter(|&v| dist_max[v.index()] >= threshold),
                );
            }
            DeletePolicy::LocalGreedy => {
                let threshold = best_dist.max(1);
                let far: Vec<VertexId> = live
                    .alive_vertices()
                    .filter(|&v| dist_max[v.index()] >= threshold)
                    .collect();
                // Among the far set keep only those with the largest total
                // distance (INF/dead never appear here: they're alive).
                let top = far.iter().map(|&v| dist_sum[v.index()]).max().unwrap_or(0);
                victims.extend(far.into_iter().filter(|&v| dist_sum[v.index()] == top));
            }
        }
        if victims.is_empty() {
            break;
        }
        let report = maint.delete_vertices(&mut live, &victims);
        for &v in &report.vertices {
            vertex_removed_at[v.index()] = iter;
        }
        for &e in &report.edges {
            edge_removed_at[e.index()] = iter;
        }
        iter += 1;
    }

    // Reconstruct the best snapshot: everything removed at or after
    // `best_iter` (or never) was present when it was measured.
    let vertices: Vec<VertexId> = (0..n)
        .map(VertexId::from)
        .filter(|&v| vertex_removed_at[v.index()] >= best_iter)
        .collect();
    let edges: Vec<(VertexId, VertexId)> = sub
        .edges()
        .filter(|&(e, _, _)| edge_removed_at[e.index()] >= best_iter)
        .map(|(_, u, v)| (u, v))
        .collect();
    PeelOutcome {
        vertices,
        edges,
        query_distance: best_dist,
        iterations: iter as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::{edge_subgraph, graph_from_edges};
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};
    use ctc_truss::{find_g0, TrussIndex};

    /// Extracts Figure 1's G0 for Q={q1,q2,q3} as a standalone graph plus
    /// local query ids.
    fn figure1_g0() -> (ctc_graph::Subgraph, Vec<VertexId>) {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q1, f.q2, f.q3]).unwrap();
        let sub = edge_subgraph(&g, &g0.edges);
        let q = sub.locals(&[f.q1, f.q2, f.q3]).unwrap();
        (sub, q)
    }

    #[test]
    fn basic_policy_recovers_figure1b() {
        // Example 4: Basic deletes p1, cascade removes p2/p3, and the best
        // snapshot is Figure 1(b) with query distance 3.
        let (sub, q) = figure1_g0();
        let out = peel(&sub.graph, &q, 4, DeletePolicy::SingleFurthest, None);
        assert_eq!(out.query_distance, 3);
        assert_eq!(out.vertices.len(), 8);
        assert_eq!(out.edges.len(), 17);
    }

    #[test]
    fn bulk_policy_keeps_g0_on_figure1() {
        // Example 7: BD's first round deletes L ∋ {q1, q3}, disconnecting
        // Q, so the answer stays the whole G0 (11 vertices, distance 3...
        // measured as dist(G0, Q) = 3).
        let (sub, q) = figure1_g0();
        let out = peel(&sub.graph, &q, 4, DeletePolicy::BulkAtLeast, None);
        assert_eq!(out.vertices.len(), 11, "BD returns all of G0");
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn local_policy_not_worse_than_bulk() {
        let (sub, q) = figure1_g0();
        let bulk = peel(&sub.graph, &q, 4, DeletePolicy::BulkAtLeast, None);
        let local = peel(&sub.graph, &q, 4, DeletePolicy::LocalGreedy, None);
        assert!(local.query_distance <= bulk.query_distance);
        assert!(local.vertices.len() <= bulk.vertices.len());
    }

    #[test]
    fn single_query_on_k4_returns_k4() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let out = peel(&g, &[VertexId(0)], 4, DeletePolicy::SingleFurthest, None);
        assert_eq!(out.vertices.len(), 4);
        assert_eq!(out.query_distance, 1);
    }

    #[test]
    fn iteration_cap_respected() {
        let (sub, q) = figure1_g0();
        let out = peel(&sub.graph, &q, 4, DeletePolicy::SingleFurthest, Some(0));
        assert_eq!(out.iterations, 0);
        assert_eq!(out.vertices.len(), 11, "cap 0 returns G0 untouched");
    }

    #[test]
    fn outcome_is_always_a_connected_ktruss_containing_q() {
        let (sub, q) = figure1_g0();
        for policy in [
            DeletePolicy::SingleFurthest,
            DeletePolicy::BulkAtLeast,
            DeletePolicy::LocalGreedy,
        ] {
            let out = peel(&sub.graph, &q, 4, policy, None);
            // Rebuild and check.
            let mut b = ctc_graph::GraphBuilder::new();
            b.ensure_vertices(sub.graph.num_vertices());
            for &(u, v) in &out.edges {
                b.add_edge(u.0, v.0);
            }
            let rg = b.build();
            let mut scratch = BfsScratch::new(rg.num_vertices());
            assert!(
                query_connected(&rg, &q, &mut scratch),
                "{policy:?}: Q disconnected"
            );
            let sup = ctc_graph::edge_supports(&rg);
            for (e, u, v) in rg.edges() {
                if out.vertices.contains(&u) && out.vertices.contains(&v) {
                    assert!(
                        sup[e.index()] + 2 >= 4,
                        "{policy:?}: edge ({u},{v}) below 4-truss"
                    );
                }
            }
        }
    }
}
