//! The shared greedy peeling engine behind Basic (Alg. 1), BulkDelete
//! (Alg. 4) and the LCTC inner loop (§5.2).
//!
//! Each iteration measures vertex query distances, picks a victim set
//! according to the deletion policy, removes it, and lets the truss
//! maintainer (Alg. 3) cascade. Removal times are stamped per vertex and
//! edge so the best intermediate snapshot `R = argmin_G dist_G(G, Q)` is
//! reconstructed afterwards without storing any intermediate graph — the
//! paper's `O(m')` space argument (§4.4).
//!
//! ## The incremental hot path
//!
//! Measuring `dist(·, Q)` is the dominant per-round cost. Instead of `|Q|`
//! full BFS passes over the live graph per round, [`peel_with`] keeps one
//! incremental [`DistanceField`] per query source and, after each victim
//! batch, *repairs* it: deletions only ever increase distances (the
//! monotonicity behind the paper's §4.4 complexity argument), so only the
//! part of each BFS tree that lost its parent certificate is re-settled.
//! The per-vertex max/sum profiles are patched for exactly the vertices
//! whose distances moved, victim selection runs over the live graph's
//! `O(alive)` vertex list rather than every slot, and all working state
//! lives in a caller-pooled [`PeelScratch`], so a warm peel allocates
//! nothing. The `|Q|` per-source repairs are independent and spread over
//! the [`Parallelism`] substrate — results are byte-identical at any
//! thread count.
//!
//! [`peel_reference`] keeps the original full-recompute loop as the
//! correctness oracle; the property suite pins `peel_with ==
//! peel_reference` on random graphs for every policy and thread count.

use ctc_graph::{query_connected, EpochMarks, INF};
use ctc_graph::{BfsScratch, CsrGraph, DistanceField, DynBuffers, DynGraph, Parallelism, VertexId};
use ctc_truss::{CascadeReport, TrussMaintainer};

/// Victim-selection policy for one peeling iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeletePolicy {
    /// Algorithm 1: the single vertex maximizing `dist(u, Q)` (smallest id
    /// among ties, for determinism).
    SingleFurthest,
    /// Algorithm 4: every vertex with `dist(u, Q) ≥ d − 1` where `d` is
    /// the query distance of the **current** round's graph. Guarantees
    /// ≥ k deletions per round (Lemma 6).
    BulkAtLeast,
    /// LCTC variant (§5.2): among `L' = {u : dist(u, Q) ≥ d}` (again `d`
    /// of the current round), delete only the vertices with the largest
    /// total distance to the query set — slower convergence, smaller
    /// final diameter.
    LocalGreedy,
}

/// Outcome of a peeling run.
#[derive(Clone, Debug)]
pub struct PeelOutcome {
    /// Vertices of the best snapshot (local ids of the peeled graph).
    pub vertices: Vec<VertexId>,
    /// Edges of the best snapshot as local vertex pairs.
    pub edges: Vec<(VertexId, VertexId)>,
    /// `dist_R(R, Q)` of the best snapshot.
    pub query_distance: u32,
    /// Iterations executed (snapshots examined).
    pub iterations: usize,
}

/// Summary statistics of a [`peel_rounds`] run; the removal stamps needed
/// to materialize the winning snapshot stay in the [`PeelScratch`].
#[derive(Clone, Copy, Debug)]
pub struct PeelStats {
    /// `dist(G, Q)` of the best snapshot seen ([`INF`] when the query was
    /// never connected).
    pub best_dist: u32,
    /// Iteration index of the best snapshot.
    pub best_iter: u32,
    /// Iterations executed.
    pub iterations: u32,
}

/// Pooled working state for [`peel_with`]: the deletion overlay's buffers,
/// the truss maintainer, one [`DistanceField`] per query source, the
/// per-vertex distance profiles, victim buffers and removal stamps.
///
/// Create once (per worker / per engine pool slot) and reuse across
/// queries: after the buffers reach the workload's high-water mark, a warm
/// peel performs **zero** heap allocations in its round loop — the
/// property the counting-allocator test in `ctc-core/tests` pins.
#[derive(Default)]
pub struct PeelScratch {
    dyn_bufs: Option<DynBuffers>,
    maint: Option<TrussMaintainer>,
    fields: Vec<DistanceField>,
    dist_max: Vec<u32>,
    dist_sum: Vec<u64>,
    vertex_removed_at: Vec<u32>,
    edge_removed_at: Vec<u32>,
    victims: Vec<VertexId>,
    report: CascadeReport,
    /// Union of per-field changed vertices for one profile patch.
    changed_union: Vec<VertexId>,
    /// Dedup mark for `changed_union`.
    mark: EpochMarks,
    /// Initial-supports cache: the exact edge list of the last peeled
    /// subgraph and its fully-alive support table. Repeated queries into
    /// the same community (the common serving pattern — every query set
    /// inside one k-truss shares its `G0`) skip the `O(Σ deg)` support
    /// recomputation; the key is exact edge-list equality, so a hit is
    /// byte-identical to a recompute by construction.
    cached_edges: Vec<(u32, u32)>,
    cached_supports: Vec<u32>,
    cache_filled: bool,
    /// Pooled locate-phase state (FindG0 expansion + extraction), shared
    /// with the searcher so a checked-out engine scratch covers both
    /// phases of a query.
    pub(crate) find: ctc_truss::FindScratch,
    /// Pooled truss-decomposition state for LCTC's per-query index build.
    pub(crate) decomp: ctc_truss::DecomposeScratch,
}

impl PeelScratch {
    /// An empty scratch; buffers grow to fit the graphs it peels.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sizes the per-call state (stamps, profiles) for an `n`-vertex,
    /// `m`-edge subgraph. Reuses capacity; only grows allocations.
    fn prepare(&mut self, n: usize, m: usize) {
        self.vertex_removed_at.clear();
        self.vertex_removed_at.resize(n, u32::MAX);
        self.edge_removed_at.clear();
        self.edge_removed_at.resize(m, u32::MAX);
        self.dist_max.clear();
        self.dist_max.resize(n, 0);
        self.dist_sum.clear();
        self.dist_sum.resize(n, 0);
        self.mark.ensure(n);
        self.victims.clear();
        self.changed_union.clear();
    }

    /// `true` when `sub`'s edge list is exactly the cached one.
    fn supports_cached_for(&self, sub: &CsrGraph) -> bool {
        self.cache_filled
            && self.cached_edges.len() == sub.num_edges()
            && sub
                .edges()
                .all(|(e, u, v)| self.cached_edges[e.index()] == (u.0, v.0))
    }

    /// Stores `sub`'s edge list plus its fully-alive supports.
    fn fill_supports_cache(&mut self, sub: &CsrGraph, supports: &[u32]) {
        self.cached_edges.clear();
        self.cached_edges
            .extend(sub.edges().map(|(_, u, v)| (u.0, v.0)));
        self.cached_supports.clear();
        self.cached_supports.extend_from_slice(supports);
        self.cache_filled = true;
    }

    /// Recomputes `dist_max`/`dist_sum` for one vertex from the fields.
    #[inline]
    fn recompute_profile_at(&mut self, v: VertexId, q_len: usize) {
        let mut max = 0u32;
        let mut sum = 0u64;
        for f in &self.fields[..q_len] {
            let d = f.dist(v);
            max = max.max(d);
            sum = sum.saturating_add(d as u64);
        }
        self.dist_max[v.index()] = max;
        self.dist_sum[v.index()] = sum;
    }
}

/// `connect(Q)` over the incremental fields: every query vertex alive and
/// reachable from the first one (equivalent to the BFS-based
/// [`query_connected`] the reference loop runs each round).
fn query_connected_fields(live: &DynGraph<'_>, q: &[VertexId], fields: &[DistanceField]) -> bool {
    let Some(f0) = fields.first() else {
        return false;
    };
    q.iter().all(|&v| live.is_vertex_alive(v)) && q.iter().all(|&v| f0.dist(v) != INF)
}

/// Victim selection for one round, shared by the incremental and reference
/// loops. `d_graph` is the query distance of the **current** snapshot —
/// the quantity Lemma 6 and §5.2 define their thresholds on. Victims come
/// back sorted ascending.
fn select_victims(
    policy: DeletePolicy,
    d_graph: u32,
    alive: impl Iterator<Item = VertexId> + Clone,
    dist_max: &[u32],
    dist_sum: &[u64],
    victims: &mut Vec<VertexId>,
) {
    victims.clear();
    match policy {
        DeletePolicy::SingleFurthest => {
            let mut best: Option<VertexId> = None;
            for v in alive {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let (dv, db) = (dist_max[v.index()], dist_max[b.index()]);
                        // Ties break toward the smaller id.
                        if dv > db || (dv == db && v < b) {
                            v
                        } else {
                            b
                        }
                    }
                });
            }
            victims.extend(best);
        }
        DeletePolicy::BulkAtLeast => {
            let threshold = d_graph.saturating_sub(1).max(1);
            victims.extend(alive.filter(|&v| dist_max[v.index()] >= threshold));
            victims.sort_unstable();
        }
        DeletePolicy::LocalGreedy => {
            let threshold = d_graph.max(1);
            // Among L' = {u : dist(u,Q) ≥ d} keep only those with the
            // largest total distance (two passes, no materialized L').
            let top = alive
                .clone()
                .filter(|&v| dist_max[v.index()] >= threshold)
                .map(|v| dist_sum[v.index()])
                .max()
                .unwrap_or(0);
            victims.extend(
                alive.filter(|&v| dist_max[v.index()] >= threshold && dist_sum[v.index()] == top),
            );
            victims.sort_unstable();
        }
    }
}

/// Runs the peeling loop on `sub` (a connected k-truss containing the
/// local query `q`) at trussness level `k`, leaving the removal stamps in
/// `scratch`. This is the allocation-free hot loop; [`peel_with`] wraps it
/// and materializes the winning snapshot.
pub fn peel_rounds(
    sub: &CsrGraph,
    q: &[VertexId],
    k: u32,
    policy: DeletePolicy,
    max_iterations: Option<usize>,
    par: Parallelism,
    scratch: &mut PeelScratch,
) -> PeelStats {
    let n = sub.num_vertices();
    let m = sub.num_edges();
    scratch.prepare(n, m);
    let mut live = DynGraph::with_buffers(sub, scratch.dyn_bufs.take().unwrap_or_default());
    let cache_hit = scratch.supports_cached_for(sub);
    let mut maint = match scratch.maint.take() {
        Some(mut mt) => {
            if cache_hit {
                mt.reset_with(&scratch.cached_supports, &live, k);
            } else {
                mt.reset_for(&live, k);
            }
            mt
        }
        None => TrussMaintainer::new(&live, k),
    };
    if !cache_hit {
        scratch.fill_supports_cache(sub, maint.supports());
    }

    // One incremental distance field per query source (grow-only pool).
    let q_len = q.len();
    while scratch.fields.len() < q_len {
        scratch.fields.push(DistanceField::new());
    }
    {
        let live_ref = &live;
        par.fill_chunks(&mut scratch.fields[..q_len], |start, chunk| {
            for (i, f) in chunk.iter_mut().enumerate() {
                f.init(live_ref, q[start + i]);
            }
        });
    }
    // Full profile build for round 0; later rounds only patch changes.
    for v in 0..n {
        scratch.recompute_profile_at(VertexId::from(v), q_len);
    }

    let mut best_dist = INF;
    let mut best_iter = 0u32;
    let mut iter = 0u32;

    while query_connected_fields(&live, q, &scratch.fields[..q_len]) {
        if let Some(cap) = max_iterations {
            if iter as usize >= cap {
                break;
            }
        }
        // Graph query distance of the current snapshot.
        let d_graph = live
            .alive_vertex_list()
            .iter()
            .map(|v| scratch.dist_max[v.index()])
            .max()
            .unwrap_or(0);
        if d_graph < best_dist {
            best_dist = d_graph;
            best_iter = iter;
        }
        if d_graph == 0 {
            break; // community collapsed onto Q itself; nothing to peel
        }
        select_victims(
            policy,
            d_graph,
            live.alive_vertex_list().iter().copied(),
            &scratch.dist_max,
            &scratch.dist_sum,
            &mut scratch.victims,
        );
        if scratch.victims.is_empty() {
            break;
        }
        // Last-round short-circuit: when a query vertex is itself a victim
        // (the common BulkDelete/LCTC termination, e.g. Example 7), the
        // loop is guaranteed to exit after this round — the deletion would
        // kill a query vertex and disconnect Q. The round's removal stamps
        // cannot change the answer either: the best snapshot precedes this
        // round, and both "removed this round" and "never removed" satisfy
        // `removed_at ≥ best_iter` in the reconstruction. Skipping the
        // cascade here elides the single most expensive round (tearing
        // down the bulk of the graph) with byte-identical output — the
        // property suite pins this against the full-delete reference.
        if q.iter().any(|v| scratch.victims.binary_search(v).is_ok()) {
            iter += 1;
            break;
        }
        maint.delete_vertices_into(&mut live, &scratch.victims, &mut scratch.report);
        for &v in &scratch.report.vertices {
            scratch.vertex_removed_at[v.index()] = iter;
        }
        for &e in &scratch.report.edges {
            scratch.edge_removed_at[e.index()] = iter;
        }
        iter += 1;
        if q.iter().any(|&v| !live.is_vertex_alive(v)) {
            // The query itself was hit: the loop is over, skip the repair.
            break;
        }
        // Repair the |Q| fields — independent per source, so the batch
        // spreads over the parallel substrate byte-identically.
        {
            let live_ref = &live;
            let report = &scratch.report;
            par.fill_chunks(&mut scratch.fields[..q_len], |_, chunk| {
                for f in chunk {
                    f.repair(live_ref, &report.vertices, &report.edges);
                }
            });
        }
        // Patch the max/sum profiles for exactly the vertices that moved.
        scratch.mark.clear();
        for fi in 0..q_len {
            for ci in 0..scratch.fields[fi].changed().len() {
                let v = scratch.fields[fi].changed()[ci];
                if scratch.mark.insert(v.index()) {
                    scratch.changed_union.push(v);
                }
            }
        }
        for ci in 0..scratch.changed_union.len() {
            let v = scratch.changed_union[ci];
            scratch.recompute_profile_at(v, q_len);
        }
        scratch.changed_union.clear();
        for &v in &scratch.report.vertices {
            scratch.dist_max[v.index()] = INF;
            scratch.dist_sum[v.index()] = u64::MAX;
        }
    }

    scratch.dyn_bufs = Some(live.into_buffers());
    scratch.maint = Some(maint);
    PeelStats {
        best_dist,
        best_iter,
        iterations: iter,
    }
}

/// Materializes the best snapshot from the stamps a [`peel_rounds`] call
/// left in `scratch`: everything removed at or after `best_iter` (or
/// never) was present when it was measured.
fn reconstruct(sub: &CsrGraph, scratch: &PeelScratch, stats: PeelStats) -> PeelOutcome {
    let vertices: Vec<VertexId> = (0..sub.num_vertices())
        .map(VertexId::from)
        .filter(|&v| scratch.vertex_removed_at[v.index()] >= stats.best_iter)
        .collect();
    let edges: Vec<(VertexId, VertexId)> = sub
        .edges()
        .filter(|&(e, _, _)| scratch.edge_removed_at[e.index()] >= stats.best_iter)
        .map(|(_, u, v)| (u, v))
        .collect();
    PeelOutcome {
        vertices,
        edges,
        query_distance: stats.best_dist,
        iterations: stats.iterations as usize,
    }
}

/// [`peel_rounds`] plus snapshot materialization: the full peeling
/// algorithm over pooled scratch, with the `|Q|` distance repairs spread
/// over `par`.
pub fn peel_with(
    sub: &CsrGraph,
    q: &[VertexId],
    k: u32,
    policy: DeletePolicy,
    max_iterations: Option<usize>,
    par: Parallelism,
    scratch: &mut PeelScratch,
) -> PeelOutcome {
    let stats = peel_rounds(sub, q, k, policy, max_iterations, par, scratch);
    reconstruct(sub, scratch, stats)
}

/// Runs the peeling loop with one-shot scratch, serially. Prefer
/// [`peel_with`] on any warm path.
pub fn peel(
    sub: &CsrGraph,
    q: &[VertexId],
    k: u32,
    policy: DeletePolicy,
    max_iterations: Option<usize>,
) -> PeelOutcome {
    let mut scratch = PeelScratch::new();
    peel_with(
        sub,
        q,
        k,
        policy,
        max_iterations,
        Parallelism::serial(),
        &mut scratch,
    )
}

/// Per-vertex query-distance profile by full recomputation: `|Q|` BFS
/// passes plus an `O(n)` dead-slot sweep. The pre-incremental
/// implementation, kept as the reference the property suite compares
/// [`peel_with`] against.
fn query_profile_reference(
    live: &DynGraph<'_>,
    q: &[VertexId],
    scratch: &mut BfsScratch,
    max_out: &mut [u32],
    sum_out: &mut [u64],
) {
    max_out.iter_mut().for_each(|x| *x = 0);
    sum_out.iter_mut().for_each(|x| *x = 0);
    for &qv in q {
        scratch.run(live, qv);
        for v in 0..max_out.len() {
            let d = scratch.dist(VertexId::from(v));
            max_out[v] = max_out[v].max(d);
            sum_out[v] = sum_out[v].saturating_add(d as u64);
        }
    }
    for v in 0..max_out.len() {
        if !live.is_vertex_alive(VertexId::from(v)) {
            max_out[v] = INF;
            sum_out[v] = u64::MAX;
        }
    }
}

/// The full-recompute peeling loop: byte-identical outcomes to
/// [`peel_with`], paid for with `|Q|` fresh BFS passes and whole-graph
/// scans every round. This is the correctness oracle for the incremental
/// engine — slow, simple, and kept deliberately close to the paper's
/// pseudocode.
pub fn peel_reference(
    sub: &CsrGraph,
    q: &[VertexId],
    k: u32,
    policy: DeletePolicy,
    max_iterations: Option<usize>,
) -> PeelOutcome {
    let n = sub.num_vertices();
    let m = sub.num_edges();
    let mut live = DynGraph::new(sub);
    let mut maint = TrussMaintainer::new(&live, k);
    let mut scratch = BfsScratch::new(n);
    let mut dist_max = vec![0u32; n];
    let mut dist_sum = vec![0u64; n];
    let mut vertex_removed_at = vec![u32::MAX; n];
    let mut edge_removed_at = vec![u32::MAX; m];

    let mut best_dist = INF;
    let mut best_iter = 0u32;
    let mut iter = 0u32;
    let mut victims: Vec<VertexId> = Vec::new();

    while query_connected(&live, q, &mut scratch) {
        if let Some(cap) = max_iterations {
            if iter as usize >= cap {
                break;
            }
        }
        query_profile_reference(&live, q, &mut scratch, &mut dist_max, &mut dist_sum);
        let alive: Vec<VertexId> = live.alive_vertices().collect();
        let d_graph = alive.iter().map(|v| dist_max[v.index()]).max().unwrap_or(0);
        if d_graph < best_dist {
            best_dist = d_graph;
            best_iter = iter;
        }
        if d_graph == 0 {
            break;
        }
        select_victims(
            policy,
            d_graph,
            alive.iter().copied(),
            &dist_max,
            &dist_sum,
            &mut victims,
        );
        if victims.is_empty() {
            break;
        }
        let report = maint.delete_vertices(&mut live, &victims);
        for &v in &report.vertices {
            vertex_removed_at[v.index()] = iter;
        }
        for &e in &report.edges {
            edge_removed_at[e.index()] = iter;
        }
        iter += 1;
    }

    let vertices: Vec<VertexId> = (0..n)
        .map(VertexId::from)
        .filter(|&v| vertex_removed_at[v.index()] >= best_iter)
        .collect();
    let edges: Vec<(VertexId, VertexId)> = sub
        .edges()
        .filter(|&(e, _, _)| edge_removed_at[e.index()] >= best_iter)
        .map(|(_, u, v)| (u, v))
        .collect();
    PeelOutcome {
        vertices,
        edges,
        query_distance: best_dist,
        iterations: iter as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::{edge_subgraph, graph_from_edges};
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};
    use ctc_truss::{find_g0, TrussIndex};

    /// Extracts Figure 1's G0 for Q={q1,q2,q3} as a standalone graph plus
    /// local query ids.
    fn figure1_g0() -> (ctc_graph::Subgraph, Vec<VertexId>) {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q1, f.q2, f.q3]).unwrap();
        let sub = edge_subgraph(&g, &g0.edges);
        let q = sub.locals(&[f.q1, f.q2, f.q3]).unwrap();
        (sub, q)
    }

    #[test]
    fn basic_policy_recovers_figure1b() {
        // Example 4: Basic deletes p1, cascade removes p2/p3, and the best
        // snapshot is Figure 1(b) with query distance 3.
        let (sub, q) = figure1_g0();
        let out = peel(&sub.graph, &q, 4, DeletePolicy::SingleFurthest, None);
        assert_eq!(out.query_distance, 3);
        assert_eq!(out.vertices.len(), 8);
        assert_eq!(out.edges.len(), 17);
    }

    #[test]
    fn bulk_policy_keeps_g0_on_figure1() {
        // Example 7: BD's first round deletes L ∋ {q1, q3}, disconnecting
        // Q, so the answer stays the whole G0 (11 vertices, distance 3...
        // measured as dist(G0, Q) = 3).
        let (sub, q) = figure1_g0();
        let out = peel(&sub.graph, &q, 4, DeletePolicy::BulkAtLeast, None);
        assert_eq!(out.vertices.len(), 11, "BD returns all of G0");
        assert_eq!(out.iterations, 1);
    }

    #[test]
    fn local_policy_not_worse_than_bulk() {
        let (sub, q) = figure1_g0();
        let bulk = peel(&sub.graph, &q, 4, DeletePolicy::BulkAtLeast, None);
        let local = peel(&sub.graph, &q, 4, DeletePolicy::LocalGreedy, None);
        assert!(local.query_distance <= bulk.query_distance);
        assert!(local.vertices.len() <= bulk.vertices.len());
    }

    #[test]
    fn single_query_on_k4_returns_k4() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let out = peel(&g, &[VertexId(0)], 4, DeletePolicy::SingleFurthest, None);
        assert_eq!(out.vertices.len(), 4);
        assert_eq!(out.query_distance, 1);
    }

    #[test]
    fn iteration_cap_respected() {
        let (sub, q) = figure1_g0();
        let out = peel(&sub.graph, &q, 4, DeletePolicy::SingleFurthest, Some(0));
        assert_eq!(out.iterations, 0);
        assert_eq!(out.vertices.len(), 11, "cap 0 returns G0 untouched");
    }

    #[test]
    fn outcome_is_always_a_connected_ktruss_containing_q() {
        let (sub, q) = figure1_g0();
        for policy in [
            DeletePolicy::SingleFurthest,
            DeletePolicy::BulkAtLeast,
            DeletePolicy::LocalGreedy,
        ] {
            let out = peel(&sub.graph, &q, 4, policy, None);
            // Rebuild and check.
            let mut b = ctc_graph::GraphBuilder::new();
            b.ensure_vertices(sub.graph.num_vertices());
            for &(u, v) in &out.edges {
                b.add_edge(u.0, v.0);
            }
            let rg = b.build();
            let mut scratch = BfsScratch::new(rg.num_vertices());
            assert!(
                query_connected(&rg, &q, &mut scratch),
                "{policy:?}: Q disconnected"
            );
            let sup = ctc_graph::edge_supports(&rg);
            for (e, u, v) in rg.edges() {
                if out.vertices.contains(&u) && out.vertices.contains(&v) {
                    assert!(
                        sup[e.index()] + 2 >= 4,
                        "{policy:?}: edge ({u},{v}) below 4-truss"
                    );
                }
            }
        }
    }

    #[test]
    fn incremental_matches_reference_on_figure1() {
        let (sub, q) = figure1_g0();
        for policy in [
            DeletePolicy::SingleFurthest,
            DeletePolicy::BulkAtLeast,
            DeletePolicy::LocalGreedy,
        ] {
            let fast = peel(&sub.graph, &q, 4, policy, None);
            let slow = peel_reference(&sub.graph, &q, 4, policy, None);
            assert_eq!(fast.vertices, slow.vertices, "{policy:?}");
            assert_eq!(fast.edges, slow.edges, "{policy:?}");
            assert_eq!(fast.query_distance, slow.query_distance, "{policy:?}");
            assert_eq!(fast.iterations, slow.iterations, "{policy:?}");
        }
    }

    #[test]
    fn scratch_reuse_across_heterogeneous_calls() {
        // One scratch, many graphs/queries/policies: every call must be
        // indistinguishable from a fresh-scratch run.
        let (sub, q) = figure1_g0();
        let k4 = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut scratch = PeelScratch::new();
        for _ in 0..3 {
            for policy in [
                DeletePolicy::SingleFurthest,
                DeletePolicy::BulkAtLeast,
                DeletePolicy::LocalGreedy,
            ] {
                let warm = peel_with(
                    &sub.graph,
                    &q,
                    4,
                    policy,
                    None,
                    Parallelism::serial(),
                    &mut scratch,
                );
                let cold = peel(&sub.graph, &q, 4, policy, None);
                assert_eq!(warm.vertices, cold.vertices, "{policy:?}");
                assert_eq!(warm.edges, cold.edges, "{policy:?}");
            }
            let w = peel_with(
                &k4,
                &[VertexId(0)],
                4,
                DeletePolicy::SingleFurthest,
                None,
                Parallelism::serial(),
                &mut scratch,
            );
            assert_eq!(w.vertices.len(), 4);
        }
    }

    #[test]
    fn parallel_repair_is_byte_identical() {
        let (sub, q) = figure1_g0();
        for threads in [2usize, 4] {
            let mut scratch = PeelScratch::new();
            for policy in [
                DeletePolicy::SingleFurthest,
                DeletePolicy::BulkAtLeast,
                DeletePolicy::LocalGreedy,
            ] {
                let par = peel_with(
                    &sub.graph,
                    &q,
                    4,
                    policy,
                    None,
                    Parallelism::threads(threads),
                    &mut scratch,
                );
                let ser = peel(&sub.graph, &q, 4, policy, None);
                assert_eq!(par.vertices, ser.vertices, "{policy:?} t={threads}");
                assert_eq!(par.edges, ser.edges, "{policy:?} t={threads}");
            }
        }
    }

    /// Lemma 6 audit: the BulkDelete threshold is defined on the *current*
    /// round's graph query distance `d`, not on the best distance seen so
    /// far. The two diverge whenever peeling makes the graph momentarily
    /// worse (`d_graph > best_dist`): a best-so-far threshold would then
    /// be too low and delete whole extra layers.
    #[test]
    fn bulk_threshold_uses_current_round_distance() {
        let alive: Vec<VertexId> = (0..6u32).map(VertexId::from).collect();
        // Synthetic mid-peel state: best_dist (min over snapshots) was 3,
        // but the current snapshot's d_graph is 5.
        let dist_max = [0u32, 1, 2, 3, 4, 5];
        let dist_sum: Vec<u64> = dist_max.iter().map(|&d| d as u64).collect();
        let mut victims = Vec::new();
        select_victims(
            DeletePolicy::BulkAtLeast,
            5, // current-round d_graph — the Lemma 6 threshold base
            alive.iter().copied(),
            &dist_max,
            &dist_sum,
            &mut victims,
        );
        assert_eq!(
            victims,
            vec![VertexId(4), VertexId(5)],
            "threshold d−1 = 4 keeps the dist-3 vertex a best-so-far \
             threshold (3−1 = 2) would have over-deleted"
        );
        // LocalGreedy's L' = {u : dist ≥ d} likewise keys on the current d.
        select_victims(
            DeletePolicy::LocalGreedy,
            5,
            alive.iter().copied(),
            &dist_max,
            &dist_sum,
            &mut victims,
        );
        assert_eq!(victims, vec![VertexId(5)]);
    }
}
