//! Community result types returned by every search algorithm.

use ctc_graph::{
    diameter_exact, edge_density, induced_subgraph, BfsScratch, CsrGraph, Subgraph, VertexId,
};
use std::time::Duration;

/// Per-phase wall-clock timings of a search.
///
/// The three named phases partition the total exactly:
/// `locate + peel + finish == total`.
#[derive(Clone, Copy, Debug, Default)]
pub struct PhaseTimings {
    /// Time to locate `G0` (Algorithm 2) or build `Gt` (LCTC Steiner +
    /// expansion + local decomposition).
    pub locate: Duration,
    /// Time spent in the peeling loop (distance computation + maintenance).
    pub peel: Duration,
    /// Everything after the peel: assembling the result, mapping local ids
    /// back to the parent graph, final bookkeeping. Defined as
    /// `total − locate − peel` so the phases always sum to the total.
    pub finish: Duration,
    /// End-to-end time.
    pub total: Duration,
}

impl PhaseTimings {
    /// Builds timings from the two measured phases and the end-to-end
    /// total, assigning the residual to `finish`.
    pub fn with_residual(locate: Duration, peel: Duration, total: Duration) -> Self {
        PhaseTimings {
            locate,
            peel,
            finish: total.saturating_sub(locate).saturating_sub(peel),
            total,
        }
    }
}

/// A community returned by Basic / BulkDelete / LCTC / the Truss baseline.
///
/// Vertex ids refer to the *original* input graph.
#[derive(Clone, Debug)]
pub struct Community {
    /// Trussness `k` of the community (matches `τ̄(Q)` for the exact
    /// algorithms; LCTC may return less, see Fig. 13(b)).
    pub k: u32,
    /// Community vertices (original graph ids, ascending).
    pub vertices: Vec<VertexId>,
    /// Community edges as original-id vertex pairs (`u < v`).
    pub edges: Vec<(VertexId, VertexId)>,
    /// Query distance `dist_R(R, Q)` measured inside the community.
    pub query_distance: u32,
    /// Number of peeling iterations executed.
    pub iterations: usize,
    /// Size (vertices, edges) of the starting graph `G0` — the denominator
    /// of the paper's "kept %" free-rider metric.
    pub g0_size: (usize, usize),
    /// Phase timings.
    pub timings: PhaseTimings,
}

impl Community {
    /// Number of community vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of community edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edge density `2m / (n(n−1))` — the "(c) Density" series of the
    /// experiment figures.
    pub fn density(&self) -> f64 {
        edge_density(self.vertices.len(), self.edges.len())
    }

    /// Fraction of `G0`'s vertices kept — the "(b) percentage" series; lower
    /// means more free riders removed.
    pub fn kept_fraction(&self) -> f64 {
        if self.g0_size.0 == 0 {
            return 1.0;
        }
        self.vertices.len() as f64 / self.g0_size.0 as f64
    }

    /// Materializes the community as a standalone graph.
    ///
    /// The community's own edge list is used (not the induced subgraph of
    /// the parent: peeling may have removed edges whose endpoints survive).
    pub fn subgraph(&self) -> Subgraph {
        let mut from_parent: ctc_graph::FxHashMap<u32, u32> = Default::default();
        let mut to_parent: Vec<u32> = Vec::with_capacity(self.vertices.len());
        for &v in &self.vertices {
            from_parent.insert(v.0, to_parent.len() as u32);
            to_parent.push(v.0);
        }
        let mut b = ctc_graph::GraphBuilder::with_capacity(self.edges.len());
        b.ensure_vertices(to_parent.len());
        for &(u, v) in &self.edges {
            b.add_edge(from_parent[&u.0], from_parent[&v.0]);
        }
        Subgraph {
            graph: b.build(),
            to_parent,
            from_parent,
        }
    }

    /// Exact diameter of the community (all-pairs BFS over its subgraph).
    pub fn diameter(&self) -> u32 {
        diameter_exact(&self.subgraph().graph)
    }

    /// `true` if every query vertex is a member.
    pub fn contains_query(&self, q: &[VertexId]) -> bool {
        q.iter().all(|v| self.vertices.binary_search(v).is_ok())
    }

    /// Validates the structural contract: connected, contains `Q`, and every
    /// edge has support ≥ `k − 2` inside the community. Returns a
    /// description of the first violation.
    pub fn validate(&self, q: &[VertexId]) -> Result<(), String> {
        if !self.contains_query(q) {
            return Err("community does not contain all query vertices".into());
        }
        let sub = self.subgraph();
        if !ctc_graph::is_connected(&sub.graph) {
            return Err("community is not connected".into());
        }
        let sup = ctc_graph::edge_supports(&sub.graph);
        if let Some((e, _, _)) = sub
            .graph
            .edges()
            .find(|&(e, _, _)| sup[e.index()] + 2 < self.k)
        {
            return Err(format!("edge {e} violates the {}-truss condition", self.k));
        }
        Ok(())
    }

    /// Recomputes the query distance of the community from scratch
    /// (diagnostic; `query_distance` is filled by the algorithms).
    pub fn recompute_query_distance(&self, q: &[VertexId]) -> u32 {
        let sub = self.subgraph();
        let ql: Vec<VertexId> = q.iter().filter_map(|&v| sub.local(v)).collect();
        let mut scratch = BfsScratch::new(sub.num_vertices());
        ctc_graph::graph_query_distance(&sub.graph, &ql, &mut scratch)
    }
}

/// Builds a [`Community`] from a parent graph and a set of parent-vertex
/// ids, taking the full induced subgraph (used by baselines and the Truss
/// baseline where the community is induced by construction).
pub fn community_from_induced(
    g: &CsrGraph,
    k: u32,
    vertices: Vec<VertexId>,
    q: &[VertexId],
    g0_size: (usize, usize),
    iterations: usize,
    timings: PhaseTimings,
) -> Community {
    let mut vertices = vertices;
    vertices.sort_unstable();
    vertices.dedup();
    let sub = induced_subgraph(g, &vertices);
    let edges = sub
        .graph
        .edges()
        .map(|(_, u, v)| {
            let (pu, pv) = (sub.parent(u), sub.parent(v));
            if pu < pv {
                (pu, pv)
            } else {
                (pv, pu)
            }
        })
        .collect();
    let ql: Vec<VertexId> = q.iter().filter_map(|&v| sub.local(v)).collect();
    let mut scratch = BfsScratch::new(sub.num_vertices());
    let qd = ctc_graph::graph_query_distance(&sub.graph, &ql, &mut scratch);
    Community {
        k,
        vertices,
        edges,
        query_distance: qd,
        iterations,
        g0_size,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::graph_from_edges;

    fn k4_community() -> Community {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        community_from_induced(
            &g,
            4,
            vec![VertexId(0), VertexId(1), VertexId(2), VertexId(3)],
            &[VertexId(0)],
            (4, 6),
            0,
            PhaseTimings::default(),
        )
    }

    #[test]
    fn basic_accessors() {
        let c = k4_community();
        assert_eq!(c.num_vertices(), 4);
        assert_eq!(c.num_edges(), 6);
        assert!((c.density() - 1.0).abs() < 1e-12);
        assert_eq!(c.kept_fraction(), 1.0);
        assert_eq!(c.diameter(), 1);
        assert!(c.contains_query(&[VertexId(0)]));
        assert!(!c.contains_query(&[VertexId(9)]));
    }

    #[test]
    fn validate_catches_violations() {
        let c = k4_community();
        assert!(c.validate(&[VertexId(0)]).is_ok());
        let mut broken = c.clone();
        broken.k = 5;
        assert!(broken.validate(&[VertexId(0)]).is_err());
        let mut missing = c;
        missing.vertices.retain(|&v| v != VertexId(0));
        assert!(missing.validate(&[VertexId(0)]).is_err());
    }

    #[test]
    fn query_distance_recomputation() {
        let c = k4_community();
        assert_eq!(c.recompute_query_distance(&[VertexId(0)]), 1);
        assert_eq!(c.query_distance, 1);
    }

    #[test]
    fn subgraph_uses_own_edges_not_induced() {
        // Community that lost edge (0,1) during peeling: subgraph must not
        // resurrect it.
        let c = Community {
            k: 2,
            vertices: vec![VertexId(0), VertexId(1), VertexId(2)],
            edges: vec![(VertexId(0), VertexId(2)), (VertexId(1), VertexId(2))],
            query_distance: 2,
            iterations: 1,
            g0_size: (3, 3),
            timings: PhaseTimings::default(),
        };
        let sub = c.subgraph();
        assert_eq!(sub.num_edges(), 2);
        let l0 = sub.local(VertexId(0)).unwrap();
        let l1 = sub.local(VertexId(1)).unwrap();
        assert!(!sub.graph.has_edge(l0, l1));
    }
}
