//! The high-level search API: one struct, four algorithms.
//!
//! [`CtcSearcher`] owns the truss index of a graph and exposes the paper's
//! algorithm suite: `basic` (Alg. 1, 2-approximation), `bulk_delete`
//! (Alg. 4, (2+ε)-approximation), `local` (Alg. 5, the LCTC heuristic) and
//! `truss_only` (the "Truss" baseline = bare `FindG0`).

use crate::config::CtcConfig;
use crate::local::expand_tree;
use crate::peel::{peel_with, DeletePolicy, PeelOutcome, PeelScratch};
use crate::result::{Community, PhaseTimings};
use crate::steiner::steiner_tree;
use ctc_graph::error::{GraphError, Result};
use ctc_graph::{BfsScratch, CsrGraph, Parallelism, Subgraph, VertexId};
use ctc_truss::{find_g0_with, find_ktruss_containing_with, FindScratch, Snapshot, TrussIndex, G0};
use std::time::Instant;

/// How a searcher holds its truss index: built fresh (owned) or borrowed
/// from a longer-lived holder such as a [`Snapshot`] or the warm-start
/// [`CommunityEngine`](crate::CommunityEngine). Borrowing is what makes
/// per-query searcher construction free on the warm path.
enum IndexHandle<'g> {
    Owned(TrussIndex),
    Borrowed(&'g TrussIndex),
}

impl IndexHandle<'_> {
    #[inline(always)]
    fn get(&self) -> &TrussIndex {
        match self {
            IndexHandle::Owned(idx) => idx,
            IndexHandle::Borrowed(idx) => idx,
        }
    }
}

/// Closest-truss-community searcher over a fixed graph.
pub struct CtcSearcher<'g> {
    g: &'g CsrGraph,
    idx: IndexHandle<'g>,
}

impl<'g> CtcSearcher<'g> {
    /// Builds the truss index for `g` and wraps it (index construction is
    /// the offline cost reported in Table 3). Serial; see
    /// [`CtcSearcher::with_parallelism`] for the multi-core build.
    pub fn new(g: &'g CsrGraph) -> Self {
        Self::with_parallelism(g, Parallelism::serial())
    }

    /// Builds the truss index across `par` worker threads and wraps it.
    /// The resulting searcher is identical to [`CtcSearcher::new`]'s for
    /// every thread count — only the offline build is spread over cores.
    pub fn with_parallelism(g: &'g CsrGraph, par: Parallelism) -> Self {
        CtcSearcher {
            g,
            idx: IndexHandle::Owned(TrussIndex::build_par(g, par)),
        }
    }

    /// Adopts a prebuilt index (must belong to `g`).
    pub fn with_index(g: &'g CsrGraph, idx: TrussIndex) -> Self {
        assert_eq!(idx.num_edges(), g.num_edges(), "index does not match graph");
        CtcSearcher {
            g,
            idx: IndexHandle::Owned(idx),
        }
    }

    /// Borrows a prebuilt index (must belong to `g`) without taking
    /// ownership — the warm path: constructing the searcher costs two
    /// pointer copies, no decomposition.
    pub fn with_borrowed_index(g: &'g CsrGraph, idx: &'g TrussIndex) -> Self {
        assert_eq!(idx.num_edges(), g.num_edges(), "index does not match graph");
        CtcSearcher {
            g,
            idx: IndexHandle::Borrowed(idx),
        }
    }

    /// Warm-starts from a loaded [`Snapshot`]: borrows its graph and index,
    /// paying none of the offline construction cost.
    ///
    /// ```
    /// use ctc_core::{CtcConfig, CtcSearcher};
    /// use ctc_truss::{fixtures, Snapshot};
    ///
    /// let snap = Snapshot::build(fixtures::figure1_graph());
    /// let f = fixtures::Figure1Ids::default();
    /// let searcher = CtcSearcher::from_snapshot(&snap);
    /// let c = searcher.basic(&[f.q1, f.q2, f.q3], &CtcConfig::default()).unwrap();
    /// assert_eq!((c.k, c.diameter()), (4, 3));
    /// ```
    pub fn from_snapshot(snap: &'g Snapshot) -> Self {
        Self::with_borrowed_index(&snap.graph, &snap.index)
    }

    /// The underlying truss index.
    pub fn index(&self) -> &TrussIndex {
        self.idx.get()
    }

    /// The graph being searched.
    pub fn graph(&self) -> &'g CsrGraph {
        self.g
    }

    /// Normalizes a query: dedup, validity checks.
    fn normalize_query(&self, q: &[VertexId]) -> Result<Vec<VertexId>> {
        if q.is_empty() {
            return Err(GraphError::EmptyQuery);
        }
        let n = self.g.num_vertices();
        let mut q: Vec<VertexId> = q.to_vec();
        q.sort_unstable();
        q.dedup();
        for &v in &q {
            if v.index() >= n {
                return Err(GraphError::VertexOutOfRange { vertex: v.0, n });
            }
        }
        Ok(q)
    }

    /// Locates the starting community `G0` (max-k or fixed-k) over pooled
    /// locate scratch.
    fn locate_g0(&self, q: &[VertexId], cfg: &CtcConfig, find: &mut FindScratch) -> Result<G0> {
        match cfg.fixed_k {
            None => find_g0_with(self.g, self.idx.get(), q, find),
            Some(kf) => {
                // Largest feasible level not exceeding the requested k.
                for k in (2..=kf).rev() {
                    if let Some(g0) =
                        find_ktruss_containing_with(self.g, self.idx.get(), q, k, find)
                    {
                        if !g0.edges.is_empty() {
                            return Ok(g0);
                        }
                    }
                }
                Err(GraphError::Disconnected)
            }
        }
    }

    /// Shared Basic/BulkDelete driver.
    fn global_search(
        &self,
        q: &[VertexId],
        cfg: &CtcConfig,
        policy: DeletePolicy,
        scratch: &mut PeelScratch,
    ) -> Result<Community> {
        let t0 = Instant::now();
        let q = self.normalize_query(q)?;
        let g0 = self.locate_g0(&q, cfg, &mut scratch.find)?;
        let sub = ctc_graph::edge_subgraph(self.g, &g0.edges);
        let q_local = sub.locals(&q).ok_or(GraphError::Disconnected)?;
        let t_locate = t0.elapsed();
        let t1 = Instant::now();
        let out = peel_with(
            &sub.graph,
            &q_local,
            g0.k,
            policy,
            cfg.max_iterations,
            peel_parallelism(cfg, sub.graph.num_vertices(), q_local.len()),
            scratch,
        );
        let t_peel = t1.elapsed();
        Ok(assemble(
            &sub,
            g0.k,
            out,
            (g0.vertices.len(), g0.edges.len()),
            PhaseTimings::with_residual(t_locate, t_peel, t0.elapsed()),
        ))
    }

    /// Algorithm 1 (**Basic**): greedy single-vertex peeling.
    /// 2-approximation on the optimal diameter (Theorem 3).
    pub fn basic(&self, q: &[VertexId], cfg: &CtcConfig) -> Result<Community> {
        self.basic_with_scratch(q, cfg, &mut PeelScratch::new())
    }

    /// [`basic`](Self::basic) over caller-pooled scratch — the warm path:
    /// once the scratch has grown to the workload, the peel loop allocates
    /// nothing.
    pub fn basic_with_scratch(
        &self,
        q: &[VertexId],
        cfg: &CtcConfig,
        scratch: &mut PeelScratch,
    ) -> Result<Community> {
        self.global_search(q, cfg, DeletePolicy::SingleFurthest, scratch)
    }

    /// Algorithm 4 (**BulkDelete / BD**): batch peeling, `O(n'/k)` rounds,
    /// `(2+ε)`-approximation (Theorem 6).
    pub fn bulk_delete(&self, q: &[VertexId], cfg: &CtcConfig) -> Result<Community> {
        self.bulk_delete_with_scratch(q, cfg, &mut PeelScratch::new())
    }

    /// [`bulk_delete`](Self::bulk_delete) over caller-pooled scratch.
    pub fn bulk_delete_with_scratch(
        &self,
        q: &[VertexId],
        cfg: &CtcConfig,
        scratch: &mut PeelScratch,
    ) -> Result<Community> {
        self.global_search(q, cfg, DeletePolicy::BulkAtLeast, scratch)
    }

    /// The **Truss** baseline: `FindG0` with no diameter minimization.
    pub fn truss_only(&self, q: &[VertexId], cfg: &CtcConfig) -> Result<Community> {
        self.truss_only_with_scratch(q, cfg, &mut PeelScratch::new())
    }

    /// [`truss_only`](Self::truss_only) over caller-pooled scratch (only
    /// the locate-phase buffers are used; no peeling happens).
    pub fn truss_only_with_scratch(
        &self,
        q: &[VertexId],
        cfg: &CtcConfig,
        scratch: &mut PeelScratch,
    ) -> Result<Community> {
        let t0 = Instant::now();
        let q = self.normalize_query(q)?;
        let g0 = self.locate_g0(&q, cfg, &mut scratch.find)?;
        let sub = ctc_graph::edge_subgraph(self.g, &g0.edges);
        let q_local = sub.locals(&q).ok_or(GraphError::Disconnected)?;
        let t_locate = t0.elapsed();
        let mut bfs = BfsScratch::new(sub.num_vertices());
        let qd = ctc_graph::graph_query_distance(&sub.graph, &q_local, &mut bfs);
        let vertices = g0.vertices.clone();
        let edges = g0
            .edges
            .iter()
            .map(|&e| {
                let (u, v) = self.g.edge_endpoints(e);
                (u, v)
            })
            .collect();
        Ok(Community {
            k: g0.k,
            vertices,
            edges,
            query_distance: qd,
            iterations: 0,
            g0_size: (g0.vertices.len(), g0.edges.len()),
            timings: PhaseTimings::with_residual(t_locate, Default::default(), t0.elapsed()),
        })
    }

    /// Algorithm 5 (**LCTC**): Steiner-seeded local exploration + local
    /// truss extraction + bulk peeling. Heuristic; the fast default.
    pub fn local(&self, q: &[VertexId], cfg: &CtcConfig) -> Result<Community> {
        self.local_with_scratch(q, cfg, &mut PeelScratch::new())
    }

    /// [`local`](Self::local) over caller-pooled scratch.
    pub fn local_with_scratch(
        &self,
        q: &[VertexId],
        cfg: &CtcConfig,
        scratch: &mut PeelScratch,
    ) -> Result<Community> {
        let t0 = Instant::now();
        let q = self.normalize_query(q)?;
        // Step 1: truss-distance Steiner tree.
        let tree = steiner_tree(self.g, self.idx.get(), &q, cfg.gamma, cfg.steiner_mode)
            .ok_or(GraphError::Disconnected)?;
        // Step 2: expand to Gt (≤ η vertices).
        let gt = expand_tree(self.g, self.idx.get(), &tree, cfg.eta);
        let q_gt = gt.locals(&q).ok_or(GraphError::Disconnected)?;
        // Step 3: local truss decomposition + maximal connected k-truss
        // (the online decomposition LCTC pays per query — honors the
        // configured thread count; the serial build runs over the pooled
        // decomposition scratch, allocation-free once warm).
        let idx_t = if cfg.parallelism.is_serial() {
            TrussIndex::build_with(&gt.graph, &mut scratch.decomp)
        } else {
            TrussIndex::build_par(&gt.graph, cfg.parallelism)
        };
        let ht = match cfg.fixed_k {
            None => find_g0_with(&gt.graph, &idx_t, &q_gt, &mut scratch.find)?,
            Some(kf) => {
                let mut found = None;
                for k in (2..=kf).rev() {
                    if let Some(h) =
                        find_ktruss_containing_with(&gt.graph, &idx_t, &q_gt, k, &mut scratch.find)
                    {
                        if !h.edges.is_empty() {
                            found = Some(h);
                            break;
                        }
                    }
                }
                found.ok_or(GraphError::Disconnected)?
            }
        };
        // Materialize Ht in *original-graph* ids with canonical local
        // numbering: queries that reach the same community through
        // different Steiner trees peel a byte-identical subgraph, so the
        // pooled scratch's support cache keeps hitting across them.
        let mut ht_pairs: Vec<(VertexId, VertexId)> = ht
            .edges
            .iter()
            .map(|&e| {
                let (u, v) = gt.graph.edge_endpoints(e);
                let (pu, pv) = (gt.parent(u), gt.parent(v));
                if pu < pv {
                    (pu, pv)
                } else {
                    (pv, pu)
                }
            })
            .collect();
        ht_pairs.sort_unstable();
        let ht_sub = ctc_graph::subgraph_from_pairs(&ht_pairs);
        let q_ht = ht_sub.locals(&q).ok_or(GraphError::Disconnected)?;
        let t_locate = t0.elapsed();
        // Step 4: the L' bulk-deletion variant.
        let t1 = Instant::now();
        let out = peel_with(
            &ht_sub.graph,
            &q_ht,
            ht.k,
            DeletePolicy::LocalGreedy,
            cfg.max_iterations,
            peel_parallelism(cfg, ht_sub.graph.num_vertices(), q_ht.len()),
            scratch,
        );
        let t_peel = t1.elapsed();
        // ht_sub's parents are already original-graph ids.
        Ok(assemble(
            &ht_sub,
            ht.k,
            out,
            (ht.vertices.len(), ht.edges.len()),
            PhaseTimings::with_residual(t_locate, t_peel, t0.elapsed()),
        ))
    }
}

/// Thread policy for the peel phase's per-source distance repairs.
///
/// Spreading `|Q|` independent repairs over threads only pays when there
/// are multiple sources and enough graph for each per-source BFS/repair to
/// dwarf a scoped-thread spawn+join (paid every peeling round); below
/// that, stay serial. Results are byte-identical either way — the fields
/// are independent — so this is purely a scheduling choice, and
/// [`peel_with`] itself honors whatever [`Parallelism`] it is handed.
fn peel_parallelism(cfg: &CtcConfig, n: usize, q_len: usize) -> Parallelism {
    if q_len > 1 && n >= 4096 {
        cfg.parallelism
    } else {
        Parallelism::serial()
    }
}

/// Maps a [`PeelOutcome`] in `sub`-local ids back to parent ids.
fn assemble(
    sub: &Subgraph,
    k: u32,
    out: PeelOutcome,
    g0_size: (usize, usize),
    timings: PhaseTimings,
) -> Community {
    let mut vertices: Vec<VertexId> = out.vertices.iter().map(|&v| sub.parent(v)).collect();
    vertices.sort_unstable();
    let edges = out
        .edges
        .iter()
        .map(|&(u, v)| {
            let (pu, pv) = (sub.parent(u), sub.parent(v));
            if pu < pv {
                (pu, pv)
            } else {
                (pv, pu)
            }
        })
        .collect();
    Community {
        k,
        vertices,
        edges,
        query_distance: out.query_distance,
        iterations: out.iterations,
        g0_size,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_truss::fixtures::{figure1_graph, figure4_graph, Figure1Ids, Figure4Ids};

    fn searcher(g: &CsrGraph) -> CtcSearcher<'_> {
        CtcSearcher::new(g)
    }

    #[test]
    fn basic_on_figure1_finds_the_ctc() {
        let g = figure1_graph();
        let s = searcher(&g);
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let c = s.basic(&q, &CtcConfig::default()).unwrap();
        assert_eq!(c.k, 4);
        assert_eq!(c.num_vertices(), 8, "Figure 1(b)");
        assert_eq!(c.diameter(), 3, "optimal diameter (paper Example 4)");
        c.validate(&q).unwrap();
    }

    #[test]
    fn bulk_on_figure1_returns_g0() {
        // Example 7: BD terminates immediately and reports all of G0
        // (diameter 4 vs Basic's 3).
        let g = figure1_graph();
        let s = searcher(&g);
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let c = s.bulk_delete(&q, &CtcConfig::default()).unwrap();
        assert_eq!(c.k, 4);
        assert_eq!(c.num_vertices(), 11);
        assert_eq!(c.diameter(), 4);
        c.validate(&q).unwrap();
    }

    #[test]
    fn local_on_figure1_matches_basic_quality() {
        let g = figure1_graph();
        let s = searcher(&g);
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let c = s.local(&q, &CtcConfig::default()).unwrap();
        assert_eq!(c.k, 4);
        c.validate(&q).unwrap();
        assert!(c.diameter() <= 4);
        assert!(c.num_vertices() <= 11);
        // LCTC's L' policy should also drop the free riders here.
        assert!(!c.vertices.contains(&f.p1), "p1 is a free rider");
    }

    #[test]
    fn truss_baseline_reports_g0_untouched() {
        let g = figure1_graph();
        let s = searcher(&g);
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let c = s.truss_only(&q, &CtcConfig::default()).unwrap();
        assert_eq!(c.num_vertices(), 11);
        assert_eq!(c.iterations, 0);
        assert_eq!(c.query_distance, 4, "p1 is 4 hops from q1 inside G0");
        c.validate(&q).unwrap();
    }

    #[test]
    fn figure4_bridge_query_gets_k2() {
        let g = figure4_graph();
        let s = searcher(&g);
        let f = Figure4Ids::default();
        let q = [f.q1, f.q2];
        for c in [
            s.basic(&q, &CtcConfig::default()).unwrap(),
            s.bulk_delete(&q, &CtcConfig::default()).unwrap(),
            s.local(&q, &CtcConfig::default()).unwrap(),
        ] {
            assert_eq!(c.k, 2, "two K4s joined by a weak bridge");
            c.validate(&q).unwrap();
        }
    }

    #[test]
    fn fixed_k_trades_trussness_for_diameter() {
        // §7.1: at k = 2, the 5-cycle through t (diameter 2) becomes
        // admissible for Q = {q1, q2, q3}.
        let g = figure1_graph();
        let s = searcher(&g);
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let at_max = s.basic(&q, &CtcConfig::default()).unwrap();
        let at_2 = s.basic(&q, &CtcConfig::new().fixed_k(2)).unwrap();
        assert_eq!(at_max.k, 4);
        assert_eq!(at_2.k, 2);
        assert!(at_2.diameter() <= at_max.diameter());
    }

    #[test]
    fn error_paths() {
        let g = figure1_graph();
        let s = searcher(&g);
        assert_eq!(
            s.basic(&[], &CtcConfig::default()).unwrap_err(),
            GraphError::EmptyQuery
        );
        assert!(matches!(
            s.basic(&[VertexId(99)], &CtcConfig::default()).unwrap_err(),
            GraphError::VertexOutOfRange { .. }
        ));
    }

    #[test]
    fn parallel_searcher_matches_serial_end_to_end() {
        let g = figure1_graph();
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let serial = CtcSearcher::new(&g);
        let parallel = CtcSearcher::with_parallelism(&g, Parallelism::threads(4));
        assert_eq!(
            serial.index().edge_truss_slice(),
            parallel.index().edge_truss_slice(),
            "index must not depend on thread count"
        );
        let cfg_par = CtcConfig::new().threads(4);
        for (a, b) in [
            (
                serial.basic(&q, &CtcConfig::default()).unwrap(),
                parallel.basic(&q, &cfg_par).unwrap(),
            ),
            (
                serial.local(&q, &CtcConfig::default()).unwrap(),
                parallel.local(&q, &cfg_par).unwrap(),
            ),
        ] {
            assert_eq!(a.k, b.k);
            assert_eq!(a.vertices, b.vertices);
            assert_eq!(a.edges, b.edges);
        }
    }

    #[test]
    fn duplicate_query_vertices_are_deduped() {
        let g = figure1_graph();
        let s = searcher(&g);
        let f = Figure1Ids::default();
        let c = s.basic(&[f.q1, f.q1, f.q2], &CtcConfig::default()).unwrap();
        c.validate(&[f.q1, f.q2]).unwrap();
    }

    #[test]
    fn singleton_query_all_algorithms() {
        let g = figure1_graph();
        let s = searcher(&g);
        let f = Figure1Ids::default();
        let q = [f.q3];
        for c in [
            s.basic(&q, &CtcConfig::default()).unwrap(),
            s.bulk_delete(&q, &CtcConfig::default()).unwrap(),
            s.local(&q, &CtcConfig::default()).unwrap(),
        ] {
            assert_eq!(c.k, 4);
            c.validate(&q).unwrap();
        }
    }

    #[test]
    fn eta_one_still_returns_a_community() {
        let g = figure1_graph();
        let s = searcher(&g);
        let f = Figure1Ids::default();
        // With a tiny η the expansion is just the tree; LCTC degrades but
        // must stay correct.
        let c = s.local(&[f.q1, f.q2], &CtcConfig::new().eta(1)).unwrap();
        c.validate(&[f.q1, f.q2]).unwrap();
    }
}
