//! Property suite pinning the incremental peel engine to the
//! full-recompute oracle: on random ER/BA/planted graphs, for every
//! [`DeletePolicy`] and at 1/2/4 repair threads, `peel_with` must return
//! byte-identical communities to `peel_reference` (which re-runs `|Q|`
//! BFS passes per round, exactly like the pre-incremental implementation).

use ctc_core::{peel_reference, peel_with, DeletePolicy, PeelScratch};
use ctc_gen::planted::{planted_partition, PlantedConfig};
use ctc_gen::random::{barabasi_albert, erdos_renyi_nm};
use ctc_graph::{edge_subgraph, CsrGraph, Parallelism, VertexId};
use ctc_truss::{find_g0, TrussIndex};

const POLICIES: [DeletePolicy; 3] = [
    DeletePolicy::SingleFurthest,
    DeletePolicy::BulkAtLeast,
    DeletePolicy::LocalGreedy,
];
const THREADS: [usize; 3] = [1, 2, 4];

/// Runs the real pipeline prefix (FindG0) for `q`, then compares the
/// incremental and reference peel loops on the extracted subgraph.
fn assert_incremental_matches_reference(g: &CsrGraph, q: &[VertexId], label: &str) {
    let idx = TrussIndex::build(g);
    let Ok(g0) = find_g0(g, &idx, q) else {
        return; // disconnected query: nothing to peel
    };
    if g0.edges.is_empty() {
        return;
    }
    let sub = edge_subgraph(g, &g0.edges);
    let Some(ql) = sub.locals(q) else {
        return;
    };
    let mut scratch = PeelScratch::new();
    for policy in POLICIES {
        let slow = peel_reference(&sub.graph, &ql, g0.k, policy, None);
        for threads in THREADS {
            let fast = peel_with(
                &sub.graph,
                &ql,
                g0.k,
                policy,
                None,
                Parallelism::threads(threads),
                &mut scratch,
            );
            assert_eq!(
                fast.vertices, slow.vertices,
                "{label}: {policy:?} t={threads} vertices diverged (q={q:?}, k={})",
                g0.k
            );
            assert_eq!(
                fast.edges, slow.edges,
                "{label}: {policy:?} t={threads} edges diverged"
            );
            assert_eq!(
                fast.query_distance, slow.query_distance,
                "{label}: {policy:?} t={threads} distance diverged"
            );
            assert_eq!(
                fast.iterations, slow.iterations,
                "{label}: {policy:?} t={threads} iteration count diverged"
            );
        }
    }
}

fn queries_for(g: &CsrGraph, seed: u64) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices() as u64;
    if n == 0 {
        return Vec::new();
    }
    let mut state = seed | 1;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        VertexId(((state >> 33) % n) as u32)
    };
    vec![
        vec![next()],
        vec![next(), next()],
        vec![next(), next(), next()],
    ]
}

fn exercise(g: &CsrGraph, seed: u64, label: &str) {
    for mut q in queries_for(g, seed) {
        q.sort_unstable();
        q.dedup();
        assert_incremental_matches_reference(g, &q, label);
    }
}

#[test]
fn er_graphs_match() {
    for seed in 0..8u64 {
        let n = 20 + (seed as usize % 5) * 13;
        let g = erdos_renyi_nm(n, n * 4, seed);
        exercise(&g, seed.wrapping_mul(977), "er");
    }
}

#[test]
fn ba_graphs_match() {
    for seed in 0..8u64 {
        let n = 25 + (seed as usize % 4) * 17;
        let g = barabasi_albert(n, 3, seed);
        exercise(&g, seed.wrapping_mul(1489), "ba");
    }
}

#[test]
fn planted_graphs_match() {
    for seed in 0..4u64 {
        let net = planted_partition(&PlantedConfig {
            community_sizes: vec![12, 15, 10],
            background_vertices: 5,
            p_in: 0.55,
            noise_edges_per_vertex: 1.0,
            seed,
        });
        exercise(&net.graph, seed.wrapping_mul(3331), "planted");
    }
}
