//! Differential battery for online updates through [`CommunityEngine`]:
//! after any interleaving of `insert_edge` / `delete_edge` / `apply_batch`
//! and searches, every answer of every algorithm must be byte-identical
//! to a *fresh* engine built cold from the mutated edge list. This is the
//! end-to-end pin that the engine's republished graph/index Arcs — the
//! state all cached or concurrent readers see — never drift from the
//! maintained [`DynamicIndex`] state, for all four search algorithms.

use ctc_core::{CommunityEngine, EngineUpdate, SearchAlgo};
use ctc_gen::random::{barabasi_albert, erdos_renyi_nm};
use ctc_graph::{CsrGraph, VertexId};
use proptest::prelude::*;
use std::collections::BTreeSet;

const ALGOS: [SearchAlgo; 4] = [
    SearchAlgo::Basic,
    SearchAlgo::BulkDelete,
    SearchAlgo::Local,
    SearchAlgo::TrussOnly,
];

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A cold engine over exactly `edges` on a fixed vertex set of size `n`
/// (the vertex set never changes online, so the oracle must keep it too).
fn fresh_engine(n: usize, edges: &BTreeSet<(u32, u32)>) -> CommunityEngine {
    let g = CsrGraph::from_canonical_edges(n, edges.iter().copied().collect())
        .expect("tracked edge set is canonical");
    CommunityEngine::build(g)
}

/// Every algorithm, on every query, must answer identically (success
/// payloads field-for-field, failures message-for-message) between the
/// maintained engine and the cold oracle.
fn assert_answers_match(
    maintained: &CommunityEngine,
    oracle: &CommunityEngine,
    queries: &[Vec<VertexId>],
    label: &str,
) {
    for q in queries {
        for algo in ALGOS {
            match (maintained.search(q, algo), oracle.search(q, algo)) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.k, b.k, "{label}: k for {q:?} via {algo:?}");
                    assert_eq!(
                        a.vertices, b.vertices,
                        "{label}: vertices for {q:?} via {algo:?}"
                    );
                    assert_eq!(a.edges, b.edges, "{label}: edges for {q:?} via {algo:?}");
                    assert_eq!(
                        a.query_distance, b.query_distance,
                        "{label}: query distance for {q:?} via {algo:?}"
                    );
                }
                (Err(a), Err(b)) => {
                    assert_eq!(
                        a.to_string(),
                        b.to_string(),
                        "{label}: error for {q:?} via {algo:?}"
                    );
                }
                (a, b) => panic!(
                    "{label}: {q:?} via {algo:?}: maintained {a:?} but a fresh build says {b:?}"
                ),
            }
        }
    }
}

/// Random queries biased toward vertices that still have incident edges
/// (isolated-vertex queries are kept too — both sides must fail alike).
fn sample_queries(n: usize, rng: &mut u64) -> Vec<Vec<VertexId>> {
    (0..3)
        .map(|_| {
            let len = 1 + (splitmix(rng) % 3) as usize;
            (0..len)
                .map(|_| VertexId((splitmix(rng) % n as u64) as u32))
                .collect()
        })
        .collect()
}

fn run_interleaving(g: CsrGraph, seed: u64, steps: usize, label: &str) {
    let n = g.num_vertices();
    if n < 2 {
        return;
    }
    let mut edges: BTreeSet<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
    let mut engine = CommunityEngine::build(g);
    let mut rng = seed ^ 0x0dd_c0ffee;
    for step in 0..steps {
        let u = VertexId((splitmix(&mut rng) % n as u64) as u32);
        let v = VertexId((splitmix(&mut rng) % n as u64) as u32);
        if u == v {
            continue;
        }
        let key = (u.0.min(v.0), u.0.max(v.0));
        if edges.contains(&key) {
            engine
                .delete_edge(u, v)
                .unwrap_or_else(|e| panic!("{label}: delete {key:?} at step {step}: {e}"));
            edges.remove(&key);
        } else {
            engine
                .insert_edge(u, v)
                .unwrap_or_else(|e| panic!("{label}: insert {key:?} at step {step}: {e}"));
            edges.insert(key);
        }
        // Check all algorithms every few updates (and always at the end):
        // a fresh engine build per check is the expensive oracle.
        if step % 4 == 3 || step + 1 == steps {
            let oracle = fresh_engine(n, &edges);
            let queries = sample_queries(n, &mut rng);
            assert_answers_match(&engine, &oracle, &queries, label);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn updates_and_searches_interleave_on_er_graphs(
        n in 6usize..36,
        edges_per_vertex in 1usize..4,
        seed in 0u64..100_000,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        run_interleaving(g, seed, 12, "erdos_renyi_nm");
    }

    #[test]
    fn updates_and_searches_interleave_on_preferential_attachment(
        n in 8usize..40,
        m_per_node in 2usize..4,
        seed in 0u64..100_000,
    ) {
        let g = barabasi_albert(n, m_per_node, seed);
        run_interleaving(g, seed, 12, "barabasi_albert");
    }

    /// Readers holding a pre-update engine clone must keep answering from
    /// the old graph — the frozen-view guarantee concurrent `/search`
    /// workers rely on while a batch republishes.
    #[test]
    fn pre_update_clones_answer_from_the_old_graph(
        n in 6usize..28,
        edges_per_vertex in 1usize..4,
        seed in 0u64..100_000,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        let n = g.num_vertices();
        let before_edges: BTreeSet<(u32, u32)> =
            g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
        if before_edges.is_empty() {
            return Ok(());
        }
        let mut engine = CommunityEngine::build(g);
        let reader = engine.frozen_clone();

        // Mutate: drop a few edges, insert one.
        let mut rng = seed;
        let victims: Vec<(u32, u32)> = before_edges
            .iter()
            .copied()
            .filter(|_| splitmix(&mut rng).is_multiple_of(3))
            .take(4)
            .collect();
        let batch: Vec<EngineUpdate> = victims
            .iter()
            .map(|&(u, v)| EngineUpdate::delete(VertexId(u), VertexId(v)))
            .collect();
        let report = engine.apply_batch(&batch).unwrap();
        prop_assert_eq!(report.applied, victims.len());

        // The stale reader matches a cold build of the OLD edge set; the
        // mutated engine matches a cold build of the NEW edge set.
        let mut after_edges = before_edges.clone();
        for v in &victims {
            after_edges.remove(v);
        }
        let mut rng2 = seed ^ 0xbeef;
        let queries = sample_queries(n, &mut rng2);
        assert_answers_match(&reader, &fresh_engine(n, &before_edges), &queries, "stale reader");
        assert_answers_match(&engine, &fresh_engine(n, &after_edges), &queries, "mutated engine");
    }
}
