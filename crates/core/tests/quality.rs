//! Quality-focused integration tests for the search algorithms on
//! generated networks (beyond the unit fixtures).

use ctc_core::{CtcConfig, CtcSearcher, SteinerMode};
use ctc_gen::{planted_equal, DegreeRank, QueryGenerator};

#[test]
fn lctc_matches_global_trussness_on_tight_queries() {
    // Queries inside one dense planted circle: the local exploration must
    // certify the same k as the global algorithms (Fig. 13b's claim).
    let gt = planted_equal(10, 40, 0.5, 1.0, 77);
    let g = &gt.graph;
    let searcher = CtcSearcher::new(g);
    let cfg = CtcConfig::default();
    let mut qg = QueryGenerator::new(g, 5);
    let mut same = 0;
    let mut total = 0;
    for _ in 0..12 {
        let Some((q, _)) = qg.sample_from_ground_truth(&gt, 3) else {
            continue;
        };
        let Ok(global) = searcher.bulk_delete(&q, &cfg) else {
            continue;
        };
        let Ok(local) = searcher.local(&q, &cfg) else {
            continue;
        };
        total += 1;
        if local.k == global.k {
            same += 1;
        }
        assert!(
            local.k >= global.k.saturating_sub(2),
            "LCTC trussness too far off"
        );
    }
    assert!(total >= 8, "too few comparisons ran");
    assert!(
        same * 10 >= total * 7,
        "LCTC matched global k only {same}/{total} times"
    );
}

#[test]
fn steiner_modes_agree_on_high_truss_queries() {
    // Inside a dense circle every connecting path is high-truss; both
    // distance modes must produce communities of equal trussness.
    let gt = planted_equal(8, 30, 0.6, 0.8, 41);
    let g = &gt.graph;
    let searcher = CtcSearcher::new(g);
    let mut qg = QueryGenerator::new(g, 9);
    for _ in 0..8 {
        let Some((q, _)) = qg.sample_from_ground_truth(&gt, 3) else {
            continue;
        };
        let exact = searcher
            .local(
                &q,
                &CtcConfig::new().steiner_mode(SteinerMode::PathMinExact),
            )
            .unwrap();
        let additive = searcher
            .local(
                &q,
                &CtcConfig::new().steiner_mode(SteinerMode::EdgeAdditive),
            )
            .unwrap();
        assert_eq!(exact.k, additive.k, "modes disagree on trussness");
    }
}

#[test]
fn fixed_k_sweep_is_feasible_below_max() {
    let gt = planted_equal(6, 30, 0.6, 0.8, 13);
    let g = &gt.graph;
    let searcher = CtcSearcher::new(g);
    let mut qg = QueryGenerator::new(g, 3);
    let (q, _) = qg.sample_from_ground_truth(&gt, 2).expect("query");
    let max = searcher.bulk_delete(&q, &CtcConfig::default()).unwrap().k;
    assert!(max >= 3, "planted circle should be dense (k = {max})");
    for k in 2..=max {
        let c = searcher
            .bulk_delete(&q, &CtcConfig::new().fixed_k(k))
            .unwrap_or_else(|e| panic!("fixed k={k} infeasible below max {max}: {e}"));
        assert_eq!(c.k, k);
        c.validate(&q).unwrap();
    }
}

#[test]
fn eta_monotonicity_of_exploration() {
    // A larger exploration budget can only see more of the graph; the
    // certified trussness must be non-decreasing in η.
    let gt = planted_equal(8, 35, 0.5, 1.0, 57);
    let g = &gt.graph;
    let searcher = CtcSearcher::new(g);
    let mut qg = QueryGenerator::new(g, 21);
    for _ in 0..6 {
        let Some(q) = qg.sample(2, DegreeRank::top(0.8), 2) else {
            continue;
        };
        let mut prev_k = 0;
        for eta in [10usize, 100, 1000] {
            let Ok(c) = searcher.local(&q, &CtcConfig::new().eta(eta)) else {
                continue;
            };
            assert!(
                c.k >= prev_k,
                "trussness dropped when η grew: {} -> {} at η={eta}",
                prev_k,
                c.k
            );
            prev_k = c.k;
        }
    }
}

#[test]
fn community_timings_are_populated() {
    let gt = planted_equal(5, 25, 0.6, 0.8, 3);
    let g = &gt.graph;
    let searcher = CtcSearcher::new(g);
    let mut qg = QueryGenerator::new(g, 1);
    let (q, _) = qg.sample_from_ground_truth(&gt, 2).unwrap();
    let c = searcher.basic(&q, &CtcConfig::default()).unwrap();
    assert!(c.timings.total >= c.timings.peel);
    assert!(c.timings.total.as_nanos() > 0);
}
