//! Lemma 6 / §5.2 threshold audit regression.
//!
//! BulkDelete deletes `{u : dist(u,Q) ≥ d − 1}` and the LCTC inner loop
//! uses `L' = {u : dist(u,Q) ≥ d}` — in both, `d` is the query distance of
//! the **current** round's graph. An earlier implementation keyed both
//! thresholds on the best (smallest) distance seen so far; the two agree
//! in round 0 and on every monotonically-improving run (all the Figure-1
//! examples), but diverge as soon as a cascade makes the graph temporarily
//! worse (`d_graph > best_dist`): the best-so-far threshold is then too
//! low and deletes whole extra layers per round.
//!
//! This test pins a concrete planted graph (found by exhaustive search)
//! where the two semantics visit different snapshot sequences, and asserts
//! the shipped peel follows the paper's current-round definition.

use ctc_core::{peel, DeletePolicy};
use ctc_gen::planted::{planted_partition, PlantedConfig};
use ctc_graph::{
    edge_subgraph, query_connected, BfsScratch, CsrGraph, DynGraph, Subgraph, VertexId, INF,
};
use ctc_truss::{find_g0, TrussIndex, TrussMaintainer};

/// The divergence fixture: seed 91 of this planted family, Q = {7, 20}.
fn fixture() -> (Subgraph, Vec<VertexId>, u32) {
    let net = planted_partition(&PlantedConfig {
        community_sizes: vec![15, 12, 10],
        background_vertices: 4,
        p_in: 0.5,
        noise_edges_per_vertex: 1.2,
        seed: 91,
    });
    let g = net.graph;
    let idx = TrussIndex::build(&g);
    let q = vec![VertexId(7), VertexId(20)];
    let g0 = find_g0(&g, &idx, &q).expect("fixture query is connected");
    let sub = edge_subgraph(&g, &g0.edges);
    let ql = sub.locals(&q).expect("query inside G0");
    (sub, ql, g0.k)
}

/// The rejected best-so-far variant of BulkDelete, kept here (test-only)
/// as the counterfactual: thresholds keyed on `best_dist` instead of the
/// current round's `d_graph`.
fn bulk_peel_best_so_far(sub: &CsrGraph, q: &[VertexId], k: u32) -> (usize, u32) {
    let n = sub.num_vertices();
    let mut live = DynGraph::new(sub);
    let mut maint = TrussMaintainer::new(&live, k);
    let mut scratch = BfsScratch::new(n);
    let mut dist_max = vec![0u32; n];
    let mut vertex_removed_at = vec![u32::MAX; n];
    let (mut best_dist, mut best_iter, mut iter) = (INF, 0u32, 0u32);
    while query_connected(&live, q, &mut scratch) {
        dist_max.iter_mut().for_each(|x| *x = 0);
        for &qv in q {
            scratch.run(&live, qv);
            for (v, slot) in dist_max.iter_mut().enumerate() {
                *slot = (*slot).max(scratch.dist(VertexId::from(v)));
            }
        }
        let d_graph = live
            .alive_vertices()
            .map(|v| dist_max[v.index()])
            .max()
            .unwrap_or(0);
        if d_graph < best_dist {
            best_dist = d_graph;
            best_iter = iter;
        }
        if d_graph == 0 {
            break;
        }
        let threshold = best_dist.saturating_sub(1).max(1); // ← the audit target
        let victims: Vec<VertexId> = live
            .alive_vertices()
            .filter(|&v| dist_max[v.index()] >= threshold)
            .collect();
        if victims.is_empty() {
            break;
        }
        let report = maint.delete_vertices(&mut live, &victims);
        for &v in &report.vertices {
            vertex_removed_at[v.index()] = iter;
        }
        iter += 1;
    }
    let kept = vertex_removed_at
        .iter()
        .filter(|&&at| at >= best_iter)
        .count();
    (kept, best_dist)
}

#[test]
fn bulk_delete_follows_lemma6_not_best_so_far() {
    let (sub, ql, k) = fixture();
    assert_eq!(k, 3, "fixture trussness changed — regenerate the fixture");

    // The counterfactual must actually diverge on this graph, proving the
    // fixture exercises a round with d_graph > best_dist.
    let (old_kept, old_qd) = bulk_peel_best_so_far(&sub.graph, &ql, k);
    let out = peel(&sub.graph, &ql, k, DeletePolicy::BulkAtLeast, None);
    assert_ne!(
        (out.vertices.len(), out.query_distance),
        (old_kept, old_qd),
        "fixture no longer separates the two threshold semantics"
    );

    // Pin the Lemma 6 (current-round d) outcome.
    assert_eq!(out.vertices.len(), 11, "current-d BulkDelete community");
    assert_eq!(out.query_distance, 3);
    assert_eq!(out.iterations, 3);
    // And the counterfactual's, so a future semantics drift in either
    // direction trips this test loudly.
    assert_eq!((old_kept, old_qd), (9, 2), "best-so-far counterfactual");
}
