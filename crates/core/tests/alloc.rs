//! Counting-allocator proof that the warm peel path allocates nothing.
//!
//! `CommunityEngine::search` / `search_batch` run their peeling through a
//! pooled [`PeelScratch`] (the engine's scratch pool), so the per-request
//! peel work is exactly one [`peel_rounds`] call over warm buffers. This
//! test installs a counting global allocator, warms a scratch on the
//! workload, and then asserts the round loop performs **zero** heap
//! allocations — for every deletion policy.
//!
//! Single test function on purpose: the allocation counter is global, and
//! concurrent tests in the same binary would pollute the measurement.

use ctc_core::{peel_rounds, peel_with, DeletePolicy, PeelScratch};
use ctc_gen::planted::{planted_partition, PlantedConfig};
use ctc_graph::{edge_subgraph, Parallelism, VertexId};
use ctc_truss::{find_g0, TrussIndex};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn warm_peel_rounds_allocate_nothing() {
    // A non-trivial community-structured graph so the peel actually runs
    // multiple rounds with cascades.
    let net = planted_partition(&PlantedConfig {
        community_sizes: vec![25, 30, 20],
        background_vertices: 8,
        p_in: 0.5,
        noise_edges_per_vertex: 1.0,
        seed: 11,
    });
    let g = net.graph;
    let idx = TrussIndex::build(&g);
    let q = [VertexId(2), VertexId(7), VertexId(12)];
    let g0 = find_g0(&g, &idx, &q).expect("query connected in planted graph");
    let sub = edge_subgraph(&g, &g0.edges);
    let ql = sub.locals(&q).expect("query inside G0");

    for policy in [
        DeletePolicy::SingleFurthest,
        DeletePolicy::BulkAtLeast,
        DeletePolicy::LocalGreedy,
    ] {
        let mut scratch = PeelScratch::new();
        // Two warm-up passes: every pooled buffer reaches its high-water
        // mark for this (graph, query, policy) workload.
        for _ in 0..2 {
            let _ = peel_with(
                &sub.graph,
                &ql,
                g0.k,
                policy,
                None,
                Parallelism::serial(),
                &mut scratch,
            );
        }
        // The counter is process-global, so a concurrently-allocating
        // libtest harness thread could inflate one measurement. A single
        // zero-delta run is sound proof (the loop cannot subtract someone
        // else's allocations), so measure a few times and require one.
        let mut min_delta = u64::MAX;
        for _ in 0..5 {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            let stats = peel_rounds(
                &sub.graph,
                &ql,
                g0.k,
                policy,
                None,
                Parallelism::serial(),
                &mut scratch,
            );
            let after = ALLOCATIONS.load(Ordering::SeqCst);
            assert!(
                stats.iterations > 0,
                "{policy:?}: the workload must actually peel"
            );
            min_delta = min_delta.min(after - before);
            if min_delta == 0 {
                break;
            }
        }
        assert_eq!(
            min_delta, 0,
            "{policy:?}: warm peel_rounds performed {min_delta} heap allocations \
             in its best run"
        );
    }
}
