//! The snapshot registry: many named engines behind one daemon.
//!
//! Each *tenant* is a named engine the server routes to under
//! `/t/<name>/search|update|stats`. A tenant is either **engine-backed**
//! (handed to the registry already built — the default tenant, tests,
//! in-process drivers) or **path-backed** (a `.ctci` snapshot loaded
//! lazily on first request). Path-backed tenants are the point: one
//! daemon fronts a directory of indexed graphs without paying resident
//! memory for all of them at once.
//!
//! Cold tenants are evicted under a bytes-weighted LRU policy:
//!
//! * every loaded tenant is weighted by [`CommunityEngine::memory_bytes`];
//! * when the resident total exceeds the budget, the least recently used
//!   *evictable* tenant is unloaded until the total fits;
//! * a tenant is evictable only when it is path-backed (it can come
//!   back), **clean** (no applied updates since load — reloading a dirty
//!   tenant would silently discard maintained edits), and **unpinned**
//!   (no in-flight request holds its state: pinning is the `Arc` strong
//!   count, so eviction never yanks an engine out from under a search —
//!   the bytes are reclaimed when the last in-flight request finishes).
//!
//! Per-tenant request counters live in the registry *entry*, not the
//! loaded state, so `/t/<name>/stats` arithmetic stays exact across an
//! evict → reload cycle.

use crate::cache::LruCache;
use crate::wire::QueryKey;
use ctc_core::CommunityEngine;
use ctc_truss::DeltaLogFile;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::{Duration, Instant};

/// Tuning for the per-tenant health state machine (see [`TenantHealth`]).
#[derive(Clone, Debug)]
pub struct HealthPolicy {
    /// Consecutive failures (failed snapshot loads, panicking handlers)
    /// that trip a tenant from degraded to quarantined.
    pub quarantine_after: u32,
    /// How long a freshly quarantined tenant sheds requests before one
    /// probe request is admitted to attempt a reload.
    pub base_backoff: Duration,
    /// Ceiling on the exponential backoff between probes.
    pub max_backoff: Duration,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            quarantine_after: 3,
            base_backoff: Duration::from_secs(1),
            max_backoff: Duration::from_secs(60),
        }
    }
}

/// Where a tenant sits in the health state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthStatus {
    /// Serving normally.
    Healthy,
    /// Recent failures below the quarantine threshold; still serving.
    Degraded,
    /// Repeated failures: requests shed with `503` + `retry-after` until
    /// a backoff-paced probe succeeds.
    Quarantined,
}

impl HealthStatus {
    /// The wire spelling used in `/healthz` and `/stats` bodies.
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Healthy => "healthy",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Quarantined => "quarantined",
        }
    }
}

#[derive(Debug)]
struct HealthInner {
    status: HealthStatus,
    consecutive_failures: u32,
    backoff: Duration,
    /// While quarantined: no request is admitted before this instant;
    /// the first one after it is the probe.
    retry_at: Option<Instant>,
    reason: String,
    quarantines: u64,
}

/// A point-in-time copy of one tenant's health, for `/stats`.
#[derive(Clone, Debug)]
pub struct HealthSnapshot {
    /// Current state-machine position.
    pub status: HealthStatus,
    /// Failures since the last success.
    pub consecutive_failures: u32,
    /// What the last failure was (empty when healthy).
    pub reason: String,
    /// Times this tenant has entered quarantine.
    pub quarantines: u64,
    /// Seconds until the next probe is admitted (`None` unless
    /// quarantined with a pending backoff).
    pub retry_in_secs: Option<u64>,
}

/// The per-tenant health state machine: healthy → degraded → quarantined,
/// driven by load failures and panicking handlers, healed by a successful
/// backoff-paced probe.
///
/// Shared (like [`TenantCounters`]) between the registry entry and the
/// loaded [`TenantState`], so health survives eviction and reload — a
/// tenant that quarantined while unloaded stays quarantined until a probe
/// load succeeds.
#[derive(Debug)]
pub struct TenantHealth {
    policy: HealthPolicy,
    inner: Mutex<HealthInner>,
}

impl TenantHealth {
    /// A healthy tenant under `policy`.
    pub fn new(policy: HealthPolicy) -> Self {
        let backoff = policy.base_backoff;
        TenantHealth {
            policy,
            inner: Mutex::new(HealthInner {
                status: HealthStatus::Healthy,
                consecutive_failures: 0,
                backoff,
                retry_at: None,
                reason: String::new(),
                quarantines: 0,
            }),
        }
    }

    fn lock(&self) -> MutexGuard<'_, HealthInner> {
        // Health transitions are tiny scalar writes; a panic between them
        // leaves nothing structurally invalid, so poisoning is ignored.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current state-machine position.
    pub fn status(&self) -> HealthStatus {
        self.lock().status
    }

    /// A point-in-time copy for `/stats`.
    pub fn snapshot(&self) -> HealthSnapshot {
        let inner = self.lock();
        HealthSnapshot {
            status: inner.status,
            consecutive_failures: inner.consecutive_failures,
            reason: inner.reason.clone(),
            quarantines: inner.quarantines,
            retry_in_secs: inner
                .retry_at
                .map(|t| t.saturating_duration_since(Instant::now()).as_secs()),
        }
    }

    /// Admission gate. `Ok` admits the request; while quarantined with
    /// backoff remaining it returns `Err((retry_after_secs, reason))` so
    /// the caller sheds with `503` + `retry-after`. Once the backoff
    /// elapses exactly one request is admitted as the *probe* — the gate
    /// re-arms immediately, so concurrent requests keep shedding while
    /// the probe runs; the probe's outcome (success or another failure)
    /// decides what happens next.
    pub fn check_admit(&self) -> Result<(), (u64, String)> {
        let mut inner = self.lock();
        if inner.status != HealthStatus::Quarantined {
            return Ok(());
        }
        let now = Instant::now();
        match inner.retry_at {
            Some(t) if t > now => {
                let secs = t.saturating_duration_since(now).as_secs().max(1);
                Err((secs, inner.reason.clone()))
            }
            _ => {
                let backoff = inner.backoff;
                inner.retry_at = Some(now + backoff);
                Ok(())
            }
        }
    }

    /// Records a failure (failed load, panicking handler). Transitions
    /// degraded → quarantined at the policy threshold; a failure while
    /// already quarantined doubles the backoff (capped).
    pub fn record_failure(&self, what: &str) {
        let mut inner = self.lock();
        inner.consecutive_failures += 1;
        inner.reason = what.to_string();
        let now = Instant::now();
        match inner.status {
            HealthStatus::Quarantined => {
                inner.backoff = (inner.backoff * 2).min(self.policy.max_backoff);
                inner.retry_at = Some(now + inner.backoff);
            }
            _ if inner.consecutive_failures >= self.policy.quarantine_after => {
                inner.status = HealthStatus::Quarantined;
                inner.quarantines += 1;
                inner.backoff = self.policy.base_backoff;
                inner.retry_at = Some(now + inner.backoff);
            }
            _ => inner.status = HealthStatus::Degraded,
        }
    }

    /// Records a success: the tenant returns to healthy and the backoff
    /// resets.
    pub fn record_success(&self) {
        let mut inner = self.lock();
        inner.status = HealthStatus::Healthy;
        inner.consecutive_failures = 0;
        inner.backoff = self.policy.base_backoff;
        inner.retry_at = None;
        inner.reason.clear();
    }
}

/// A cached `/search` answer: the encoded body plus the answer's
/// trussness `k`, the class-keyed invalidation handle — an applied
/// update with `max_class < k` provably cannot change this answer (for
/// the exact algorithms), so the entry survives the update.
#[derive(Clone)]
pub(crate) struct CachedAnswer {
    pub(crate) k: u32,
    pub(crate) body: Arc<Vec<u8>>,
}

/// Monotonic per-tenant counters. Owned by the registry entry and shared
/// into the loaded [`TenantState`], so values survive eviction/reload.
#[derive(Debug, Default)]
pub struct TenantCounters {
    /// `/t/<name>/search` answers served (cache hits included).
    pub search_ok: AtomicU64,
    /// `/t/<name>/search` requests that failed.
    pub search_err: AtomicU64,
    /// Answers served from this tenant's LRU cache.
    pub cache_hits: AtomicU64,
    /// Answers that ran the full search path.
    pub cache_misses: AtomicU64,
    /// `/t/<name>/update` batches answered `200`.
    pub update_ok: AtomicU64,
    /// `/t/<name>/update` requests rejected (`400`/`500`).
    pub update_err: AtomicU64,
    /// Individual edge updates applied across `200` batches.
    pub updates_applied: AtomicU64,
    /// Individual edge updates rejected across `200` batches.
    pub updates_rejected: AtomicU64,
    /// Requests shed with `429` because the tenant was at its in-flight
    /// cap — admission control, not failure.
    pub sheds_429: AtomicU64,
    /// Applied updates journaled to the tenant's write-ahead delta log.
    pub wal_appended: AtomicU64,
    /// Write-ahead append failures. The first one detaches the log (its
    /// in-memory view may be ahead of the file) and degrades the tenant's
    /// health; durability is lost but serving continues.
    pub wal_errors: AtomicU64,
    /// Requests currently inside this tenant's search/update handlers
    /// (a gauge, not a monotonic counter).
    pub in_flight: AtomicU64,
}

/// One tenant's loaded serving state. The engine split mirrors the
/// single-tenant design: `primary` is the writer's engine holding warm
/// maintenance state, `serving` is the readers' frozen clone republished
/// per applied batch, and `epoch` counts publications.
pub struct TenantState {
    /// The tenant's registry name.
    pub(crate) name: String,
    pub(crate) primary: Mutex<CommunityEngine>,
    pub(crate) serving: RwLock<CommunityEngine>,
    pub(crate) epoch: AtomicU64,
    pub(crate) cache: Mutex<LruCache<QueryKey, CachedAnswer>>,
    pub(crate) counters: Arc<TenantCounters>,
    /// Shared health state machine (registry entry owns the other ref,
    /// so health survives eviction/reload).
    pub(crate) health: Arc<TenantHealth>,
    /// Write-ahead delta log for applied updates, when attached (the
    /// `serve --log` path). Appended under the `primary` lock.
    pub(crate) wal: Mutex<Option<DeltaLogFile>>,
    /// Set on the first applied update batch; a dirty tenant is never
    /// evicted (its maintained graph exists only in memory).
    pub(crate) dirty: AtomicBool,
    /// [`CommunityEngine::memory_bytes`] at load time — the eviction
    /// weight.
    pub(crate) cost_bytes: usize,
}

impl TenantState {
    fn new(
        name: &str,
        engine: CommunityEngine,
        counters: Arc<TenantCounters>,
        health: Arc<TenantHealth>,
        cache_cap: usize,
    ) -> Self {
        let cost_bytes = engine.memory_bytes();
        let serving = engine.frozen_clone();
        TenantState {
            name: name.to_string(),
            primary: Mutex::new(engine),
            serving: RwLock::new(serving),
            epoch: AtomicU64::new(0),
            cache: Mutex::new(LruCache::new(cache_cap)),
            counters,
            health,
            wal: Mutex::new(None),
            dirty: AtomicBool::new(false),
            cost_bytes,
        }
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The publication epoch: applied update batches since load.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// The eviction weight captured at load time.
    pub fn cost_bytes(&self) -> usize {
        self.cost_bytes
    }

    /// `true` once an update batch has been applied since load.
    pub fn is_dirty(&self) -> bool {
        self.dirty.load(Ordering::SeqCst)
    }

    /// The tenant's health state machine.
    pub fn health(&self) -> &TenantHealth {
        &self.health
    }
}

impl std::fmt::Debug for TenantState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TenantState")
            .field("name", &self.name)
            .field("epoch", &self.epoch())
            .field("dirty", &self.is_dirty())
            .field("cost_bytes", &self.cost_bytes)
            .finish_non_exhaustive()
    }
}

/// Why a tenant lookup failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TenantError {
    /// No tenant registered under that name.
    Unknown,
    /// The tenant is path-backed and its snapshot failed to load.
    Load(String),
    /// The tenant is quarantined: repeated failures tripped the health
    /// state machine, and the reload backoff has not yet elapsed.
    Quarantined {
        /// Seconds until the next reload probe is admitted.
        retry_after_secs: u64,
        /// The failure that put (or kept) the tenant in quarantine.
        reason: String,
    },
}

struct TenantEntry {
    name: String,
    /// `Some` for path-backed tenants (reloadable after eviction).
    source: Option<PathBuf>,
    state: Option<Arc<TenantState>>,
    counters: Arc<TenantCounters>,
    health: Arc<TenantHealth>,
    /// Logical-clock stamp of the last lookup; eviction takes the
    /// minimum among evictable entries, so order is deterministic.
    last_used: u64,
}

struct Inner {
    entries: Vec<TenantEntry>,
    by_name: HashMap<String, usize>,
    clock: u64,
}

/// A point-in-time summary of one registry entry, for `/stats`.
#[derive(Clone, Debug)]
pub struct TenantSummary {
    /// Registry name.
    pub name: String,
    /// `true` when the engine is currently resident.
    pub loaded: bool,
    /// `true` when the tenant has applied updates since load.
    pub dirty: bool,
    /// Resident cost in bytes (`0` when not loaded).
    pub cost_bytes: usize,
    /// Health state-machine position.
    pub health: HealthStatus,
}

/// The named-engine registry with bytes-weighted LRU eviction.
pub struct Registry {
    inner: Mutex<Inner>,
    /// Resident-bytes budget; `0` means unlimited.
    budget_bytes: usize,
    cache_cap: usize,
    policy: HealthPolicy,
    loads: AtomicU64,
    evictions: AtomicU64,
}

/// Tenant names are path segments: bounded, and no `/`, `.`-games or
/// control bytes.
pub fn is_valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

impl Registry {
    /// An empty registry. `budget_bytes == 0` disables eviction;
    /// `cache_cap` sizes each tenant's answer cache. Tenants use the
    /// default [`HealthPolicy`]; see [`Registry::with_policy`].
    pub fn new(budget_bytes: usize, cache_cap: usize) -> Self {
        Self::with_policy(budget_bytes, cache_cap, HealthPolicy::default())
    }

    /// An empty registry whose tenants run the given health policy.
    pub fn with_policy(budget_bytes: usize, cache_cap: usize, policy: HealthPolicy) -> Self {
        Registry {
            inner: Mutex::new(Inner {
                entries: Vec::new(),
                by_name: HashMap::new(),
                clock: 0,
            }),
            budget_bytes,
            cache_cap,
            policy,
            loads: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Registers an already-built engine under `name`. Engine-backed
    /// tenants are never evicted (there is nothing to reload them from).
    pub fn add_engine(&self, name: &str, engine: CommunityEngine) -> Result<(), String> {
        let mut inner = self.lock();
        Self::validate_new(&inner, name)?;
        let counters = Arc::new(TenantCounters::default());
        let health = Arc::new(TenantHealth::new(self.policy.clone()));
        let state = Arc::new(TenantState::new(
            name,
            engine,
            Arc::clone(&counters),
            Arc::clone(&health),
            self.cache_cap,
        ));
        self.loads.fetch_add(1, Ordering::Relaxed);
        let idx = inner.entries.len();
        inner.entries.push(TenantEntry {
            name: name.to_string(),
            source: None,
            state: Some(state),
            counters,
            health,
            last_used: 0,
        });
        inner.by_name.insert(name.to_string(), idx);
        Ok(())
    }

    /// Registers a path-backed tenant. The snapshot is not touched until
    /// the first request for it — registration of a directory of
    /// snapshots is free.
    pub fn add_path(&self, name: &str, path: PathBuf) -> Result<(), String> {
        let mut inner = self.lock();
        Self::validate_new(&inner, name)?;
        let idx = inner.entries.len();
        inner.entries.push(TenantEntry {
            name: name.to_string(),
            source: Some(path),
            state: None,
            counters: Arc::new(TenantCounters::default()),
            health: Arc::new(TenantHealth::new(self.policy.clone())),
            last_used: 0,
        });
        inner.by_name.insert(name.to_string(), idx);
        Ok(())
    }

    fn validate_new(inner: &Inner, name: &str) -> Result<(), String> {
        if !is_valid_tenant_name(name) {
            return Err(format!(
                "invalid tenant name {name:?}: want 1-64 chars of [A-Za-z0-9_-]"
            ));
        }
        if inner.by_name.contains_key(name) {
            return Err(format!("tenant {name:?} already registered"));
        }
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // The registry lock only guards bookkeeping (no user code runs
        // under it except snapshot loading), but a panicking load must
        // not wedge every later request.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up (and if necessary loads) tenant `name`, refreshing its
    /// recency and evicting colder tenants if the budget is now
    /// exceeded. The returned `Arc` pins the state: it stays usable even
    /// if the tenant is evicted while the request runs.
    pub fn get(&self, name: &str) -> Result<Arc<TenantState>, TenantError> {
        let mut inner = self.lock();
        let idx = *inner.by_name.get(name).ok_or(TenantError::Unknown)?;
        inner.clock += 1;
        let clock = inner.clock;
        inner.entries[idx].last_used = clock;
        if let Some(state) = &inner.entries[idx].state {
            return Ok(Arc::clone(state));
        }
        // Cold path-backed tenant. Quarantine gates the reload *before*
        // the filesystem is touched: while the backoff runs, requests
        // shed with a typed error instead of re-hitting a known-bad
        // snapshot; once it elapses, exactly one request probes.
        let health = Arc::clone(&inner.entries[idx].health);
        if let Err((retry_after_secs, reason)) = health.check_admit() {
            return Err(TenantError::Quarantined {
                retry_after_secs,
                reason,
            });
        }
        // Load while holding the registry lock. Concurrent first requests
        // for the same tenant would otherwise race duplicate multi-MB
        // loads; requests for *loaded* tenants queue behind a bounded
        // bookkeeping section either way.
        let path = inner.entries[idx]
            .source
            .clone()
            .expect("unloaded tenant has a source path");
        let engine = CommunityEngine::load(&path).map_err(|e| {
            let msg = format!("loading {}: {e}", path.display());
            health.record_failure(&msg);
            TenantError::Load(msg)
        })?;
        health.record_success();
        let counters = Arc::clone(&inner.entries[idx].counters);
        let state = Arc::new(TenantState::new(
            name,
            engine,
            counters,
            health,
            self.cache_cap,
        ));
        inner.entries[idx].state = Some(Arc::clone(&state));
        self.loads.fetch_add(1, Ordering::Relaxed);
        self.evict_over_budget(&mut inner, idx);
        Ok(state)
    }

    /// Unloads least-recently-used evictable tenants until the resident
    /// total fits the budget (or nothing more can go). `keep` is the
    /// entry that triggered the pass — never its own victim.
    fn evict_over_budget(&self, inner: &mut Inner, keep: usize) {
        if self.budget_bytes == 0 {
            return;
        }
        loop {
            let resident: usize = inner
                .entries
                .iter()
                .filter_map(|e| e.state.as_ref())
                .map(|s| s.cost_bytes)
                .sum();
            if resident <= self.budget_bytes {
                return;
            }
            let victim = inner
                .entries
                .iter()
                .enumerate()
                .filter(|(i, e)| {
                    *i != keep
                        && e.source.is_some()
                        && e.state
                            .as_ref()
                            .is_some_and(|s| !s.is_dirty() && Arc::strong_count(s) == 1)
                })
                .min_by_key(|(_, e)| e.last_used)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    inner.entries[i].state = None;
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Everything still resident is pinned, dirty, or
                // engine-backed: the budget is soft against correctness.
                None => return,
            }
        }
    }

    /// Tenant names in registration order.
    pub fn names(&self) -> Vec<String> {
        self.lock().entries.iter().map(|e| e.name.clone()).collect()
    }

    /// Per-tenant summaries in registration order.
    pub fn summaries(&self) -> Vec<TenantSummary> {
        self.lock()
            .entries
            .iter()
            .map(|e| TenantSummary {
                name: e.name.clone(),
                loaded: e.state.is_some(),
                dirty: e.state.as_ref().is_some_and(|s| s.is_dirty()),
                cost_bytes: e.state.as_ref().map_or(0, |s| s.cost_bytes),
                health: e.health.status(),
            })
            .collect()
    }

    /// The per-tenant counters handle (valid whether or not the tenant
    /// is currently loaded).
    pub fn counters_of(&self, name: &str) -> Option<Arc<TenantCounters>> {
        let inner = self.lock();
        let idx = *inner.by_name.get(name)?;
        Some(Arc::clone(&inner.entries[idx].counters))
    }

    /// The per-tenant health handle (valid whether or not the tenant is
    /// currently loaded).
    pub fn health_of(&self, name: &str) -> Option<Arc<TenantHealth>> {
        let inner = self.lock();
        let idx = *inner.by_name.get(name)?;
        Some(Arc::clone(&inner.entries[idx].health))
    }

    /// Names of currently quarantined tenants, in registration order —
    /// the `/healthz` discriminator.
    pub fn quarantined_names(&self) -> Vec<String> {
        self.lock()
            .entries
            .iter()
            .filter(|e| e.health.status() == HealthStatus::Quarantined)
            .map(|e| e.name.clone())
            .collect()
    }

    /// Bytes currently resident across loaded tenants.
    pub fn resident_bytes(&self) -> usize {
        self.lock()
            .entries
            .iter()
            .filter_map(|e| e.state.as_ref())
            .map(|s| s.cost_bytes)
            .sum()
    }

    /// The configured budget (`0` = unlimited).
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Snapshot loads performed (initial registrations included).
    pub fn loads(&self) -> u64 {
        self.loads.load(Ordering::Relaxed)
    }

    /// Evictions performed.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_truss::fixtures::figure1_graph;

    fn engine() -> CommunityEngine {
        CommunityEngine::build(figure1_graph())
    }

    fn saved(dir: &std::path::Path, name: &str) -> PathBuf {
        let path = dir.join(format!("{name}.ctci"));
        engine().save(&path).unwrap();
        path
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ctc-registry-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn names_validate_and_duplicates_reject() {
        let r = Registry::new(0, 8);
        assert!(r.add_engine("fb-01_x", engine()).is_ok());
        assert!(r.add_engine("fb-01_x", engine()).is_err());
        for bad in ["", "a/b", "a.b", "é", &"x".repeat(65)] {
            assert!(r.add_engine(bad, engine()).is_err(), "{bad:?}");
        }
        assert_eq!(r.get("nope").unwrap_err(), TenantError::Unknown);
        assert_eq!(r.names(), vec!["fb-01_x".to_string()]);
    }

    #[test]
    fn path_backed_tenants_load_lazily_and_survive_counter_reloads() {
        let dir = tmpdir("lazy");
        let r = Registry::new(0, 8);
        r.add_path("a", saved(&dir, "a")).unwrap();
        assert_eq!(r.loads(), 0, "registration must not touch the snapshot");
        assert!(!r.summaries()[0].loaded);
        let state = r.get("a").unwrap();
        assert_eq!(r.loads(), 1);
        assert_eq!(state.name(), "a");
        assert!(state.cost_bytes() > 0);
        // Second lookup: same pinned state, no reload.
        let again = r.get("a").unwrap();
        assert!(Arc::ptr_eq(&state, &again));
        assert_eq!(r.loads(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_is_lru_weighted_and_reload_keeps_counters() {
        let dir = tmpdir("evict");
        // Budget below two engines: loading the second evicts the first.
        let one = engine().memory_bytes();
        let r = Registry::new(one + one / 2, 8);
        r.add_path("a", saved(&dir, "a")).unwrap();
        r.add_path("b", saved(&dir, "b")).unwrap();
        let a = r.get("a").unwrap();
        a.counters.search_ok.fetch_add(7, Ordering::Relaxed);
        drop(a); // unpin
        let b = r.get("b").unwrap();
        assert_eq!(r.evictions(), 1);
        let s = r.summaries();
        assert!(!s[0].loaded, "a evicted");
        assert!(s[1].loaded, "b resident");
        assert!(r.resident_bytes() <= r.budget_bytes());
        // Unpin b, then reload a (evicts b): counters survived eviction.
        drop(b);
        let a = r.get("a").unwrap();
        assert_eq!(r.evictions(), 2);
        assert_eq!(r.loads(), 3);
        assert_eq!(a.counters.search_ok.load(Ordering::Relaxed), 7);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pinned_and_dirty_tenants_are_never_evicted() {
        let dir = tmpdir("pin");
        let one = engine().memory_bytes();
        let r = Registry::new(one, 8);
        r.add_path("a", saved(&dir, "a")).unwrap();
        r.add_path("b", saved(&dir, "b")).unwrap();
        r.add_path("c", saved(&dir, "c")).unwrap();
        // Pinned: holding the Arc while b loads keeps a resident even
        // though the budget fits only one engine.
        let a = r.get("a").unwrap();
        let b = r.get("b").unwrap();
        assert_eq!(r.evictions(), 0, "both pinned: budget is soft");
        assert!(r.resident_bytes() > r.budget_bytes());
        // Dirty: a marked dirty survives even unpinned; clean b goes.
        a.dirty.store(true, Ordering::SeqCst);
        drop(a);
        drop(b);
        let _c = r.get("c").unwrap();
        let s = r.summaries();
        assert!(s[0].loaded, "dirty a survives");
        assert!(!s[1].loaded, "clean unpinned b evicted");
        assert_eq!(r.evictions(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_backed_tenants_are_not_evictable() {
        let r = Registry::new(1, 8); // budget below anything
        r.add_engine("a", engine()).unwrap();
        r.add_engine("b", engine()).unwrap();
        let _ = r.get("a").unwrap();
        let _ = r.get("b").unwrap();
        assert_eq!(r.evictions(), 0);
        assert_eq!(r.summaries().iter().filter(|s| s.loaded).count(), 2);
    }

    #[test]
    fn load_failure_is_reported_not_cached() {
        let r = Registry::new(0, 8);
        r.add_path("ghost", PathBuf::from("/nonexistent/ghost.ctci"))
            .unwrap();
        match r.get("ghost") {
            Err(TenantError::Load(msg)) => assert!(msg.contains("ghost.ctci"), "{msg}"),
            Err(other) => panic!("want load error, got {other:?}"),
            Ok(_) => panic!("want load error, got a loaded tenant"),
        }
        assert!(!r.summaries()[0].loaded);
        assert_eq!(r.summaries()[0].health, HealthStatus::Degraded);
    }

    fn fast_policy() -> HealthPolicy {
        HealthPolicy {
            quarantine_after: 3,
            base_backoff: Duration::from_millis(40),
            max_backoff: Duration::from_millis(200),
        }
    }

    #[test]
    fn repeated_load_failures_quarantine_then_shed() {
        let r = Registry::with_policy(0, 8, fast_policy());
        r.add_path("ghost", PathBuf::from("/nonexistent/ghost.ctci"))
            .unwrap();
        // Three consecutive failures: healthy → degraded → quarantined.
        for _ in 0..3 {
            assert!(matches!(r.get("ghost"), Err(TenantError::Load(_))));
        }
        assert_eq!(
            r.health_of("ghost").unwrap().status(),
            HealthStatus::Quarantined
        );
        assert_eq!(r.quarantined_names(), vec!["ghost".to_string()]);
        // Inside the backoff window: shed with a typed quarantine error,
        // without touching the filesystem again.
        match r.get("ghost") {
            Err(TenantError::Quarantined {
                retry_after_secs,
                reason,
            }) => {
                assert!(retry_after_secs >= 1);
                assert!(reason.contains("ghost.ctci"), "{reason}");
            }
            other => panic!("want quarantine shed, got {other:?}"),
        }
        // Once the backoff elapses, exactly one probe is admitted; it
        // fails again (the file still does not exist) and the backoff
        // doubles.
        std::thread::sleep(Duration::from_millis(60));
        assert!(matches!(r.get("ghost"), Err(TenantError::Load(_))));
        assert!(matches!(
            r.get("ghost"),
            Err(TenantError::Quarantined { .. })
        ));
        let snap = r.health_of("ghost").unwrap().snapshot();
        assert_eq!(snap.status, HealthStatus::Quarantined);
        assert!(snap.quarantines >= 1);
        assert!(snap.consecutive_failures >= 4);
    }

    #[test]
    fn quarantined_tenant_heals_after_successful_probe() {
        let dir = tmpdir("heal");
        let path = dir.join("flaky.ctci");
        let r = Registry::with_policy(0, 8, fast_policy());
        r.add_path("flaky", path.clone()).unwrap();
        // The snapshot does not exist yet: fail into quarantine.
        for _ in 0..3 {
            assert!(matches!(r.get("flaky"), Err(TenantError::Load(_))));
        }
        assert_eq!(
            r.health_of("flaky").unwrap().status(),
            HealthStatus::Quarantined
        );
        // Operator repairs the snapshot; the next probe heals the tenant.
        engine().save(&path).unwrap();
        assert!(matches!(
            r.get("flaky"),
            Err(TenantError::Quarantined { .. })
        ));
        std::thread::sleep(Duration::from_millis(60));
        let state = r.get("flaky").expect("probe load succeeds");
        assert_eq!(state.name(), "flaky");
        assert_eq!(
            r.health_of("flaky").unwrap().status(),
            HealthStatus::Healthy
        );
        assert!(r.quarantined_names().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn health_survives_eviction_and_reload() {
        let dir = tmpdir("health-evict");
        let one = engine().memory_bytes();
        let r = Registry::with_policy(one + one / 2, 8, fast_policy());
        r.add_path("a", saved(&dir, "a")).unwrap();
        r.add_path("b", saved(&dir, "b")).unwrap();
        let a = r.get("a").unwrap();
        a.health().record_failure("handler panicked");
        assert_eq!(a.health().status(), HealthStatus::Degraded);
        drop(a);
        let _b = r.get("b").unwrap();
        assert!(!r.summaries()[0].loaded, "a evicted");
        // The registry entry still carries the degraded state, and the
        // reloaded state shares the same machine.
        assert_eq!(r.health_of("a").unwrap().status(), HealthStatus::Degraded);
        let a = r.get("a").unwrap();
        assert_eq!(
            a.health().status(),
            HealthStatus::Healthy,
            "probe load healed it"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
