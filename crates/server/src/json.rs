//! A minimal, std-only JSON encoder/decoder for the wire bodies.
//!
//! Implements exactly what the serving protocol needs: the full JSON value
//! model with proper string escaping (including `\uXXXX` and surrogate
//! pairs), a `u64`-exact integer variant so vertex labels survive the
//! round trip, a recursion-depth cap so deeply nested hostile bodies
//! cannot overflow the stack, and no panics on arbitrary input. The
//! property tests pin `parse(encode(v)) == v` for arbitrary label strings.
//!
//! ```
//! use ctc_server::json::Json;
//!
//! let v = Json::Object(vec![
//!     ("query".into(), Json::Array(vec![Json::Uint(3), Json::Uint(17)])),
//!     ("algo".into(), Json::Str("lctc".into())),
//! ]);
//! let text = v.encode();
//! assert_eq!(text, r#"{"query":[3,17],"algo":"lctc"}"#);
//! assert_eq!(Json::parse(&text).unwrap(), v);
//! ```

use std::fmt::Write as _;

/// Maximum nesting depth accepted by the parser.
pub const MAX_DEPTH: usize = 64;

/// A JSON value.
///
/// Integers that fit `u64` parse as [`Json::Uint`] (labels stay exact);
/// everything else numeric parses as [`Json::Float`]. Objects preserve
/// insertion order, so encoding is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` exactly.
    Uint(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as ordered `(key, value)` pairs.
    Object(Vec<(String, Json)>),
}

/// A decode failure: byte offset plus description. Offsets refer to the
/// input string, so errors are actionable for clients.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Serializes to compact JSON text (no whitespace, keys in insertion
    /// order — deterministic for identical values).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Uint(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    // JSON has no NaN/inf; encode as null rather than
                    // emitting an unparsable token.
                    out.push_str("null");
                }
            }
            Json::Str(s) => encode_string(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.encode_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    encode_string(k, out);
                    out.push(':');
                    v.encode_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON value; trailing non-whitespace is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the value"));
        }
        Ok(v)
    }

    /// The value under `key` if this is an object carrying it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// This value as an `f64` ([`Json::Uint`] coerces).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Uint(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    /// This value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Escapes `s` into `out` as a JSON string literal.
fn encode_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than the server accepts"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let mut v: u16 = 0;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => c - b'0',
                Some(c @ b'a'..=b'f') => c - b'a' + 10,
                Some(c @ b'A'..=b'F') => c - b'A' + 10,
                _ => return Err(self.err("expected 4 hex digits after \\u")),
            };
            v = (v << 4) | d as u16;
            self.pos += 1;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp =
                                    0x10000 + (((hi as u32 - 0xD800) << 10) | (lo as u32 - 0xDC00));
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(self.err("unexpected low surrogate"));
                            } else {
                                char::from_u32(hi as u32)
                                    .ok_or_else(|| self.err("invalid code point"))?
                            };
                            out.push(c);
                            // hex4 already advanced past the digits; the
                            // shared `pos += 1` below would double-advance.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("raw control character in string"));
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(lead) => {
                    // Multi-byte UTF-8. The input came in as a &str and
                    // `pos` only ever advances by whole characters, so
                    // `lead` is a valid lead byte; its value gives the
                    // width. Validate just that one character — running
                    // from_utf8 over the whole tail here would make
                    // string parsing quadratic in body size.
                    let width = match lead {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (self.pos + width).min(self.bytes.len());
                    let c = std::str::from_utf8(&self.bytes[self.pos..end])
                        .ok()
                        .and_then(|s| s.chars().next())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if token.bytes().all(|b| b.is_ascii_digit()) {
            if let Ok(n) = token.parse::<u64>() {
                return Ok(Json::Uint(n));
            }
        }
        match token.parse::<f64>() {
            Ok(x) if x.is_finite() => Ok(Json::Float(x)),
            _ => Err(JsonError {
                at: start,
                message: format!("invalid number token {token:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::Uint(0)),
            ("18446744073709551615", Json::Uint(u64::MAX)),
            ("-2.5", Json::Float(-2.5)),
            (r#""""#, Json::Str(String::new())),
            (r#""hi""#, Json::Str("hi".into())),
        ] {
            assert_eq!(Json::parse(text).unwrap(), v, "{text}");
            assert_eq!(Json::parse(&v.encode()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn u64_labels_stay_exact() {
        // 2^53 + 1 is where f64 loses integers.
        let big = (1u64 << 53) + 1;
        let v = Json::parse(&big.to_string()).unwrap();
        assert_eq!(v, Json::Uint(big));
        assert_eq!(v.encode(), big.to_string());
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        for s in [
            "quote\" backslash\\ slash/",
            "newline\n tab\t cr\r bs\u{8} ff\u{c}",
            "control \u{1} \u{1f}",
            "unicode é ∅ 🦀 ﷽",
            "mixed \"\\\n🦀\u{0}",
        ] {
            let v = Json::Str(s.to_string());
            let text = v.encode();
            assert_eq!(Json::parse(&text).unwrap(), v, "encoded: {text}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(
            Json::parse(r#""\u0041\u00e9\ud83e\udd80""#).unwrap(),
            Json::Str("Aé🦀".into())
        );
        assert!(Json::parse(r#""\ud83e""#).is_err(), "lone high surrogate");
        assert!(Json::parse(r#""\udd80""#).is_err(), "lone low surrogate");
        assert!(Json::parse(r#""\ud83e\u0041""#).is_err(), "bad pair");
    }

    #[test]
    fn nested_values_round_trip() {
        let text = r#"{"query":[1,2,3],"algo":"bd","knobs":{"gamma":2.5,"k":null},"ok":true}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.encode(), text);
        assert_eq!(v.get("algo").and_then(Json::as_str), Some("bd"));
        assert_eq!(
            v.get("knobs")
                .and_then(|k| k.get("gamma"))
                .and_then(Json::as_f64),
            Some(2.5)
        );
        assert_eq!(
            v.get("query").and_then(Json::as_array).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn malformed_inputs_error_cleanly() {
        for text in [
            "",
            "{",
            "[",
            "[1,",
            "{\"a\"",
            "{\"a\":}",
            "nul",
            "tru",
            "+",
            "-",
            "1.2.3",
            "\"unterminated",
            "{\"a\":1,}",
            "[1 2]",
            "1 2",
            "{a:1}",
            "\"\\q\"",
            "\u{7f}",
            "\"raw \u{1} ctl\"",
        ] {
            assert!(Json::parse(text).is_err(), "accepted: {text:?}");
        }
    }

    #[test]
    fn depth_cap_rejects_hostile_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(8) + "1" + &"]".repeat(8);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn large_multibyte_strings_parse_in_linear_time() {
        // Regression guard: the string parser must validate one character
        // at a time, not re-scan the whole tail per character (which made
        // parsing quadratic — ~10 GB of UTF-8 validation for this input).
        let s: String = "é🦀".repeat(50_000);
        let v = Json::Str(s);
        assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    #[test]
    fn nonfinite_floats_encode_as_null() {
        assert_eq!(Json::Float(f64::NAN).encode(), "null");
        assert_eq!(Json::Float(f64::INFINITY).encode(), "null");
    }
}
