//! The daemon: readiness loop, worker pool, multi-tenant router,
//! admission control, graceful shutdown.
//!
//! Architecture (all std, no async runtime):
//!
//! ```text
//!                 ┌─────────────────────────────┐  readable conn   ┌──────────────────┐
//!  TcpListener ──►│ event loop (poll(2), one    │─────────────────►│ ConnQueue        │
//!  (nonblocking)  │ thread): accept + admission │  bounded push    │ (bounded; full → │
//!  wake socket ──►│ cap, idle keep-alive conns, │  (full → 503)    │ shed with 503)   │
//!  give-backs ───►│ per-request deadlines       │                  └────────┬─────────┘
//!                 └─────────────▲───────────────┘                           │ pop
//!                               │ conn handed back      ┌───────────┬───────┼─────────┐
//!                               │ after one bounded     ▼           ▼       ▼         ▼
//!                               │ read + responses   worker 0    worker 1  ...   worker N-1
//!                               └────────────────── (read → parse → route → respond,
//!                                                    panics caught per connection)
//! ```
//!
//! Idle keep-alive connections cost one `pollfd` slot, not a parked
//! worker thread: the event loop multiplexes thousands of them over the
//! fixed pool via [`crate::evented`], dispatching a connection only when
//! it is readable. A worker performs one bounded read on a socket known
//! to be readable, answers every complete pipelined request in the
//! buffer, and hands the connection back to the loop.
//!
//! The pool is still the PR-2 [`Parallelism`] substrate:
//! [`CtcServer::serve`] calls `pool.map_chunks(workers, ..)` with one
//! index per worker, so worker threads are the same scoped fork-join
//! primitive every other parallel phase of the workspace uses, and
//! `serve` returns only once every worker has drained and joined — clean
//! shutdown is structural, not best-effort. Because `map_chunks`
//! *propagates* worker panics, each connection is serviced under
//! [`std::panic::catch_unwind`]: a panicking handler costs that request a
//! `500` and its connection, never the server (the `panics` counter in
//! `/stats` makes it visible).
//!
//! Requests route per tenant — `/t/<name>/search|update|stats` against
//! the [`Registry`] — while the bare `/search`, `/update`, `/stats`
//! endpoints alias the `default` tenant, byte-compatible with the
//! single-tenant wire format. Admission control sheds early and
//! well-formed: over `max_conns` → `503` at accept; dispatch queue full
//! → `503`; tenant over its in-flight cap → `429` with `retry-after`.
//!
//! Shutdown ("SIGTERM-equivalent"): [`ServerHandle::shutdown`] (or a
//! `POST /shutdown` request) sets the shared flag and pokes the listener
//! with a loopback connection so the parked `poll` wakes, the event loop
//! drops idle connections and closes the queue, workers finish their
//! in-flight requests, drain what was already queued, and exit.

use crate::cache::LruCache;
#[cfg(unix)]
use crate::evented::{poll_fds, PollFd, WakePair};
use crate::http::{parse_request, HttpError, Parse, Request, Response, DEFAULT_MAX_BODY};
use crate::json::Json;
use crate::registry::{
    CachedAnswer, HealthPolicy, Registry, TenantCounters, TenantError, TenantState, TenantSummary,
};
use crate::wire::{
    decode_search_request, decode_update_request, encode_community, encode_error,
    encode_update_response, search_error_response, UpdateOutcome,
};
use ctc_core::{CommunityEngine, EngineUpdate, SearchAlgo};
use ctc_graph::Parallelism;
use ctc_truss::{DeltaLogFile, DeltaOp, DeltaRecord};
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::fd::AsRawFd;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker-pool size (the `Parallelism` substrate; serial = 1 worker).
    pub pool: Parallelism,
    /// Per-tenant LRU answer-cache capacity; `0` disables caching.
    pub cache_cap: usize,
    /// Per-request body cap, bytes.
    pub max_body: usize,
    /// Socket read/write timeout, so a stalled client cannot pin a worker.
    pub io_timeout: Duration,
    /// Hard deadline for receiving one complete request. Unlike
    /// `io_timeout` (which a slow-loris client resets with every
    /// trickled byte), this bounds total time-to-request, so a worker
    /// can never be pinned longer than this per request. The clock
    /// restarts after each answered request, so healthy keep-alive
    /// connections live indefinitely — but an *idle* keep-alive
    /// connection is dropped once it goes this long without completing
    /// a request.
    pub request_deadline: Duration,
    /// Admission cap on concurrently open connections; an accept beyond
    /// it is answered with a well-formed `503` and closed.
    pub max_conns: usize,
    /// Bound on the event-loop → worker dispatch queue. A readable
    /// connection that does not fit is shed with a `503` instead of
    /// growing an unbounded queue.
    pub queue_cap: usize,
    /// Per-tenant cap on requests concurrently inside search/update
    /// handlers; beyond it requests shed with `429` + `retry-after`.
    /// `0` disables the cap.
    pub tenant_inflight: u64,
    /// Registry memory budget in bytes for resident engines; exceeding
    /// it evicts cold clean tenants (see [`Registry`]). `0` disables
    /// eviction.
    pub mem_budget: usize,
    /// Enables `POST /debug/panic` and `POST /debug/sleep` (global and
    /// per-tenant), the deterministic failure-injection hooks the
    /// admission and panic-isolation tests drive. Never enable in
    /// production.
    pub debug_endpoints: bool,
    /// Per-tenant health state machine tuning: how many consecutive
    /// failures quarantine a tenant, and the reload-probe backoff range.
    pub health: HealthPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool: Parallelism::serial(),
            cache_cap: 1024,
            max_body: DEFAULT_MAX_BODY,
            io_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
            max_conns: 4096,
            queue_cap: 4096,
            tenant_inflight: 0,
            mem_budget: 0,
            debug_endpoints: false,
            health: HealthPolicy::default(),
        }
    }
}

/// Serving-layer counters: connection lifecycle, admission sheds, panic
/// isolation. Distinct from [`Counters`] (request routing) because these
/// move per *connection event*, not per routed request.
#[derive(Debug, Default)]
pub struct ServerCounters {
    /// Connections accepted from the listener (sheds included).
    pub accepted: AtomicU64,
    /// Connections admitted past the `max_conns` cap.
    pub admitted: AtomicU64,
    /// Currently open admitted connections (gauge).
    pub open_conns: AtomicU64,
    /// Connections currently sitting in the dispatch queue (gauge).
    pub queued: AtomicU64,
    /// Accepts shed with `503` because `max_conns` was reached.
    pub sheds_accept: AtomicU64,
    /// Readable connections shed with `503` because the dispatch queue
    /// was full.
    pub sheds_queue: AtomicU64,
    /// Requests shed with `429` because a tenant was at its in-flight
    /// cap (sum over tenants).
    pub sheds_429: AtomicU64,
    /// Connections dropped (no response) for exceeding the per-request
    /// deadline — slow-loris clients and idle-past-deadline keep-alives.
    pub deadline_drops: AtomicU64,
    /// Request handlers that panicked and were isolated (`500`, counted,
    /// server kept serving).
    pub panics: AtomicU64,
}

/// A plain-data copy of [`ServerCounters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServerCountersSnapshot {
    /// See [`ServerCounters::accepted`].
    pub accepted: u64,
    /// See [`ServerCounters::admitted`].
    pub admitted: u64,
    /// See [`ServerCounters::open_conns`].
    pub open_conns: u64,
    /// See [`ServerCounters::queued`].
    pub queued: u64,
    /// See [`ServerCounters::sheds_accept`].
    pub sheds_accept: u64,
    /// See [`ServerCounters::sheds_queue`].
    pub sheds_queue: u64,
    /// See [`ServerCounters::sheds_429`].
    pub sheds_429: u64,
    /// See [`ServerCounters::deadline_drops`].
    pub deadline_drops: u64,
    /// See [`ServerCounters::panics`].
    pub panics: u64,
}

impl ServerCounters {
    fn snapshot(&self) -> ServerCountersSnapshot {
        ServerCountersSnapshot {
            accepted: self.accepted.load(Ordering::Relaxed),
            admitted: self.admitted.load(Ordering::Relaxed),
            open_conns: self.open_conns.load(Ordering::Relaxed),
            queued: self.queued.load(Ordering::Relaxed),
            sheds_accept: self.sheds_accept.load(Ordering::Relaxed),
            sheds_queue: self.sheds_queue.load(Ordering::Relaxed),
            sheds_429: self.sheds_429.load(Ordering::Relaxed),
            deadline_drops: self.deadline_drops.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
        }
    }
}

/// Monotonic request counters, readable while the server runs.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests routed (any endpoint, any outcome).
    pub total: AtomicU64,
    /// `/search` answers served (cache hits included).
    pub search_ok: AtomicU64,
    /// `/search` requests that failed (bad body, unknown label, no
    /// community).
    pub search_err: AtomicU64,
    /// `/search` answers served from the LRU cache.
    pub cache_hits: AtomicU64,
    /// `/search` answers that ran the full search path.
    pub cache_misses: AtomicU64,
    /// `/healthz` hits.
    pub healthz: AtomicU64,
    /// `/stats` hits.
    pub stats: AtomicU64,
    /// Byte streams rejected by the HTTP parser.
    pub http_rejects: AtomicU64,
    /// `/update` batches answered `200` (individual ops inside may still
    /// have been rejected — see `updates_applied` / `updates_rejected`).
    pub update_ok: AtomicU64,
    /// `/update` requests whose body failed to decode (`400`) or whose
    /// batch failed internally (`500`).
    pub update_err: AtomicU64,
    /// Individual edge updates applied across all `200` batches. Together
    /// with `updates_rejected` this sums exactly to the per-op outcomes
    /// reported in `/update` response bodies — the invariant the soak
    /// test pins.
    pub updates_applied: AtomicU64,
    /// Individual edge updates rejected (duplicate edge, missing edge,
    /// unknown label, self-loop) across all `200` batches.
    pub updates_rejected: AtomicU64,
    /// Cumulative microseconds spent locating `G0`/`Gt` across uncached
    /// `/search` answers. With `phase_peel_us`, `phase_finish_us` and
    /// `phase_total_us` this makes phase regressions visible in production
    /// without a profiler: `GET /stats` divides them by `cache_misses`.
    pub phase_locate_us: AtomicU64,
    /// Cumulative peel-phase microseconds across uncached `/search`
    /// answers.
    pub phase_peel_us: AtomicU64,
    /// Cumulative post-peel (result assembly) microseconds across uncached
    /// `/search` answers. Accumulated as `total − locate − peel` per
    /// request, so `locate + peel + finish == total` holds exactly at the
    /// counter level.
    pub phase_finish_us: AtomicU64,
    /// Cumulative end-to-end search microseconds across uncached
    /// `/search` answers.
    pub phase_total_us: AtomicU64,
}

/// A plain-data copy of [`Counters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// See [`Counters::total`].
    pub total: u64,
    /// See [`Counters::search_ok`].
    pub search_ok: u64,
    /// See [`Counters::search_err`].
    pub search_err: u64,
    /// See [`Counters::cache_hits`].
    pub cache_hits: u64,
    /// See [`Counters::cache_misses`].
    pub cache_misses: u64,
    /// See [`Counters::healthz`].
    pub healthz: u64,
    /// See [`Counters::stats`].
    pub stats: u64,
    /// See [`Counters::http_rejects`].
    pub http_rejects: u64,
    /// See [`Counters::update_ok`].
    pub update_ok: u64,
    /// See [`Counters::update_err`].
    pub update_err: u64,
    /// See [`Counters::updates_applied`].
    pub updates_applied: u64,
    /// See [`Counters::updates_rejected`].
    pub updates_rejected: u64,
    /// See [`Counters::phase_locate_us`].
    pub phase_locate_us: u64,
    /// See [`Counters::phase_peel_us`].
    pub phase_peel_us: u64,
    /// See [`Counters::phase_finish_us`].
    pub phase_finish_us: u64,
    /// See [`Counters::phase_total_us`].
    pub phase_total_us: u64,
}

impl Counters {
    fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            total: self.total.load(Ordering::Relaxed),
            search_ok: self.search_ok.load(Ordering::Relaxed),
            search_err: self.search_err.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            healthz: self.healthz.load(Ordering::Relaxed),
            stats: self.stats.load(Ordering::Relaxed),
            http_rejects: self.http_rejects.load(Ordering::Relaxed),
            update_ok: self.update_ok.load(Ordering::Relaxed),
            update_err: self.update_err.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            updates_rejected: self.updates_rejected.load(Ordering::Relaxed),
            phase_locate_us: self.phase_locate_us.load(Ordering::Relaxed),
            phase_peel_us: self.phase_peel_us.load(Ordering::Relaxed),
            phase_finish_us: self.phase_finish_us.load(Ordering::Relaxed),
            phase_total_us: self.phase_total_us.load(Ordering::Relaxed),
        }
    }
}

/// The name the bare `/search|/update|/stats` endpoints alias.
pub const DEFAULT_TENANT: &str = "default";

/// Everything a request needs, shared across workers behind one [`Arc`]:
/// the tenant [`Registry`] (each tenant bundling its engines + answer
/// cache), counters and the shutdown flag. Also usable standalone —
/// without any socket — via [`AppState::respond`], which is how the fuzz
/// battery and the serve bench drive the full parse → dispatch → encode
/// path in-process.
///
/// Online updates split every tenant's engine in two:
///
/// * `primary` — the writer's engine, holding the warm [`DynamicIndex`]
///   maintenance state. Every `/update` serializes through this mutex.
/// * `serving` — the readers' engine, a frozen clone republished after
///   each applied batch. A `/search` clones it (Arc bumps) under a short
///   read lock and computes against that immutable view, so readers are
///   never blocked by a writer mid-maintenance and never observe a
///   half-applied batch.
///
/// [`DynamicIndex`]: ctc_truss::DynamicIndex
pub struct AppState {
    registry: Registry,
    /// The `default` tenant, resolved once: the single-tenant fast path
    /// (and a permanent pin — the default tenant is never evicted).
    default_tenant: Arc<TenantState>,
    counters: Counters,
    serving: ServerCounters,
    shutdown: AtomicBool,
    max_body: usize,
    tenant_inflight: u64,
    debug_endpoints: bool,
    /// Set once the listener is bound; the shutdown poke connects here.
    wake_addr: Mutex<Option<SocketAddr>>,
}

/// RAII admission token: holding it means the request is counted inside
/// its tenant's `in_flight` gauge; dropping (normally or via unwind)
/// releases the slot.
struct InflightGuard<'a>(&'a TenantCounters);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Locks a tenant's answer cache, recovering from poisoning: a handler
/// that panicked mid-insert may have left a partially updated recency
/// list, so the recovered cache is cleared — dropping answers is always
/// safe, serving from a corrupt structure is not.
fn lock_cache<'a>(
    t: &'a TenantState,
) -> MutexGuard<'a, LruCache<crate::wire::QueryKey, CachedAnswer>> {
    match t.cache.lock() {
        Ok(guard) => guard,
        Err(poisoned) => {
            let mut guard = poisoned.into_inner();
            guard.clear();
            guard
        }
    }
}

impl AppState {
    /// State over `engine` (registered as the `default` tenant) with the
    /// given tuning (no socket required).
    pub fn new(engine: CommunityEngine, cfg: &ServeConfig) -> Self {
        let registry = Registry::with_policy(cfg.mem_budget, cfg.cache_cap, cfg.health.clone());
        registry
            .add_engine(DEFAULT_TENANT, engine)
            .expect("fresh registry accepts the default tenant");
        let default_tenant = registry
            .get(DEFAULT_TENANT)
            .expect("default tenant just registered");
        AppState {
            registry,
            default_tenant,
            counters: Counters::default(),
            serving: ServerCounters::default(),
            shutdown: AtomicBool::new(false),
            max_body: cfg.max_body,
            tenant_inflight: cfg.tenant_inflight,
            debug_endpoints: cfg.debug_endpoints,
            wake_addr: Mutex::new(None),
        }
    }

    /// Registers an additional engine-backed tenant under `name`.
    pub fn add_tenant_engine(&self, name: &str, engine: CommunityEngine) -> Result<(), String> {
        self.registry.add_engine(name, engine)
    }

    /// Registers a path-backed tenant: the `.ctci` snapshot at `path` is
    /// loaded lazily on the first `/t/<name>/…` request and is eligible
    /// for bytes-weighted eviction when a memory budget is set.
    pub fn add_tenant_path(&self, name: &str, path: PathBuf) -> Result<(), String> {
        self.registry.add_path(name, path)
    }

    /// Attaches a write-ahead delta log to the `default` tenant: every
    /// applied `/update` op is appended (and synced) before the response,
    /// so a crashed server recovers its online updates on restart instead
    /// of silently reverting to the snapshot. The log must already be
    /// bound to the snapshot the default engine was built from (the
    /// `serve --log` path opens or recovers it first).
    pub fn attach_default_wal(&self, wal: DeltaLogFile) {
        let mut slot = self
            .default_tenant
            .wal
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        *slot = Some(wal);
    }

    /// The tenant registry (names, summaries, eviction counters).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The default tenant's state.
    pub fn default_tenant(&self) -> &Arc<TenantState> {
        &self.default_tenant
    }

    /// A clone of the default tenant's currently served (read-side)
    /// engine — Arc bumps, not a data copy. The clone is an immutable
    /// consistent view: later `/update`s republish rather than mutate in
    /// place.
    pub fn engine(&self) -> CommunityEngine {
        self.default_tenant
            .serving
            .read()
            .expect("serving poisoned")
            .clone()
    }

    /// The default tenant's publication epoch: how many update batches
    /// have republished its serving engine so far.
    pub fn epoch(&self) -> u64 {
        self.default_tenant.epoch()
    }

    /// Serving-layer counters (admission, sheds, panics).
    pub fn server_counters(&self) -> ServerCountersSnapshot {
        self.serving.snapshot()
    }

    /// Current counter values.
    pub fn counters(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: sets the flag and pokes the listener (if bound)
    /// so the blocking accept wakes. Idempotent.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let addr = *self.wake_addr.lock().expect("wake_addr poisoned");
        if let Some(mut addr) = addr {
            // A listener bound to the unspecified address (0.0.0.0/[::])
            // reports it back from local_addr(), but connecting *to* the
            // unspecified address is invalid on some platforms — poke
            // loopback on the same port instead.
            if addr.ip().is_unspecified() {
                addr.set_ip(match addr {
                    SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            // Poke the blocking accept awake. Retried with backoff: under
            // fd exhaustion the first connect fails, but draining workers
            // free sockets within moments, and without a successful poke
            // (or incoming traffic, or an accept error — both of which
            // also observe the flag) the acceptor would stay blocked.
            for _ in 0..10 {
                if TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_ok() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }

    /// Runs one buffered byte stream through the full request path:
    /// parse → route → encode. Returns `None` when the bytes are a valid
    /// prefix of a request (the server would keep reading; a standalone
    /// caller treats it as a clean close), otherwise the exact response
    /// bytes the server would write. Never panics on any input — the
    /// property the fuzz battery pins.
    pub fn respond(&self, raw: &[u8]) -> Option<Vec<u8>> {
        match parse_request(raw, self.max_body) {
            Ok(Parse::Incomplete) => None,
            Ok(Parse::Complete(req, _)) => {
                // Route first: a /shutdown request must see its own effect
                // (its response, and every later one, carries
                // `connection: close`).
                let (response, panicked) = self.route_caught(&req);
                let close = panicked || req.wants_close() || self.is_shutting_down();
                Some(response.encode(close))
            }
            Err(e) => Some(self.reject(e).encode(true)),
        }
    }

    /// The error response for a stream the parser rejected.
    fn reject(&self, e: HttpError) -> Response {
        self.counters.http_rejects.fetch_add(1, Ordering::Relaxed);
        let (status, reason) = e.status();
        Response::error(status, reason, encode_error(e.detail()))
    }

    /// Routes one parsed request with panic isolation: a panicking
    /// handler yields a `500` and `panicked = true` (the caller must
    /// close the connection — handler state mid-panic is unknowable),
    /// never an unwind into the worker pool's scoped join.
    fn route_caught(&self, req: &Request) -> (Response, bool) {
        match catch_unwind(AssertUnwindSafe(|| self.route(req))) {
            Ok(response) => (response, false),
            Err(_) => {
                self.serving.panics.fetch_add(1, Ordering::Relaxed);
                (
                    Response::error(
                        500,
                        "Internal Server Error",
                        encode_error("request handler panicked; connection closed"),
                    ),
                    true,
                )
            }
        }
    }

    /// Admission check: counts the request into the tenant's in-flight
    /// gauge, or sheds with a well-formed `429` when the tenant is at
    /// its cap.
    fn admit<'a>(&self, t: &'a TenantState) -> Result<InflightGuard<'a>, Response> {
        let prev = t.counters.in_flight.fetch_add(1, Ordering::SeqCst);
        if self.tenant_inflight > 0 && prev >= self.tenant_inflight {
            t.counters.in_flight.fetch_sub(1, Ordering::SeqCst);
            t.counters.sheds_429.fetch_add(1, Ordering::Relaxed);
            self.serving.sheds_429.fetch_add(1, Ordering::Relaxed);
            return Err(Response::error(
                429,
                "Too Many Requests",
                encode_error(&format!(
                    "tenant {} is at its in-flight cap ({})",
                    t.name(),
                    self.tenant_inflight
                )),
            )
            .with_header("retry-after", "1"));
        }
        Ok(InflightGuard(&t.counters))
    }

    /// Routes one parsed request to its endpoint handler.
    fn route(&self, req: &Request) -> Response {
        self.counters.total.fetch_add(1, Ordering::Relaxed);
        let method = req.method.as_str();
        let target = req.target.as_str();
        if let Some(rest) = target.strip_prefix("/t/") {
            return match rest.split_once('/') {
                Some((name, tail)) => self.route_tenant(method, name, tail, req),
                None => Response::error(
                    404,
                    "Not Found",
                    encode_error("tenant endpoints are /t/<name>/search|update|stats"),
                ),
            };
        }
        match (method, target) {
            ("POST", "/search") => self.tenant_request(&self.default_tenant, req, true),
            ("POST", "/update") => self.tenant_request(&self.default_tenant, req, false),
            ("GET", "/healthz") => {
                self.counters.healthz.fetch_add(1, Ordering::Relaxed);
                // Non-200 while any tenant is quarantined, so orchestrator
                // probes see a sick daemon; the healthy body stays the
                // byte-exact `{"status":"ok"}` the smoke scripts grep.
                let quarantined = self.registry.quarantined_names();
                if quarantined.is_empty() {
                    Response::ok(
                        Json::Object(vec![("status".into(), Json::Str("ok".into()))])
                            .encode()
                            .into_bytes(),
                    )
                } else {
                    Response::error(
                        503,
                        "Service Unavailable",
                        Json::Object(vec![
                            ("status".into(), Json::Str("degraded".into())),
                            (
                                "quarantined".into(),
                                Json::Array(quarantined.into_iter().map(Json::Str).collect()),
                            ),
                        ])
                        .encode()
                        .into_bytes(),
                    )
                }
            }
            ("GET", "/stats") => {
                self.counters.stats.fetch_add(1, Ordering::Relaxed);
                Response::ok(self.encode_stats())
            }
            ("POST", "/shutdown") => {
                self.request_shutdown();
                Response::ok(
                    Json::Object(vec![("status".into(), Json::Str("shutting down".into()))])
                        .encode()
                        .into_bytes(),
                )
            }
            ("POST", "/debug/panic") if self.debug_endpoints => {
                self.with_panic_attribution(&self.default_tenant, Self::debug_panic)
            }
            ("POST", "/debug/sleep") if self.debug_endpoints => {
                self.debug_sleep(&self.default_tenant, req)
            }
            (_, "/search" | "/update" | "/healthz" | "/stats" | "/shutdown") => Response::error(
                405,
                "Method Not Allowed",
                encode_error("method not allowed for this endpoint"),
            ),
            _ => Response::error(404, "Not Found", encode_error("no such endpoint")),
        }
    }

    /// Routes a `/t/<name>/<tail>` request. Endpoint and method are
    /// validated *before* the registry lookup, so a 404/405 never loads
    /// a snapshot.
    fn route_tenant(&self, method: &str, name: &str, tail: &str, req: &Request) -> Response {
        let known = matches!(tail, "search" | "update" | "stats")
            || (self.debug_endpoints && matches!(tail, "debug/panic" | "debug/sleep"));
        if !known {
            return Response::error(404, "Not Found", encode_error("no such tenant endpoint"));
        }
        let want_post = tail != "stats";
        if (want_post && method != "POST") || (!want_post && method != "GET") {
            return Response::error(
                405,
                "Method Not Allowed",
                encode_error("method not allowed for this endpoint"),
            );
        }
        let tenant = match self.registry.get(name) {
            Ok(t) => t,
            Err(TenantError::Unknown) => {
                return Response::error(
                    404,
                    "Not Found",
                    encode_error(&format!("no such tenant: {name}")),
                )
            }
            Err(TenantError::Load(msg)) => {
                return Response::error(503, "Service Unavailable", encode_error(&msg))
            }
            Err(TenantError::Quarantined {
                retry_after_secs,
                reason,
            }) => return Self::quarantined_response(name, retry_after_secs, &reason),
        };
        match tail {
            "search" => self.tenant_request(&tenant, req, true),
            "update" => self.tenant_request(&tenant, req, false),
            "stats" => {
                self.counters.stats.fetch_add(1, Ordering::Relaxed);
                Response::ok(self.encode_tenant_stats(&tenant))
            }
            "debug/panic" => self.with_panic_attribution(&tenant, Self::debug_panic),
            "debug/sleep" => self.debug_sleep(&tenant, req),
            _ => unreachable!("tail validated above"),
        }
    }

    /// The `503` a quarantined tenant answers with: `retry-after` carries
    /// the remaining backoff so well-behaved clients pace themselves.
    fn quarantined_response(name: &str, retry_after_secs: u64, reason: &str) -> Response {
        Response::error(
            503,
            "Service Unavailable",
            encode_error(&format!("tenant {name} is quarantined: {reason}")),
        )
        .with_header("retry-after", retry_after_secs.to_string())
    }

    /// Runs `f` with its outcome attributed to the tenant's health state
    /// machine: a normal return records a success, a panic records a
    /// failure and resumes unwinding (so the outer [`Self::route_caught`]
    /// still answers `500` and closes the connection). Repeated panics
    /// quarantine the tenant exactly like repeated load failures.
    fn with_panic_attribution(
        &self,
        tenant: &TenantState,
        f: impl FnOnce() -> Response,
    ) -> Response {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(response) => {
                tenant.health.record_success();
                response
            }
            Err(payload) => {
                tenant.health.record_failure("request handler panicked");
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Admission-gated dispatch to a tenant's search or update handler:
    /// quarantine first (503 + `retry-after`), then the in-flight cap
    /// (429), then the handler under panic attribution.
    fn tenant_request(&self, tenant: &TenantState, req: &Request, search: bool) -> Response {
        if let Err((retry_after_secs, reason)) = tenant.health.check_admit() {
            return Self::quarantined_response(tenant.name(), retry_after_secs, &reason);
        }
        let guard = match self.admit(tenant) {
            Ok(g) => g,
            Err(shed) => return shed,
        };
        let response = self.with_panic_attribution(tenant, || {
            if search {
                self.handle_search(tenant, req)
            } else {
                self.handle_update(tenant, req)
            }
        });
        drop(guard);
        response
    }

    /// `POST /debug/panic`: panics inside the handler — the trap the
    /// poisoned-handler test springs to prove isolation.
    fn debug_panic() -> Response {
        panic!("debug panic endpoint");
    }

    /// `POST /debug/sleep {"ms":N}`: holds an admission slot for `ms`
    /// (clamped to 10s), making queue-flood and 429 tests deterministic.
    fn debug_sleep(&self, tenant: &TenantState, req: &Request) -> Response {
        let guard = match self.admit(tenant) {
            Ok(g) => g,
            Err(shed) => return shed,
        };
        let ms = std::str::from_utf8(&req.body)
            .ok()
            .and_then(|text| Json::parse(text).ok())
            .and_then(|json| match json {
                Json::Object(pairs) => pairs.into_iter().find_map(|(k, v)| match (k, v) {
                    (k, Json::Uint(n)) if k == "ms" => Some(n),
                    _ => None,
                }),
                _ => None,
            })
            .unwrap_or(50)
            .min(10_000);
        std::thread::sleep(Duration::from_millis(ms));
        drop(guard);
        Response::ok(
            Json::Object(vec![("slept_ms".into(), Json::Uint(ms))])
                .encode()
                .into_bytes(),
        )
    }

    /// `POST /search` (any tenant): decode → resolve labels → cache →
    /// engine → encode. Search counters move on both the global set and
    /// the tenant's own.
    fn handle_search(&self, tenant: &TenantState, req: &Request) -> Response {
        // Capture the serving engine and the publication epoch under one
        // read lock: the pair is what makes "which graph answered this"
        // well-defined while /update batches republish concurrently.
        let (snapshot, epoch) = {
            let guard = tenant.serving.read().expect("serving poisoned");
            (guard.clone(), tenant.epoch.load(Ordering::SeqCst))
        };
        let search_err = || {
            self.counters.search_err.fetch_add(1, Ordering::Relaxed);
            tenant.counters.search_err.fetch_add(1, Ordering::Relaxed);
        };
        let parsed = match decode_search_request(&req.body, snapshot.config()) {
            Ok(p) => p,
            Err(e) => {
                search_err();
                return Response::error(e.status, "Bad Request", encode_error(&e.message));
            }
        };
        let q = match snapshot.resolve_labels(&parsed.labels) {
            Ok(q) => q,
            Err(label) => {
                search_err();
                return Response::error(
                    404,
                    "Not Found",
                    encode_error(&format!("label {label} not in graph")),
                );
            }
        };
        let key = parsed.key();
        // Bind the lookup to a statement so the cache mutex is released
        // before the body bytes are copied into the response: under the
        // lock a hit is only an Arc bump, so concurrent workers never
        // serialize on a large-body memcpy.
        let hit = lock_cache(tenant).get(&key);
        if let Some(ans) = hit {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.counters.search_ok.fetch_add(1, Ordering::Relaxed);
            tenant.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            tenant.counters.search_ok.fetch_add(1, Ordering::Relaxed);
            return Response::ok(ans.body.as_ref().clone()).with_header("x-cache", "hit");
        }
        // Miss: run the search under the per-request config. The engine
        // clone is three Arc bumps; per-query inner parallelism stays
        // whatever the base config says (serial for serving — the pool
        // already owns the cores).
        let engine = snapshot.clone().with_config(parsed.cfg);
        match engine.search(&q, parsed.algo) {
            Ok(c) => {
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                self.counters.search_ok.fetch_add(1, Ordering::Relaxed);
                tenant.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                tenant.counters.search_ok.fetch_add(1, Ordering::Relaxed);
                // The finish counter absorbs the integer-truncation residue
                // along with the assembly time, keeping
                // locate + peel + finish == total exact in the µs domain.
                let lu = c.timings.locate.as_micros() as u64;
                let pu = c.timings.peel.as_micros() as u64;
                let tu = c.timings.total.as_micros() as u64;
                self.counters
                    .phase_locate_us
                    .fetch_add(lu, Ordering::Relaxed);
                self.counters.phase_peel_us.fetch_add(pu, Ordering::Relaxed);
                self.counters
                    .phase_finish_us
                    .fetch_add(tu.saturating_sub(lu).saturating_sub(pu), Ordering::Relaxed);
                self.counters
                    .phase_total_us
                    .fetch_add(tu, Ordering::Relaxed);
                // Cache the *encoded* body: a hit costs one memcpy, never
                // a re-encode of the whole community (encoding dominates
                // per-hit cost for large answers).
                let body = Arc::new(encode_community(&snapshot, &c));
                {
                    let mut cache = lock_cache(tenant);
                    // Re-check the epoch under the cache lock: if an
                    // update published while this search ran, the answer
                    // was computed against a superseded graph. Inserting
                    // it after the update's invalidation pass would poison
                    // the cache; skipping the insert is always safe.
                    if tenant.epoch.load(Ordering::SeqCst) == epoch {
                        cache.insert(
                            key,
                            CachedAnswer {
                                k: c.k,
                                body: Arc::clone(&body),
                            },
                        );
                    }
                }
                Response::ok(body.as_ref().clone()).with_header("x-cache", "miss")
            }
            Err(e) => {
                search_err();
                let (status, reason, body) = search_error_response(&e);
                Response::error(status, reason, body)
            }
        }
    }

    /// `POST /update`: decode → resolve labels per-op → maintain the
    /// primary index → republish a frozen clone → invalidate affected
    /// cache classes. Always `200` with per-op outcomes when the body
    /// decodes; individual ops reject independently.
    fn handle_update(&self, tenant: &TenantState, req: &Request) -> Response {
        let update_err = || {
            self.counters.update_err.fetch_add(1, Ordering::Relaxed);
            tenant.counters.update_err.fetch_add(1, Ordering::Relaxed);
        };
        let parsed = match decode_update_request(&req.body) {
            Ok(p) => p,
            Err(e) => {
                update_err();
                return Response::error(e.status, "Bad Request", encode_error(&e.message));
            }
        };
        // One writer at a time: the whole resolve → maintain → publish
        // sequence holds the primary lock, so batches are serialized and
        // the serving engine always corresponds to a prefix of batches.
        let mut primary = tenant.primary.lock().expect("primary poisoned");
        // Resolve labels per-op. An unknown label rejects that op alone;
        // resolved ops keep their batch position so outcomes line up.
        let mut slots: Vec<Result<EngineUpdate, String>> = Vec::with_capacity(parsed.ops.len());
        for op in &parsed.ops {
            let resolve = |label: u64| {
                primary
                    .resolve_labels(&[label])
                    .map(|v| v[0])
                    .map_err(|l| format!("label {l} not in graph"))
            };
            slots.push(resolve(op.u).and_then(|u| {
                resolve(op.v).map(|v| {
                    if op.insert {
                        EngineUpdate::insert(u, v)
                    } else {
                        EngineUpdate::delete(u, v)
                    }
                })
            }));
        }
        let batch: Vec<EngineUpdate> = slots.iter().filter_map(|s| s.clone().ok()).collect();
        let report = match primary.apply_batch(&batch) {
            Ok(r) => r,
            Err(e) => {
                // Internal failure (the maintained state could not be
                // re-materialized) — nothing was published.
                update_err();
                let (status, reason, body) = search_error_response(&e);
                return Response::error(status, reason, body);
            }
        };
        if report.applied > 0 {
            // Publish a frozen clone for readers, then drop the affected
            // cache classes. The epoch bump happens under the write lock,
            // so a reader's (engine, epoch) capture is always consistent.
            let frozen = primary.frozen_clone();
            {
                let mut serving = tenant.serving.write().expect("serving poisoned");
                *serving = frozen;
                tenant.epoch.fetch_add(1, Ordering::SeqCst);
            }
            // The maintained graph now exists only in memory: mark the
            // tenant dirty so the registry never evicts it (a reload
            // from the snapshot would silently discard this batch).
            tenant.dirty.store(true, Ordering::SeqCst);
            let max_class = report.max_class;
            // Exact algorithms answer from τ ≥ k subgraphs, which are
            // untouched for k > max_class; LCTC explores the raw graph
            // around the query, so any applied update invalidates it.
            lock_cache(tenant)
                .retain(|key, ans| key.algo != SearchAlgo::Local && ans.k > max_class);
            // Journal the applied ops before answering. Each append syncs,
            // so an acknowledged batch survives kill -9 (`serve --log`
            // recovers and replays the log on restart). Still under the
            // primary lock: batches reach the log in publication order.
            let mut wal = tenant.wal.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(lf) = wal.as_mut() {
                let mut failed = false;
                for (upd, res) in batch.iter().zip(report.results.iter()) {
                    if res.is_err() {
                        continue;
                    }
                    let op = if upd.insert {
                        DeltaOp::Insert
                    } else {
                        DeltaOp::Delete
                    };
                    if lf.append(DeltaRecord::new(op, upd.u.0, upd.v.0)).is_err() {
                        failed = true;
                        break;
                    }
                    tenant.counters.wal_appended.fetch_add(1, Ordering::Relaxed);
                }
                if failed {
                    // After a failed append the file may trail the handle's
                    // in-memory view: detach instead of writing at a stale
                    // offset, count it so `/stats` shows the loss, and keep
                    // the 200 — the served state is correct, durability is
                    // what was lost (a restart recovers the legal prefix).
                    tenant.counters.wal_errors.fetch_add(1, Ordering::Relaxed);
                    *wal = None;
                }
            }
            drop(wal);
        }
        // Zip engine results back into batch positions.
        let mut engine_results = report.results.into_iter();
        let outcomes: Vec<UpdateOutcome> = slots
            .into_iter()
            .map(|slot| match slot {
                Err(error) => UpdateOutcome::Rejected { error },
                Ok(_) => match engine_results.next().expect("one result per applied op") {
                    Ok(r) => UpdateOutcome::Applied {
                        trussness: r.edge_truss,
                        changed: r.changed as u64,
                    },
                    Err(e) => UpdateOutcome::Rejected {
                        error: e.to_string(),
                    },
                },
            })
            .collect();
        drop(primary);
        let applied = report.applied as u64;
        let rejected = (outcomes.len() - report.applied) as u64;
        self.counters.update_ok.fetch_add(1, Ordering::Relaxed);
        self.counters
            .updates_applied
            .fetch_add(applied, Ordering::Relaxed);
        self.counters
            .updates_rejected
            .fetch_add(rejected, Ordering::Relaxed);
        tenant.counters.update_ok.fetch_add(1, Ordering::Relaxed);
        tenant
            .counters
            .updates_applied
            .fetch_add(applied, Ordering::Relaxed);
        tenant
            .counters
            .updates_rejected
            .fetch_add(rejected, Ordering::Relaxed);
        Response::ok(encode_update_response(
            applied,
            rejected,
            report.max_class,
            &outcomes,
        ))
    }

    /// The `server` stats object: serving-layer counters + registry
    /// summary, appended to both the global and per-tenant stats bodies.
    fn encode_server_object(&self) -> Json {
        let v = self.serving.snapshot();
        let summaries: Vec<TenantSummary> = self.registry.summaries();
        Json::Object(vec![
            ("accepted".into(), Json::Uint(v.accepted)),
            ("admitted".into(), Json::Uint(v.admitted)),
            ("open_conns".into(), Json::Uint(v.open_conns)),
            ("queued".into(), Json::Uint(v.queued)),
            ("sheds_accept".into(), Json::Uint(v.sheds_accept)),
            ("sheds_queue".into(), Json::Uint(v.sheds_queue)),
            ("sheds_429".into(), Json::Uint(v.sheds_429)),
            ("deadline_drops".into(), Json::Uint(v.deadline_drops)),
            ("panics".into(), Json::Uint(v.panics)),
            (
                "health".into(),
                Json::Object(vec![
                    (
                        "status".into(),
                        Json::Str(
                            if summaries
                                .iter()
                                .any(|t| t.health == crate::registry::HealthStatus::Quarantined)
                            {
                                "degraded".into()
                            } else {
                                "ok".into()
                            },
                        ),
                    ),
                    (
                        "quarantined".into(),
                        Json::Array(
                            summaries
                                .iter()
                                .filter(|t| t.health == crate::registry::HealthStatus::Quarantined)
                                .map(|t| Json::Str(t.name.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "registry".into(),
                Json::Object(vec![
                    ("tenants".into(), Json::Uint(summaries.len() as u64)),
                    (
                        "loaded".into(),
                        Json::Uint(summaries.iter().filter(|t| t.loaded).count() as u64),
                    ),
                    (
                        "resident_bytes".into(),
                        Json::Uint(self.registry.resident_bytes() as u64),
                    ),
                    (
                        "budget_bytes".into(),
                        Json::Uint(self.registry.budget_bytes() as u64),
                    ),
                    ("loads".into(), Json::Uint(self.registry.loads())),
                    ("evictions".into(), Json::Uint(self.registry.evictions())),
                ]),
            ),
        ])
    }

    /// The `/t/<name>/stats` body: the tenant's own graph, cache, and
    /// request counters (these survive eviction/reload — the registry
    /// owns them).
    fn encode_tenant_stats(&self, tenant: &TenantState) -> Vec<u8> {
        let s = tenant.serving.read().expect("serving poisoned").stats();
        let c = &tenant.counters;
        let load = |a: &AtomicU64| Json::Uint(a.load(Ordering::Relaxed));
        let cache = lock_cache(tenant);
        let h = tenant.health.snapshot();
        Json::Object(vec![
            ("tenant".into(), Json::Str(tenant.name().into())),
            ("dirty".into(), Json::Bool(tenant.is_dirty())),
            ("cost_bytes".into(), Json::Uint(tenant.cost_bytes() as u64)),
            (
                "health".into(),
                Json::Object(vec![
                    ("status".into(), Json::Str(h.status.as_str().into())),
                    (
                        "consecutive_failures".into(),
                        Json::Uint(h.consecutive_failures as u64),
                    ),
                    ("quarantines".into(), Json::Uint(h.quarantines)),
                    (
                        "retry_in_secs".into(),
                        h.retry_in_secs.map_or(Json::Null, Json::Uint),
                    ),
                    ("reason".into(), Json::Str(h.reason)),
                ]),
            ),
            (
                "graph".into(),
                Json::Object(vec![
                    ("num_vertices".into(), Json::Uint(s.num_vertices as u64)),
                    ("num_edges".into(), Json::Uint(s.num_edges as u64)),
                    ("max_truss".into(), Json::Uint(s.max_truss as u64)),
                    ("labeled".into(), Json::Bool(s.labeled)),
                ]),
            ),
            (
                "cache".into(),
                Json::Object(vec![
                    ("capacity".into(), Json::Uint(cache.capacity() as u64)),
                    ("entries".into(), Json::Uint(cache.len() as u64)),
                    ("hits".into(), load(&c.cache_hits)),
                    ("misses".into(), load(&c.cache_misses)),
                ]),
            ),
            (
                "requests".into(),
                Json::Object(vec![
                    ("search_ok".into(), load(&c.search_ok)),
                    ("search_err".into(), load(&c.search_err)),
                    ("sheds_429".into(), load(&c.sheds_429)),
                    ("in_flight".into(), load(&c.in_flight)),
                ]),
            ),
            (
                "updates".into(),
                Json::Object(vec![
                    ("batches_ok".into(), load(&c.update_ok)),
                    ("batches_err".into(), load(&c.update_err)),
                    ("applied".into(), load(&c.updates_applied)),
                    ("rejected".into(), load(&c.updates_rejected)),
                    ("epoch".into(), Json::Uint(tenant.epoch())),
                    ("wal_appended".into(), load(&c.wal_appended)),
                    ("wal_errors".into(), load(&c.wal_errors)),
                ]),
            ),
        ])
        .encode()
        .into_bytes()
    }

    /// The `/stats` body: graph/index summary + request counters. The
    /// graph and cache objects describe the `default` tenant (wire
    /// compatibility with the single-tenant format); request/update
    /// counters are global aggregates, and the `server` object carries
    /// serving-layer and registry state.
    fn encode_stats(&self) -> Vec<u8> {
        let s = self.engine().stats();
        let c = self.counters.snapshot();
        let cache = lock_cache(&self.default_tenant);
        Json::Object(vec![
            (
                "graph".into(),
                Json::Object(vec![
                    ("num_vertices".into(), Json::Uint(s.num_vertices as u64)),
                    ("num_edges".into(), Json::Uint(s.num_edges as u64)),
                    ("max_truss".into(), Json::Uint(s.max_truss as u64)),
                    ("labeled".into(), Json::Bool(s.labeled)),
                ]),
            ),
            (
                "cache".into(),
                Json::Object(vec![
                    ("capacity".into(), Json::Uint(cache.capacity() as u64)),
                    ("entries".into(), Json::Uint(cache.len() as u64)),
                    ("hits".into(), Json::Uint(c.cache_hits)),
                    ("misses".into(), Json::Uint(c.cache_misses)),
                ]),
            ),
            (
                "requests".into(),
                Json::Object(vec![
                    ("total".into(), Json::Uint(c.total)),
                    ("search_ok".into(), Json::Uint(c.search_ok)),
                    ("search_err".into(), Json::Uint(c.search_err)),
                    ("healthz".into(), Json::Uint(c.healthz)),
                    ("stats".into(), Json::Uint(c.stats)),
                    ("http_rejects".into(), Json::Uint(c.http_rejects)),
                ]),
            ),
            // Online-update accounting: batches_ok + batches_err covers
            // every /update request; applied + rejected sums exactly over
            // the per-op outcomes of the 200 responses (the soak test
            // pins this), and epoch counts publications.
            (
                "updates".into(),
                Json::Object(vec![
                    ("batches_ok".into(), Json::Uint(c.update_ok)),
                    ("batches_err".into(), Json::Uint(c.update_err)),
                    ("applied".into(), Json::Uint(c.updates_applied)),
                    ("rejected".into(), Json::Uint(c.updates_rejected)),
                    ("epoch".into(), Json::Uint(self.epoch())),
                ]),
            ),
            // Cumulative per-phase search time over uncached answers:
            // divide by cache.misses for means; watch peel_us to catch
            // query-hot-path regressions in production (docs/PERF.md).
            (
                "phases".into(),
                Json::Object(vec![
                    ("locate_us".into(), Json::Uint(c.phase_locate_us)),
                    ("peel_us".into(), Json::Uint(c.phase_peel_us)),
                    ("finish_us".into(), Json::Uint(c.phase_finish_us)),
                    ("total_us".into(), Json::Uint(c.phase_total_us)),
                ]),
            ),
            ("server".into(), self.encode_server_object()),
        ])
        .encode()
        .into_bytes()
    }
}

/// One admitted connection's state: the socket (kept *blocking* — the
/// event loop only uses readiness to decide when to dispatch; workers
/// bound every read/write with timeouts), bytes of a not-yet-complete
/// request, and the running per-request deadline.
struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
    deadline: Instant,
}

impl Conn {
    fn new(stream: TcpStream, io_timeout: Duration, deadline: Instant) -> Conn {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(io_timeout));
        Conn {
            stream,
            buf: Vec::new(),
            deadline,
        }
    }
}

/// The *bounded* dispatch queue between the event loop and the workers.
/// `push` refuses past `cap` (or once closed) and returns the item, so
/// the caller sheds it with a well-formed `503` — a connection flood
/// costs rejected requests, never unbounded queue memory (the prior
/// unbounded `VecDeque` turned floods into OOM).
struct ConnQueue<T> {
    cap: usize,
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> ConnQueue<T> {
    fn new(cap: usize) -> Self {
        ConnQueue {
            cap: cap.max(1),
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueues `item`, or returns it when the queue is full or closed.
    fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if inner.closed || inner.items.len() >= self.cap {
            return Err(item);
        }
        inner.items.push_back(item);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next item; `None` once closed *and* drained, so
    /// queued requests are still answered during shutdown.
    fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// Writes a well-formed `503` and lets the drop close the socket. The
/// socket may not have a write timeout yet (accept-time shed), so one is
/// set first — the body is small enough that the write never blocks on a
/// healthy kernel buffer anyway.
fn shed_503(stream: &mut TcpStream, io_timeout: Duration, detail: &str) {
    let _ = stream.set_write_timeout(Some(io_timeout));
    let response = Response::error(503, "Service Unavailable", encode_error(detail)).encode(true);
    let _ = stream.write_all(&response);
}

/// What [`CtcServer::serve`] reports after a graceful shutdown.
#[derive(Clone, Copy, Debug)]
pub struct ServeReport {
    /// Final counter values.
    pub counters: CountersSnapshot,
    /// Final serving-layer counters (admission, sheds, panics).
    pub server: ServerCountersSnapshot,
    /// Connections admitted across the server's lifetime.
    pub connections: u64,
}

/// A bound-but-not-yet-serving server.
pub struct CtcServer {
    listener: TcpListener,
    state: Arc<AppState>,
    pool: Parallelism,
    io_timeout: Duration,
    request_deadline: Duration,
    max_conns: usize,
    queue_cap: usize,
}

/// A cheap handle for stopping and observing a running server from
/// another thread.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<AppState>,
}

impl ServerHandle {
    /// Triggers graceful shutdown: in-flight and already-queued requests
    /// are answered, then `serve` returns. Idempotent.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Current counter values.
    pub fn counters(&self) -> CountersSnapshot {
        self.state.counters()
    }

    /// Current serving-layer counter values.
    pub fn server_counters(&self) -> ServerCountersSnapshot {
        self.state.server_counters()
    }
}

impl CtcServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares to serve `engine`.
    pub fn bind(
        engine: CommunityEngine,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> std::io::Result<CtcServer> {
        let state = Arc::new(AppState::new(engine, &cfg));
        Self::bind_state(state, addr, &cfg)
    }

    /// Binds `addr` over pre-built state — the multi-tenant entry point:
    /// build an [`AppState`], register tenants, then bind.
    pub fn bind_state(
        state: Arc<AppState>,
        addr: impl ToSocketAddrs,
        cfg: &ServeConfig,
    ) -> std::io::Result<CtcServer> {
        let listener = TcpListener::bind(addr)?;
        *state.wake_addr.lock().expect("wake_addr poisoned") = Some(listener.local_addr()?);
        Ok(CtcServer {
            listener,
            state,
            pool: cfg.pool,
            io_timeout: cfg.io_timeout,
            request_deadline: cfg.request_deadline,
            max_conns: cfg.max_conns,
            queue_cap: cfg.queue_cap,
        })
    }

    /// The bound address (the actual port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("listener has a local addr")
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Shared application state (for in-process drivers and tests).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Serves until shutdown is requested, then drains and returns.
    /// Blocks the calling thread; run it in a dedicated thread when the
    /// caller needs to keep working (see `tests/serve.rs`).
    ///
    /// On unix this runs the poll(2) readiness loop (idle keep-alive
    /// connections cost a `pollfd` slot, not a worker); elsewhere it
    /// falls back to the blocking acceptor with the same bounded-queue
    /// admission control.
    pub fn serve(self) -> ServeReport {
        let CtcServer {
            listener,
            state,
            pool,
            io_timeout,
            request_deadline,
            max_conns,
            queue_cap,
        } = self;
        let queue: ConnQueue<Conn> = ConnQueue::new(queue_cap);
        let workers = pool.get();
        #[cfg(unix)]
        {
            listener
                .set_nonblocking(true)
                .expect("listener supports nonblocking accept");
            let wake = WakePair::new().expect("loopback wake pair");
            let waker = wake.waker();
            let injector: Mutex<Vec<Conn>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                let ev = scope.spawn(|| {
                    event_loop(EventLoopEnv {
                        listener: &listener,
                        state: &state,
                        queue: &queue,
                        injector: &injector,
                        wake: &wake,
                        io_timeout,
                        request_deadline,
                        max_conns,
                    })
                });
                // The worker pool: one queue-draining loop per
                // Parallelism worker, scheduled through the same
                // fork-join substrate as every other parallel phase.
                // map_chunks returns only when every worker has exited,
                // i.e. the queue is closed and drained.
                pool.map_chunks(workers, |_range| {
                    worker_loop(&state, &queue, io_timeout, request_deadline, |conn| {
                        // Hand the keep-alive connection back to the
                        // event loop's idle set and wake its poll.
                        injector
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(conn);
                        waker.wake();
                        None
                    });
                });
                // No user code runs on the event-loop thread, so a panic
                // there is a server bug worth propagating — unlike
                // handler panics, which are isolated per connection.
                ev.join().expect("event loop panicked");
            });
            // Connections handed back after the loop exited: close them
            // now so the open-connection gauge ends exact.
            for conn in injector.into_inner().unwrap_or_else(|e| e.into_inner()) {
                drop(conn);
                state.serving.open_conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
        #[cfg(not(unix))]
        {
            std::thread::scope(|scope| {
                let acceptor = scope.spawn(|| {
                    loop {
                        match listener.accept() {
                            Ok((stream, _peer)) => {
                                if state.is_shutting_down() {
                                    // The wake poke (or a straggler):
                                    // drop it and stop accepting.
                                    drop(stream);
                                    break;
                                }
                                accept_one(
                                    &state,
                                    &queue,
                                    stream,
                                    io_timeout,
                                    request_deadline,
                                    max_conns,
                                );
                            }
                            Err(_) => {
                                if state.is_shutting_down() {
                                    break;
                                }
                                // Transient accept failure (EMFILE,
                                // aborted handshake): keep serving, but
                                // back off so a persistent error cannot
                                // pin a core in a hot accept loop.
                                std::thread::sleep(Duration::from_millis(50));
                            }
                        }
                    }
                    queue.close();
                });
                pool.map_chunks(workers, |_range| {
                    // No event loop to hand connections back to: the
                    // worker keeps servicing its keep-alive connection
                    // inline (blocking reads, as before the readiness
                    // loop).
                    worker_loop(&state, &queue, io_timeout, request_deadline, Some);
                });
                acceptor.join().expect("acceptor panicked");
            });
        }
        ServeReport {
            counters: state.counters(),
            server: state.server_counters(),
            connections: state.serving.admitted.load(Ordering::Relaxed),
        }
    }
}

/// Admission at accept time: over `max_conns` sheds with `503`,
/// otherwise the connection is admitted and queued (non-unix fallback
/// path; the evented loop admits into its idle set instead).
#[cfg(not(unix))]
fn accept_one(
    state: &AppState,
    queue: &ConnQueue<Conn>,
    mut stream: TcpStream,
    io_timeout: Duration,
    request_deadline: Duration,
    max_conns: usize,
) {
    state.serving.accepted.fetch_add(1, Ordering::Relaxed);
    if state.serving.open_conns.load(Ordering::SeqCst) as usize >= max_conns {
        state.serving.sheds_accept.fetch_add(1, Ordering::Relaxed);
        shed_503(
            &mut stream,
            io_timeout,
            "server at connection capacity; retry later",
        );
        return;
    }
    state.serving.admitted.fetch_add(1, Ordering::Relaxed);
    state.serving.open_conns.fetch_add(1, Ordering::SeqCst);
    let conn = Conn::new(stream, io_timeout, Instant::now() + request_deadline);
    match queue.push(conn) {
        Ok(()) => {
            state.serving.queued.fetch_add(1, Ordering::SeqCst);
        }
        Err(mut conn) => {
            state.serving.sheds_queue.fetch_add(1, Ordering::Relaxed);
            shed_503(
                &mut conn.stream,
                io_timeout,
                "dispatch queue full; retry later",
            );
            state.serving.open_conns.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Everything the readiness loop borrows from `serve`'s stack.
#[cfg(unix)]
struct EventLoopEnv<'a> {
    listener: &'a TcpListener,
    state: &'a AppState,
    queue: &'a ConnQueue<Conn>,
    injector: &'a Mutex<Vec<Conn>>,
    wake: &'a WakePair,
    io_timeout: Duration,
    request_deadline: Duration,
    max_conns: usize,
}

/// The readiness loop: multiplexes the listener, the wake channel, and
/// every idle admitted connection through one `poll(2)` set. Readable
/// connections dispatch to the bounded worker queue (full → shed 503);
/// idle connections past their request deadline are dropped; accepts
/// beyond `max_conns` shed with 503.
#[cfg(unix)]
fn event_loop(env: EventLoopEnv<'_>) {
    let EventLoopEnv {
        listener,
        state,
        queue,
        injector,
        wake,
        io_timeout,
        request_deadline,
        max_conns,
    } = env;
    // The idle set: admitted connections currently owned by the loop
    // (not queued, not inside a worker).
    let mut conns: Vec<Conn> = Vec::new();
    loop {
        if state.is_shutting_down() {
            break;
        }
        let mut fds = Vec::with_capacity(2 + conns.len());
        fds.push(PollFd::readable(wake.poll_fd()));
        fds.push(PollFd::readable(listener.as_raw_fd()));
        for conn in &conns {
            fds.push(PollFd::readable(conn.stream.as_raw_fd()));
        }
        // Park until traffic, a wake byte, or the nearest deadline.
        let now = Instant::now();
        let timeout = conns
            .iter()
            .map(|c| c.deadline.saturating_duration_since(now))
            .min();
        if poll_fds(&mut fds, timeout).is_err() {
            // poll(2) failing outright (ENOMEM) has no per-iteration
            // remedy; back off instead of spinning hot.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        }
        if state.is_shutting_down() {
            break;
        }
        wake.drain();
        // Re-admit connections workers handed back. They were not in
        // this round's poll set; the next iteration covers them.
        conns.append(&mut injector.lock().unwrap_or_else(|e| e.into_inner()));
        // Dispatch readable connections (fds[i + 2] watches conns[i]).
        // Reverse order keeps pending swap_remove indices valid, and the
        // appended give-backs live past the polled prefix so swaps never
        // disturb an index still to be visited.
        for i in (0..fds.len().saturating_sub(2)).rev() {
            if !fds[i + 2].is_actionable() {
                continue;
            }
            let conn = conns.swap_remove(i);
            match queue.push(conn) {
                Ok(()) => {
                    state.serving.queued.fetch_add(1, Ordering::SeqCst);
                }
                Err(mut conn) => {
                    state.serving.sheds_queue.fetch_add(1, Ordering::Relaxed);
                    shed_503(
                        &mut conn.stream,
                        io_timeout,
                        "dispatch queue full; retry later",
                    );
                    state.serving.open_conns.fetch_sub(1, Ordering::SeqCst);
                }
            }
        }
        // Expire connections past their request deadline: dropped with
        // no response — the slow-loris shed.
        let now = Instant::now();
        let mut i = 0;
        while i < conns.len() {
            if now >= conns[i].deadline {
                drop(conns.swap_remove(i));
                state.serving.deadline_drops.fetch_add(1, Ordering::Relaxed);
                state.serving.open_conns.fetch_sub(1, Ordering::SeqCst);
            } else {
                i += 1;
            }
        }
        // Drain the accept backlog (nonblocking, level-triggered).
        if fds[1].is_actionable() {
            loop {
                match listener.accept() {
                    Ok((mut stream, _peer)) => {
                        if state.is_shutting_down() {
                            drop(stream);
                            break;
                        }
                        state.serving.accepted.fetch_add(1, Ordering::Relaxed);
                        if state.serving.open_conns.load(Ordering::SeqCst) as usize >= max_conns {
                            state.serving.sheds_accept.fetch_add(1, Ordering::Relaxed);
                            shed_503(
                                &mut stream,
                                io_timeout,
                                "server at connection capacity; retry later",
                            );
                            continue;
                        }
                        state.serving.admitted.fetch_add(1, Ordering::Relaxed);
                        state.serving.open_conns.fetch_add(1, Ordering::SeqCst);
                        conns.push(Conn::new(
                            stream,
                            io_timeout,
                            Instant::now() + request_deadline,
                        ));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    // Transient accept failure (EMFILE, aborted
                    // handshake): stop draining; the next poll round
                    // paces the retry, so no hot loop.
                    Err(_) => break,
                }
            }
        }
    }
    // Shutdown: idle connections are dropped; queued ones drain through
    // the workers, each answered with `connection: close`.
    for conn in conns.drain(..) {
        drop(conn);
        state.serving.open_conns.fetch_sub(1, Ordering::SeqCst);
    }
    queue.close();
}

/// What one `service_conn` round decided about the connection.
enum Fate {
    /// A request may still arrive: back to the idle set (or, without an
    /// event loop, another blocking read).
    KeepAlive,
    /// Done: client EOF, error, `connection: close`, or shutdown.
    Close,
    /// No complete request within the deadline: drop with no response.
    DeadlineDrop,
}

/// One dispatch round for a connection a worker received: one bounded
/// read, then every complete pipelined request in the buffer is routed
/// and answered. Never blocks longer than `min(io_timeout, remaining
/// deadline)` on the read and `io_timeout` per response write.
fn service_conn(
    state: &AppState,
    conn: &mut Conn,
    io_timeout: Duration,
    request_deadline: Duration,
) -> Fate {
    // The deadline is checked *after* the read-and-answer pass, never
    // before it: a connection that queued behind a dispatch burst may be
    // past its deadline by the time a worker pops it, but if a complete
    // request is sitting in its socket the client did everything right —
    // answering it resets the deadline. Only silence is dropped.
    let budget = conn
        .deadline
        .saturating_duration_since(Instant::now())
        .min(io_timeout);
    let _ = conn
        .stream
        .set_read_timeout(Some(budget.max(Duration::from_millis(1))));
    let mut chunk = [0u8; 16384];
    match conn.stream.read(&mut chunk) {
        // EOF with nothing (or only a partial request) buffered: clean
        // close, nothing to answer.
        Ok(0) => return Fate::Close,
        Ok(n) => conn.buf.extend_from_slice(&chunk[..n]),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock
                    | std::io::ErrorKind::TimedOut
                    | std::io::ErrorKind::Interrupted
            ) =>
        {
            // Spurious readiness or a timed-out blocking read: nothing
            // new buffered; the deadline check below decides.
        }
        Err(_) => return Fate::Close,
    }
    // Answer every complete request already buffered (pipelining).
    loop {
        match parse_request(&conn.buf, state.max_body) {
            Ok(Parse::Incomplete) => break,
            Ok(Parse::Complete(req, consumed)) => {
                conn.buf.drain(..consumed);
                // Route before deciding keep-alive, so a /shutdown
                // request closes its own connection instead of pinning
                // a worker until the client hangs up. A panicking
                // handler forces the close: its in-flight state is
                // unknowable.
                let (routed, panicked) = state.route_caught(&req);
                let close = panicked || req.wants_close() || state.is_shutting_down();
                let response = routed.encode(close);
                if conn.stream.write_all(&response).is_err() {
                    return Fate::Close;
                }
                if close {
                    return Fate::Close;
                }
                conn.deadline = Instant::now() + request_deadline;
            }
            Err(e) => {
                let response = state.reject(e).encode(true);
                let _ = conn.stream.write_all(&response);
                return Fate::Close;
            }
        }
    }
    if Instant::now() >= conn.deadline {
        return Fate::DeadlineDrop;
    }
    Fate::KeepAlive
}

/// A worker: drains the dispatch queue, servicing one connection round
/// at a time under `catch_unwind` (the pool's scoped join propagates
/// panics, so an unwind here would kill the whole server — the prior
/// panic-kills-server bug). `give_back` returns `None` when it took the
/// keep-alive connection (evented mode) or hands it back for inline
/// servicing (fallback mode).
fn worker_loop(
    state: &AppState,
    queue: &ConnQueue<Conn>,
    io_timeout: Duration,
    request_deadline: Duration,
    give_back: impl Fn(Conn) -> Option<Conn>,
) {
    while let Some(conn) = queue.pop() {
        state.serving.queued.fetch_sub(1, Ordering::SeqCst);
        let mut slot = Some(conn);
        loop {
            let mut conn = slot.take().expect("connection present");
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                let fate = service_conn(state, &mut conn, io_timeout, request_deadline);
                (fate, conn)
            }));
            match outcome {
                Ok((Fate::KeepAlive, conn)) => match give_back(conn) {
                    None => break,
                    Some(conn) => {
                        slot = Some(conn);
                    }
                },
                Ok((Fate::Close, conn)) => {
                    drop(conn);
                    state.serving.open_conns.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
                Ok((Fate::DeadlineDrop, conn)) => {
                    drop(conn);
                    state.serving.deadline_drops.fetch_add(1, Ordering::Relaxed);
                    state.serving.open_conns.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
                Err(_) => {
                    // route_caught already isolates handler panics; this
                    // is the outer belt for the read/parse/encode path.
                    // The connection unwound with the closure — count
                    // and keep serving.
                    state.serving.panics.fetch_add(1, Ordering::Relaxed);
                    state.serving.open_conns.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_core::SearchAlgo;
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};

    fn state(cache_cap: usize) -> AppState {
        AppState::new(
            CommunityEngine::build(figure1_graph()),
            &ServeConfig {
                cache_cap,
                ..ServeConfig::default()
            },
        )
    }

    fn req(method: &str, target: &str, body: &str) -> Vec<u8> {
        format!(
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    fn split(response: &[u8]) -> (String, Vec<u8>) {
        let pos = response
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("response has a head");
        (
            String::from_utf8(response[..pos].to_vec()).unwrap(),
            response[pos + 4..].to_vec(),
        )
    }

    #[test]
    fn healthz_and_stats_roundtrip() {
        let s = state(8);
        let (head, body) = split(&s.respond(&req("GET", "/healthz", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, br#"{"status":"ok"}"#);
        let (head, body) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains(r#""num_vertices":12"#), "{text}");
        assert!(text.contains(r#""healthz":1"#), "{text}");
    }

    #[test]
    fn search_matches_direct_engine_answer_and_caches() {
        let s = state(8);
        let f = Figure1Ids::default();
        let body = format!(
            r#"{{"query":[{},{},{}],"algo":"basic"}}"#,
            f.q1.0, f.q2.0, f.q3.0
        );
        let first = s.respond(&req("POST", "/search", &body)).unwrap();
        let (head, payload) = split(&first);
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("x-cache: miss"), "{head}");
        let direct = s
            .engine()
            .search(&[f.q1, f.q2, f.q3], SearchAlgo::Basic)
            .unwrap();
        assert_eq!(payload, encode_community(&s.engine(), &direct));
        // Second identical request: byte-identical body, served by cache.
        let second = s.respond(&req("POST", "/search", &body)).unwrap();
        let (head2, payload2) = split(&second);
        assert!(head2.contains("x-cache: hit"), "{head2}");
        assert_eq!(payload2, payload, "cached body must be byte-identical");
        let c = s.counters();
        assert_eq!((c.cache_hits, c.cache_misses), (1, 1));
        // A permuted query with duplicates hits the same slot.
        let permuted = format!(
            r#"{{"query":[{},{},{},{}]}}"#,
            f.q3.0, f.q1.0, f.q2.0, f.q1.0
        );
        let algo_pinned = format!(r#"{{"query":[{},{},{}]}}"#, f.q1.0, f.q2.0, f.q3.0);
        let a = s.respond(&req("POST", "/search", &permuted)).unwrap();
        let b = s.respond(&req("POST", "/search", &algo_pinned)).unwrap();
        assert_eq!(split(&a).1, split(&b).1);
    }

    #[test]
    fn stats_reports_cumulative_phase_micros() {
        let s = state(8);
        let f = Figure1Ids::default();
        let body = format!(
            r#"{{"query":[{},{},{}],"algo":"basic"}}"#,
            f.q1.0, f.q2.0, f.q3.0
        );
        // Before any search: all phase counters zero.
        let (_, stats0) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        let text0 = String::from_utf8(stats0).unwrap();
        assert!(
            text0.contains(r#""phases":{"locate_us":0,"peel_us":0,"finish_us":0,"total_us":0}"#),
            "{text0}"
        );
        // One uncached search accumulates micros; a cache hit must not.
        s.respond(&req("POST", "/search", &body)).unwrap();
        let c1 = s.counters();
        assert_eq!(
            c1.phase_locate_us + c1.phase_peel_us + c1.phase_finish_us,
            c1.phase_total_us,
            "phases must partition the total exactly: {c1:?}"
        );
        s.respond(&req("POST", "/search", &body)).unwrap();
        let c2 = s.counters();
        assert_eq!(
            (
                c2.phase_locate_us,
                c2.phase_peel_us,
                c2.phase_finish_us,
                c2.phase_total_us
            ),
            (
                c1.phase_locate_us,
                c1.phase_peel_us,
                c1.phase_finish_us,
                c1.phase_total_us
            ),
            "cache hits must not move the phase counters"
        );
        let (_, stats1) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        let text1 = String::from_utf8(stats1).unwrap();
        assert!(
            text1.contains(&format!(r#""peel_us":{}"#, c2.phase_peel_us)),
            "{text1}"
        );
    }

    /// The counter arithmetic must stay exact across many uncached
    /// searches of different algorithms — the sum of per-request integer
    /// truncation residue lands in `finish_us`, never lost.
    #[test]
    fn phase_counters_sum_exactly_across_requests() {
        let s = state(8);
        let f = Figure1Ids::default();
        let queries = [f.q1, f.q2, f.q3];
        for (i, algo) in ["basic", "bd", "lctc", "truss"].iter().enumerate() {
            let body = format!(r#"{{"query":[{}],"algo":"{algo}"}}"#, queries[i % 3].0);
            let _ = s.respond(&req("POST", "/search", &body));
        }
        let c = s.counters();
        assert!(c.cache_misses >= 3, "expected several uncached searches");
        assert_eq!(
            c.phase_locate_us + c.phase_peel_us + c.phase_finish_us,
            c.phase_total_us,
            "locate + peel + finish must equal total: {c:?}"
        );
    }

    #[test]
    fn update_applies_and_reports_per_op_outcomes() {
        let s = state(8);
        let f = Figure1Ids::default();
        let (q1, q2, t) = (f.q1.0, f.q2.0, f.t.0);
        // Four ops: a real delete, its re-insert, an unknown label, and a
        // duplicate insert. The rejections must not poison the batch.
        let body = format!(
            r#"{{"updates":[{{"op":"delete","u":{q1},"v":{t}}},{{"op":"insert","u":{q1},"v":{t}}},{{"op":"insert","u":{q1},"v":9999}},{{"op":"insert","u":{q1},"v":{q2}}}]}}"#
        );
        let (head, payload) = split(&s.respond(&req("POST", "/update", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let text = String::from_utf8(payload).unwrap();
        assert!(
            text.starts_with(r#"{"applied":2,"rejected":2,"max_class":2,"#),
            "{text}"
        );
        // The bridge is a support-0 edge: trussness 2, no cascade.
        assert!(
            text.contains(r#"{"status":"applied","trussness":2,"changed":0}"#),
            "{text}"
        );
        assert!(text.contains("label 9999 not in graph"), "{text}");
        assert!(text.contains("already present"), "{text}");
        let c = s.counters();
        assert_eq!((c.update_ok, c.update_err), (1, 0));
        assert_eq!((c.updates_applied, c.updates_rejected), (2, 2));
        // One publication for the batch; the graph ends where it began.
        assert_eq!(s.epoch(), 1);
        let (_, stats) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        let stats = String::from_utf8(stats).unwrap();
        assert!(stats.contains(r#""num_edges":25"#), "{stats}");
        assert!(
            stats.contains(
                r#""updates":{"batches_ok":1,"batches_err":0,"applied":2,"rejected":2,"epoch":1}"#
            ),
            "{stats}"
        );
    }

    #[test]
    fn update_rejections_and_bad_bodies() {
        let s = state(8);
        let f = Figure1Ids::default();
        // Malformed body: 400, no publication.
        let (head, _) = split(&s.respond(&req("POST", "/update", "{nope")).unwrap());
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        // All ops rejected: still 200, but nothing published.
        let body = format!(
            r#"{{"updates":[{{"op":"delete","u":{},"v":{}}}]}}"#,
            f.q1.0, f.q3.0
        );
        let (head, payload) = split(&s.respond(&req("POST", "/update", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let text = String::from_utf8(payload).unwrap();
        assert!(
            text.starts_with(r#"{"applied":0,"rejected":1,"max_class":0,"#),
            "{text}"
        );
        assert!(text.contains("is not present"), "{text}");
        assert_eq!(s.epoch(), 0, "an all-rejected batch must not republish");
        let c = s.counters();
        assert_eq!((c.update_ok, c.update_err), (1, 1));
        // Wrong method on /update is 405, not 404.
        let (head, _) = split(&s.respond(&req("GET", "/update", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
    }

    #[test]
    fn update_invalidates_by_class_and_keeps_unaffected_answers() {
        let s = state(8);
        let f = Figure1Ids::default();
        let (q1, q2, q3, t) = (f.q1.0, f.q2.0, f.q3.0, f.t.0);
        let basic = format!(r#"{{"query":[{q1},{q2},{q3}],"algo":"basic"}}"#);
        let lctc = format!(r#"{{"query":[{q1},{q2},{q3}],"algo":"lctc"}}"#);
        s.respond(&req("POST", "/search", &basic)).unwrap();
        s.respond(&req("POST", "/search", &lctc)).unwrap();
        // Deleting the bridge touches only class 2; the k=4 Basic answer
        // is provably unaffected and must survive, while the heuristic
        // LCTC answer (graph-shape dependent) must be dropped.
        let update = format!(r#"{{"updates":[{{"op":"delete","u":{q1},"v":{t}}}]}}"#);
        let (head, _) = split(&s.respond(&req("POST", "/update", &update)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let (head, _) = split(&s.respond(&req("POST", "/search", &basic)).unwrap());
        assert!(head.contains("x-cache: hit"), "k=4 > max_class=2: {head}");
        let (head, _) = split(&s.respond(&req("POST", "/search", &lctc)).unwrap());
        assert!(head.contains("x-cache: miss"), "LCTC always drops: {head}");
        // A deletion inside the community touches class 4: the Basic
        // entry now goes too.
        let update = format!(r#"{{"updates":[{{"op":"delete","u":{q1},"v":{q2}}}]}}"#);
        s.respond(&req("POST", "/update", &update)).unwrap();
        let (head, _) = split(&s.respond(&req("POST", "/search", &basic)).unwrap());
        assert!(head.contains("x-cache: miss"), "{head}");
    }

    #[test]
    fn readers_observe_published_updates() {
        let s = state(0);
        let f = Figure1Ids::default();
        let before = s.engine();
        let update = format!(
            r#"{{"updates":[{{"op":"delete","u":{},"v":{}}}]}}"#,
            f.q1.0, f.t.0
        );
        s.respond(&req("POST", "/update", &update)).unwrap();
        // A clone captured before the update keeps its consistent view;
        // fresh captures see the mutated graph.
        assert_eq!(before.stats().num_edges, 25);
        assert_eq!(s.engine().stats().num_edges, 24);
        let (_, stats) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        assert!(String::from_utf8(stats)
            .unwrap()
            .contains(r#""num_edges":24"#));
    }

    #[test]
    fn cache_key_respects_config_knobs() {
        let s = state(8);
        let f = Figure1Ids::default();
        let base = format!(r#"{{"query":[{}]}}"#, f.q1.0);
        let tuned = format!(r#"{{"query":[{}],"eta":64}}"#, f.q1.0);
        s.respond(&req("POST", "/search", &base)).unwrap();
        s.respond(&req("POST", "/search", &tuned)).unwrap();
        let c = s.counters();
        assert_eq!(
            (c.cache_hits, c.cache_misses),
            (0, 2),
            "an eta override must not hit the default-config slot"
        );
    }

    #[test]
    fn search_error_paths_map_to_statuses() {
        let s = state(8);
        for (body, status) in [
            ("{not json", "400"),
            (r#"{"query":[9999]}"#, "404"),
            (r#"{"query":[1],"nope":1}"#, "400"),
        ] {
            let (head, payload) = split(&s.respond(&req("POST", "/search", body)).unwrap());
            assert!(
                head.starts_with(&format!("HTTP/1.1 {status}")),
                "{body}: {head}"
            );
            assert!(payload.starts_with(br#"{"error":"#), "{body}");
        }
        let c = s.counters();
        assert_eq!(c.search_err, 3);
        assert_eq!(c.search_ok, 0);
    }

    #[test]
    fn unknown_routes_and_methods() {
        let s = state(8);
        let (head, _) = split(&s.respond(&req("GET", "/nope", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 404"));
        let (head, _) = split(&s.respond(&req("DELETE", "/search", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 405"));
        let (head, _) = split(&s.respond(b"GET / HTTP/2\r\n\r\n").unwrap());
        assert!(head.starts_with("HTTP/1.1 505"));
        assert_eq!(s.counters().http_rejects, 1);
    }

    #[test]
    fn respond_is_none_on_partial_streams() {
        let s = state(8);
        assert_eq!(s.respond(b""), None);
        assert_eq!(
            s.respond(b"POST /search HTTP/1.1\r\ncontent-length: 99\r\n\r\n{"),
            None
        );
    }

    #[test]
    fn shutdown_endpoint_sets_the_flag() {
        let s = state(8);
        assert!(!s.is_shutting_down());
        let (head, _) = split(&s.respond(&req("POST", "/shutdown", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(
            head.contains("connection: close"),
            "the shutdown response itself must close its connection, not \
             pin a worker on keep-alive until the io timeout: {head}"
        );
        assert!(s.is_shutting_down());
        // Responses now carry connection: close.
        let bytes = s.respond(&req("GET", "/healthz", "")).unwrap();
        assert!(String::from_utf8(bytes)
            .unwrap()
            .contains("connection: close"));
    }

    #[test]
    fn bound_server_serves_and_shuts_down_over_tcp() {
        let engine = CommunityEngine::build(figure1_graph());
        let server = CtcServer::bind(
            engine,
            "127.0.0.1:0",
            ServeConfig {
                pool: Parallelism::threads(2),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = Vec::new();
        conn.read_to_end(&mut response).unwrap();
        assert!(response.starts_with(b"HTTP/1.1 200 OK"));
        handle.shutdown();
        let report = join.join().expect("serve thread panicked");
        assert_eq!(report.counters.healthz, 1);
        assert!(report.connections >= 1);
    }

    #[test]
    fn trickling_client_is_dropped_at_the_request_deadline() {
        let engine = CommunityEngine::build(figure1_graph());
        let server = CtcServer::bind(
            engine,
            "127.0.0.1:0",
            ServeConfig {
                request_deadline: Duration::from_millis(200),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        // A slow-loris client: partial head, then silence. The single
        // serial worker must shed it at the deadline instead of being
        // pinned, leaving the server able to answer the next client.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"GET /healthz HTT").unwrap();
        let t0 = Instant::now();
        let mut end = Vec::new();
        loris
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let n = loris.read_to_end(&mut end).unwrap_or(1);
        assert_eq!(n, 0, "trickler must be dropped without a response");
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "drop must come from the deadline, not a long io timeout"
        );
        // The worker is free again: a healthy client gets answered.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = Vec::new();
        conn.read_to_end(&mut response).unwrap();
        assert!(response.starts_with(b"HTTP/1.1 200 OK"));
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn queue_close_unblocks_poppers_and_drains() {
        let q: ConnQueue<u32> = ConnQueue::new(4);
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| q.pop());
            std::thread::sleep(Duration::from_millis(20));
            q.close();
            assert!(popper.join().unwrap().is_none());
        });
    }

    #[test]
    fn queue_is_bounded_and_rejects_overflow() {
        let q: ConnQueue<u32> = ConnQueue::new(2);
        assert_eq!(q.push(1), Ok(()));
        assert_eq!(q.push(2), Ok(()));
        // Full: the element comes back to the caller (who sheds it with
        // a 503) instead of growing the queue without bound.
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.push(3), Ok(()));
        q.close();
        // Closed: pushes bounce, queued elements still drain.
        assert_eq!(q.push(4), Err(4));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn panicking_handler_gets_500_and_server_keeps_serving() {
        let s = AppState::new(
            CommunityEngine::build(figure1_graph()),
            &ServeConfig {
                debug_endpoints: true,
                ..ServeConfig::default()
            },
        );
        let bytes = s.respond(&req("POST", "/debug/panic", "")).unwrap();
        let (head, payload) = split(&bytes);
        assert!(head.starts_with("HTTP/1.1 500"), "{head}");
        assert!(
            head.contains("connection: close"),
            "a panicked handler's connection must close: {head}"
        );
        assert!(payload.starts_with(br#"{"error":"#));
        assert_eq!(s.server_counters().panics, 1);
        // The state survives: routing, search, and stats still work.
        let (head, _) = split(&s.respond(&req("GET", "/healthz", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let f = Figure1Ids::default();
        let body = format!(r#"{{"query":[{}]}}"#, f.q1.0);
        let (head, _) = split(&s.respond(&req("POST", "/search", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let (_, stats) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        let text = String::from_utf8(stats).unwrap();
        assert!(text.contains(r#""panics":1"#), "{text}");
    }

    #[test]
    fn debug_endpoints_are_gated_off_by_default() {
        let s = state(8);
        let (head, _) = split(&s.respond(&req("POST", "/debug/panic", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        assert_eq!(s.server_counters().panics, 0);
    }

    #[test]
    fn tenant_inflight_cap_sheds_429_with_retry_after() {
        let s = AppState::new(
            CommunityEngine::build(figure1_graph()),
            &ServeConfig {
                tenant_inflight: 1,
                ..ServeConfig::default()
            },
        );
        // Hold the single admission slot on the default tenant, then
        // race a second request against it.
        let guard = s
            .default_tenant()
            .counters
            .in_flight
            .fetch_add(1, Ordering::SeqCst);
        assert_eq!(guard, 0);
        let f = Figure1Ids::default();
        let body = format!(r#"{{"query":[{}]}}"#, f.q1.0);
        let (head, payload) = split(&s.respond(&req("POST", "/search", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 429"), "{head}");
        assert!(head.contains("retry-after: 1"), "{head}");
        assert!(payload.starts_with(br#"{"error":"#));
        assert_eq!(
            s.default_tenant().counters.sheds_429.load(Ordering::SeqCst),
            1
        );
        // Release the slot: the next request is admitted.
        s.default_tenant()
            .counters
            .in_flight
            .fetch_sub(1, Ordering::SeqCst);
        let (head, _) = split(&s.respond(&req("POST", "/search", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    }

    #[test]
    fn tenant_scoped_routes_serve_named_engines() {
        let s = state(8);
        s.add_tenant_engine("fig", CommunityEngine::build(figure1_graph()))
            .unwrap();
        let f = Figure1Ids::default();
        let body = format!(r#"{{"query":[{}]}}"#, f.q1.0);
        // Same engine, same answer, through the tenant-scoped path.
        let bare = s.respond(&req("POST", "/search", &body)).unwrap();
        let scoped = s.respond(&req("POST", "/t/fig/search", &body)).unwrap();
        assert_eq!(split(&bare).1, split(&scoped).1);
        // Explicit default-tenant path is the same slot as the bare one.
        let aliased = s.respond(&req("POST", "/t/default/search", &body)).unwrap();
        assert_eq!(split(&bare).1, split(&aliased).1);
        // Tenant counters are isolated: fig saw one search, default two.
        let (_, stats) = split(&s.respond(&req("GET", "/t/fig/stats", "")).unwrap());
        let text = String::from_utf8(stats).unwrap();
        assert!(text.contains(r#""tenant":"fig""#), "{text}");
        assert!(text.contains(r#""search_ok":1"#), "{text}");
        // Unknown tenants 404 (valid name) or 400 (invalid name); a bad
        // endpoint under a known tenant 404s without loading anything.
        let (head, _) = split(&s.respond(&req("POST", "/t/ghost/search", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = split(
            &s.respond(&req("POST", "/t/bad!name/search", &body))
                .unwrap(),
        );
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = split(&s.respond(&req("GET", "/t/fig/nope", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        let (head, _) = split(&s.respond(&req("DELETE", "/t/fig/search", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
    }

    #[test]
    fn tenant_updates_do_not_cross_tenants() {
        let s = state(8);
        s.add_tenant_engine("fig", CommunityEngine::build(figure1_graph()))
            .unwrap();
        let f = Figure1Ids::default();
        let update = format!(
            r#"{{"updates":[{{"op":"delete","u":{},"v":{}}}]}}"#,
            f.q1.0, f.t.0
        );
        let (head, _) = split(&s.respond(&req("POST", "/t/fig/update", &update)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        // fig lost the edge; default still has all 25.
        let (_, stats) = split(&s.respond(&req("GET", "/t/fig/stats", "")).unwrap());
        let text = String::from_utf8(stats).unwrap();
        assert!(text.contains(r#""num_edges":24"#), "{text}");
        assert!(text.contains(r#""dirty":true"#), "{text}");
        assert_eq!(s.engine().stats().num_edges, 25);
        assert_eq!(s.epoch(), 0);
    }

    #[test]
    fn repeated_panics_quarantine_then_heal_after_backoff() {
        let s = AppState::new(
            CommunityEngine::build(figure1_graph()),
            &ServeConfig {
                debug_endpoints: true,
                health: HealthPolicy {
                    quarantine_after: 2,
                    base_backoff: Duration::from_millis(40),
                    max_backoff: Duration::from_millis(200),
                },
                ..ServeConfig::default()
            },
        );
        let f = Figure1Ids::default();
        let body = format!(r#"{{"query":[{}]}}"#, f.q1.0);
        // Two consecutive handler panics trip the default tenant into
        // quarantine.
        for _ in 0..2 {
            let (head, _) = split(&s.respond(&req("POST", "/debug/panic", "")).unwrap());
            assert!(head.starts_with("HTTP/1.1 500"), "{head}");
        }
        // /healthz is now non-200 and names the quarantined tenant.
        let (head, payload) = split(&s.respond(&req("GET", "/healthz", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        let text = String::from_utf8(payload).unwrap();
        assert!(text.contains(r#""status":"degraded""#), "{text}");
        assert!(text.contains(r#""quarantined":["default"]"#), "{text}");
        // Requests shed with 503 + retry-after while the backoff runs.
        let (head, payload) = split(&s.respond(&req("POST", "/search", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 503"), "{head}");
        assert!(head.contains("retry-after:"), "{head}");
        assert!(
            String::from_utf8(payload).unwrap().contains("quarantined"),
            "shed body names the quarantine"
        );
        // Stats surface the health state while quarantined.
        let (_, stats) = split(&s.respond(&req("GET", "/t/default/stats", "")).unwrap());
        let text = String::from_utf8(stats).unwrap();
        assert!(text.contains(r#""status":"quarantined""#), "{text}");
        assert!(
            text.contains(r#""reason":"request handler panicked""#),
            "{text}"
        );
        // After the backoff, the probe request is admitted, succeeds, and
        // heals the tenant: serving resumes and /healthz is 200 again.
        std::thread::sleep(Duration::from_millis(60));
        let (head, _) = split(&s.respond(&req("POST", "/search", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let (head, payload) = split(&s.respond(&req("GET", "/healthz", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert_eq!(payload, br#"{"status":"ok"}"#);
    }

    #[test]
    fn attached_wal_journals_applied_updates_for_recovery() {
        use ctc_truss::{recover, Snapshot};
        let dir = std::env::temp_dir().join(format!("ctc-server-wal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("g.ctci");
        let log_path = dir.join("g.ctcd");
        let snap = Snapshot::build(figure1_graph());
        snap.save(&snap_path).unwrap();
        let base = ctc_graph::io::fnv1a64(&std::fs::read(&snap_path).unwrap());
        let s = state(8);
        s.attach_default_wal(DeltaLogFile::create(&log_path, base).unwrap());
        let f = Figure1Ids::default();
        // A batch with one applied and one rejected op: only the applied
        // op reaches the log.
        let update = format!(
            r#"{{"updates":[{{"op":"delete","u":{},"v":{}}},{{"op":"delete","u":{},"v":{}}}]}}"#,
            f.q1.0, f.t.0, f.q1.0, f.t.0
        );
        let (head, _) = split(&s.respond(&req("POST", "/update", &update)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let c = s
            .default_tenant()
            .counters
            .wal_appended
            .load(Ordering::Relaxed);
        assert_eq!(c, 1, "one applied op journaled, the duplicate rejected");
        // Crash-equivalent: drop the state and recover from disk. The
        // recovered graph matches the served (maintained) one.
        let served_edges = s.engine().stats().num_edges;
        drop(s);
        let (rec, _, report) = recover(&snap_path, Some(&log_path)).unwrap();
        assert!(report.log.is_clean(), "{:?}", report.log);
        assert_eq!(rec.graph.num_edges(), served_edges);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
