//! The daemon: listener, worker pool, router, graceful shutdown.
//!
//! Architecture (all std, no async runtime):
//!
//! ```text
//!                 ┌──────────────┐  accepted   ┌─────────────────────┐
//!  TcpListener ──►│ acceptor     │────────────►│ ConnQueue           │
//!                 │ (one thread) │   sockets   │ (Mutex + Condvar)   │
//!                 └──────────────┘             └──────────┬──────────┘
//!                                                         │ pop
//!                              ┌───────────┬──────────────┼─────────────┐
//!                              ▼           ▼              ▼             ▼
//!                          worker 0    worker 1   ...  worker N-1   (pool sized
//!                         (keep-alive read loop → parse → route → respond)
//! ```
//!
//! The pool is built on the PR-2 [`Parallelism`] substrate:
//! [`CtcServer::serve`] calls `pool.map_chunks(workers, ..)` with one
//! index per worker, so worker threads are the same scoped fork-join
//! primitive every other parallel phase of the workspace uses, and
//! `serve` returns only once every worker has drained and joined — clean
//! shutdown is structural, not best-effort.
//!
//! Shutdown ("SIGTERM-equivalent"): [`ServerHandle::shutdown`] (or a
//! `POST /shutdown` request) sets the shared flag and pokes the listener
//! with a loopback connection so the blocking `accept` wakes, the
//! acceptor closes the queue, workers finish their in-flight requests,
//! drain what was already queued, and exit.

use crate::cache::LruCache;
use crate::http::{parse_request, HttpError, Parse, Request, Response, DEFAULT_MAX_BODY};
use crate::json::Json;
use crate::wire::{
    decode_search_request, decode_update_request, encode_community, encode_error,
    encode_update_response, search_error_response, QueryKey, UpdateOutcome,
};
use ctc_core::{CommunityEngine, EngineUpdate, SearchAlgo};
use ctc_graph::Parallelism;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker-pool size (the `Parallelism` substrate; serial = 1 worker).
    pub pool: Parallelism,
    /// LRU answer-cache capacity; `0` disables caching.
    pub cache_cap: usize,
    /// Per-request body cap, bytes.
    pub max_body: usize,
    /// Socket read/write timeout, so a stalled client cannot pin a worker.
    pub io_timeout: Duration,
    /// Hard deadline for receiving one complete request. Unlike
    /// `io_timeout` (which a slow-loris client resets with every
    /// trickled byte), this bounds total time-to-request, so a worker
    /// can never be pinned longer than this per request. The clock
    /// restarts after each answered request, so healthy keep-alive
    /// connections live indefinitely.
    pub request_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            pool: Parallelism::serial(),
            cache_cap: 1024,
            max_body: DEFAULT_MAX_BODY,
            io_timeout: Duration::from_secs(10),
            request_deadline: Duration::from_secs(30),
        }
    }
}

/// Monotonic request counters, readable while the server runs.
#[derive(Debug, Default)]
pub struct Counters {
    /// Requests routed (any endpoint, any outcome).
    pub total: AtomicU64,
    /// `/search` answers served (cache hits included).
    pub search_ok: AtomicU64,
    /// `/search` requests that failed (bad body, unknown label, no
    /// community).
    pub search_err: AtomicU64,
    /// `/search` answers served from the LRU cache.
    pub cache_hits: AtomicU64,
    /// `/search` answers that ran the full search path.
    pub cache_misses: AtomicU64,
    /// `/healthz` hits.
    pub healthz: AtomicU64,
    /// `/stats` hits.
    pub stats: AtomicU64,
    /// Byte streams rejected by the HTTP parser.
    pub http_rejects: AtomicU64,
    /// `/update` batches answered `200` (individual ops inside may still
    /// have been rejected — see `updates_applied` / `updates_rejected`).
    pub update_ok: AtomicU64,
    /// `/update` requests whose body failed to decode (`400`) or whose
    /// batch failed internally (`500`).
    pub update_err: AtomicU64,
    /// Individual edge updates applied across all `200` batches. Together
    /// with `updates_rejected` this sums exactly to the per-op outcomes
    /// reported in `/update` response bodies — the invariant the soak
    /// test pins.
    pub updates_applied: AtomicU64,
    /// Individual edge updates rejected (duplicate edge, missing edge,
    /// unknown label, self-loop) across all `200` batches.
    pub updates_rejected: AtomicU64,
    /// Cumulative microseconds spent locating `G0`/`Gt` across uncached
    /// `/search` answers. With `phase_peel_us`, `phase_finish_us` and
    /// `phase_total_us` this makes phase regressions visible in production
    /// without a profiler: `GET /stats` divides them by `cache_misses`.
    pub phase_locate_us: AtomicU64,
    /// Cumulative peel-phase microseconds across uncached `/search`
    /// answers.
    pub phase_peel_us: AtomicU64,
    /// Cumulative post-peel (result assembly) microseconds across uncached
    /// `/search` answers. Accumulated as `total − locate − peel` per
    /// request, so `locate + peel + finish == total` holds exactly at the
    /// counter level.
    pub phase_finish_us: AtomicU64,
    /// Cumulative end-to-end search microseconds across uncached
    /// `/search` answers.
    pub phase_total_us: AtomicU64,
}

/// A plain-data copy of [`Counters`] at one instant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CountersSnapshot {
    /// See [`Counters::total`].
    pub total: u64,
    /// See [`Counters::search_ok`].
    pub search_ok: u64,
    /// See [`Counters::search_err`].
    pub search_err: u64,
    /// See [`Counters::cache_hits`].
    pub cache_hits: u64,
    /// See [`Counters::cache_misses`].
    pub cache_misses: u64,
    /// See [`Counters::healthz`].
    pub healthz: u64,
    /// See [`Counters::stats`].
    pub stats: u64,
    /// See [`Counters::http_rejects`].
    pub http_rejects: u64,
    /// See [`Counters::update_ok`].
    pub update_ok: u64,
    /// See [`Counters::update_err`].
    pub update_err: u64,
    /// See [`Counters::updates_applied`].
    pub updates_applied: u64,
    /// See [`Counters::updates_rejected`].
    pub updates_rejected: u64,
    /// See [`Counters::phase_locate_us`].
    pub phase_locate_us: u64,
    /// See [`Counters::phase_peel_us`].
    pub phase_peel_us: u64,
    /// See [`Counters::phase_finish_us`].
    pub phase_finish_us: u64,
    /// See [`Counters::phase_total_us`].
    pub phase_total_us: u64,
}

impl Counters {
    fn snapshot(&self) -> CountersSnapshot {
        CountersSnapshot {
            total: self.total.load(Ordering::Relaxed),
            search_ok: self.search_ok.load(Ordering::Relaxed),
            search_err: self.search_err.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            healthz: self.healthz.load(Ordering::Relaxed),
            stats: self.stats.load(Ordering::Relaxed),
            http_rejects: self.http_rejects.load(Ordering::Relaxed),
            update_ok: self.update_ok.load(Ordering::Relaxed),
            update_err: self.update_err.load(Ordering::Relaxed),
            updates_applied: self.updates_applied.load(Ordering::Relaxed),
            updates_rejected: self.updates_rejected.load(Ordering::Relaxed),
            phase_locate_us: self.phase_locate_us.load(Ordering::Relaxed),
            phase_peel_us: self.phase_peel_us.load(Ordering::Relaxed),
            phase_finish_us: self.phase_finish_us.load(Ordering::Relaxed),
            phase_total_us: self.phase_total_us.load(Ordering::Relaxed),
        }
    }
}

/// A cached `/search` answer: the encoded body plus the answer's
/// trussness `k`, the class-keyed invalidation handle — an applied
/// update with `max_class < k` provably cannot change this answer (for
/// the exact algorithms), so the entry survives the update.
#[derive(Clone)]
struct CachedAnswer {
    k: u32,
    body: Arc<Vec<u8>>,
}

/// Everything a request needs, shared across workers behind one [`Arc`]:
/// the engine (itself `Arc`-backed), the answer cache, counters and the
/// shutdown flag. Also usable standalone — without any socket — via
/// [`AppState::respond`], which is how the fuzz battery and the serve
/// bench drive the full parse → dispatch → encode path in-process.
///
/// Online updates split the engine in two:
///
/// * `primary` — the writer's engine, holding the warm [`DynamicIndex`]
///   maintenance state. Every `/update` serializes through this mutex.
/// * `serving` — the readers' engine, a frozen clone republished after
///   each applied batch. A `/search` clones it (Arc bumps) under a short
///   read lock and computes against that immutable view, so readers are
///   never blocked by a writer mid-maintenance and never observe a
///   half-applied batch.
///
/// [`DynamicIndex`]: ctc_truss::DynamicIndex
pub struct AppState {
    primary: Mutex<CommunityEngine>,
    serving: RwLock<CommunityEngine>,
    /// Bumped (under the `serving` write lock) on every publication. A
    /// reader that captured the engine before an update re-checks the
    /// epoch before inserting its answer into the cache; on a mismatch
    /// it skips the insert, so a stale answer computed against the old
    /// graph can never land *after* the update's invalidation pass.
    epoch: AtomicU64,
    cache: Mutex<LruCache<QueryKey, CachedAnswer>>,
    counters: Counters,
    shutdown: AtomicBool,
    max_body: usize,
    /// Set once the listener is bound; the shutdown poke connects here.
    wake_addr: Mutex<Option<SocketAddr>>,
}

impl AppState {
    /// State over `engine` with the given tuning (no socket required).
    pub fn new(engine: CommunityEngine, cfg: &ServeConfig) -> Self {
        let serving = engine.frozen_clone();
        AppState {
            primary: Mutex::new(engine),
            serving: RwLock::new(serving),
            epoch: AtomicU64::new(0),
            cache: Mutex::new(LruCache::new(cfg.cache_cap)),
            counters: Counters::default(),
            shutdown: AtomicBool::new(false),
            max_body: cfg.max_body,
            wake_addr: Mutex::new(None),
        }
    }

    /// A clone of the currently served (read-side) engine — Arc bumps,
    /// not a data copy. The clone is an immutable consistent view: later
    /// `/update`s republish rather than mutate in place.
    pub fn engine(&self) -> CommunityEngine {
        self.serving.read().expect("serving poisoned").clone()
    }

    /// The publication epoch: how many update batches have republished
    /// the serving engine so far.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Current counter values.
    pub fn counters(&self) -> CountersSnapshot {
        self.counters.snapshot()
    }

    /// `true` once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Requests shutdown: sets the flag and pokes the listener (if bound)
    /// so the blocking accept wakes. Idempotent.
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let addr = *self.wake_addr.lock().expect("wake_addr poisoned");
        if let Some(mut addr) = addr {
            // A listener bound to the unspecified address (0.0.0.0/[::])
            // reports it back from local_addr(), but connecting *to* the
            // unspecified address is invalid on some platforms — poke
            // loopback on the same port instead.
            if addr.ip().is_unspecified() {
                addr.set_ip(match addr {
                    SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            // Poke the blocking accept awake. Retried with backoff: under
            // fd exhaustion the first connect fails, but draining workers
            // free sockets within moments, and without a successful poke
            // (or incoming traffic, or an accept error — both of which
            // also observe the flag) the acceptor would stay blocked.
            for _ in 0..10 {
                if TcpStream::connect_timeout(&addr, Duration::from_millis(500)).is_ok() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        }
    }

    /// Runs one buffered byte stream through the full request path:
    /// parse → route → encode. Returns `None` when the bytes are a valid
    /// prefix of a request (the server would keep reading; a standalone
    /// caller treats it as a clean close), otherwise the exact response
    /// bytes the server would write. Never panics on any input — the
    /// property the fuzz battery pins.
    pub fn respond(&self, raw: &[u8]) -> Option<Vec<u8>> {
        match parse_request(raw, self.max_body) {
            Ok(Parse::Incomplete) => None,
            Ok(Parse::Complete(req, _)) => {
                // Route first: a /shutdown request must see its own effect
                // (its response, and every later one, carries
                // `connection: close`).
                let response = self.route(&req);
                let close = req.wants_close() || self.is_shutting_down();
                Some(response.encode(close))
            }
            Err(e) => Some(self.reject(e).encode(true)),
        }
    }

    /// The error response for a stream the parser rejected.
    fn reject(&self, e: HttpError) -> Response {
        self.counters.http_rejects.fetch_add(1, Ordering::Relaxed);
        let (status, reason) = e.status();
        Response::error(status, reason, encode_error(e.detail()))
    }

    /// Routes one parsed request to its endpoint handler.
    fn route(&self, req: &Request) -> Response {
        self.counters.total.fetch_add(1, Ordering::Relaxed);
        match (req.method.as_str(), req.target.as_str()) {
            ("POST", "/search") => self.handle_search(req),
            ("POST", "/update") => self.handle_update(req),
            ("GET", "/healthz") => {
                self.counters.healthz.fetch_add(1, Ordering::Relaxed);
                Response::ok(
                    Json::Object(vec![("status".into(), Json::Str("ok".into()))])
                        .encode()
                        .into_bytes(),
                )
            }
            ("GET", "/stats") => {
                self.counters.stats.fetch_add(1, Ordering::Relaxed);
                Response::ok(self.encode_stats())
            }
            ("POST", "/shutdown") => {
                self.request_shutdown();
                Response::ok(
                    Json::Object(vec![("status".into(), Json::Str("shutting down".into()))])
                        .encode()
                        .into_bytes(),
                )
            }
            (_, "/search" | "/update" | "/healthz" | "/stats" | "/shutdown") => Response::error(
                405,
                "Method Not Allowed",
                encode_error("method not allowed for this endpoint"),
            ),
            _ => Response::error(404, "Not Found", encode_error("no such endpoint")),
        }
    }

    /// `POST /search`: decode → resolve labels → cache → engine → encode.
    fn handle_search(&self, req: &Request) -> Response {
        // Capture the serving engine and the publication epoch under one
        // read lock: the pair is what makes "which graph answered this"
        // well-defined while /update batches republish concurrently.
        let (snapshot, epoch) = {
            let guard = self.serving.read().expect("serving poisoned");
            (guard.clone(), self.epoch.load(Ordering::SeqCst))
        };
        let parsed = match decode_search_request(&req.body, snapshot.config()) {
            Ok(p) => p,
            Err(e) => {
                self.counters.search_err.fetch_add(1, Ordering::Relaxed);
                return Response::error(e.status, "Bad Request", encode_error(&e.message));
            }
        };
        let q = match snapshot.resolve_labels(&parsed.labels) {
            Ok(q) => q,
            Err(label) => {
                self.counters.search_err.fetch_add(1, Ordering::Relaxed);
                return Response::error(
                    404,
                    "Not Found",
                    encode_error(&format!("label {label} not in graph")),
                );
            }
        };
        let key = parsed.key();
        // Bind the lookup to a statement so the cache mutex is released
        // before the body bytes are copied into the response: under the
        // lock a hit is only an Arc bump, so concurrent workers never
        // serialize on a large-body memcpy.
        let hit = self.cache.lock().expect("cache poisoned").get(&key);
        if let Some(ans) = hit {
            self.counters.cache_hits.fetch_add(1, Ordering::Relaxed);
            self.counters.search_ok.fetch_add(1, Ordering::Relaxed);
            return Response::ok(ans.body.as_ref().clone()).with_header("x-cache", "hit");
        }
        // Miss: run the search under the per-request config. The engine
        // clone is three Arc bumps; per-query inner parallelism stays
        // whatever the base config says (serial for serving — the pool
        // already owns the cores).
        let engine = snapshot.clone().with_config(parsed.cfg);
        match engine.search(&q, parsed.algo) {
            Ok(c) => {
                self.counters.cache_misses.fetch_add(1, Ordering::Relaxed);
                self.counters.search_ok.fetch_add(1, Ordering::Relaxed);
                // The finish counter absorbs the integer-truncation residue
                // along with the assembly time, keeping
                // locate + peel + finish == total exact in the µs domain.
                let lu = c.timings.locate.as_micros() as u64;
                let pu = c.timings.peel.as_micros() as u64;
                let tu = c.timings.total.as_micros() as u64;
                self.counters
                    .phase_locate_us
                    .fetch_add(lu, Ordering::Relaxed);
                self.counters.phase_peel_us.fetch_add(pu, Ordering::Relaxed);
                self.counters
                    .phase_finish_us
                    .fetch_add(tu.saturating_sub(lu).saturating_sub(pu), Ordering::Relaxed);
                self.counters
                    .phase_total_us
                    .fetch_add(tu, Ordering::Relaxed);
                // Cache the *encoded* body: a hit costs one memcpy, never
                // a re-encode of the whole community (encoding dominates
                // per-hit cost for large answers).
                let body = Arc::new(encode_community(&snapshot, &c));
                {
                    let mut cache = self.cache.lock().expect("cache poisoned");
                    // Re-check the epoch under the cache lock: if an
                    // update published while this search ran, the answer
                    // was computed against a superseded graph. Inserting
                    // it after the update's invalidation pass would poison
                    // the cache; skipping the insert is always safe.
                    if self.epoch.load(Ordering::SeqCst) == epoch {
                        cache.insert(
                            key,
                            CachedAnswer {
                                k: c.k,
                                body: Arc::clone(&body),
                            },
                        );
                    }
                }
                Response::ok(body.as_ref().clone()).with_header("x-cache", "miss")
            }
            Err(e) => {
                self.counters.search_err.fetch_add(1, Ordering::Relaxed);
                let (status, reason, body) = search_error_response(&e);
                Response::error(status, reason, body)
            }
        }
    }

    /// `POST /update`: decode → resolve labels per-op → maintain the
    /// primary index → republish a frozen clone → invalidate affected
    /// cache classes. Always `200` with per-op outcomes when the body
    /// decodes; individual ops reject independently.
    fn handle_update(&self, req: &Request) -> Response {
        let parsed = match decode_update_request(&req.body) {
            Ok(p) => p,
            Err(e) => {
                self.counters.update_err.fetch_add(1, Ordering::Relaxed);
                return Response::error(e.status, "Bad Request", encode_error(&e.message));
            }
        };
        // One writer at a time: the whole resolve → maintain → publish
        // sequence holds the primary lock, so batches are serialized and
        // the serving engine always corresponds to a prefix of batches.
        let mut primary = self.primary.lock().expect("primary poisoned");
        // Resolve labels per-op. An unknown label rejects that op alone;
        // resolved ops keep their batch position so outcomes line up.
        let mut slots: Vec<Result<EngineUpdate, String>> = Vec::with_capacity(parsed.ops.len());
        for op in &parsed.ops {
            let resolve = |label: u64| {
                primary
                    .resolve_labels(&[label])
                    .map(|v| v[0])
                    .map_err(|l| format!("label {l} not in graph"))
            };
            slots.push(resolve(op.u).and_then(|u| {
                resolve(op.v).map(|v| {
                    if op.insert {
                        EngineUpdate::insert(u, v)
                    } else {
                        EngineUpdate::delete(u, v)
                    }
                })
            }));
        }
        let batch: Vec<EngineUpdate> = slots.iter().filter_map(|s| s.clone().ok()).collect();
        let report = match primary.apply_batch(&batch) {
            Ok(r) => r,
            Err(e) => {
                // Internal failure (the maintained state could not be
                // re-materialized) — nothing was published.
                self.counters.update_err.fetch_add(1, Ordering::Relaxed);
                let (status, reason, body) = search_error_response(&e);
                return Response::error(status, reason, body);
            }
        };
        if report.applied > 0 {
            // Publish a frozen clone for readers, then drop the affected
            // cache classes. The epoch bump happens under the write lock,
            // so a reader's (engine, epoch) capture is always consistent.
            let frozen = primary.frozen_clone();
            {
                let mut serving = self.serving.write().expect("serving poisoned");
                *serving = frozen;
                self.epoch.fetch_add(1, Ordering::SeqCst);
            }
            let max_class = report.max_class;
            // Exact algorithms answer from τ ≥ k subgraphs, which are
            // untouched for k > max_class; LCTC explores the raw graph
            // around the query, so any applied update invalidates it.
            self.cache
                .lock()
                .expect("cache poisoned")
                .retain(|key, ans| key.algo != SearchAlgo::Local && ans.k > max_class);
        }
        // Zip engine results back into batch positions.
        let mut engine_results = report.results.into_iter();
        let outcomes: Vec<UpdateOutcome> = slots
            .into_iter()
            .map(|slot| match slot {
                Err(error) => UpdateOutcome::Rejected { error },
                Ok(_) => match engine_results.next().expect("one result per applied op") {
                    Ok(r) => UpdateOutcome::Applied {
                        trussness: r.edge_truss,
                        changed: r.changed as u64,
                    },
                    Err(e) => UpdateOutcome::Rejected {
                        error: e.to_string(),
                    },
                },
            })
            .collect();
        drop(primary);
        let applied = report.applied as u64;
        let rejected = (outcomes.len() - report.applied) as u64;
        self.counters.update_ok.fetch_add(1, Ordering::Relaxed);
        self.counters
            .updates_applied
            .fetch_add(applied, Ordering::Relaxed);
        self.counters
            .updates_rejected
            .fetch_add(rejected, Ordering::Relaxed);
        Response::ok(encode_update_response(
            applied,
            rejected,
            report.max_class,
            &outcomes,
        ))
    }

    /// The `/stats` body: graph/index summary + request counters.
    fn encode_stats(&self) -> Vec<u8> {
        let s = self.engine().stats();
        let c = self.counters.snapshot();
        let cache = self.cache.lock().expect("cache poisoned");
        Json::Object(vec![
            (
                "graph".into(),
                Json::Object(vec![
                    ("num_vertices".into(), Json::Uint(s.num_vertices as u64)),
                    ("num_edges".into(), Json::Uint(s.num_edges as u64)),
                    ("max_truss".into(), Json::Uint(s.max_truss as u64)),
                    ("labeled".into(), Json::Bool(s.labeled)),
                ]),
            ),
            (
                "cache".into(),
                Json::Object(vec![
                    ("capacity".into(), Json::Uint(cache.capacity() as u64)),
                    ("entries".into(), Json::Uint(cache.len() as u64)),
                    ("hits".into(), Json::Uint(c.cache_hits)),
                    ("misses".into(), Json::Uint(c.cache_misses)),
                ]),
            ),
            (
                "requests".into(),
                Json::Object(vec![
                    ("total".into(), Json::Uint(c.total)),
                    ("search_ok".into(), Json::Uint(c.search_ok)),
                    ("search_err".into(), Json::Uint(c.search_err)),
                    ("healthz".into(), Json::Uint(c.healthz)),
                    ("stats".into(), Json::Uint(c.stats)),
                    ("http_rejects".into(), Json::Uint(c.http_rejects)),
                ]),
            ),
            // Online-update accounting: batches_ok + batches_err covers
            // every /update request; applied + rejected sums exactly over
            // the per-op outcomes of the 200 responses (the soak test
            // pins this), and epoch counts publications.
            (
                "updates".into(),
                Json::Object(vec![
                    ("batches_ok".into(), Json::Uint(c.update_ok)),
                    ("batches_err".into(), Json::Uint(c.update_err)),
                    ("applied".into(), Json::Uint(c.updates_applied)),
                    ("rejected".into(), Json::Uint(c.updates_rejected)),
                    ("epoch".into(), Json::Uint(self.epoch())),
                ]),
            ),
            // Cumulative per-phase search time over uncached answers:
            // divide by cache.misses for means; watch peel_us to catch
            // query-hot-path regressions in production (docs/PERF.md).
            (
                "phases".into(),
                Json::Object(vec![
                    ("locate_us".into(), Json::Uint(c.phase_locate_us)),
                    ("peel_us".into(), Json::Uint(c.phase_peel_us)),
                    ("finish_us".into(), Json::Uint(c.phase_finish_us)),
                    ("total_us".into(), Json::Uint(c.phase_total_us)),
                ]),
            ),
        ])
        .encode()
        .into_bytes()
    }
}

/// The connection hand-off queue between the acceptor and the workers.
struct ConnQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

struct QueueInner {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

impl ConnQueue {
    fn new() -> Self {
        ConnQueue {
            inner: Mutex::new(QueueInner {
                conns: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, conn: TcpStream) {
        let mut inner = self.inner.lock().expect("queue poisoned");
        if !inner.closed {
            inner.conns.push_back(conn);
            self.ready.notify_one();
        }
    }

    /// Blocks for the next connection; `None` once closed *and* drained,
    /// so queued requests are still answered during shutdown.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.inner.lock().expect("queue poisoned");
        loop {
            if let Some(conn) = inner.conns.pop_front() {
                return Some(conn);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue poisoned");
        }
    }

    fn close(&self) {
        self.inner.lock().expect("queue poisoned").closed = true;
        self.ready.notify_all();
    }
}

/// What [`CtcServer::serve`] reports after a graceful shutdown.
#[derive(Clone, Copy, Debug)]
pub struct ServeReport {
    /// Final counter values.
    pub counters: CountersSnapshot,
    /// Connections handled across all workers.
    pub connections: u64,
}

/// A bound-but-not-yet-serving server.
pub struct CtcServer {
    listener: TcpListener,
    state: Arc<AppState>,
    pool: Parallelism,
    io_timeout: Duration,
    request_deadline: Duration,
}

/// A cheap handle for stopping and observing a running server from
/// another thread.
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<AppState>,
}

impl ServerHandle {
    /// Triggers graceful shutdown: in-flight and already-queued requests
    /// are answered, then `serve` returns. Idempotent.
    pub fn shutdown(&self) {
        self.state.request_shutdown();
    }

    /// Current counter values.
    pub fn counters(&self) -> CountersSnapshot {
        self.state.counters()
    }
}

impl CtcServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// prepares to serve `engine`.
    pub fn bind(
        engine: CommunityEngine,
        addr: impl ToSocketAddrs,
        cfg: ServeConfig,
    ) -> std::io::Result<CtcServer> {
        let listener = TcpListener::bind(addr)?;
        let state = Arc::new(AppState::new(engine, &cfg));
        *state.wake_addr.lock().expect("wake_addr poisoned") = Some(listener.local_addr()?);
        Ok(CtcServer {
            listener,
            state,
            pool: cfg.pool,
            io_timeout: cfg.io_timeout,
            request_deadline: cfg.request_deadline,
        })
    }

    /// The bound address (the actual port when bound to `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("listener has a local addr")
    }

    /// A handle for shutting the server down from another thread.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Shared application state (for in-process drivers and tests).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Serves until shutdown is requested, then drains and returns.
    /// Blocks the calling thread; run it in a dedicated thread when the
    /// caller needs to keep working (see `tests/serve.rs`).
    pub fn serve(self) -> ServeReport {
        let CtcServer {
            listener,
            state,
            pool,
            io_timeout,
            request_deadline,
        } = self;
        let queue = ConnQueue::new();
        let connections = AtomicU64::new(0);
        let workers = pool.get();
        std::thread::scope(|scope| {
            let acceptor = scope.spawn(|| {
                loop {
                    match listener.accept() {
                        Ok((conn, _peer)) => {
                            if state.is_shutting_down() {
                                // The wake poke (or a straggler): drop it
                                // and stop accepting.
                                drop(conn);
                                break;
                            }
                            queue.push(conn);
                        }
                        Err(_) => {
                            if state.is_shutting_down() {
                                break;
                            }
                            // Transient accept failure (EMFILE, aborted
                            // handshake): keep serving, but back off so a
                            // persistent error (fd exhaustion) cannot pin
                            // a core in a hot accept loop.
                            std::thread::sleep(Duration::from_millis(50));
                        }
                    }
                }
                queue.close();
            });
            // The worker pool: one queue-draining loop per Parallelism
            // worker, scheduled through the same fork-join substrate as
            // every other parallel phase. map_chunks returns only when
            // every worker has exited, i.e. the queue is closed and
            // drained.
            pool.map_chunks(workers, |_range| {
                while let Some(conn) = queue.pop() {
                    connections.fetch_add(1, Ordering::Relaxed);
                    handle_connection(&state, conn, io_timeout, request_deadline);
                }
            });
            acceptor.join().expect("acceptor panicked");
        });
        ServeReport {
            counters: state.counters(),
            connections: connections.load(Ordering::Relaxed),
        }
    }
}

/// Read-loop for one connection: buffer, parse incrementally, respond,
/// keep the connection alive until the client closes, errors, asks to
/// close, exceeds the per-request deadline, or shutdown begins.
fn handle_connection(
    state: &AppState,
    mut conn: TcpStream,
    io_timeout: Duration,
    request_deadline: Duration,
) {
    let _ = conn.set_write_timeout(Some(io_timeout));
    let _ = conn.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Per-request progress deadline: a per-read timeout alone lets a
    // slow-loris client pin this worker forever by trickling one byte
    // per io_timeout; the deadline bounds total time-to-request and is
    // reset whenever a request completes.
    let mut deadline = Instant::now() + request_deadline;
    loop {
        // Answer every complete request already buffered (pipelining).
        loop {
            match parse_request(&buf, state.max_body) {
                Ok(Parse::Incomplete) => break,
                Ok(Parse::Complete(req, consumed)) => {
                    buf.drain(..consumed);
                    // Route before deciding keep-alive, so a /shutdown
                    // request closes its own connection instead of
                    // pinning a worker until the client hangs up.
                    let routed = state.route(&req);
                    let close = req.wants_close() || state.is_shutting_down();
                    let response = routed.encode(close);
                    if conn.write_all(&response).is_err() {
                        return;
                    }
                    if close {
                        return;
                    }
                    deadline = Instant::now() + request_deadline;
                }
                Err(e) => {
                    let response = state.reject(e).encode(true);
                    let _ = conn.write_all(&response);
                    return;
                }
            }
        }
        let now = Instant::now();
        if now >= deadline {
            // The client made no complete request in time: drop it.
            return;
        }
        let _ = conn.set_read_timeout(Some((deadline - now).min(io_timeout)));
        match conn.read(&mut chunk) {
            // EOF with nothing (or only a partial request) buffered:
            // clean close, nothing to answer.
            Ok(0) => return,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            // Timeout or reset: drop the connection.
            Err(_) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_core::SearchAlgo;
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};

    fn state(cache_cap: usize) -> AppState {
        AppState::new(
            CommunityEngine::build(figure1_graph()),
            &ServeConfig {
                cache_cap,
                ..ServeConfig::default()
            },
        )
    }

    fn req(method: &str, target: &str, body: &str) -> Vec<u8> {
        format!(
            "{method} {target} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    fn split(response: &[u8]) -> (String, Vec<u8>) {
        let pos = response
            .windows(4)
            .position(|w| w == b"\r\n\r\n")
            .expect("response has a head");
        (
            String::from_utf8(response[..pos].to_vec()).unwrap(),
            response[pos + 4..].to_vec(),
        )
    }

    #[test]
    fn healthz_and_stats_roundtrip() {
        let s = state(8);
        let (head, body) = split(&s.respond(&req("GET", "/healthz", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert_eq!(body, br#"{"status":"ok"}"#);
        let (head, body) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        let text = String::from_utf8(body).unwrap();
        assert!(text.contains(r#""num_vertices":12"#), "{text}");
        assert!(text.contains(r#""healthz":1"#), "{text}");
    }

    #[test]
    fn search_matches_direct_engine_answer_and_caches() {
        let s = state(8);
        let f = Figure1Ids::default();
        let body = format!(
            r#"{{"query":[{},{},{}],"algo":"basic"}}"#,
            f.q1.0, f.q2.0, f.q3.0
        );
        let first = s.respond(&req("POST", "/search", &body)).unwrap();
        let (head, payload) = split(&first);
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("x-cache: miss"), "{head}");
        let direct = s
            .engine()
            .search(&[f.q1, f.q2, f.q3], SearchAlgo::Basic)
            .unwrap();
        assert_eq!(payload, encode_community(&s.engine(), &direct));
        // Second identical request: byte-identical body, served by cache.
        let second = s.respond(&req("POST", "/search", &body)).unwrap();
        let (head2, payload2) = split(&second);
        assert!(head2.contains("x-cache: hit"), "{head2}");
        assert_eq!(payload2, payload, "cached body must be byte-identical");
        let c = s.counters();
        assert_eq!((c.cache_hits, c.cache_misses), (1, 1));
        // A permuted query with duplicates hits the same slot.
        let permuted = format!(
            r#"{{"query":[{},{},{},{}]}}"#,
            f.q3.0, f.q1.0, f.q2.0, f.q1.0
        );
        let algo_pinned = format!(r#"{{"query":[{},{},{}]}}"#, f.q1.0, f.q2.0, f.q3.0);
        let a = s.respond(&req("POST", "/search", &permuted)).unwrap();
        let b = s.respond(&req("POST", "/search", &algo_pinned)).unwrap();
        assert_eq!(split(&a).1, split(&b).1);
    }

    #[test]
    fn stats_reports_cumulative_phase_micros() {
        let s = state(8);
        let f = Figure1Ids::default();
        let body = format!(
            r#"{{"query":[{},{},{}],"algo":"basic"}}"#,
            f.q1.0, f.q2.0, f.q3.0
        );
        // Before any search: all phase counters zero.
        let (_, stats0) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        let text0 = String::from_utf8(stats0).unwrap();
        assert!(
            text0.contains(r#""phases":{"locate_us":0,"peel_us":0,"finish_us":0,"total_us":0}"#),
            "{text0}"
        );
        // One uncached search accumulates micros; a cache hit must not.
        s.respond(&req("POST", "/search", &body)).unwrap();
        let c1 = s.counters();
        assert_eq!(
            c1.phase_locate_us + c1.phase_peel_us + c1.phase_finish_us,
            c1.phase_total_us,
            "phases must partition the total exactly: {c1:?}"
        );
        s.respond(&req("POST", "/search", &body)).unwrap();
        let c2 = s.counters();
        assert_eq!(
            (
                c2.phase_locate_us,
                c2.phase_peel_us,
                c2.phase_finish_us,
                c2.phase_total_us
            ),
            (
                c1.phase_locate_us,
                c1.phase_peel_us,
                c1.phase_finish_us,
                c1.phase_total_us
            ),
            "cache hits must not move the phase counters"
        );
        let (_, stats1) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        let text1 = String::from_utf8(stats1).unwrap();
        assert!(
            text1.contains(&format!(r#""peel_us":{}"#, c2.phase_peel_us)),
            "{text1}"
        );
    }

    /// The counter arithmetic must stay exact across many uncached
    /// searches of different algorithms — the sum of per-request integer
    /// truncation residue lands in `finish_us`, never lost.
    #[test]
    fn phase_counters_sum_exactly_across_requests() {
        let s = state(8);
        let f = Figure1Ids::default();
        let queries = [f.q1, f.q2, f.q3];
        for (i, algo) in ["basic", "bd", "lctc", "truss"].iter().enumerate() {
            let body = format!(r#"{{"query":[{}],"algo":"{algo}"}}"#, queries[i % 3].0);
            let _ = s.respond(&req("POST", "/search", &body));
        }
        let c = s.counters();
        assert!(c.cache_misses >= 3, "expected several uncached searches");
        assert_eq!(
            c.phase_locate_us + c.phase_peel_us + c.phase_finish_us,
            c.phase_total_us,
            "locate + peel + finish must equal total: {c:?}"
        );
    }

    #[test]
    fn update_applies_and_reports_per_op_outcomes() {
        let s = state(8);
        let f = Figure1Ids::default();
        let (q1, q2, t) = (f.q1.0, f.q2.0, f.t.0);
        // Four ops: a real delete, its re-insert, an unknown label, and a
        // duplicate insert. The rejections must not poison the batch.
        let body = format!(
            r#"{{"updates":[{{"op":"delete","u":{q1},"v":{t}}},{{"op":"insert","u":{q1},"v":{t}}},{{"op":"insert","u":{q1},"v":9999}},{{"op":"insert","u":{q1},"v":{q2}}}]}}"#
        );
        let (head, payload) = split(&s.respond(&req("POST", "/update", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let text = String::from_utf8(payload).unwrap();
        assert!(
            text.starts_with(r#"{"applied":2,"rejected":2,"max_class":2,"#),
            "{text}"
        );
        // The bridge is a support-0 edge: trussness 2, no cascade.
        assert!(
            text.contains(r#"{"status":"applied","trussness":2,"changed":0}"#),
            "{text}"
        );
        assert!(text.contains("label 9999 not in graph"), "{text}");
        assert!(text.contains("already present"), "{text}");
        let c = s.counters();
        assert_eq!((c.update_ok, c.update_err), (1, 0));
        assert_eq!((c.updates_applied, c.updates_rejected), (2, 2));
        // One publication for the batch; the graph ends where it began.
        assert_eq!(s.epoch(), 1);
        let (_, stats) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        let stats = String::from_utf8(stats).unwrap();
        assert!(stats.contains(r#""num_edges":25"#), "{stats}");
        assert!(
            stats.contains(
                r#""updates":{"batches_ok":1,"batches_err":0,"applied":2,"rejected":2,"epoch":1}"#
            ),
            "{stats}"
        );
    }

    #[test]
    fn update_rejections_and_bad_bodies() {
        let s = state(8);
        let f = Figure1Ids::default();
        // Malformed body: 400, no publication.
        let (head, _) = split(&s.respond(&req("POST", "/update", "{nope")).unwrap());
        assert!(head.starts_with("HTTP/1.1 400"), "{head}");
        // All ops rejected: still 200, but nothing published.
        let body = format!(
            r#"{{"updates":[{{"op":"delete","u":{},"v":{}}}]}}"#,
            f.q1.0, f.q3.0
        );
        let (head, payload) = split(&s.respond(&req("POST", "/update", &body)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let text = String::from_utf8(payload).unwrap();
        assert!(
            text.starts_with(r#"{"applied":0,"rejected":1,"max_class":0,"#),
            "{text}"
        );
        assert!(text.contains("is not present"), "{text}");
        assert_eq!(s.epoch(), 0, "an all-rejected batch must not republish");
        let c = s.counters();
        assert_eq!((c.update_ok, c.update_err), (1, 1));
        // Wrong method on /update is 405, not 404.
        let (head, _) = split(&s.respond(&req("GET", "/update", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 405"), "{head}");
    }

    #[test]
    fn update_invalidates_by_class_and_keeps_unaffected_answers() {
        let s = state(8);
        let f = Figure1Ids::default();
        let (q1, q2, q3, t) = (f.q1.0, f.q2.0, f.q3.0, f.t.0);
        let basic = format!(r#"{{"query":[{q1},{q2},{q3}],"algo":"basic"}}"#);
        let lctc = format!(r#"{{"query":[{q1},{q2},{q3}],"algo":"lctc"}}"#);
        s.respond(&req("POST", "/search", &basic)).unwrap();
        s.respond(&req("POST", "/search", &lctc)).unwrap();
        // Deleting the bridge touches only class 2; the k=4 Basic answer
        // is provably unaffected and must survive, while the heuristic
        // LCTC answer (graph-shape dependent) must be dropped.
        let update = format!(r#"{{"updates":[{{"op":"delete","u":{q1},"v":{t}}}]}}"#);
        let (head, _) = split(&s.respond(&req("POST", "/update", &update)).unwrap());
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        let (head, _) = split(&s.respond(&req("POST", "/search", &basic)).unwrap());
        assert!(head.contains("x-cache: hit"), "k=4 > max_class=2: {head}");
        let (head, _) = split(&s.respond(&req("POST", "/search", &lctc)).unwrap());
        assert!(head.contains("x-cache: miss"), "LCTC always drops: {head}");
        // A deletion inside the community touches class 4: the Basic
        // entry now goes too.
        let update = format!(r#"{{"updates":[{{"op":"delete","u":{q1},"v":{q2}}}]}}"#);
        s.respond(&req("POST", "/update", &update)).unwrap();
        let (head, _) = split(&s.respond(&req("POST", "/search", &basic)).unwrap());
        assert!(head.contains("x-cache: miss"), "{head}");
    }

    #[test]
    fn readers_observe_published_updates() {
        let s = state(0);
        let f = Figure1Ids::default();
        let before = s.engine();
        let update = format!(
            r#"{{"updates":[{{"op":"delete","u":{},"v":{}}}]}}"#,
            f.q1.0, f.t.0
        );
        s.respond(&req("POST", "/update", &update)).unwrap();
        // A clone captured before the update keeps its consistent view;
        // fresh captures see the mutated graph.
        assert_eq!(before.stats().num_edges, 25);
        assert_eq!(s.engine().stats().num_edges, 24);
        let (_, stats) = split(&s.respond(&req("GET", "/stats", "")).unwrap());
        assert!(String::from_utf8(stats)
            .unwrap()
            .contains(r#""num_edges":24"#));
    }

    #[test]
    fn cache_key_respects_config_knobs() {
        let s = state(8);
        let f = Figure1Ids::default();
        let base = format!(r#"{{"query":[{}]}}"#, f.q1.0);
        let tuned = format!(r#"{{"query":[{}],"eta":64}}"#, f.q1.0);
        s.respond(&req("POST", "/search", &base)).unwrap();
        s.respond(&req("POST", "/search", &tuned)).unwrap();
        let c = s.counters();
        assert_eq!(
            (c.cache_hits, c.cache_misses),
            (0, 2),
            "an eta override must not hit the default-config slot"
        );
    }

    #[test]
    fn search_error_paths_map_to_statuses() {
        let s = state(8);
        for (body, status) in [
            ("{not json", "400"),
            (r#"{"query":[9999]}"#, "404"),
            (r#"{"query":[1],"nope":1}"#, "400"),
        ] {
            let (head, payload) = split(&s.respond(&req("POST", "/search", body)).unwrap());
            assert!(
                head.starts_with(&format!("HTTP/1.1 {status}")),
                "{body}: {head}"
            );
            assert!(payload.starts_with(br#"{"error":"#), "{body}");
        }
        let c = s.counters();
        assert_eq!(c.search_err, 3);
        assert_eq!(c.search_ok, 0);
    }

    #[test]
    fn unknown_routes_and_methods() {
        let s = state(8);
        let (head, _) = split(&s.respond(&req("GET", "/nope", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 404"));
        let (head, _) = split(&s.respond(&req("DELETE", "/search", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 405"));
        let (head, _) = split(&s.respond(b"GET / HTTP/2\r\n\r\n").unwrap());
        assert!(head.starts_with("HTTP/1.1 505"));
        assert_eq!(s.counters().http_rejects, 1);
    }

    #[test]
    fn respond_is_none_on_partial_streams() {
        let s = state(8);
        assert_eq!(s.respond(b""), None);
        assert_eq!(
            s.respond(b"POST /search HTTP/1.1\r\ncontent-length: 99\r\n\r\n{"),
            None
        );
    }

    #[test]
    fn shutdown_endpoint_sets_the_flag() {
        let s = state(8);
        assert!(!s.is_shutting_down());
        let (head, _) = split(&s.respond(&req("POST", "/shutdown", "")).unwrap());
        assert!(head.starts_with("HTTP/1.1 200"));
        assert!(
            head.contains("connection: close"),
            "the shutdown response itself must close its connection, not \
             pin a worker on keep-alive until the io timeout: {head}"
        );
        assert!(s.is_shutting_down());
        // Responses now carry connection: close.
        let bytes = s.respond(&req("GET", "/healthz", "")).unwrap();
        assert!(String::from_utf8(bytes)
            .unwrap()
            .contains("connection: close"));
    }

    #[test]
    fn bound_server_serves_and_shuts_down_over_tcp() {
        let engine = CommunityEngine::build(figure1_graph());
        let server = CtcServer::bind(
            engine,
            "127.0.0.1:0",
            ServeConfig {
                pool: Parallelism::threads(2),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = Vec::new();
        conn.read_to_end(&mut response).unwrap();
        assert!(response.starts_with(b"HTTP/1.1 200 OK"));
        handle.shutdown();
        let report = join.join().expect("serve thread panicked");
        assert_eq!(report.counters.healthz, 1);
        assert!(report.connections >= 1);
    }

    #[test]
    fn trickling_client_is_dropped_at_the_request_deadline() {
        let engine = CommunityEngine::build(figure1_graph());
        let server = CtcServer::bind(
            engine,
            "127.0.0.1:0",
            ServeConfig {
                request_deadline: Duration::from_millis(200),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let addr = server.local_addr();
        let handle = server.handle();
        let join = std::thread::spawn(move || server.serve());
        // A slow-loris client: partial head, then silence. The single
        // serial worker must shed it at the deadline instead of being
        // pinned, leaving the server able to answer the next client.
        let mut loris = TcpStream::connect(addr).unwrap();
        loris.write_all(b"GET /healthz HTT").unwrap();
        let t0 = Instant::now();
        let mut end = Vec::new();
        loris
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let n = loris.read_to_end(&mut end).unwrap_or(1);
        assert_eq!(n, 0, "trickler must be dropped without a response");
        assert!(
            t0.elapsed() < Duration::from_secs(3),
            "drop must come from the deadline, not a long io timeout"
        );
        // The worker is free again: a healthy client gets answered.
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut response = Vec::new();
        conn.read_to_end(&mut response).unwrap();
        assert!(response.starts_with(b"HTTP/1.1 200 OK"));
        handle.shutdown();
        join.join().unwrap();
    }

    #[test]
    fn queue_close_unblocks_poppers_and_drains() {
        let q = ConnQueue::new();
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| q.pop());
            std::thread::sleep(Duration::from_millis(20));
            q.close();
            assert!(popper.join().unwrap().is_none());
        });
    }
}
