//! A thin, libc-free readiness layer over `poll(2)` for the serving loop.
//!
//! The build environment is offline and std-only, so instead of `mio` or
//! an async runtime this module declares the one syscall the event loop
//! needs — `poll` — directly against the C ABI that `std` already links,
//! plus the two primitives the loop composes it with:
//!
//! * [`poll_fds`] — level-triggered readiness over a borrowed
//!   [`PollFd`] slice with a millisecond timeout;
//! * [`WakePair`] — a self-connected loopback TCP pair that lets worker
//!   threads interrupt a parked `poll` (hand a connection back, report
//!   shutdown) by writing a single byte.
//!
//! Sockets watched through here stay *blocking*: the event loop only uses
//! readiness to decide **when** to hand a connection to a worker, and
//! workers perform one bounded read on a socket that is known readable.
//! That keeps the worker code a straight-line read → parse → respond path
//! while the loop multiplexes thousands of idle keep-alive connections —
//! the thread-per-connection model this replaces pinned one worker per
//! idle connection.

#![cfg(unix)]

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::time::Duration;

/// `struct pollfd` from `poll(2)`, bit-for-bit.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (a negative fd makes the kernel
    /// ignore the slot).
    pub fd: RawFd,
    /// Requested events ([`POLLIN`]).
    pub events: i16,
    /// Returned events (set by the kernel).
    pub revents: i16,
}

impl PollFd {
    /// A slot watching `fd` for readability.
    pub fn readable(fd: RawFd) -> PollFd {
        PollFd {
            fd,
            events: POLLIN,
            revents: 0,
        }
    }

    /// `true` when the descriptor is readable *or* in a state the loop
    /// must react to (hangup, error, invalid) — all of which a subsequent
    /// `read` surfaces safely, so they route the same way as data.
    pub fn is_actionable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

/// There is input to read.
pub const POLLIN: i16 = 0x001;
/// An error condition (also reported on the write side of a reset).
pub const POLLERR: i16 = 0x008;
/// The peer hung up.
pub const POLLHUP: i16 = 0x010;
/// The descriptor is not open — a loop bookkeeping bug surfaced loudly.
pub const POLLNVAL: i16 = 0x020;

#[cfg(any(target_os = "linux", target_os = "android"))]
type NFds = std::os::raw::c_ulong;
#[cfg(not(any(target_os = "linux", target_os = "android")))]
type NFds = std::os::raw::c_uint;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: NFds, timeout: std::os::raw::c_int) -> std::os::raw::c_int;
}

/// Blocks until at least one slot in `fds` has pending events, the
/// timeout elapses (`Ok(0)`), or the call is interrupted by a signal
/// (also `Ok(0)` — the caller's loop re-derives its timeout each
/// iteration, so a spurious wakeup is harmless). `None` waits forever.
pub fn poll_fds(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    let ms: std::os::raw::c_int = match timeout {
        // Round *up* so a 300µs deadline does not spin through ms=0.
        Some(t) => t
            .as_millis()
            .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as std::os::raw::c_int,
        None => -1,
    };
    let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, ms) };
    if rc >= 0 {
        return Ok(rc as usize);
    }
    let err = io::Error::last_os_error();
    if err.kind() == io::ErrorKind::Interrupted {
        return Ok(0);
    }
    Err(err)
}

/// A self-connected loopback TCP pair: the std-only stand-in for a
/// self-pipe. The receive side is nonblocking and lives in the event
/// loop's poll set; any thread holding the [`Waker`] makes the loop's
/// `poll` return by writing one byte.
pub struct WakePair {
    rx: TcpStream,
    tx: TcpStream,
}

/// The sending half of a [`WakePair`], cheap to clone across threads.
pub struct Waker {
    tx: TcpStream,
}

impl Clone for Waker {
    fn clone(&self) -> Self {
        Waker {
            tx: self.tx.try_clone().expect("waker socket clones"),
        }
    }
}

impl Waker {
    /// Makes the paired poll loop wake up. Best-effort by design: if the
    /// one-byte write fails the loop is being torn down anyway, and if
    /// the socket buffer is full a wakeup is already pending.
    pub fn wake(&self) {
        let _ = (&self.tx).write(&[1u8]);
    }
}

impl WakePair {
    /// Builds the pair over an ephemeral loopback listener. The accepted
    /// peer is checked against the connecting socket's address, so a
    /// stray connection racing the ephemeral port cannot impersonate the
    /// waker.
    pub fn new() -> io::Result<WakePair> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let tx = TcpStream::connect(listener.local_addr()?)?;
        let expected = tx.local_addr()?;
        let (rx, peer) = listener.accept()?;
        if peer != expected {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "wake pair accepted an unexpected peer",
            ));
        }
        rx.set_nonblocking(true)?;
        tx.set_nodelay(true)?;
        Ok(WakePair { rx, tx })
    }

    /// The raw fd the event loop adds to its poll set.
    pub fn poll_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// A cloneable sending half.
    pub fn waker(&self) -> Waker {
        Waker {
            tx: self.tx.try_clone().expect("waker socket clones"),
        }
    }

    /// Swallows every pending wake byte so a burst of notifications
    /// collapses into one loop iteration.
    pub fn drain(&self) {
        let mut sink = [0u8; 64];
        loop {
            match (&self.rx).read(&mut sink) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn poll_times_out_on_a_silent_socket() {
        let pair = WakePair::new().unwrap();
        let mut fds = [PollFd::readable(pair.poll_fd())];
        let t0 = Instant::now();
        let n = poll_fds(&mut fds, Some(Duration::from_millis(30))).unwrap();
        assert_eq!(n, 0);
        assert!(t0.elapsed() >= Duration::from_millis(25));
        assert!(!fds[0].is_actionable());
    }

    #[test]
    fn wake_byte_makes_poll_return_and_drain_clears_it() {
        let pair = WakePair::new().unwrap();
        let waker = pair.waker();
        let cloned = waker.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            cloned.wake();
        });
        let mut fds = [PollFd::readable(pair.poll_fd())];
        let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
        assert_eq!(n, 1);
        assert!(fds[0].is_actionable());
        pair.drain();
        // Drained: the next poll with a short timeout sees silence again.
        let mut fds = [PollFd::readable(pair.poll_fd())];
        assert_eq!(
            poll_fds(&mut fds, Some(Duration::from_millis(10))).unwrap(),
            0
        );
    }

    #[test]
    fn readable_data_is_reported_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        client.write_all(b"ping").unwrap();
        // Level-triggered: unread data keeps reporting readable.
        for _ in 0..3 {
            let mut fds = [PollFd::readable(server_side.as_raw_fd())];
            let n = poll_fds(&mut fds, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(n, 1);
            assert!(fds[0].is_actionable());
        }
        // Zero-timeout poll is a pure readiness probe.
        let mut fds = [PollFd::readable(server_side.as_raw_fd())];
        assert_eq!(poll_fds(&mut fds, Some(Duration::ZERO)).unwrap(), 1);
    }
}
