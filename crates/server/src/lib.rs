//! # ctc-server — a std-only concurrent query server over [`CommunityEngine`]
//!
//! The deployment mode the paper motivates for its query-time algorithms:
//! pay the offline truss-index build once (a `.ctci` snapshot), then
//! answer closest-truss-community queries online, over a wire. The build
//! environment is offline with vendored crates only, so the whole wire
//! stack is hand-rolled on `std`:
//!
//! * [`http`] — a bounded, incremental HTTP/1.1 request parser and a
//!   deterministic response encoder (no panics on arbitrary bytes, hard
//!   caps on head/headers/target/body);
//! * [`json`] — a minimal JSON codec with `u64`-exact labels, full string
//!   escaping and a nesting-depth cap;
//! * [`cache`] — a deterministic LRU over normalized query keys, so hot
//!   queries skip the search path entirely;
//! * [`wire`] — the `/search` and `/update` request/response schemas and
//!   the [`wire::QueryKey`] a request normalizes to;
//! * [`evented`] — a libc-free `poll(2)` readiness shim (unix): the
//!   event loop multiplexes thousands of idle keep-alive connections
//!   over one descriptor set and a loopback wake channel;
//! * [`registry`] — the multi-tenant snapshot registry: many named
//!   engines behind one listener, loaded lazily from `.ctci` paths and
//!   evicted cost-aware (bytes-weighted LRU, never pinned or dirty);
//! * [`server`] — the daemon: readiness loop + fixed worker pool built
//!   on the [`ctc_graph::Parallelism`] fork-join substrate, bounded
//!   admission (accept cap, dispatch queue, per-tenant in-flight cap —
//!   overload sheds well-formed `503`/`429`s instead of queueing
//!   unboundedly), panic-isolated handlers, and graceful
//!   drain-then-exit shutdown. Online edge updates (`POST /update`)
//!   maintain the truss index in place on a writer-serialized primary
//!   engine and republish frozen clones to readers, with class-keyed
//!   answer-cache invalidation.
//!
//! Endpoints: `POST /search`, `POST /update`, `GET /healthz`,
//! `GET /stats`, `POST /shutdown` — plus the tenant-scoped forms
//! `/t/<name>/search|update|stats` (the bare paths alias tenant
//! `"default"`) — specified in `docs/SERVING.md`.
//!
//! The full request path is also callable without any socket, which is
//! how the fuzz battery and the latency bench drive it:
//!
//! ```
//! use ctc_core::CommunityEngine;
//! use ctc_server::{AppState, ServeConfig};
//! use ctc_truss::fixtures::figure1_graph;
//!
//! let state = AppState::new(
//!     CommunityEngine::build(figure1_graph()),
//!     &ServeConfig::default(),
//! );
//! let response = state
//!     .respond(b"GET /healthz HTTP/1.1\r\n\r\n")
//!     .expect("complete request");
//! assert!(response.starts_with(b"HTTP/1.1 200 OK"));
//! ```

#![warn(missing_docs)]

pub mod cache;
#[cfg(unix)]
pub mod evented;
pub mod http;
pub mod json;
pub mod registry;
pub mod server;
pub mod wire;

pub use cache::LruCache;
pub use json::Json;
pub use registry::{
    HealthPolicy, HealthSnapshot, HealthStatus, Registry, TenantCounters, TenantError,
    TenantHealth, TenantState, TenantSummary,
};
pub use server::{
    AppState, CountersSnapshot, CtcServer, ServeConfig, ServeReport, ServerCountersSnapshot,
    ServerHandle, DEFAULT_TENANT,
};
pub use wire::{
    decode_search_request, decode_update_request, encode_community, encode_error,
    encode_update_response, QueryKey, SearchRequest, UpdateOutcome, UpdateRequest, WireUpdate,
};

// Re-exported so downstreams of the server crate name the engine types
// without an extra dependency edge.
pub use ctc_core::CommunityEngine;
