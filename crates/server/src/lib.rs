//! # ctc-server — a std-only concurrent query server over [`CommunityEngine`]
//!
//! The deployment mode the paper motivates for its query-time algorithms:
//! pay the offline truss-index build once (a `.ctci` snapshot), then
//! answer closest-truss-community queries online, over a wire. The build
//! environment is offline with vendored crates only, so the whole wire
//! stack is hand-rolled on `std`:
//!
//! * [`http`] — a bounded, incremental HTTP/1.1 request parser and a
//!   deterministic response encoder (no panics on arbitrary bytes, hard
//!   caps on head/headers/target/body);
//! * [`json`] — a minimal JSON codec with `u64`-exact labels, full string
//!   escaping and a nesting-depth cap;
//! * [`cache`] — a deterministic LRU over normalized query keys, so hot
//!   queries skip the search path entirely;
//! * [`wire`] — the `/search` and `/update` request/response schemas and
//!   the [`wire::QueryKey`] a request normalizes to;
//! * [`server`] — the daemon: acceptor + fixed worker pool built on the
//!   [`ctc_graph::Parallelism`] fork-join substrate, keep-alive
//!   connection loops, and graceful drain-then-exit shutdown. Online
//!   edge updates (`POST /update`) maintain the truss index in place on
//!   a writer-serialized primary engine and republish frozen clones to
//!   readers, with class-keyed answer-cache invalidation.
//!
//! Endpoints: `POST /search`, `POST /update`, `GET /healthz`,
//! `GET /stats`, `POST /shutdown` — specified in `docs/SERVING.md`.
//!
//! The full request path is also callable without any socket, which is
//! how the fuzz battery and the latency bench drive it:
//!
//! ```
//! use ctc_core::CommunityEngine;
//! use ctc_server::{AppState, ServeConfig};
//! use ctc_truss::fixtures::figure1_graph;
//!
//! let state = AppState::new(
//!     CommunityEngine::build(figure1_graph()),
//!     &ServeConfig::default(),
//! );
//! let response = state
//!     .respond(b"GET /healthz HTTP/1.1\r\n\r\n")
//!     .expect("complete request");
//! assert!(response.starts_with(b"HTTP/1.1 200 OK"));
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod http;
pub mod json;
pub mod server;
pub mod wire;

pub use cache::LruCache;
pub use json::Json;
pub use server::{AppState, CountersSnapshot, CtcServer, ServeConfig, ServeReport, ServerHandle};
pub use wire::{
    decode_search_request, decode_update_request, encode_community, encode_error,
    encode_update_response, QueryKey, SearchRequest, UpdateOutcome, UpdateRequest, WireUpdate,
};

// Re-exported so downstreams of the server crate name the engine types
// without an extra dependency edge.
pub use ctc_core::CommunityEngine;
