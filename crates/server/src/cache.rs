//! A small, deterministic LRU cache for hot query answers.
//!
//! Keyed on the *normalized* query (sorted, deduplicated labels), the
//! algorithm, and the answer-affecting config fingerprint — see
//! [`crate::wire::QueryKey`] — so a repeated hot query skips the whole
//! search path. Recency is a monotonic logical clock, making eviction
//! order fully deterministic: no timestamps, no hash-iteration order.
//!
//! ```
//! use ctc_server::cache::LruCache;
//!
//! let mut cache = LruCache::new(2);
//! cache.insert("a", 1);
//! cache.insert("b", 2);
//! cache.get(&"a");        // refresh "a"
//! cache.insert("c", 3);   // evicts "b", the least recently used
//! assert_eq!(cache.get(&"b"), None);
//! assert_eq!(cache.get(&"a"), Some(1));
//! assert_eq!(cache.get(&"c"), Some(3));
//! ```

use std::collections::HashMap;
use std::hash::Hash;

/// A least-recently-used cache with a fixed capacity.
///
/// Capacity `0` disables caching entirely (every [`LruCache::insert`] is a
/// no-op) — the switch the server's `--cache-cap 0` maps to. Eviction
/// scans for the minimum logical stamp, which is `O(capacity)`; serving
/// caches are small (thousands), so the scan is noise next to a search.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    clock: u64,
    map: HashMap<K, (u64, V)>,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap,
            clock: 0,
            map: HashMap::with_capacity(cap.min(1024)),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        self.clock += 1;
        let clock = self.clock;
        self.map.get_mut(key).map(|slot| {
            slot.0 = clock;
            slot.1.clone()
        })
    }

    /// Inserts (or refreshes) `key → value`, evicting the least recently
    /// used entry when a new key would exceed capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.cap == 0 {
            return;
        }
        self.clock += 1;
        if !self.map.contains_key(&key) && self.map.len() >= self.cap {
            // Evict the minimum stamp. Stamps are unique (every get and
            // insert ticks the clock), so the victim is unambiguous.
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(key, (self.clock, value));
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
    }

    /// Keeps only the entries for which `keep` returns `true` — the
    /// invalidation primitive for online updates, where only answers in
    /// affected trussness classes need to go. Recency stamps of the
    /// survivors are untouched, so eviction order among them is stable.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        self.map.retain(|k, (_, v)| keep(k, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_and_returns_the_stored_value() {
        let mut c = LruCache::new(3);
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_at_capacity_is_deterministic_lru() {
        // Same operation sequence → same eviction victim, every run.
        for _ in 0..10 {
            let mut c = LruCache::new(3);
            c.insert('a', 1);
            c.insert('b', 2);
            c.insert('c', 3);
            c.get(&'a'); // order now: b (oldest), c, a
            c.insert('d', 4); // evicts b
            assert_eq!(c.get(&'b'), None);
            assert_eq!(c.len(), 3);
            c.insert('e', 5); // evicts c (a and d are fresher)
            assert_eq!(c.get(&'c'), None);
            assert_eq!(c.get(&'a'), Some(1));
            assert_eq!(c.get(&'d'), Some(4));
            assert_eq!(c.get(&'e'), Some(5));
        }
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c = LruCache::new(2);
        c.insert('a', 1);
        c.insert('b', 2);
        c.insert('a', 10); // refresh, not a new key: no eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&'a'), Some(10));
        assert_eq!(c.get(&'b'), Some(2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(1, 1);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn capacity_one_always_keeps_the_newest() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i * 10);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(i * 10));
        }
    }

    #[test]
    fn retain_drops_matching_entries_and_keeps_order() {
        let mut c = LruCache::new(3);
        c.insert('a', 1);
        c.insert('b', 2);
        c.insert('c', 3);
        c.retain(|_, v| *v != 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&'b'), None);
        // Survivors keep their stamps: 'a' is still the LRU victim
        // relative to 'c' after an unrelated insert fills the cache.
        c.insert('d', 4);
        c.insert('e', 5); // evicts 'a' (oldest surviving stamp)
        assert_eq!(c.get(&'a'), None);
        assert_eq!(c.get(&'c'), Some(3));
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
        c.insert(2, 2);
        assert_eq!(c.get(&2), Some(2));
    }
}
