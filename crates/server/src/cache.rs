//! A small, deterministic LRU cache for hot query answers.
//!
//! Keyed on the *normalized* query (sorted, deduplicated labels), the
//! algorithm, and the answer-affecting config fingerprint — see
//! [`crate::wire::QueryKey`] — so a repeated hot query skips the whole
//! search path. Recency is an intrusive doubly-linked list threaded
//! through a slab, making every operation `O(1)` and the eviction order
//! fully deterministic: no timestamps, no hash-iteration order.
//!
//! ```
//! use ctc_server::cache::LruCache;
//!
//! let mut cache = LruCache::new(2);
//! cache.insert("a", 1);
//! cache.insert("b", 2);
//! cache.get(&"a");        // refresh "a"
//! cache.insert("c", 3);   // evicts "b", the least recently used
//! assert_eq!(cache.get(&"b"), None);
//! assert_eq!(cache.get(&"a"), Some(1));
//! assert_eq!(cache.get(&"c"), Some(3));
//! ```

use std::collections::HashMap;
use std::hash::Hash;

/// Sentinel slab index meaning "no neighbour".
const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Slot<K, V> {
    key: K,
    value: V,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache with a fixed capacity.
///
/// Capacity `0` disables caching entirely (every [`LruCache::insert`] is a
/// no-op) — the switch the server's `--cache-cap 0` maps to. Entries live
/// in a slab threaded by an intrusive doubly-linked recency list
/// (most-recent at the head), so `get`, `insert`, and eviction are all
/// `O(1)`; the previous min-stamp scan was `O(capacity)` under the global
/// cache lock, which showed up once caches stopped being tiny. A miss does
/// not touch recency at all.
#[derive(Clone, Debug)]
pub struct LruCache<K, V> {
    cap: usize,
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `cap` entries.
    pub fn new(cap: usize) -> Self {
        let prealloc = cap.min(1024);
        LruCache {
            cap,
            map: HashMap::with_capacity(prealloc),
            slots: Vec::with_capacity(prealloc),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Unlinks slot `idx` from the recency list without freeing it.
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next].prev = prev;
        }
    }

    /// Links slot `idx` at the head (most recently used).
    fn link_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        if self.head != idx {
            self.unlink(idx);
            self.link_front(idx);
        }
        Some(self.slots[idx].value.clone())
    }

    /// Inserts (or refreshes) `key → value`, evicting the least recently
    /// used entry when a new key would exceed capacity.
    pub fn insert(&mut self, key: K, value: V) {
        if self.cap == 0 {
            return;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = value;
            if self.head != idx {
                self.unlink(idx);
                self.link_front(idx);
            }
            return;
        }
        if self.map.len() >= self.cap {
            // Evict the list tail — the least recently touched entry.
            let victim = self.tail;
            self.unlink(victim);
            self.map.remove(&self.slots[victim].key);
            self.slots[victim].key = key.clone();
            self.slots[victim].value = value;
            self.map.insert(key, victim);
            self.link_front(victim);
            return;
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx].key = key.clone();
                self.slots[idx].value = value;
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.link_front(idx);
    }

    /// Drops every entry (capacity is kept).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keeps only the entries for which `keep` returns `true` — the
    /// invalidation primitive for online updates, where only answers in
    /// affected trussness classes need to go. Recency order of the
    /// survivors is untouched, so eviction order among them is stable.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &V) -> bool) {
        let mut idx = self.head;
        while idx != NIL {
            let next = self.slots[idx].next;
            let slot = &self.slots[idx];
            if !keep(&slot.key, &slot.value) {
                self.map.remove(&self.slots[idx].key);
                self.unlink(idx);
                self.free.push(idx);
            }
            idx = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_and_returns_the_stored_value() {
        let mut c = LruCache::new(3);
        c.insert(1, "one");
        assert_eq!(c.get(&1), Some("one"));
        assert_eq!(c.get(&2), None);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn eviction_at_capacity_is_deterministic_lru() {
        // Same operation sequence → same eviction victim, every run.
        for _ in 0..10 {
            let mut c = LruCache::new(3);
            c.insert('a', 1);
            c.insert('b', 2);
            c.insert('c', 3);
            c.get(&'a'); // order now: b (oldest), c, a
            c.insert('d', 4); // evicts b
            assert_eq!(c.get(&'b'), None);
            assert_eq!(c.len(), 3);
            c.insert('e', 5); // evicts c (a and d are fresher)
            assert_eq!(c.get(&'c'), None);
            assert_eq!(c.get(&'a'), Some(1));
            assert_eq!(c.get(&'d'), Some(4));
            assert_eq!(c.get(&'e'), Some(5));
        }
    }

    #[test]
    fn reinsert_refreshes_instead_of_evicting() {
        let mut c = LruCache::new(2);
        c.insert('a', 1);
        c.insert('b', 2);
        c.insert('a', 10); // refresh, not a new key: no eviction
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&'a'), Some(10));
        assert_eq!(c.get(&'b'), Some(2));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        c.insert(1, 1);
        assert_eq!(c.get(&1), None);
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn capacity_one_always_keeps_the_newest() {
        let mut c = LruCache::new(1);
        for i in 0..100 {
            c.insert(i, i * 10);
            assert_eq!(c.len(), 1);
            assert_eq!(c.get(&i), Some(i * 10));
        }
    }

    #[test]
    fn retain_drops_matching_entries_and_keeps_order() {
        let mut c = LruCache::new(3);
        c.insert('a', 1);
        c.insert('b', 2);
        c.insert('c', 3);
        c.retain(|_, v| *v != 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&'b'), None);
        // Survivors keep their order: 'a' is still the LRU victim
        // relative to 'c' after an unrelated insert fills the cache.
        c.insert('d', 4);
        c.insert('e', 5); // evicts 'a' (oldest survivor)
        assert_eq!(c.get(&'a'), None);
        assert_eq!(c.get(&'c'), Some(3));
    }

    #[test]
    fn clear_empties_but_keeps_capacity() {
        let mut c = LruCache::new(4);
        c.insert(1, 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.capacity(), 4);
        c.insert(2, 2);
        assert_eq!(c.get(&2), Some(2));
    }

    /// The old implementation, kept as an executable specification: a
    /// logical clock with min-stamp eviction. The linked-list rewrite must
    /// evict in exactly the same order for any operation sequence.
    struct ModelLru {
        cap: usize,
        clock: u64,
        map: HashMap<u32, (u64, u32)>,
    }

    impl ModelLru {
        fn new(cap: usize) -> Self {
            ModelLru {
                cap,
                clock: 0,
                map: HashMap::new(),
            }
        }

        fn get(&mut self, key: &u32) -> Option<u32> {
            self.clock += 1;
            let clock = self.clock;
            self.map.get_mut(key).map(|slot| {
                slot.0 = clock;
                slot.1
            })
        }

        fn insert(&mut self, key: u32, value: u32) {
            if self.cap == 0 {
                return;
            }
            self.clock += 1;
            if !self.map.contains_key(&key) && self.map.len() >= self.cap {
                if let Some(victim) = self
                    .map
                    .iter()
                    .min_by_key(|(_, (stamp, _))| *stamp)
                    .map(|(k, _)| *k)
                {
                    self.map.remove(&victim);
                }
            }
            self.map.insert(key, (self.clock, value));
        }

        fn retain(&mut self, mut keep: impl FnMut(&u32, &u32) -> bool) {
            self.map.retain(|k, (_, v)| keep(k, v));
        }
    }

    #[test]
    fn differential_fuzz_against_min_stamp_model() {
        // Deterministic xorshift op stream: every get/insert/retain agrees
        // with the old min-stamp implementation across thousands of steps.
        for cap in [1usize, 2, 3, 7] {
            let mut real = LruCache::new(cap);
            let mut model = ModelLru::new(cap);
            let mut x = 0x9e3779b97f4a7c15u64 ^ (cap as u64);
            for step in 0..4000u32 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let key = (x % 16) as u32;
                match x >> 60 {
                    0..=5 => {
                        real.insert(key, step);
                        model.insert(key, step);
                    }
                    6..=13 => {
                        assert_eq!(real.get(&key), model.get(&key), "step {step} cap {cap}");
                    }
                    _ => {
                        real.retain(|k, _| k % 3 != key % 3);
                        model.retain(|k, _| k % 3 != key % 3);
                    }
                }
                assert_eq!(real.len(), model.map.len(), "step {step} cap {cap}");
            }
            for key in 0..16u32 {
                assert_eq!(real.get(&key), model.get(&key), "final cap {cap}");
            }
        }
    }
}
