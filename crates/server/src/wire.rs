//! The serving protocol: JSON request/response schemas over
//! [`crate::json`], plus the cache key a request normalizes to.
//!
//! The full protocol (endpoints, schemas, status codes) is specified in
//! `docs/SERVING.md`. Two properties matter architecturally:
//!
//! * **Determinism** — [`encode_community`] writes fields in a fixed
//!   order with no timing or identity data, so the same [`Community`]
//!   always encodes to the same bytes. The soak test pins that a served
//!   answer is byte-identical to a directly computed one, cached or not.
//! * **Normalization** — a query is a vertex *set*; [`SearchRequest`]
//!   sorts and deduplicates labels, so every permutation of the same set
//!   shares one [`QueryKey`] (and therefore one cache slot), and the
//!   answer equals a direct [`CommunityEngine::search`] on the sorted
//!   label set (the searcher itself normalizes identically).

use crate::json::{Json, JsonError};
use ctc_core::{Community, CommunityEngine, ConfigFingerprint, CtcConfig, SearchAlgo};
use ctc_graph::error::GraphError;

/// Hard cap on query labels per request (a 10k-label "set" is a client
/// bug, not a workload).
pub const MAX_QUERY_LABELS: usize = 1024;

/// Hard cap on edge updates per `/update` batch. Bigger reshapes belong
/// offline (rebuild the snapshot); a bounded batch keeps the writer's
/// critical section — and therefore reader staleness — bounded too.
pub const MAX_BATCH_UPDATES: usize = 4096;

/// A decoded, validated `/search` request body.
#[derive(Clone, Debug)]
pub struct SearchRequest {
    /// Query labels, sorted and deduplicated.
    pub labels: Vec<u64>,
    /// Which algorithm answers the query.
    pub algo: SearchAlgo,
    /// The effective per-request configuration (server base + overrides).
    pub cfg: CtcConfig,
}

impl SearchRequest {
    /// The cache key this request normalizes to.
    pub fn key(&self) -> QueryKey {
        QueryKey {
            labels: self.labels.clone(),
            algo: self.algo,
            cfg: self.cfg.fingerprint(),
        }
    }
}

/// The identity of an answer: normalized labels + algorithm + the
/// answer-affecting config fingerprint. Everything that can change the
/// response body is in here; nothing else is.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Sorted, deduplicated query labels.
    pub labels: Vec<u64>,
    /// The algorithm.
    pub algo: SearchAlgo,
    /// The config fingerprint (γ, η, fixed k, iteration cap, Steiner mode).
    pub cfg: ConfigFingerprint,
}

/// Why a `/search` body was rejected, with the HTTP status it maps to.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// Status code (always `400` today; typed for future richness).
    pub status: u16,
    /// Human-readable description, returned in the error body.
    pub message: String,
}

impl DecodeError {
    fn new(message: impl Into<String>) -> Self {
        DecodeError {
            status: 400,
            message: message.into(),
        }
    }
}

impl From<JsonError> for DecodeError {
    fn from(e: JsonError) -> Self {
        DecodeError::new(e.to_string())
    }
}

/// Decodes and validates a `/search` body against the schema
/// `{"query": [u64...], "algo"?: str, "gamma"?: num, "eta"?: u64, "k"?: u64,
/// "max_iterations"?: u64}`. Unknown fields are rejected (a typoed knob
/// silently ignored would serve wrong-config answers).
pub fn decode_search_request(body: &[u8], base: &CtcConfig) -> Result<SearchRequest, DecodeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| DecodeError::new("request body is not valid UTF-8"))?;
    let root = Json::parse(text)?;
    let Json::Object(pairs) = &root else {
        return Err(DecodeError::new("request body must be a JSON object"));
    };
    const KNOWN_FIELDS: [&str; 6] = ["query", "algo", "gamma", "eta", "k", "max_iterations"];
    for (key, _) in pairs {
        if !KNOWN_FIELDS.contains(&key.as_str()) {
            return Err(DecodeError::new(format!("unknown field {key:?}")));
        }
    }
    // Duplicate keys would be silently first-wins through `Json::get` —
    // the same wrong-config hazard the unknown-field rejection exists
    // for. All keys are known here, so by pigeonhole any object larger
    // than the field set has duplicates, and the remaining quadratic
    // scan is over at most KNOWN_FIELDS.len() entries.
    if pairs.len() > KNOWN_FIELDS.len() {
        return Err(DecodeError::new("duplicate fields in request"));
    }
    for (i, (key, _)) in pairs.iter().enumerate() {
        if pairs[..i].iter().any(|(prev, _)| prev == key) {
            return Err(DecodeError::new(format!("duplicate field {key:?}")));
        }
    }

    let query = root
        .get("query")
        .ok_or_else(|| DecodeError::new("missing required field \"query\""))?
        .as_array()
        .ok_or_else(|| DecodeError::new("\"query\" must be an array of vertex labels"))?;
    if query.is_empty() {
        return Err(DecodeError::new("\"query\" must not be empty"));
    }
    if query.len() > MAX_QUERY_LABELS {
        return Err(DecodeError::new(format!(
            "\"query\" holds more than {MAX_QUERY_LABELS} labels"
        )));
    }
    let mut labels: Vec<u64> = Vec::with_capacity(query.len());
    for v in query {
        labels.push(v.as_u64().ok_or_else(|| {
            DecodeError::new("\"query\" entries must be non-negative integer labels")
        })?);
    }
    labels.sort_unstable();
    labels.dedup();

    let algo = match root.get("algo") {
        None => SearchAlgo::default(),
        Some(v) => {
            let s = v
                .as_str()
                .ok_or_else(|| DecodeError::new("\"algo\" must be a string"))?;
            s.parse().map_err(|e: String| DecodeError::new(e))?
        }
    };

    let mut cfg = base.clone();
    if let Some(v) = root.get("gamma") {
        let gamma = v
            .as_f64()
            .ok_or_else(|| DecodeError::new("\"gamma\" must be a number"))?;
        if !gamma.is_finite() || gamma < 0.0 {
            return Err(DecodeError::new("\"gamma\" must be finite and >= 0"));
        }
        cfg = cfg.gamma(gamma);
    }
    if let Some(v) = root.get("eta") {
        let eta = v
            .as_u64()
            .ok_or_else(|| DecodeError::new("\"eta\" must be an integer >= 1"))?;
        let eta = usize::try_from(eta).map_err(|_| DecodeError::new("\"eta\" is too large"))?;
        if eta == 0 {
            // Reject rather than clamp: a silently altered knob would
            // serve an answer the client did not configure.
            return Err(DecodeError::new("\"eta\" must be an integer >= 1"));
        }
        cfg = cfg.eta(eta);
    }
    if let Some(v) = root.get("k") {
        let k = v
            .as_u64()
            .ok_or_else(|| DecodeError::new("\"k\" must be an integer >= 2"))?;
        let k = u32::try_from(k).map_err(|_| DecodeError::new("\"k\" is too large"))?;
        if k < 2 {
            return Err(DecodeError::new("\"k\" must be an integer >= 2"));
        }
        cfg = cfg.fixed_k(k);
    }
    if let Some(v) = root.get("max_iterations") {
        let n = v
            .as_u64()
            .ok_or_else(|| DecodeError::new("\"max_iterations\" must be a non-negative integer"))?;
        let n =
            usize::try_from(n).map_err(|_| DecodeError::new("\"max_iterations\" is too large"))?;
        cfg = cfg.max_iterations(n);
    }

    Ok(SearchRequest { labels, algo, cfg })
}

/// One edge update from a `/update` batch, in *label* space (the server
/// resolves labels to dense ids per-op, so an unknown endpoint rejects
/// that op alone, not the batch).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WireUpdate {
    /// `true` for `"op":"insert"`, `false` for `"op":"delete"`.
    pub insert: bool,
    /// One endpoint, as an original vertex label.
    pub u: u64,
    /// The other endpoint, as an original vertex label.
    pub v: u64,
}

/// A decoded, validated `/update` request body.
#[derive(Clone, Debug)]
pub struct UpdateRequest {
    /// The batch, in request order.
    pub ops: Vec<WireUpdate>,
}

/// Decodes and validates a `/update` body against the schema
/// `{"updates": [{"op": "insert"|"delete", "u": label, "v": label}...]}`.
/// Unknown and duplicate fields are rejected at both nesting levels —
/// the same typo-safety stance as [`decode_search_request`].
pub fn decode_update_request(body: &[u8]) -> Result<UpdateRequest, DecodeError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| DecodeError::new("request body is not valid UTF-8"))?;
    let root = Json::parse(text)?;
    let Json::Object(pairs) = &root else {
        return Err(DecodeError::new("request body must be a JSON object"));
    };
    for (key, _) in pairs {
        if key != "updates" {
            return Err(DecodeError::new(format!("unknown field {key:?}")));
        }
    }
    if pairs.len() > 1 {
        return Err(DecodeError::new("duplicate field \"updates\""));
    }
    let updates = root
        .get("updates")
        .ok_or_else(|| DecodeError::new("missing required field \"updates\""))?
        .as_array()
        .ok_or_else(|| DecodeError::new("\"updates\" must be an array of edge updates"))?;
    if updates.is_empty() {
        return Err(DecodeError::new("\"updates\" must not be empty"));
    }
    if updates.len() > MAX_BATCH_UPDATES {
        return Err(DecodeError::new(format!(
            "\"updates\" holds more than {MAX_BATCH_UPDATES} entries"
        )));
    }
    let mut ops = Vec::with_capacity(updates.len());
    for (i, entry) in updates.iter().enumerate() {
        let Json::Object(fields) = entry else {
            return Err(DecodeError::new(format!(
                "updates[{i}] must be an object {{\"op\", \"u\", \"v\"}}"
            )));
        };
        const KNOWN: [&str; 3] = ["op", "u", "v"];
        for (key, _) in fields {
            if !KNOWN.contains(&key.as_str()) {
                return Err(DecodeError::new(format!(
                    "updates[{i}]: unknown field {key:?}"
                )));
            }
        }
        if fields.len() > KNOWN.len() {
            return Err(DecodeError::new(format!("updates[{i}]: duplicate fields")));
        }
        for (j, (key, _)) in fields.iter().enumerate() {
            if fields[..j].iter().any(|(prev, _)| prev == key) {
                return Err(DecodeError::new(format!(
                    "updates[{i}]: duplicate field {key:?}"
                )));
            }
        }
        let op = entry
            .get("op")
            .ok_or_else(|| DecodeError::new(format!("updates[{i}]: missing field \"op\"")))?
            .as_str()
            .ok_or_else(|| {
                DecodeError::new(format!(
                    "updates[{i}]: \"op\" must be \"insert\" or \"delete\""
                ))
            })?;
        let insert = match op {
            "insert" => true,
            "delete" => false,
            other => {
                return Err(DecodeError::new(format!(
                    "updates[{i}]: unknown op {other:?} (expected \"insert\" or \"delete\")"
                )))
            }
        };
        let endpoint = |name: &str| {
            entry
                .get(name)
                .ok_or_else(|| DecodeError::new(format!("updates[{i}]: missing field {name:?}")))?
                .as_u64()
                .ok_or_else(|| {
                    DecodeError::new(format!(
                        "updates[{i}]: {name:?} must be a non-negative integer label"
                    ))
                })
        };
        ops.push(WireUpdate {
            insert,
            u: endpoint("u")?,
            v: endpoint("v")?,
        });
    }
    Ok(UpdateRequest { ops })
}

/// Per-op outcome reported back in the `/update` response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum UpdateOutcome {
    /// The update applied and the index was maintained in place.
    Applied {
        /// The edge's new trussness after an insertion, or its former
        /// trussness after a deletion.
        trussness: u32,
        /// Edges whose trussness the cascade changed (the edge itself
        /// included for an insertion).
        changed: u64,
    },
    /// The update was rejected; the rest of the batch is unaffected.
    Rejected {
        /// Why (e.g. duplicate edge, unknown label, self-loop).
        error: String,
    },
}

/// Encodes the deterministic `/update` response body: batch counts, the
/// cache-invalidation class, and per-op outcomes in request order.
pub fn encode_update_response(
    applied: u64,
    rejected: u64,
    max_class: u32,
    results: &[UpdateOutcome],
) -> Vec<u8> {
    let results = Json::Array(
        results
            .iter()
            .map(|r| match r {
                UpdateOutcome::Applied { trussness, changed } => Json::Object(vec![
                    ("status".into(), Json::Str("applied".into())),
                    ("trussness".into(), Json::Uint(u64::from(*trussness))),
                    ("changed".into(), Json::Uint(*changed)),
                ]),
                UpdateOutcome::Rejected { error } => Json::Object(vec![
                    ("status".into(), Json::Str("rejected".into())),
                    ("error".into(), Json::Str(error.clone())),
                ]),
            })
            .collect(),
    );
    Json::Object(vec![
        ("applied".into(), Json::Uint(applied)),
        ("rejected".into(), Json::Uint(rejected)),
        ("max_class".into(), Json::Uint(u64::from(max_class))),
        ("results".into(), results),
    ])
    .encode()
    .into_bytes()
}

/// Encodes a community as the deterministic `/search` response body.
/// Vertices and edges are reported as *original labels* (the engine's
/// label table applies); field order is fixed; no timings ride along, so
/// identical communities encode to identical bytes.
pub fn encode_community(engine: &CommunityEngine, c: &Community) -> Vec<u8> {
    let vertices = Json::Array(
        c.vertices
            .iter()
            .map(|&v| Json::Uint(engine.label_of(v)))
            .collect(),
    );
    let edges = Json::Array(
        c.edges
            .iter()
            .map(|&(u, v)| {
                Json::Array(vec![
                    Json::Uint(engine.label_of(u)),
                    Json::Uint(engine.label_of(v)),
                ])
            })
            .collect(),
    );
    Json::Object(vec![
        ("k".into(), Json::Uint(c.k as u64)),
        ("num_vertices".into(), Json::Uint(c.num_vertices() as u64)),
        ("num_edges".into(), Json::Uint(c.num_edges() as u64)),
        ("query_distance".into(), Json::Uint(c.query_distance as u64)),
        ("vertices".into(), vertices),
        ("edges".into(), edges),
    ])
    .encode()
    .into_bytes()
}

/// Encodes the uniform error body `{"error": message}`.
pub fn encode_error(message: &str) -> Vec<u8> {
    Json::Object(vec![("error".into(), Json::Str(message.into()))])
        .encode()
        .into_bytes()
}

/// Maps a search failure to `(status, reason, body)`.
pub fn search_error_response(e: &GraphError) -> (u16, &'static str, Vec<u8>) {
    let (status, reason) = match e {
        GraphError::EmptyQuery => (400, "Bad Request"),
        GraphError::VertexOutOfRange { .. } => (404, "Not Found"),
        GraphError::Disconnected => (422, "Unprocessable Entity"),
        _ => (500, "Internal Server Error"),
    };
    (status, reason, encode_error(&e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_core::SteinerMode;
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};

    fn decode(body: &str) -> Result<SearchRequest, DecodeError> {
        decode_search_request(body.as_bytes(), &CtcConfig::default())
    }

    #[test]
    fn minimal_request_decodes_with_defaults() {
        let r = decode(r#"{"query":[3,1,2,1]}"#).unwrap();
        assert_eq!(r.labels, vec![1, 2, 3], "sorted + deduped");
        assert_eq!(r.algo, SearchAlgo::Local);
        assert_eq!(r.cfg.fingerprint(), CtcConfig::default().fingerprint());
    }

    #[test]
    fn knobs_override_the_base_config() {
        let r = decode(r#"{"query":[1],"algo":"bd","gamma":2.5,"eta":50,"k":4}"#).unwrap();
        assert_eq!(r.algo, SearchAlgo::BulkDelete);
        assert_eq!(r.cfg.gamma, 2.5);
        assert_eq!(r.cfg.eta, 50);
        assert_eq!(r.cfg.fixed_k, Some(4));
        // The base config's non-overridden knobs survive.
        let base = CtcConfig::default().steiner_mode(SteinerMode::EdgeAdditive);
        let r = decode_search_request(br#"{"query":[1]}"#, &base).unwrap();
        assert_eq!(r.cfg.steiner_mode, SteinerMode::EdgeAdditive);
    }

    #[test]
    fn permutations_share_a_cache_key_config_changes_bust_it() {
        let a = decode(r#"{"query":[3,1,2]}"#).unwrap().key();
        let b = decode(r#"{"query":[2,3,1,3]}"#).unwrap().key();
        assert_eq!(a, b, "query order and duplicates must not split the cache");
        let c = decode(r#"{"query":[1,2,3],"gamma":2.0}"#).unwrap().key();
        assert_ne!(a, c, "config change must bust the key");
        let d = decode(r#"{"query":[1,2,3],"algo":"basic"}"#).unwrap().key();
        assert_ne!(a, d, "algorithm change must bust the key");
    }

    #[test]
    fn bad_bodies_are_rejected_with_reasons() {
        for (body, needle) in [
            ("", "json error"),
            ("[]", "must be a JSON object"),
            ("{}", "missing required field"),
            (r#"{"query":[]}"#, "must not be empty"),
            (r#"{"query":"ab"}"#, "must be an array"),
            (r#"{"query":[1.5]}"#, "non-negative integer labels"),
            (r#"{"query":[-1]}"#, "non-negative integer labels"),
            (r#"{"query":[1],"algo":"nope"}"#, "unknown algorithm"),
            (r#"{"query":[1],"algo":7}"#, "must be a string"),
            (r#"{"query":[1],"gamma":"x"}"#, "must be a number"),
            (r#"{"query":[1],"gama":3}"#, "unknown field"),
            (r#"{"query":[1],"k":99999999999}"#, "too large"),
            (
                r#"{"query":[1],"gamma":2.0,"gamma":3.0}"#,
                "duplicate field",
            ),
            (r#"{"query":[1],"query":[2]}"#, "duplicate field"),
            (r#"{"query":[1],"eta":0}"#, ">= 1"),
            (r#"{"query":[1],"k":1}"#, ">= 2"),
            (r#"{"query":[1],"k":0}"#, ">= 2"),
        ] {
            let e = decode(body).unwrap_err();
            assert_eq!(e.status, 400, "{body}");
            assert!(
                e.message.contains(needle),
                "{body}: {} should mention {needle:?}",
                e.message
            );
        }
        let too_many: String = format!(
            r#"{{"query":[{}]}}"#,
            (0..=MAX_QUERY_LABELS)
                .map(|i| i.to_string())
                .collect::<Vec<_>>()
                .join(",")
        );
        assert!(decode(&too_many).unwrap_err().message.contains("more than"));
    }

    #[test]
    fn update_request_decodes_in_order() {
        let r = decode_update_request(
            br#"{"updates":[{"op":"insert","u":3,"v":7},{"op":"delete","v":1,"u":2}]}"#,
        )
        .unwrap();
        assert_eq!(
            r.ops,
            vec![
                WireUpdate {
                    insert: true,
                    u: 3,
                    v: 7
                },
                WireUpdate {
                    insert: false,
                    u: 2,
                    v: 1
                },
            ]
        );
    }

    #[test]
    fn bad_update_bodies_are_rejected_with_reasons() {
        for (body, needle) in [
            ("", "json error"),
            ("[]", "must be a JSON object"),
            ("{}", "missing required field"),
            (r#"{"updates":[]}"#, "must not be empty"),
            (r#"{"updates":7}"#, "must be an array"),
            (r#"{"updates":[7]}"#, "must be an object"),
            (
                r#"{"updates":[{"op":"insert","u":1,"v":2}],"x":1}"#,
                "unknown field \"x\"",
            ),
            (
                r#"{"updates":[{"op":"upsert","u":1,"v":2}]}"#,
                "unknown op \"upsert\"",
            ),
            (
                r#"{"updates":[{"op":"insert","u":1}]}"#,
                "missing field \"v\"",
            ),
            (r#"{"updates":[{"u":1,"v":2}]}"#, "missing field \"op\""),
            (
                r#"{"updates":[{"op":"insert","u":-1,"v":2}]}"#,
                "non-negative integer label",
            ),
            (
                r#"{"updates":[{"op":"insert","u":1,"v":2,"w":3}]}"#,
                "unknown field \"w\"",
            ),
            (
                r#"{"updates":[{"op":"insert","u":1,"v":2,"u":3}]}"#,
                "duplicate field",
            ),
            (
                r#"{"updates":[{"op":"insert","u":1,"v":2}],"updates":[]}"#,
                "duplicate field",
            ),
        ] {
            let e = decode_update_request(body.as_bytes()).unwrap_err();
            assert_eq!(e.status, 400, "{body}");
            assert!(
                e.message.contains(needle),
                "{body}: {} should mention {needle:?}",
                e.message
            );
        }
        let huge = format!(
            r#"{{"updates":[{}]}}"#,
            (0..=MAX_BATCH_UPDATES)
                .map(|i| format!(r#"{{"op":"insert","u":{i},"v":{}}}"#, i + 1))
                .collect::<Vec<_>>()
                .join(",")
        );
        assert!(decode_update_request(huge.as_bytes())
            .unwrap_err()
            .message
            .contains("more than"));
    }

    #[test]
    fn update_response_encoding_is_fixed_order() {
        let body = encode_update_response(
            1,
            1,
            4,
            &[
                UpdateOutcome::Applied {
                    trussness: 3,
                    changed: 5,
                },
                UpdateOutcome::Rejected {
                    error: "edge (1,2) is already present".into(),
                },
            ],
        );
        assert_eq!(
            String::from_utf8(body).unwrap(),
            r#"{"applied":1,"rejected":1,"max_class":4,"results":[{"status":"applied","trussness":3,"changed":5},{"status":"rejected","error":"edge (1,2) is already present"}]}"#
        );
    }

    #[test]
    fn community_encoding_is_deterministic_and_labeled() {
        let engine = CommunityEngine::build(figure1_graph());
        let f = Figure1Ids::default();
        let c = engine
            .search(&[f.q1, f.q2, f.q3], SearchAlgo::Basic)
            .unwrap();
        let a = encode_community(&engine, &c);
        let b = encode_community(&engine, &c);
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with(r#"{"k":4,"#), "prefix of {text}");
        assert!(text.contains(r#""num_vertices":8"#));
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(
            parsed
                .get("vertices")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(8)
        );
        // Identity labels here: encoded vertices equal the dense ids.
        assert_eq!(
            parsed.get("vertices").unwrap().as_array().unwrap()[0],
            Json::Uint(c.vertices[0].0 as u64)
        );
    }

    #[test]
    fn error_mapping_covers_the_taxonomy() {
        assert_eq!(search_error_response(&GraphError::EmptyQuery).0, 400);
        assert_eq!(
            search_error_response(&GraphError::VertexOutOfRange { vertex: 9, n: 3 }).0,
            404
        );
        assert_eq!(search_error_response(&GraphError::Disconnected).0, 422);
        assert_eq!(search_error_response(&GraphError::Io("x".into())).0, 500);
        let (_, _, body) = search_error_response(&GraphError::EmptyQuery);
        assert_eq!(body, br#"{"error":"query vertex set is empty"}"#);
    }

    #[test]
    fn encode_error_escapes() {
        assert_eq!(
            encode_error("a \"quoted\" thing"),
            br#"{"error":"a \"quoted\" thing"}"#
        );
    }
}
