//! A hand-rolled, bounded HTTP/1.1 request parser and response encoder.
//!
//! The build environment is offline and std-only, so the wire layer is
//! written from scratch with the properties a fuzzer can pin:
//!
//! * **never panics** on arbitrary byte streams — every malformed input
//!   maps to a typed [`HttpError`] carrying its status code;
//! * **length-capped everywhere** — request head, header count, target
//!   length and body size all have hard limits, so a hostile client cannot
//!   make the server buffer unboundedly;
//! * **incremental** — [`parse_request`] reports [`Parse::Incomplete`]
//!   until a full request is buffered, which is exactly the contract a
//!   read loop over a [`std::net::TcpStream`] needs.
//!
//! ```
//! use ctc_server::http::{parse_request, Parse};
//!
//! let raw = b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
//! match parse_request(raw, 1024).unwrap() {
//!     Parse::Complete(req, consumed) => {
//!         assert_eq!(req.method, "GET");
//!         assert_eq!(req.target, "/healthz");
//!         assert_eq!(consumed, raw.len());
//!     }
//!     Parse::Incomplete => unreachable!("full request buffered"),
//! }
//! ```

/// Hard cap on the request head (request line + all headers), bytes.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
/// Hard cap on the number of request headers.
pub const MAX_HEADERS: usize = 64;
/// Hard cap on the request-target length, bytes.
pub const MAX_TARGET_BYTES: usize = 1024;
/// Default cap on request bodies, bytes (overridable per server).
pub const DEFAULT_MAX_BODY: usize = 1 << 20;

/// A parsed HTTP request. Header names are lowercased; values are
/// whitespace-trimmed. The body is raw bytes (exactly `Content-Length` of
/// them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The method token, verbatim (e.g. `GET`, `POST`).
    pub method: String,
    /// The request target, verbatim (e.g. `/search`).
    pub target: String,
    /// `(lowercased-name, trimmed-value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body.
    pub body: Vec<u8>,
    /// `true` for `HTTP/1.0` requests, whose default is close-after-
    /// response rather than keep-alive.
    pub http1_0: bool,
}

impl Request {
    /// First value of header `name` (ASCII case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the connection should close after this request:
    /// an explicit `Connection: close`, or an HTTP/1.0 request without an
    /// explicit `Connection: keep-alive` (1.0 clients frame by EOF).
    pub fn wants_close(&self) -> bool {
        match self.header("connection") {
            Some(v) => v.eq_ignore_ascii_case("close"),
            None => self.http1_0,
        }
    }
}

/// Why a byte stream was rejected. Each variant maps to the status line
/// of the error response the server sends before closing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line, header or framing → `400`.
    BadRequest(&'static str),
    /// Head exceeded [`MAX_HEAD_BYTES`] or [`MAX_HEADERS`] → `431`.
    HeadTooLarge,
    /// Declared body exceeds the server's cap → `413`.
    BodyTooLarge,
    /// `Transfer-Encoding` framing is not implemented → `501`.
    NotImplemented(&'static str),
    /// Not an `HTTP/1.x` request → `505`.
    UnsupportedVersion,
}

impl HttpError {
    /// `(status code, reason phrase)` for the error response.
    pub fn status(self) -> (u16, &'static str) {
        match self {
            HttpError::BadRequest(_) => (400, "Bad Request"),
            HttpError::HeadTooLarge => (431, "Request Header Fields Too Large"),
            HttpError::BodyTooLarge => (413, "Payload Too Large"),
            HttpError::NotImplemented(_) => (501, "Not Implemented"),
            HttpError::UnsupportedVersion => (505, "HTTP Version Not Supported"),
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(self) -> &'static str {
        match self {
            HttpError::BadRequest(d) | HttpError::NotImplemented(d) => d,
            HttpError::HeadTooLarge => "request head too large",
            HttpError::BodyTooLarge => "request body too large",
            HttpError::UnsupportedVersion => "only HTTP/1.0 and HTTP/1.1 are supported",
        }
    }
}

/// Outcome of one incremental parse attempt over the buffered bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Parse {
    /// The buffer holds a valid prefix of a request; read more bytes.
    Incomplete,
    /// A full request and the number of buffer bytes it consumed
    /// (pipelined bytes after `consumed` belong to the next request).
    Complete(Request, usize),
}

/// Finds the end of the request head: the index one past the blank line.
/// Accepts both `\r\n\r\n` and bare `\n\n` terminators (curl, printf and
/// `/dev/tcp` clients are all welcome).
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // Line ended at i; a blank line follows if the next byte(s)
            // are another newline (optionally with a \r).
            match buf.get(i + 1) {
                Some(b'\n') => return Some(i + 2),
                Some(b'\r') if buf.get(i + 2) == Some(&b'\n') => return Some(i + 3),
                _ => {}
            }
        }
        i += 1;
    }
    None
}

/// `true` for the characters RFC 9110 allows in tokens (methods, header
/// names).
fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.'
        | b'^' | b'_' | b'`' | b'|' | b'~'
        | b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z')
}

/// Attempts to parse one request from the front of `buf`.
///
/// Returns [`Parse::Incomplete`] while the buffer holds only a prefix,
/// [`Parse::Complete`] once a whole request (head + declared body) is
/// buffered, and `Err` as soon as the prefix can never become a valid
/// request — the caller should answer with [`HttpError::status`] and
/// close. Never panics, whatever the bytes.
pub fn parse_request(buf: &[u8], max_body: usize) -> Result<Parse, HttpError> {
    let head_end = match find_head_end(buf) {
        Some(end) => end,
        None => {
            if buf.len() > MAX_HEAD_BYTES {
                return Err(HttpError::HeadTooLarge);
            }
            return Ok(Parse::Incomplete);
        }
    };
    if head_end > MAX_HEAD_BYTES {
        return Err(HttpError::HeadTooLarge);
    }
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8"))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));

    // Request line: METHOD SP TARGET SP VERSION.
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line")),
    };
    if method.is_empty() || !method.bytes().all(is_token_byte) {
        return Err(HttpError::BadRequest("malformed method token"));
    }
    if target.is_empty() || target.len() > MAX_TARGET_BYTES {
        return Err(HttpError::BadRequest("missing or oversized request target"));
    }
    if !target.starts_with('/') && target != "*" {
        return Err(HttpError::BadRequest("request target must be absolute"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::UnsupportedVersion);
    }

    // Header lines up to the blank terminator.
    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::HeadTooLarge);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("header line without a colon"))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        match name.as_str() {
            "content-length" => {
                let n: usize = value
                    .parse()
                    .map_err(|_| HttpError::BadRequest("unparsable content-length"))?;
                if content_length.is_some_and(|prev| prev != n) {
                    return Err(HttpError::BadRequest("conflicting content-length headers"));
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                return Err(HttpError::NotImplemented(
                    "transfer-encoding framing is not supported; use content-length",
                ));
            }
            _ => {}
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    if body_len > max_body {
        return Err(HttpError::BodyTooLarge);
    }
    let total = match head_end.checked_add(body_len) {
        Some(t) => t,
        None => return Err(HttpError::BodyTooLarge),
    };
    if buf.len() < total {
        return Ok(Parse::Incomplete);
    }
    Ok(Parse::Complete(
        Request {
            method: method.to_string(),
            target: target.to_string(),
            headers,
            body: buf[head_end..total].to_vec(),
            http1_0: version == "HTTP/1.0",
        },
        total,
    ))
}

/// A response under construction: status, extra headers, JSON body.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (200, 400, ...).
    pub status: u16,
    /// Reason phrase matching `status`.
    pub reason: &'static str,
    /// Extra headers beyond the always-present `content-type`,
    /// `content-length` and `connection`.
    pub headers: Vec<(&'static str, String)>,
    /// The response body (JSON everywhere in this server).
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 response with a JSON body.
    pub fn ok(body: Vec<u8>) -> Self {
        Response {
            status: 200,
            reason: "OK",
            headers: Vec::new(),
            body,
        }
    }

    /// An error response with a JSON body.
    pub fn error(status: u16, reason: &'static str, body: Vec<u8>) -> Self {
        Response {
            status,
            reason,
            headers: Vec::new(),
            body,
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.headers.push((name, value.into()));
        self
    }

    /// Serializes the response. The header set is fixed and deterministic
    /// (no date, no server banner), so identical payloads yield identical
    /// bytes — the property the soak test pins end to end.
    pub fn encode(&self, close: bool) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(format!("HTTP/1.1 {} {}\r\n", self.status, self.reason).as_bytes());
        out.extend_from_slice(b"content-type: application/json\r\n");
        for (name, value) in &self.headers {
            out.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
        }
        out.extend_from_slice(format!("content-length: {}\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(if close {
            b"connection: close\r\n"
        } else {
            b"connection: keep-alive\r\n"
        });
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(raw: &[u8]) -> (Request, usize) {
        match parse_request(raw, DEFAULT_MAX_BODY) {
            Ok(Parse::Complete(r, n)) => (r, n),
            other => panic!("expected complete request, got {other:?}"),
        }
    }

    #[test]
    fn parses_get_without_body() {
        let raw = b"GET /stats HTTP/1.1\r\nHost: localhost\r\n\r\n";
        let (r, n) = complete(raw);
        assert_eq!(r.method, "GET");
        assert_eq!(r.target, "/stats");
        assert_eq!(r.header("host"), Some("localhost"));
        assert!(r.body.is_empty());
        assert_eq!(n, raw.len());
    }

    #[test]
    fn parses_post_with_body_and_pipelined_tail() {
        let raw = b"POST /search HTTP/1.1\r\ncontent-length: 4\r\n\r\nabcdGET /next";
        let (r, n) = complete(raw);
        assert_eq!(r.body, b"abcd");
        assert_eq!(&raw[n..], b"GET /next");
    }

    #[test]
    fn accepts_bare_lf_line_endings() {
        let (r, _) = complete(b"POST /x HTTP/1.1\ncontent-length: 2\n\nhi");
        assert_eq!(r.body, b"hi");
        assert_eq!(r.target, "/x");
    }

    #[test]
    fn incomplete_until_body_arrives() {
        let raw = b"POST /search HTTP/1.1\r\ncontent-length: 10\r\n\r\nabc";
        assert_eq!(
            parse_request(raw, DEFAULT_MAX_BODY).unwrap(),
            Parse::Incomplete
        );
        assert_eq!(
            parse_request(b"GET /", DEFAULT_MAX_BODY).unwrap(),
            Parse::Incomplete
        );
        assert_eq!(
            parse_request(b"", DEFAULT_MAX_BODY).unwrap(),
            Parse::Incomplete
        );
    }

    #[test]
    fn rejects_malformed_inputs_with_typed_errors() {
        let cases: [(&[u8], HttpError); 7] = [
            (b"\r\n\r\n", HttpError::BadRequest("malformed request line")),
            (
                b"GE T / HTTP/1.1\r\n\r\n",
                HttpError::BadRequest("malformed request line"),
            ),
            (
                b"GET nope HTTP/1.1\r\n\r\n",
                HttpError::BadRequest("request target must be absolute"),
            ),
            (b"GET / HTTP/2\r\n\r\n", HttpError::UnsupportedVersion),
            (
                b"GET / HTTP/1.1\r\nbroken line\r\n\r\n",
                HttpError::BadRequest("header line without a colon"),
            ),
            (
                b"GET / HTTP/1.1\r\ncontent-length: many\r\n\r\n",
                HttpError::BadRequest("unparsable content-length"),
            ),
            (
                b"GET / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
                HttpError::NotImplemented(
                    "transfer-encoding framing is not supported; use content-length",
                ),
            ),
        ];
        for (raw, want) in cases {
            assert_eq!(
                parse_request(raw, DEFAULT_MAX_BODY).unwrap_err(),
                want,
                "input {:?}",
                String::from_utf8_lossy(raw)
            );
        }
    }

    #[test]
    fn conflicting_content_lengths_rejected_duplicates_allowed() {
        assert_eq!(
            parse_request(
                b"GET / HTTP/1.1\r\ncontent-length: 1\r\ncontent-length: 2\r\n\r\n",
                DEFAULT_MAX_BODY
            )
            .unwrap_err(),
            HttpError::BadRequest("conflicting content-length headers")
        );
        let raw = b"POST / HTTP/1.1\r\ncontent-length: 2\r\ncontent-length: 2\r\n\r\nok";
        let (r, _) = complete(raw);
        assert_eq!(r.body, b"ok");
    }

    #[test]
    fn caps_are_enforced() {
        // Oversized head without a terminator.
        let mut huge = b"GET / HTTP/1.1\r\n".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 1));
        assert_eq!(
            parse_request(&huge, 16).unwrap_err(),
            HttpError::HeadTooLarge
        );
        // Too many headers.
        let mut many = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADERS {
            many.push_str(&format!("h{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert_eq!(
            parse_request(many.as_bytes(), 16).unwrap_err(),
            HttpError::HeadTooLarge
        );
        // Declared body over the cap.
        assert_eq!(
            parse_request(b"POST / HTTP/1.1\r\ncontent-length: 17\r\n\r\n", 16).unwrap_err(),
            HttpError::BodyTooLarge
        );
        // Absurd content-length must not overflow.
        let raw = format!("POST / HTTP/1.1\r\ncontent-length: {}\r\n\r\n", usize::MAX);
        assert_eq!(
            parse_request(raw.as_bytes(), usize::MAX).unwrap_err(),
            HttpError::BodyTooLarge
        );
    }

    #[test]
    fn connection_close_detection() {
        let (r, _) = complete(b"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n");
        assert!(r.wants_close());
        let (r, _) = complete(b"GET / HTTP/1.1\r\n\r\n");
        assert!(!r.wants_close());
        // HTTP/1.0 defaults to close; an explicit keep-alive overrides.
        let (r, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(r.http1_0);
        assert!(r.wants_close());
        let (r, _) = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!r.wants_close());
    }

    #[test]
    fn response_encoding_is_deterministic() {
        let a = Response::ok(b"{}".to_vec()).encode(true);
        let b = Response::ok(b"{}".to_vec()).encode(true);
        assert_eq!(a, b);
        let text = String::from_utf8(a).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 2\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
        let keep = Response::ok(Vec::new()).encode(false);
        assert!(String::from_utf8(keep).unwrap().contains("keep-alive"));
    }

    #[test]
    fn error_statuses_map() {
        assert_eq!(HttpError::BodyTooLarge.status().0, 413);
        assert_eq!(HttpError::HeadTooLarge.status().0, 431);
        assert_eq!(HttpError::UnsupportedVersion.status().0, 505);
        assert_eq!(HttpError::BadRequest("x").status().0, 400);
        assert_eq!(HttpError::NotImplemented("x").status().0, 501);
        assert_eq!(HttpError::BadRequest("x").detail(), "x");
    }
}
