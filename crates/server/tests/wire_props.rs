//! Property/fuzz battery for the wire layer.
//!
//! Pins the two contracts the serving stack rests on:
//!
//! 1. The HTTP parser (and the whole request path behind it) **never
//!    panics** on arbitrary byte streams and always yields either a
//!    well-formed HTTP response or a clean close (`None`), whatever the
//!    client sends.
//! 2. The JSON encoder **round-trips arbitrary strings** — any label
//!    string, with any escaping-hostile content — through the decoder
//!    unchanged.
//!
//! The vendored proptest stand-in samples deterministically from the test
//! name, so failures are reproducible.

use ctc_core::CommunityEngine;
use ctc_server::json::Json;
use ctc_server::{AppState, ServeConfig};
use ctc_truss::fixtures::figure1_graph;
use proptest::prelude::*;

fn state() -> AppState {
    AppState::new(
        CommunityEngine::build(figure1_graph()),
        &ServeConfig {
            cache_cap: 16,
            // Small cap so the fuzzer can actually reach the 413 path.
            max_body: 512,
            ..ServeConfig::default()
        },
    )
}

/// Checks the respond contract for one byte stream: no panic (implied by
/// returning at all), and any produced response is a well-formed HTTP/1.1
/// message with a parsable status code and a blank-line head terminator.
fn respond_contract(state: &AppState, bytes: &[u8]) -> Result<(), TestCaseError> {
    match state.respond(bytes) {
        None => Ok(()), // clean close: valid prefix of a request
        Some(response) => {
            prop_assert!(
                response.starts_with(b"HTTP/1.1 "),
                "response must carry a status line, got {:?}",
                String::from_utf8_lossy(&response[..response.len().min(40)])
            );
            let status: u16 = std::str::from_utf8(&response[9..12])
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| TestCaseError::fail("unparsable status code"))?;
            prop_assert!((200..=599).contains(&status), "implausible status {status}");
            prop_assert!(
                response.windows(4).any(|w| w == b"\r\n\r\n"),
                "response head never terminates"
            );
            Ok(())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    /// Contract 1 on pure noise: arbitrary bytes, arbitrary lengths.
    #[test]
    fn parser_survives_arbitrary_bytes(raw in proptest::collection::vec(0u16..256, 0..600)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let s = state();
        respond_contract(&s, &bytes)?;
    }

    /// Contract 1 on near-valid traffic: a plausible request line and
    /// framing with fuzzed method/target/header/body fragments — this
    /// reaches the deeper routing and JSON layers the pure-noise case
    /// rarely penetrates.
    #[test]
    fn parser_survives_structured_fuzz(
        method_i in 0usize..6,
        target_i in 0usize..6,
        version_i in 0usize..4,
        body in proptest::collection::vec(0u16..256, 0..200),
        header_junk in proptest::collection::vec((0u16..128, 0u16..128), 0..6),
        declared_delta in 0i64..3,
    ) {
        let methods = ["GET", "POST", "PUT", "", "P\u{1}ST", "POSTPOSTPOSTPOST"];
        let targets = ["/search", "/healthz", "/stats", "/", "/search?x=1", "nope"];
        let versions = ["HTTP/1.1", "HTTP/1.0", "HTTP/9.9", "HTCPCP/1.0"];
        let body: Vec<u8> = body.iter().map(|&b| b as u8).collect();
        // Sometimes lie about the length (shorter → pipelined garbage,
        // longer → incomplete stream).
        let declared = (body.len() as i64 + declared_delta - 1).max(0);
        let mut raw = format!(
            "{} {} {}\r\n",
            methods[method_i], targets[target_i], versions[version_i]
        )
        .into_bytes();
        for (a, b) in &header_junk {
            raw.extend_from_slice(
                format!("{}{}: {}\r\n", (*a as u8) as char, "x", (*b as u8) as char).as_bytes(),
            );
        }
        raw.extend_from_slice(format!("content-length: {declared}\r\n\r\n").as_bytes());
        raw.extend_from_slice(&body);
        let s = state();
        respond_contract(&s, &raw)?;
    }

    /// Contract 1 through the `/search` JSON layer: syntactically wild
    /// bodies with correct HTTP framing must never panic and must always
    /// be answered (a framed complete request is never a clean close).
    #[test]
    fn search_bodies_never_panic(body in proptest::collection::vec(0u16..256, 0..300)) {
        let body: Vec<u8> = body.iter().map(|&b| b as u8).collect();
        let mut raw =
            format!("POST /search HTTP/1.1\r\ncontent-length: {}\r\n\r\n", body.len())
                .into_bytes();
        raw.extend_from_slice(&body);
        let s = state();
        let response = s.respond(&raw);
        prop_assert!(
            response.is_some(),
            "a complete framed request must be answered"
        );
        respond_contract(&s, &raw)?;
    }

    /// Contract 2: arbitrary strings (controls, quotes, backslashes,
    /// astral plane) survive encode → parse exactly.
    #[test]
    fn json_strings_round_trip(codes in proptest::collection::vec(0u32..0x110000, 0..48)) {
        let s: String = codes.iter().filter_map(|&c| char::from_u32(c)).collect();
        let v = Json::Str(s.clone());
        let encoded = v.encode();
        let decoded = Json::parse(&encoded)
            .map_err(|e| TestCaseError::fail(format!("rejected own encoding of {s:?}: {e}")))?;
        prop_assert_eq!(decoded, v);
    }

    /// Contract 2 on the escaping-hostile corner specifically: strings
    /// drawn from the escape-relevant alphabet.
    #[test]
    fn json_hostile_strings_round_trip(picks in proptest::collection::vec(0usize..12, 1..64)) {
        let alphabet = ['"', '\\', '\n', '\r', '\t', '\u{8}', '\u{c}', '\u{0}', '\u{1f}', '/', 'u', '🦀'];
        let s: String = picks.iter().map(|&i| alphabet[i]).collect();
        let v = Json::Str(s);
        prop_assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    /// Labels round-trip exactly across the full u64 range (no f64
    /// truncation), inside arrays like the wire schema uses.
    #[test]
    fn json_u64_labels_round_trip(labels in proptest::collection::vec(0u64..u64::MAX, 0..32)) {
        let v = Json::Array(labels.iter().map(|&l| Json::Uint(l)).collect());
        prop_assert_eq!(Json::parse(&v.encode()).unwrap(), v);
    }

    /// Valid requests with arbitrary well-formed framing always parse and
    /// route: the parser must not over-reject either.
    #[test]
    fn valid_requests_always_answered(q1 in 0u32..12, q2 in 0u32..12, algo_i in 0usize..4) {
        let algo = ["basic", "bd", "lctc", "truss"][algo_i];
        let body = format!(r#"{{"query":[{q1},{q2}],"algo":"{algo}"}}"#);
        let raw = format!(
            "POST /search HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n{}",
            body.len(),
            body
        );
        let s = state();
        let response = s.respond(raw.as_bytes()).expect("complete request");
        prop_assert!(
            response.starts_with(b"HTTP/1.1 200")
                || response.starts_with(b"HTTP/1.1 422"),
            "valid in-range query must succeed or be cleanly unservable, got {:?}",
            String::from_utf8_lossy(&response[..20])
        );
    }
}

/// Truncation sweep over a known-good request: every prefix must be
/// Incomplete (clean close) or a well-formed error/answer — never a
/// panic. Deterministic, so a plain test rather than a property.
#[test]
fn every_prefix_of_a_valid_request_is_handled() {
    let body = r#"{"query":[0,1,2],"algo":"basic"}"#;
    let raw = format!(
        "POST /search HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    );
    let s = state();
    for cut in 0..=raw.len() {
        let slice = &raw.as_bytes()[..cut];
        match s.respond(slice) {
            None => {}
            Some(response) => assert!(
                response.starts_with(b"HTTP/1.1 "),
                "prefix {cut}: malformed response"
            ),
        }
    }
    // The full request answers 200.
    assert!(s
        .respond(raw.as_bytes())
        .unwrap()
        .starts_with(b"HTTP/1.1 200"));
}

/// Interleaving noise into the head always yields a response or clean
/// close; a pathological unterminated head is eventually rejected at the
/// cap instead of buffering forever.
#[test]
fn unterminated_heads_hit_the_cap() {
    let s = state();
    let junk = vec![b'a'; ctc_server::http::MAX_HEAD_BYTES + 2];
    let response = s.respond(&junk).expect("over-cap head must be rejected");
    assert!(response.starts_with(b"HTTP/1.1 431"));
}
