//! Probabilistic (uncertain) graphs: a topology plus independent edge
//! existence probabilities.
//!
//! The CTC paper closes with "an exciting question is how k-truss
//! generalizes to probabilistic graphs" (§8); this crate implements that
//! extension following the (k,γ)-truss line of work that followed the
//! paper: every edge must have probability ≥ γ of being supported by at
//! least k−2 triangles among the *materialized* worlds.

use ctc_graph::error::{GraphError, Result};
use ctc_graph::{CsrGraph, EdgeId, GraphBuilder};
use rand::Rng;

/// An undirected graph whose edges exist independently with per-edge
/// probabilities.
///
/// ```
/// use ctc_graph::graph_from_edges;
/// use ctc_prob::ProbGraph;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let triangle = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
/// let pg = ProbGraph::uniform(triangle, 0.5).unwrap();
/// assert_eq!(pg.expected_edges(), 1.5);
/// // A sampled possible world keeps each edge independently with prob 0.5.
/// let world = pg.sample_world(&mut StdRng::seed_from_u64(7));
/// assert!(world.num_edges() <= 3);
/// assert_eq!(world.num_vertices(), 3); // vertex set is preserved
/// ```
#[derive(Clone, Debug)]
pub struct ProbGraph {
    topology: CsrGraph,
    prob: Vec<f64>,
}

impl ProbGraph {
    /// Wraps a topology with per-edge probabilities (must be in `[0, 1]`
    /// and one per edge).
    pub fn new(topology: CsrGraph, prob: Vec<f64>) -> Result<Self> {
        if prob.len() != topology.num_edges() {
            return Err(GraphError::Corrupt(format!(
                "expected {} probabilities, got {}",
                topology.num_edges(),
                prob.len()
            )));
        }
        if prob
            .iter()
            .any(|&p| !(0.0..=1.0).contains(&p) || p.is_nan())
        {
            return Err(GraphError::Corrupt("edge probability outside [0,1]".into()));
        }
        Ok(ProbGraph { topology, prob })
    }

    /// Uniform probability `p` on every edge.
    pub fn uniform(topology: CsrGraph, p: f64) -> Result<Self> {
        let m = topology.num_edges();
        Self::new(topology, vec![p; m])
    }

    /// The deterministic topology (all possible edges).
    pub fn topology(&self) -> &CsrGraph {
        &self.topology
    }

    /// Probability of edge `e`.
    #[inline]
    pub fn prob(&self, e: EdgeId) -> f64 {
        self.prob[e.index()]
    }

    /// All probabilities, indexed by edge id.
    pub fn probs(&self) -> &[f64] {
        &self.prob
    }

    /// Samples one possible world: keeps each edge independently with its
    /// probability. Vertex set is preserved.
    pub fn sample_world<R: Rng>(&self, rng: &mut R) -> CsrGraph {
        let mut b = GraphBuilder::with_capacity(self.topology.num_edges());
        b.ensure_vertices(self.topology.num_vertices());
        for (e, u, v) in self.topology.edges() {
            if rng.gen::<f64>() < self.prob[e.index()] {
                b.add_edge(u.0, v.0);
            }
        }
        b.build()
    }

    /// Expected number of edges.
    pub fn expected_edges(&self) -> f64 {
        self.prob.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::graph_from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn k4() -> CsrGraph {
        graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn validates_probability_vector() {
        assert!(ProbGraph::uniform(k4(), 0.5).is_ok());
        assert!(ProbGraph::new(k4(), vec![0.5; 3]).is_err());
        assert!(ProbGraph::new(k4(), vec![1.5; 6]).is_err());
        assert!(ProbGraph::new(k4(), vec![f64::NAN; 6]).is_err());
    }

    #[test]
    fn certain_graph_samples_itself() {
        let pg = ProbGraph::uniform(k4(), 1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let w = pg.sample_world(&mut rng);
        assert_eq!(w.num_edges(), 6);
        let pg0 = ProbGraph::uniform(k4(), 0.0).unwrap();
        assert_eq!(pg0.sample_world(&mut rng).num_edges(), 0);
    }

    #[test]
    fn sampling_frequency_tracks_probability() {
        let pg = ProbGraph::uniform(k4(), 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 2000;
        let total: usize = (0..trials)
            .map(|_| pg.sample_world(&mut rng).num_edges())
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 1.8).abs() < 0.15, "mean edges {mean}, expected 1.8");
        assert!((pg.expected_edges() - 1.8).abs() < 1e-12);
    }
}
