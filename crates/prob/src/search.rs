//! Monte-Carlo closest community search on probabilistic graphs.
//!
//! Sampling-based semantics: draw `N` possible worlds, run a CTC search in
//! each, and aggregate per-vertex inclusion frequencies. The "community at
//! confidence θ" is the set of vertices appearing in at least a θ fraction
//! of successful worlds — a natural reliability-weighted analogue of the
//! deterministic community.

use crate::pgraph::ProbGraph;
use ctc_core::{CtcConfig, CtcSearcher};
use ctc_graph::error::{GraphError, Result};
use ctc_graph::VertexId;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Aggregated result of a Monte-Carlo CTC search.
#[derive(Clone, Debug)]
pub struct McCommunity {
    /// `inclusion[v]` = fraction of successful worlds whose community
    /// contained `v`.
    pub inclusion: Vec<f64>,
    /// Mean trussness over successful worlds.
    pub expected_k: f64,
    /// Worlds sampled.
    pub worlds: usize,
    /// Worlds where the query was connected and a community was found.
    pub successful_worlds: usize,
}

impl McCommunity {
    /// Vertices included with frequency ≥ `theta`, ascending by id.
    pub fn at_confidence(&self, theta: f64) -> Vec<VertexId> {
        self.inclusion
            .iter()
            .enumerate()
            .filter(|&(_, &f)| f >= theta)
            .map(|(v, _)| VertexId::from(v))
            .collect()
    }

    /// Reliability of the query itself: fraction of worlds with an answer.
    pub fn query_reliability(&self) -> f64 {
        if self.worlds == 0 {
            0.0
        } else {
            self.successful_worlds as f64 / self.worlds as f64
        }
    }
}

/// Runs the Monte-Carlo CTC search with `worlds` samples.
///
/// Each world uses the BulkDelete algorithm (the best quality/runtime
/// tradeoff for repeated searches). Errors if *no* world yields a
/// community.
///
/// ```
/// use ctc_core::CtcConfig;
/// use ctc_graph::{graph_from_edges, VertexId};
/// use ctc_prob::{monte_carlo_ctc, ProbGraph};
///
/// // A certain K4: every world is the same, so the answer is deterministic.
/// let k4 = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
/// let pg = ProbGraph::uniform(k4, 1.0).unwrap();
/// let mc = monte_carlo_ctc(&pg, &[VertexId(0)], &CtcConfig::default(), 8, 42).unwrap();
/// assert_eq!(mc.query_reliability(), 1.0);
/// assert_eq!(mc.expected_k, 4.0);           // K4 is a 4-truss
/// assert!(mc.inclusion.iter().all(|&p| p == 1.0));
/// ```
pub fn monte_carlo_ctc(
    pg: &ProbGraph,
    q: &[VertexId],
    cfg: &CtcConfig,
    worlds: usize,
    seed: u64,
) -> Result<McCommunity> {
    if q.is_empty() {
        return Err(GraphError::EmptyQuery);
    }
    let n = pg.topology().num_vertices();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut counts = vec![0usize; n];
    let mut k_total = 0.0f64;
    let mut successes = 0usize;
    for _ in 0..worlds {
        let world = pg.sample_world(&mut rng);
        let searcher = CtcSearcher::new(&world);
        // Failed worlds (query disconnected) simply do not count.
        if let Ok(c) = searcher.bulk_delete(q, cfg) {
            successes += 1;
            k_total += c.k as f64;
            for &v in &c.vertices {
                counts[v.index()] += 1;
            }
        }
    }
    if successes == 0 {
        return Err(GraphError::Disconnected);
    }
    let inclusion = counts
        .iter()
        .map(|&c| c as f64 / successes as f64)
        .collect();
    Ok(McCommunity {
        inclusion,
        expected_k: k_total / successes as f64,
        worlds,
        successful_worlds: successes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_truss::fixtures::{figure1_graph, Figure1Ids};

    #[test]
    fn certain_graph_reproduces_deterministic_answer() {
        let g = figure1_graph();
        let f = Figure1Ids::default();
        let q = [f.q1, f.q2, f.q3];
        let pg = ProbGraph::uniform(g.clone(), 1.0).unwrap();
        let mc = monte_carlo_ctc(&pg, &q, &CtcConfig::default(), 5, 3).unwrap();
        assert_eq!(mc.successful_worlds, 5);
        assert_eq!(mc.query_reliability(), 1.0);
        let det = CtcSearcher::new(&g)
            .bulk_delete(&q, &CtcConfig::default())
            .unwrap();
        assert_eq!(mc.at_confidence(1.0), det.vertices);
        assert!((mc.expected_k - det.k as f64).abs() < 1e-12);
    }

    #[test]
    fn weak_bridge_lowers_reliability() {
        // Make only the bridge edges (q1–t, t–q3) unreliable and query
        // across them: {q1, q3} can connect via the 4-truss too, so the
        // query stays reliable; but querying the bridge vertex t itself is
        // fragile.
        let g = figure1_graph();
        let f = Figure1Ids::default();
        let mut probs = vec![1.0; g.num_edges()];
        for (a, b) in [(f.q1, f.t), (f.t, f.q3)] {
            let e = g.edge_between(a, b).unwrap();
            probs[e.index()] = 0.3;
        }
        let pg = ProbGraph::new(g, probs).unwrap();
        let solid = monte_carlo_ctc(&pg, &[f.q1, f.q3], &CtcConfig::default(), 40, 9).unwrap();
        assert_eq!(solid.query_reliability(), 1.0, "4-truss path is certain");
        let fragile = monte_carlo_ctc(&pg, &[f.t], &CtcConfig::default(), 40, 9).unwrap();
        // t needs at least one of its two 0.3-edges: P ≈ 1 − 0.7² = 0.51.
        let rel = fragile.query_reliability();
        assert!((0.25..0.8).contains(&rel), "reliability {rel}");
    }

    #[test]
    fn inclusion_frequencies_are_probabilities() {
        let g = figure1_graph();
        let f = Figure1Ids::default();
        let pg = ProbGraph::uniform(g, 0.8).unwrap();
        let mc = monte_carlo_ctc(&pg, &[f.q2], &CtcConfig::default(), 30, 21).unwrap();
        assert!(mc.inclusion.iter().all(|&x| (0.0..=1.0).contains(&x)));
        // The query vertex is in every successful community.
        assert_eq!(mc.inclusion[f.q2.index()], 1.0);
        // Confidence filtering is monotone.
        assert!(mc.at_confidence(0.2).len() >= mc.at_confidence(0.8).len());
    }

    #[test]
    fn empty_query_errors() {
        let pg = ProbGraph::uniform(figure1_graph(), 0.5).unwrap();
        assert!(monte_carlo_ctc(&pg, &[], &CtcConfig::default(), 5, 1).is_err());
    }
}
