//! (k, γ)-truss decomposition of probabilistic graphs.
//!
//! An edge's support in a sampled world is a Poisson-binomial variable:
//! apex `w` closes a triangle over `e = (u,v)` iff both side edges
//! materialize, i.e. with probability `p(u,w)·p(v,w)` (edges independent).
//! The **(k, γ)-truss** is the maximal subgraph in which every edge has
//! probability ≥ γ of being supported by ≥ k−2 triangles *within the
//! subgraph*; peeling mirrors the deterministic decomposition with the
//! counting support replaced by the DP tail probability.

use crate::pgraph::ProbGraph;
use ctc_graph::{DynGraph, EdgeId};

/// Tail probability `P[X ≥ t]` of a Poisson-binomial sum of independent
/// Bernoulli variables with the given success probabilities.
///
/// DP over counts capped at `t` (everything ≥ t is absorbed), O(|probs|·t).
///
/// ```
/// use ctc_prob::support_tail_probability;
///
/// // Two independent coin flips: P[at least one head] = 1 − 0.25 = 0.75.
/// let p = support_tail_probability(&[0.5, 0.5], 1);
/// assert!((p - 0.75).abs() < 1e-12);
/// assert_eq!(support_tail_probability(&[0.5], 0), 1.0); // P[X ≥ 0] = 1
/// ```
pub fn support_tail_probability(probs: &[f64], t: usize) -> f64 {
    if t == 0 {
        return 1.0;
    }
    // dp[c] = P[count == c] for c < t; dp_tail = P[count ≥ t].
    let mut dp = vec![0.0f64; t];
    dp[0] = 1.0;
    let mut tail = 0.0f64; // absorbing state: count ≥ t
    for &p in probs {
        tail += dp[t - 1] * p;
        for c in (1..t).rev() {
            dp[c] = dp[c] * (1.0 - p) + dp[c - 1] * p;
        }
        dp[0] *= 1.0 - p;
    }
    tail.clamp(0.0, 1.0)
}

/// Result of a probabilistic truss decomposition at confidence `γ`.
#[derive(Clone, Debug)]
pub struct ProbTrussDecomposition {
    /// `edge_truss[e]` = largest k such that `e` survives the (k, γ)-peel.
    pub edge_truss: Vec<u32>,
    /// The confidence level γ used.
    pub gamma: f64,
    /// Maximum probabilistic trussness.
    pub max_truss: u32,
}

impl ProbTrussDecomposition {
    /// Probabilistic trussness of an edge.
    pub fn truss(&self, e: EdgeId) -> u32 {
        self.edge_truss[e.index()]
    }
}

/// Probability that `e` has support ≥ `t` among the alive part of `live`.
fn tail_for_edge(pg: &ProbGraph, live: &DynGraph<'_>, e: EdgeId, t: usize) -> f64 {
    let (u, v) = pg.topology().edge_endpoints(e);
    let mut apexes: Vec<f64> = Vec::new();
    live.for_each_common_neighbor(u, v, |_, euw, evw| {
        apexes.push(pg.prob(euw) * pg.prob(evw));
    });
    support_tail_probability(&apexes, t)
}

/// Runs the (k, γ)-truss decomposition, assigning every edge its largest
/// surviving level.
///
/// ```
/// use ctc_graph::graph_from_edges;
/// use ctc_prob::{prob_truss_decomposition, ProbGraph};
///
/// // A certain triangle (p = 1) is a (3, γ)-truss at any confidence.
/// let triangle = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
/// let certain = ProbGraph::uniform(triangle.clone(), 1.0).unwrap();
/// assert_eq!(prob_truss_decomposition(&certain, 0.95).max_truss, 3);
///
/// // With p = 0.5 each side edge, P[support ≥ 1] = 0.25 < 0.95: level 3 fails.
/// let shaky = ProbGraph::uniform(triangle, 0.5).unwrap();
/// assert_eq!(prob_truss_decomposition(&shaky, 0.95).max_truss, 2);
/// ```
pub fn prob_truss_decomposition(pg: &ProbGraph, gamma: f64) -> ProbTrussDecomposition {
    // γ ≤ 0 would make every level vacuously satisfiable; clamp to a
    // meaningful confidence so the peel terminates.
    let gamma = gamma.clamp(1e-12, 1.0);
    let g = pg.topology();
    let m = g.num_edges();
    let mut edge_truss = vec![0u32; m];
    let mut max_truss = if m > 0 { 2 } else { 0 };
    let mut live = DynGraph::new(g);
    let mut k = 3u32;
    while live.num_alive_edges() > 0 {
        // Peel to the (k, γ)-fixpoint; edges that fall here have
        // probabilistic trussness k − 1.
        loop {
            let doomed: Vec<EdgeId> = live
                .alive_edges()
                .filter(|&(e, _, _)| tail_for_edge(pg, &live, e, (k - 2) as usize) < gamma)
                .map(|(e, _, _)| e)
                .collect();
            if doomed.is_empty() {
                break;
            }
            for e in doomed {
                edge_truss[e.index()] = k - 1;
                max_truss = max_truss.max(k - 1);
                live.remove_edge(e);
            }
        }
        if live.num_alive_edges() == 0 {
            break;
        }
        k += 1;
        // Anything alive at this point survives level k−1; keep its floor
        // updated in case the loop exits by exhaustion.
        for (e, _, _) in live.alive_edges() {
            edge_truss[e.index()] = k - 1;
            max_truss = max_truss.max(k - 1);
        }
    }
    ProbTrussDecomposition {
        edge_truss,
        gamma,
        max_truss,
    }
}

/// Monte-Carlo estimate of `P[e sits in a k-truss of the sampled world]` —
/// the validation oracle for tests.
pub fn mc_ktruss_membership(pg: &ProbGraph, e: EdgeId, k: u32, worlds: usize, seed: u64) -> f64 {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (u, v) = pg.topology().edge_endpoints(e);
    let mut hits = 0usize;
    for _ in 0..worlds {
        let w = pg.sample_world(&mut rng);
        let Some(we) = w.edge_between(u, v) else {
            continue;
        };
        let d = ctc_truss::truss_decomposition(&w);
        if d.truss(we) >= k {
            hits += 1;
        }
    }
    hits as f64 / worlds as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::graph_from_edges;

    fn k4() -> ProbGraph {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        ProbGraph::uniform(g, 0.9).unwrap()
    }

    /// Naive tail probability by full enumeration (test oracle).
    fn naive_tail(probs: &[f64], t: usize) -> f64 {
        let n = probs.len();
        let mut total = 0.0;
        for mask in 0u32..(1 << n) {
            let count = mask.count_ones() as usize;
            if count < t {
                continue;
            }
            let mut p = 1.0;
            for (i, &pi) in probs.iter().enumerate() {
                p *= if mask & (1 << i) != 0 { pi } else { 1.0 - pi };
            }
            total += p;
        }
        total
    }

    #[test]
    fn tail_matches_enumeration() {
        let cases: &[&[f64]] = &[
            &[0.5, 0.5],
            &[0.9, 0.1, 0.7],
            &[0.25, 0.25, 0.25, 0.25],
            &[1.0, 0.0, 0.5],
        ];
        for probs in cases {
            for t in 0..=probs.len() + 1 {
                let dp = support_tail_probability(probs, t);
                let naive = naive_tail(probs, t);
                assert!(
                    (dp - naive).abs() < 1e-12,
                    "probs {probs:?} t {t}: dp {dp} naive {naive}"
                );
            }
        }
    }

    #[test]
    fn tail_monotone_in_t() {
        let probs = [0.3, 0.8, 0.5, 0.9];
        let mut prev = 1.0;
        for t in 0..=5 {
            let cur = support_tail_probability(&probs, t);
            assert!(cur <= prev + 1e-12);
            prev = cur;
        }
    }

    #[test]
    fn k4_uniform_09_thresholds() {
        // In K4 with p = 0.9: each edge has 2 apexes of prob 0.81.
        // P[sup ≥ 2] = 0.81² ≈ 0.656; P[sup ≥ 1] = 1 − 0.19² ≈ 0.964.
        let pg = k4();
        let loose = prob_truss_decomposition(&pg, 0.6);
        assert!(
            loose.edge_truss.iter().all(|&t| t == 4),
            "γ=0.6 keeps the (4,γ)-truss"
        );
        let tight = prob_truss_decomposition(&pg, 0.7);
        assert!(
            tight.edge_truss.iter().all(|&t| t == 3),
            "γ=0.7 drops to 3: {tight:?}"
        );
        let very_tight = prob_truss_decomposition(&pg, 0.97);
        assert!(very_tight.edge_truss.iter().all(|&t| t == 2));
    }

    #[test]
    fn certain_graph_matches_deterministic_decomposition() {
        let g = graph_from_edges(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
            (3, 5),
        ]);
        let det = ctc_truss::truss_decomposition(&g);
        let pg = ProbGraph::uniform(g, 1.0).unwrap();
        let prob = prob_truss_decomposition(&pg, 0.999);
        assert_eq!(prob.edge_truss, det.edge_truss);
        assert_eq!(prob.max_truss, det.max_truss);
    }

    #[test]
    fn gamma_monotonicity() {
        let pg = k4();
        let a = prob_truss_decomposition(&pg, 0.3);
        let b = prob_truss_decomposition(&pg, 0.8);
        for e in 0..6 {
            assert!(
                a.edge_truss[e] >= b.edge_truss[e],
                "higher confidence must not raise trussness"
            );
        }
    }

    #[test]
    fn agrees_with_monte_carlo_on_k4() {
        // (4, γ)-truss survives at γ = 0.6; the MC estimate of "edge is in a
        // 4-truss" should be in that ballpark. Note the analytic model is
        // *local* (per-edge, conditioned on the edge existing), while MC
        // measures global joint survival, so tolerances are loose.
        let pg = k4();
        let e = EdgeId(0);
        let mc = mc_ktruss_membership(&pg, e, 4, 4000, 99);
        // Joint: all 6 edges must exist for the K4 → 0.9^5 ≈ 0.59 given e.
        // Our local estimate: 0.656. MC (unconditioned) ≈ 0.9^6 ≈ 0.53.
        assert!((0.40..0.68).contains(&mc), "mc = {mc}");
    }
}
