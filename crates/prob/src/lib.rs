//! # ctc-prob — probabilistic-graph extension
//!
//! The paper's §8 closes with: *"given the recent surge of interest in
//! probabilistic graphs, an exciting question is how k-truss generalizes to
//! probabilistic graphs."* This crate implements that direction:
//!
//! * [`ProbGraph`] — a topology with independent edge probabilities and
//!   possible-world sampling;
//! * [`prob_truss_decomposition`] — the (k, γ)-truss: every edge keeps
//!   ≥ k−2 triangles with probability ≥ γ (Poisson-binomial DP tail);
//! * [`monte_carlo_ctc`] — sampling-based closest community search with
//!   per-vertex inclusion confidence.
//!
//! ```
//! use ctc_graph::graph_from_edges;
//! use ctc_prob::{prob_truss_decomposition, ProbGraph};
//!
//! let triangle = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
//! let pg = ProbGraph::uniform(triangle, 0.9).unwrap();
//! // Each edge keeps its triangle iff both side edges survive: 0.81 ≥ γ.
//! assert_eq!(prob_truss_decomposition(&pg, 0.8).max_truss, 3);
//! assert_eq!(prob_truss_decomposition(&pg, 0.9).max_truss, 2);
//! ```

#![warn(missing_docs)]

pub mod ktruss;
pub mod pgraph;
pub mod search;

pub use ktruss::{
    mc_ktruss_membership, prob_truss_decomposition, support_tail_probability,
    ProbTrussDecomposition,
};
pub use pgraph::ProbGraph;
pub use search::{monte_carlo_ctc, McCommunity};
