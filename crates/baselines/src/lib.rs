//! # ctc-baselines — comparison community-search models
//!
//! The systems the CTC paper evaluates against (Exp-3 / Fig. 12):
//!
//! * [`mdc::mdc`] — minimum-degree community with distance/size constraints
//!   (Sozio & Gionis, the paper's \[27\]);
//! * [`qdc::qdc`] — query-biased densest connected subgraph (Wu et al., \[32\]),
//!   reimplemented as RWR-weighted peeling (see DESIGN.md §5);
//! * [`kcore_community`] — plain maximum-k-core community.
//!
//! All return the same [`ctc_core::Community`] type as the truss
//! algorithms, so the evaluation harness treats every model uniformly:
//!
//! ```
//! use ctc_baselines::{kcore_community, mdc, MdcConfig};
//! use ctc_truss::fixtures::{figure1_graph, Figure1Ids};
//!
//! let g = figure1_graph();
//! let f = Figure1Ids::default();
//! let q = [f.q1, f.q2];
//! let by_degree = mdc(&g, &q, &MdcConfig::default()).unwrap();
//! let by_core = kcore_community(&g, &q).unwrap();
//! assert!(by_degree.vertices.contains(&f.q1));
//! assert!(by_core.vertices.contains(&f.q1));
//! ```

#![warn(missing_docs)]

pub mod kcore;
pub mod mdc;
pub mod peeling;
pub mod qdc;

pub use kcore::kcore_community;
pub use mdc::{mdc, MdcConfig};
pub use peeling::{core_decomposition, DegreeBuckets};
pub use qdc::{qdc, QdcConfig};
