//! # ctc-baselines — comparison community-search models
//!
//! The systems the CTC paper evaluates against (Exp-3 / Fig. 12):
//!
//! * [`mdc::mdc`] — minimum-degree community with distance/size constraints
//!   (Sozio & Gionis, the paper's \[27\]);
//! * [`qdc::qdc`] — query-biased densest connected subgraph (Wu et al., \[32\]),
//!   reimplemented as RWR-weighted peeling (see DESIGN.md §5);
//! * [`kcore_community`] — plain maximum-k-core community.
//!
//! All return the same [`ctc_core::Community`] type as the truss
//! algorithms, so the evaluation harness treats every model uniformly.

#![warn(missing_docs)]

pub mod kcore;
pub mod mdc;
pub mod peeling;
pub mod qdc;

pub use kcore::kcore_community;
pub use mdc::{mdc, MdcConfig};
pub use peeling::{core_decomposition, DegreeBuckets};
pub use qdc::{qdc, QdcConfig};
