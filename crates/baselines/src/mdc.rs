//! MDC — minimum-degree community search (Sozio & Gionis, KDD'10, the
//! paper's reference 27).
//!
//! The "Cocktail Party" model: the community of `Q` is the connected
//! subgraph containing `Q` maximizing the minimum degree, optionally
//! subject to a distance constraint (`dist(v, Q) ≤ d`). The greedy peels
//! min-degree vertices; since peeling only shrinks the graph, query
//! connectivity is monotone, so the best feasible snapshot is found by a
//! binary search over the removal sequence.
//!
//! The paper's Exp-3 uses MDC with "fixed distance and size constraints" as
//! the k-core baseline; its rigid constraints are exactly why its F1 lags
//! (Fig. 12a).

use ctc_core::{community_from_induced, Community, PhaseTimings};
use ctc_graph::error::{GraphError, Result};
use ctc_graph::{
    induced_subgraph, query_connected, query_distances, BfsScratch, CsrGraph, Subgraph, VertexId,
};
use std::time::Instant;

/// MDC parameters.
#[derive(Clone, Debug)]
pub struct MdcConfig {
    /// Distance constraint: candidate vertices must lie within this many
    /// hops of every query vertex (`None` disables). The paper's setup uses
    /// a small fixed bound; default 2.
    pub distance_bound: Option<u32>,
    /// Soft size constraint: among feasible snapshots, prefer those with at
    /// most this many vertices (`None` disables).
    pub size_bound: Option<usize>,
}

impl Default for MdcConfig {
    fn default() -> Self {
        MdcConfig {
            distance_bound: Some(2),
            size_bound: None,
        }
    }
}

/// Runs MDC for query `q` on `g`.
///
/// ```
/// use ctc_baselines::{mdc, MdcConfig};
/// use ctc_truss::fixtures::{figure1_graph, Figure1Ids};
///
/// let g = figure1_graph();
/// let f = Figure1Ids::default();
/// let c = mdc(&g, &[f.q1, f.q2], &MdcConfig::default()).unwrap();
/// assert!(c.vertices.contains(&f.q1) && c.vertices.contains(&f.q2));
/// assert!(!c.edges.is_empty());
/// ```
pub fn mdc(g: &CsrGraph, q: &[VertexId], cfg: &MdcConfig) -> Result<Community> {
    let t0 = Instant::now();
    if q.is_empty() {
        return Err(GraphError::EmptyQuery);
    }
    let mut scratch = BfsScratch::new(g.num_vertices());
    // Distance restriction (with graceful fallback to the whole graph if the
    // bound disconnects the query).
    let restricted: Subgraph = match cfg.distance_bound {
        Some(d) => {
            let dist = query_distances(g, q, &mut scratch);
            let keep: Vec<VertexId> = g.vertices().filter(|v| dist[v.index()] <= d).collect();
            let sub = induced_subgraph(g, &keep);
            let mut s2 = BfsScratch::new(sub.num_vertices());
            match sub.locals(q) {
                Some(ql) if query_connected(&sub.graph, &ql, &mut s2) => sub,
                _ => induced_subgraph(g, &g.vertices().collect::<Vec<_>>()),
            }
        }
        None => induced_subgraph(g, &g.vertices().collect::<Vec<_>>()),
    };
    let ql = restricted.locals(q).ok_or(GraphError::Disconnected)?;
    let mut s2 = BfsScratch::new(restricted.num_vertices());
    if !query_connected(&restricted.graph, &ql, &mut s2) {
        return Err(GraphError::Disconnected);
    }
    let (order, mindeg_before, stop) = greedy_peel_order(&restricted.graph, &ql);
    // Binary search the last snapshot with Q connected (snapshots shrink, so
    // connectivity is monotone non-increasing in t).
    let mut lo = 0usize; // known connected (t = 0 is the restricted graph)
    let mut hi = stop; // candidate range end (exclusive snapshots after)
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if snapshot_query_connected(&restricted.graph, &order, mid, &ql) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let t_star = lo;
    // Among snapshots 0..=t_star choose max min-degree (tie → smaller graph
    // = later snapshot), honoring the soft size bound if possible.
    let n = restricted.num_vertices();
    let pick = |limit: Option<usize>| -> Option<usize> {
        let mut best: Option<(u32, usize)> = None;
        for (t, &md) in mindeg_before.iter().enumerate().take(t_star + 1) {
            if let Some(cap) = limit {
                if n - t > cap {
                    continue;
                }
            }
            if best.is_none_or(|(b, _)| md >= b) {
                best = Some((md, t));
            }
        }
        best.map(|(_, t)| t)
    };
    let best_t = pick(cfg.size_bound)
        .or_else(|| pick(None))
        .expect("t=0 is always feasible");
    // Reconstruct: vertices removed at position ≥ best_t survive.
    let vertices: Vec<VertexId> = (best_t..n)
        .map(|i| restricted.parent(VertexId(order[i])))
        .collect();
    Ok(community_from_induced(
        g,
        2,
        vertices,
        q,
        (restricted.num_vertices(), restricted.num_edges()),
        best_t,
        PhaseTimings::with_residual(t0.elapsed(), Default::default(), t0.elapsed()),
    ))
}

/// Peels min-degree vertices until a query vertex would be removed.
/// Returns (removal order: removed vertices in positions `0..stop`, all
/// survivors after, so positions `t..n` hold the vertices of snapshot `t`;
/// `mindeg_before[t]` = min degree of the snapshot before removal `t`;
/// `stop` = number of removals executed). Uses a lazy binary heap: exact
/// degrees matter here, which rules out the clamped bucket-queue trick.
fn greedy_peel_order(g: &CsrGraph, q: &[VertexId]) -> (Vec<u32>, Vec<u32>, usize) {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.num_vertices();
    let mut degree: Vec<u32> = (0..n).map(|v| g.degree(VertexId::from(v)) as u32).collect();
    let mut removed = vec![false; n];
    let mut is_query = vec![false; n];
    for &v in q {
        is_query[v.index()] = true;
    }
    let mut heap: BinaryHeap<Reverse<(u32, u32)>> = (0..n as u32)
        .map(|v| Reverse((degree[v as usize], v)))
        .collect();
    let mut mindeg_before = Vec::with_capacity(n);
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut stop = 0usize;
    while let Some(Reverse((d, v))) = heap.pop() {
        if removed[v as usize] || d != degree[v as usize] {
            continue; // stale entry
        }
        if is_query[v as usize] {
            break; // greedy never removes a query vertex
        }
        mindeg_before.push(d);
        removed[v as usize] = true;
        order.push(v);
        for &nb in g.neighbors(VertexId(v)) {
            if !removed[nb as usize] {
                degree[nb as usize] -= 1;
                heap.push(Reverse((degree[nb as usize], nb)));
            }
        }
        stop += 1;
    }
    // `mindeg_before[stop]` (the final feasible snapshot) for the picker.
    let last_min = (0..n as u32)
        .filter(|&v| !removed[v as usize])
        .map(|v| degree[v as usize])
        .min()
        .unwrap_or(0);
    mindeg_before.push(last_min);
    // Append survivors in any stable order.
    for v in 0..n as u32 {
        if !removed[v as usize] {
            order.push(v);
        }
    }
    (order, mindeg_before, stop)
}

/// Is `q` connected within the snapshot keeping `order[t..]`?
fn snapshot_query_connected(g: &CsrGraph, order: &[u32], t: usize, q: &[VertexId]) -> bool {
    let alive: Vec<VertexId> = order[t..].iter().map(|&v| VertexId(v)).collect();
    let sub = induced_subgraph(g, &alive);
    let Some(ql) = sub.locals(q) else {
        return false;
    };
    let mut scratch = BfsScratch::new(sub.num_vertices());
    query_connected(&sub.graph, &ql, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::graph_from_edges;

    /// K4 (0..4) + pendant path 3-4-5: MDC around 0 should find the K4.
    fn k4_with_tail() -> CsrGraph {
        graph_from_edges(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
        ])
    }

    #[test]
    fn finds_the_dense_core() {
        let g = k4_with_tail();
        let c = mdc(&g, &[VertexId(0)], &MdcConfig::default()).unwrap();
        assert_eq!(c.num_vertices(), 4);
        assert!(c.contains_query(&[VertexId(0)]));
        // Min degree of the K4 is 3.
        let sub = c.subgraph();
        let min_deg = sub
            .graph
            .vertices()
            .map(|v| sub.graph.degree(v))
            .min()
            .unwrap();
        assert_eq!(min_deg, 3);
    }

    #[test]
    fn distance_bound_restricts() {
        // Query at the tail end: distance bound 1 keeps only {4,5,3}.
        let g = k4_with_tail();
        let c = mdc(
            &g,
            &[VertexId(5)],
            &MdcConfig {
                distance_bound: Some(1),
                size_bound: None,
            },
        )
        .unwrap();
        assert!(c.num_vertices() <= 2, "got {:?}", c.vertices);
        assert!(c.contains_query(&[VertexId(5)]));
    }

    #[test]
    fn multi_query_spanning_requires_connector() {
        // Q = {0, 5}: the community must include the path through 3 and 4.
        let g = k4_with_tail();
        let c = mdc(
            &g,
            &[VertexId(0), VertexId(5)],
            &MdcConfig {
                distance_bound: Some(3),
                size_bound: None,
            },
        )
        .unwrap();
        assert!(c.contains_query(&[VertexId(0), VertexId(5)]));
        assert!(c.vertices.contains(&VertexId(4)));
    }

    #[test]
    fn empty_query_errors() {
        let g = k4_with_tail();
        assert_eq!(
            mdc(&g, &[], &MdcConfig::default()).unwrap_err(),
            GraphError::EmptyQuery
        );
    }

    #[test]
    fn size_bound_prefers_smaller() {
        let g = k4_with_tail();
        let unbounded = mdc(
            &g,
            &[VertexId(0)],
            &MdcConfig {
                distance_bound: None,
                size_bound: None,
            },
        )
        .unwrap();
        let bounded = mdc(
            &g,
            &[VertexId(0)],
            &MdcConfig {
                distance_bound: None,
                size_bound: Some(4),
            },
        )
        .unwrap();
        assert!(bounded.num_vertices() <= 4);
        assert!(bounded.num_vertices() <= unbounded.num_vertices());
    }

    #[test]
    fn disconnected_query_errors() {
        let g = graph_from_edges(&[(0, 1), (2, 3)]);
        assert_eq!(
            mdc(
                &g,
                &[VertexId(0), VertexId(2)],
                &MdcConfig {
                    distance_bound: None,
                    size_bound: None
                }
            )
            .unwrap_err(),
            GraphError::Disconnected
        );
    }
}
