//! Global k-core community baseline: the connected component of the
//! maximum-k core containing all query vertices.
//!
//! The simplest of the degree-based models (\[27\]'s structural core without
//! the greedy): compute core numbers once, then binary-search the largest
//! `k` whose k-core keeps the query connected.

use crate::peeling::core_decomposition;
use ctc_core::{community_from_induced, Community, PhaseTimings};
use ctc_graph::error::{GraphError, Result};
use ctc_graph::{query_connected, BfsScratch, CsrGraph, FilteredGraph, VertexId};
use std::time::Instant;

/// Finds the max-k core community containing `q`.
///
/// ```
/// use ctc_baselines::kcore_community;
/// use ctc_truss::fixtures::{figure1_graph, Figure1Ids};
///
/// let g = figure1_graph();
/// let f = Figure1Ids::default();
/// let c = kcore_community(&g, &[f.q1, f.q2]).unwrap();
/// // Figure 1's dense region keeps the query in a non-trivial core.
/// assert!(c.k >= 2);
/// assert!(c.vertices.contains(&f.q1) && c.vertices.contains(&f.q2));
/// ```
pub fn kcore_community(g: &CsrGraph, q: &[VertexId]) -> Result<Community> {
    let t0 = Instant::now();
    if q.is_empty() {
        return Err(GraphError::EmptyQuery);
    }
    let core = core_decomposition(g);
    let k_hi = q
        .iter()
        .map(|&v| core[v.index()])
        .min()
        .expect("q nonempty");
    let mut scratch = BfsScratch::new(g.num_vertices());
    // Query connectivity in the k-core is monotone in k: search downward.
    let connected_at = |k: u32, scratch: &mut BfsScratch| -> bool {
        let view = FilteredGraph::new(g, |e| {
            let (u, v) = g.edge_endpoints(e);
            core[u.index()] >= k && core[v.index()] >= k
        });
        query_connected(&view, q, scratch)
    };
    let (mut lo, mut hi) = (0u32, k_hi);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if connected_at(mid, &mut scratch) {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let k = lo;
    if k == 0 && !connected_at(0, &mut scratch) {
        return Err(GraphError::Disconnected);
    }
    // Collect the component containing q[0] within the k-core.
    let view = FilteredGraph::new(g, |e| {
        let (u, v) = g.edge_endpoints(e);
        core[u.index()] >= k && core[v.index()] >= k
    });
    scratch.run(&view, q[0]);
    let vertices: Vec<VertexId> = scratch
        .reached()
        .filter(|&v| core[v.index()] >= k)
        .collect();
    Ok(community_from_induced(
        g,
        2,
        vertices,
        q,
        (g.num_vertices(), g.num_edges()),
        0,
        PhaseTimings::with_residual(t0.elapsed(), Default::default(), t0.elapsed()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::graph_from_edges;

    #[test]
    fn finds_dense_core_ignores_tail() {
        let g = graph_from_edges(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
        ]);
        let c = kcore_community(&g, &[VertexId(0)]).unwrap();
        assert_eq!(c.num_vertices(), 4, "the 3-core is the K4");
        assert!(!c.vertices.contains(&VertexId(5)));
    }

    #[test]
    fn query_in_tail_lowers_k() {
        let g = graph_from_edges(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
        ]);
        let c = kcore_community(&g, &[VertexId(0), VertexId(5)]).unwrap();
        assert!(c.contains_query(&[VertexId(0), VertexId(5)]));
        assert_eq!(c.num_vertices(), 6, "1-core = whole graph");
    }

    #[test]
    fn disconnected_errors() {
        let g = graph_from_edges(&[(0, 1), (2, 3)]);
        assert!(kcore_community(&g, &[VertexId(0), VertexId(2)]).is_err());
    }

    #[test]
    fn empty_query_errors() {
        let g = graph_from_edges(&[(0, 1)]);
        assert_eq!(
            kcore_community(&g, &[]).unwrap_err(),
            GraphError::EmptyQuery
        );
    }
}
