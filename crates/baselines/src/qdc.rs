//! QDC — query-biased densest connected subgraph (Wu et al., PVLDB'15, the
//! paper's reference 32), reimplemented as RWR-weighted greedy peeling
//! (DESIGN.md §5).
//!
//! Node relevance comes from a random walk with restart at the query
//! vertices; each vertex costs `1 / r(v)` (irrelevant vertices are
//! expensive) and the objective is the query-biased density
//! `ρ(S) = |E(S)| / Σ_{v∈S} cost(v)`. Charikar-style peeling removes the
//! vertex with the worst degree-to-relevance ratio and keeps the best
//! snapshot; the answer is the component of that snapshot containing the
//! query (the original QDC can split off the query — the failure mode the
//! CTC paper points out; we surface it the same way by falling back to the
//! query's component).

use ctc_core::{community_from_induced, Community, PhaseTimings};
use ctc_graph::error::{GraphError, Result};
use ctc_graph::{
    connected_components, induced_subgraph, personalized_pagerank, CsrGraph, PageRankOptions,
    VertexId,
};
use std::time::Instant;

/// QDC parameters.
#[derive(Clone, Debug)]
pub struct QdcConfig {
    /// Random-walk restart probability.
    pub restart: f64,
    /// Power-iteration cap for the RWR scores (kept low: scores only need
    /// to rank vertices).
    pub rwr_iterations: usize,
    /// `false` (default): faithful to the original QDC — return the best-
    /// density snapshot and fail if it splits the query across components
    /// (the weakness the CTC paper highlights, §7.2). `true`: restrict the
    /// snapshot choice to query-connected ones (a strictly safer variant).
    pub enforce_query_connectivity: bool,
}

impl Default for QdcConfig {
    fn default() -> Self {
        QdcConfig {
            restart: 0.15,
            rwr_iterations: 40,
            enforce_query_connectivity: false,
        }
    }
}

/// Runs QDC for query `q` on `g`.
///
/// ```
/// use ctc_baselines::{qdc, QdcConfig};
/// use ctc_truss::fixtures::{figure1_graph, Figure1Ids};
///
/// let g = figure1_graph();
/// let f = Figure1Ids::default();
/// let cfg = QdcConfig { enforce_query_connectivity: true, ..QdcConfig::default() };
/// let c = qdc(&g, &[f.q1], &cfg).unwrap();
/// assert!(c.vertices.contains(&f.q1));
/// assert!(c.density() > 0.0);
/// ```
pub fn qdc(g: &CsrGraph, q: &[VertexId], cfg: &QdcConfig) -> Result<Community> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let t0 = Instant::now();
    if q.is_empty() {
        return Err(GraphError::EmptyQuery);
    }
    let n = g.num_vertices();
    let r = personalized_pagerank(
        g,
        q,
        PageRankOptions {
            restart: cfg.restart,
            tolerance: 1e-12,
            max_iterations: cfg.rwr_iterations,
        },
    );
    // cost(v) = 1 / max(r(v), floor); floor keeps far vertices finite.
    let floor = 1e-12;
    let cost: Vec<f64> = r.iter().map(|&x| 1.0 / x.max(floor)).collect();
    let mut degree: Vec<i64> = (0..n).map(|v| g.degree(VertexId::from(v)) as i64).collect();
    let mut removed = vec![false; n];
    let mut is_query = vec![false; n];
    for &v in q {
        is_query[v.index()] = true;
    }
    // Peeling priority: degree(v) * r(v) ascending — low-degree, low-
    // relevance vertices go first. (Scaled to u64 for heap ordering.)
    let score = |deg: i64, v: usize| -> u64 {
        let s = deg as f64 * r[v].max(floor) * 1e12;
        s.min(u64::MAX as f64 / 2.0) as u64
    };
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> = (0..n as u32)
        .filter(|&v| !is_query[v as usize])
        .map(|v| Reverse((score(degree[v as usize], v as usize), v)))
        .collect();
    let mut live_edges = g.num_edges() as i64;
    let mut live_cost: f64 = cost.iter().sum();
    let mut order: Vec<u32> = Vec::with_capacity(n);
    let mut densities: Vec<f64> = vec![live_edges as f64 / live_cost.max(floor)];
    while let Some(Reverse((s, v))) = heap.pop() {
        if removed[v as usize] || s != score(degree[v as usize], v as usize) {
            continue;
        }
        removed[v as usize] = true;
        order.push(v);
        live_edges -= degree[v as usize];
        live_cost -= cost[v as usize];
        for &nb in g.neighbors(VertexId(v)) {
            if !removed[nb as usize] {
                degree[nb as usize] -= 1;
                if !is_query[nb as usize] {
                    heap.push(Reverse((score(degree[nb as usize], nb as usize), nb)));
                }
            }
        }
        densities.push(live_edges as f64 / live_cost.max(floor));
    }
    // Query connectivity only degrades as vertices are peeled (query
    // vertices themselves are never removed), so the last query-connected
    // snapshot t* is found by binary search; the answer is the densest
    // snapshot no later than t*. The original QDC can return the densest
    // snapshot outright and split the query — the failure mode the CTC
    // paper highlights — we keep the query by construction.
    let snapshot_connected = |t: usize| -> bool {
        let mut alive = vec![true; n];
        for &v in &order[..t] {
            alive[v as usize] = false;
        }
        let keep: Vec<VertexId> = (0..n)
            .map(VertexId::from)
            .filter(|&v| alive[v.index()])
            .collect();
        let sub = induced_subgraph(g, &keep);
        let Some(ql) = sub.locals(q) else {
            return false;
        };
        let mut scratch = ctc_graph::BfsScratch::new(sub.num_vertices());
        ctc_graph::query_connected(&sub.graph, &ql, &mut scratch)
    };
    if !snapshot_connected(0) {
        return Err(GraphError::Disconnected);
    }
    let t_star = if cfg.enforce_query_connectivity {
        let (mut lo, mut hi) = (0usize, order.len());
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if snapshot_connected(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    } else {
        order.len() // original QDC: any snapshot is admissible
    };
    let best_t = (0..=t_star)
        .max_by(|&a, &b| {
            densities[a]
                .partial_cmp(&densities[b])
                .expect("finite densities")
        })
        .unwrap_or(0);
    let mut alive = vec![true; n];
    for &v in &order[..best_t] {
        alive[v as usize] = false;
    }
    let keep: Vec<VertexId> = (0..n)
        .map(VertexId::from)
        .filter(|&v| alive[v.index()])
        .collect();
    let sub = induced_subgraph(g, &keep);
    // Keep the query's component (the snapshot may contain stray pieces).
    let (labels, _) = connected_components(&sub.graph);
    let q0 = sub.local(q[0]).ok_or(GraphError::Disconnected)?;
    let target = labels[q0.index()];
    let vertices: Vec<VertexId> = sub
        .graph
        .vertices()
        .filter(|&v| labels[v.index()] == target)
        .map(|v| sub.parent(v))
        .collect();
    let community = community_from_induced(
        g,
        2,
        vertices,
        q,
        (g.num_vertices(), g.num_edges()),
        best_t,
        PhaseTimings::with_residual(t0.elapsed(), Default::default(), t0.elapsed()),
    );
    if !community.contains_query(q) {
        return Err(GraphError::Disconnected);
    }
    Ok(community)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::graph_from_edges;

    /// Two K4s joined by a path; query in the left K4.
    fn barbell() -> CsrGraph {
        graph_from_edges(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (3, 4),
            (4, 5),
            (5, 6),
            (6, 7),
            (6, 8),
            (6, 9),
            (7, 8),
            (7, 9),
            (8, 9),
        ])
    }

    #[test]
    fn stays_near_the_query() {
        let g = barbell();
        let c = qdc(&g, &[VertexId(0)], &QdcConfig::default()).unwrap();
        assert!(c.contains_query(&[VertexId(0)]));
        // The far K4 should not be included: its relevance is tiny.
        assert!(
            !c.vertices.contains(&VertexId(9)),
            "far clique leaked into the community: {:?}",
            c.vertices
        );
    }

    #[test]
    fn community_is_connected() {
        let g = barbell();
        let c = qdc(&g, &[VertexId(0), VertexId(2)], &QdcConfig::default()).unwrap();
        c.validate(&[VertexId(0), VertexId(2)]).unwrap();
    }

    #[test]
    fn dense_neighborhood_beats_sparse_tail() {
        let g = barbell();
        let c = qdc(&g, &[VertexId(1)], &QdcConfig::default()).unwrap();
        // The K4 around the query should survive.
        for v in [0u32, 2, 3] {
            assert!(c.vertices.contains(&VertexId(v)), "missing K4 member {v}");
        }
    }

    #[test]
    fn empty_query_errors() {
        let g = barbell();
        assert_eq!(
            qdc(&g, &[], &QdcConfig::default()).unwrap_err(),
            GraphError::EmptyQuery
        );
    }

    #[test]
    fn safe_mode_spanning_query_keeps_path() {
        let g = barbell();
        let cfg = QdcConfig {
            enforce_query_connectivity: true,
            ..Default::default()
        };
        let c = qdc(&g, &[VertexId(0), VertexId(9)], &cfg).unwrap();
        assert!(c.contains_query(&[VertexId(0), VertexId(9)]));
        // Must include the connecting path.
        assert!(c.vertices.contains(&VertexId(4)));
        assert!(c.vertices.contains(&VertexId(5)));
    }

    #[test]
    fn original_mode_can_split_spanning_query() {
        // The densest snapshot on the barbell drops the path, splitting the
        // query across the two cliques — the paper's documented QDC failure
        // mode. Faithful behavior: an error (counted as F1 = 0 in Exp-3).
        let g = barbell();
        let r = qdc(&g, &[VertexId(0), VertexId(9)], &QdcConfig::default());
        match r {
            Err(GraphError::Disconnected) => {}
            Ok(c) => {
                // If the peel happened to keep the path, the result must at
                // least be a valid community.
                c.validate(&[VertexId(0), VertexId(9)]).unwrap();
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
}
