//! Degree-ordered vertex peeling — the shared substrate of the MDC and
//! k-core baselines.
//!
//! A bucket queue keyed by live degree supports O(1) extract-min and
//! decrease-key, the same trick as the truss engine's support buckets
//! (Batagelj–Zaversnik k-core decomposition).

use ctc_graph::{CsrGraph, VertexId};

/// Bucket queue over vertices keyed by current degree.
pub struct DegreeBuckets {
    sorted: Vec<u32>,
    pos: Vec<u32>,
    bin_start: Vec<u32>,
    /// Current degree per vertex (public for the peeling drivers).
    pub degree: Vec<u32>,
}

impl DegreeBuckets {
    /// Builds buckets from the initial degrees of `g`.
    pub fn new(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let degree: Vec<u32> = (0..n).map(|v| g.degree(VertexId::from(v)) as u32).collect();
        Self::from_degrees(degree)
    }

    /// Builds buckets from an explicit degree vector.
    pub fn from_degrees(degree: Vec<u32>) -> Self {
        let n = degree.len();
        let max_d = degree.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u32; max_d + 2];
        for &d in &degree {
            counts[d as usize] += 1;
        }
        let mut bin_start = vec![0u32; max_d + 2];
        let mut acc = 0;
        for (d, &c) in counts.iter().enumerate() {
            bin_start[d] = acc;
            acc += c;
        }
        let mut cursor = bin_start.clone();
        let mut sorted = vec![0u32; n];
        let mut pos = vec![0u32; n];
        for (v, &d) in degree.iter().enumerate() {
            let p = cursor[d as usize];
            sorted[p as usize] = v as u32;
            pos[v] = p;
            cursor[d as usize] += 1;
        }
        DegreeBuckets {
            sorted,
            pos,
            bin_start,
            degree,
        }
    }

    /// The `i`-th vertex in the (dynamically maintained) degree order.
    #[inline]
    pub fn vertex_at(&self, i: usize) -> VertexId {
        VertexId(self.sorted[i])
    }

    /// Position of `v` in the order (positions before the processing
    /// frontier are "removed").
    #[inline]
    pub fn position(&self, v: VertexId) -> usize {
        self.pos[v.index()] as usize
    }

    /// Decrement the degree of `v`, keeping the order valid. Only call for
    /// vertices after the processing frontier with degree > 0.
    pub fn decrement(&mut self, v: VertexId) {
        let d = self.degree[v.index()];
        debug_assert!(d > 0);
        let p = self.pos[v.index()];
        let first = self.bin_start[d as usize];
        let other = self.sorted[first as usize];
        self.sorted.swap(first as usize, p as usize);
        self.pos[v.index()] = first;
        self.pos[other as usize] = p;
        self.bin_start[d as usize] = first + 1;
        self.degree[v.index()] = d - 1;
    }
}

/// Core decomposition: `core[v]` = the largest k such that `v` belongs to
/// the k-core (Batagelj–Zaversnik, O(n + m)).
///
/// ```
/// use ctc_baselines::core_decomposition;
/// use ctc_graph::graph_from_edges;
///
/// // A K4 with a pendant vertex: the clique is a 3-core, the pendant is not.
/// let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
/// assert_eq!(core_decomposition(&g), vec![3, 3, 3, 3, 1]);
/// ```
pub fn core_decomposition(g: &CsrGraph) -> Vec<u32> {
    let n = g.num_vertices();
    let mut buckets = DegreeBuckets::new(g);
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut k = 0u32;
    for i in 0..n {
        let v = buckets.vertex_at(i);
        k = k.max(buckets.degree[v.index()]);
        core[v.index()] = k;
        removed[v.index()] = true;
        for &nb in g.neighbors(v) {
            if !removed[nb as usize] && buckets.degree[nb as usize] > k {
                buckets.decrement(VertexId(nb));
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::graph_from_edges;

    #[test]
    fn k4_core_numbers() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(core_decomposition(&g), vec![3, 3, 3, 3]);
    }

    #[test]
    fn k4_with_pendant() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
        let core = core_decomposition(&g);
        assert_eq!(core[4], 1);
        assert_eq!(core[0], 3);
        assert_eq!(core[3], 3);
    }

    #[test]
    fn path_is_1_core() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(core_decomposition(&g), vec![1, 1, 1, 1]);
    }

    #[test]
    fn two_triangles_bridged() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (4, 5), (3, 5)]);
        let core = core_decomposition(&g);
        assert_eq!(core[0], 2);
        assert_eq!(core[1], 2);
        assert_eq!(core[4], 2);
        // The bridge endpoints are still in the 2-core (their triangles).
        assert_eq!(core[2], 2);
        assert_eq!(core[3], 2);
    }

    #[test]
    fn buckets_track_decrements() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3)]);
        let mut b = DegreeBuckets::new(&g);
        assert_eq!(b.degree[0], 3);
        b.decrement(VertexId(0));
        b.decrement(VertexId(0));
        assert_eq!(b.degree[0], 1);
        // Order stays a permutation.
        let mut s = b.sorted.clone();
        s.sort_unstable();
        assert_eq!(s, vec![0, 1, 2, 3]);
    }
}
