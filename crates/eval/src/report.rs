//! Structured experiment records for machine-readable exports.
//!
//! The experiment binaries print human tables; this module additionally
//! captures results as simple records that can be dumped as CSV for
//! plotting — the artifact EXPERIMENTS.md points at.

use std::fmt::Write as _;

/// One measured data point of an experiment series.
#[derive(Clone, Debug, PartialEq)]
pub struct Record {
    /// Experiment id (e.g. `"fig5"`).
    pub experiment: String,
    /// Series / method name (e.g. `"LCTC"`).
    pub series: String,
    /// X-axis label (e.g. `"|Q|=4"`).
    pub x: String,
    /// Metric name (e.g. `"time_s"`).
    pub metric: String,
    /// Measured value.
    pub value: f64,
}

/// An append-only collection of records with CSV export.
#[derive(Clone, Debug, Default)]
pub struct Report {
    records: Vec<Record>,
}

impl Report {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one data point.
    pub fn push(
        &mut self,
        experiment: impl Into<String>,
        series: impl Into<String>,
        x: impl Into<String>,
        metric: impl Into<String>,
        value: f64,
    ) {
        self.records.push(Record {
            experiment: experiment.into(),
            series: series.into(),
            x: x.into(),
            metric: metric.into(),
            value,
        });
    }

    /// All records.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Renders the report as CSV (header + rows, comma-separated; fields
    /// are sanitized by replacing commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("experiment,series,x,metric,value\n");
        for r in &self.records {
            let clean = |s: &str| s.replace(',', ";");
            let _ = writeln!(
                out,
                "{},{},{},{},{}",
                clean(&r.experiment),
                clean(&r.series),
                clean(&r.x),
                clean(&r.metric),
                r.value
            );
        }
        out
    }

    /// Writes the CSV to a file.
    pub fn save_csv<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip_shape() {
        let mut r = Report::new();
        r.push("fig5", "LCTC", "|Q|=4", "time_s", 0.05);
        r.push("fig5", "BD", "|Q|=4", "time_s", 0.2);
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "experiment,series,x,metric,value");
        assert!(lines[1].starts_with("fig5,LCTC,"));
        assert_eq!(r.records().len(), 2);
    }

    #[test]
    fn commas_are_sanitized() {
        let mut r = Report::new();
        r.push("a,b", "c", "d", "e", 1.0);
        assert!(r.to_csv().contains("a;b,c,d,e,1"));
    }

    #[test]
    fn save_csv_writes_file() {
        let mut r = Report::new();
        r.push("x", "y", "z", "m", 2.5);
        let path = std::env::temp_dir().join("ctc_report_test.csv");
        r.save_csv(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("2.5"));
    }
}
