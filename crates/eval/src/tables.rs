//! Fixed-width table rendering for the experiment binaries.
//!
//! Every `exp_*` binary prints results in the shape of the paper's tables
//! and figure series; this keeps the formatting in one place.

/// A simple right-padded text table.
///
/// ```
/// use ctc_eval::Table;
///
/// let mut t = Table::new(["algorithm", "k"]);
/// t.row(["basic", "4"]).row(["lctc", "4"]);
/// let text = t.render();
/// assert!(text.contains("algorithm"));
/// assert!(text.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = h.len();
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], width: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(width[c] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &width));
        out.push('\n');
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &width));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with sensible precision for reports.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 100.0 {
        format!("{x:.0}")
    } else if x.abs() >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

/// Formats seconds, switching to ms below 1s.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Formats a byte count as MB with two decimals (Table 3 style).
pub fn fmt_mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["net", "n", "m"]);
        t.row(["facebook", "4000", "88234"]);
        t.row(["orkut", "3072441", "117185083"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("net"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].contains("orkut"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(0.1234567), "0.1235");
        assert_eq!(fmt_f(3.17159), "3.17");
        assert_eq!(fmt_f(256.7), "257");
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
    }

    #[test]
    fn mb_formatting() {
        assert_eq!(fmt_mb(1024 * 1024), "1.00");
    }
}
