//! Community quality metrics against ground truth (Exp-3, Fig. 12).
//!
//! `F1(C, Ĉ) = 2·prec·recall / (prec + recall)` with
//! `prec = |C ∩ Ĉ| / |C|`, `recall = |C ∩ Ĉ| / |Ĉ|` — exactly the paper's
//! §6 definition.

use ctc_graph::VertexId;

/// Precision, recall and F1 of a detected community against ground truth.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct F1Score {
    /// `|C ∩ Ĉ| / |C|`.
    pub precision: f64,
    /// `|C ∩ Ĉ| / |Ĉ|`.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes [`F1Score`] for detected community `c` vs ground truth `truth`.
///
/// Both inputs are treated as sets; duplicates are ignored. Degenerate
/// cases (either side empty) score zero.
///
/// ```
/// use ctc_eval::f1_score;
/// use ctc_graph::VertexId;
///
/// let detected = [VertexId(0), VertexId(1)];
/// let truth = [VertexId(1), VertexId(2)];
/// let s = f1_score(&detected, &truth);
/// assert_eq!((s.precision, s.recall, s.f1), (0.5, 0.5, 0.5));
/// assert_eq!(f1_score(&detected, &[]).f1, 0.0);
/// ```
pub fn f1_score(c: &[VertexId], truth: &[VertexId]) -> F1Score {
    let detected: std::collections::BTreeSet<u32> = c.iter().map(|v| v.0).collect();
    let gt: std::collections::BTreeSet<u32> = truth.iter().map(|v| v.0).collect();
    if detected.is_empty() || gt.is_empty() {
        return F1Score {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
        };
    }
    let inter = detected.intersection(&gt).count() as f64;
    let precision = inter / detected.len() as f64;
    let recall = inter / gt.len() as f64;
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    F1Score {
        precision,
        recall,
        f1,
    }
}

/// Aggregates a sample of values into (mean, standard deviation).
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vs(ids: &[u32]) -> Vec<VertexId> {
        ids.iter().map(|&i| VertexId(i)).collect()
    }

    #[test]
    fn perfect_match() {
        let s = f1_score(&vs(&[1, 2, 3]), &vs(&[3, 2, 1]));
        assert_eq!(s.precision, 1.0);
        assert_eq!(s.recall, 1.0);
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn no_overlap() {
        let s = f1_score(&vs(&[1, 2]), &vs(&[3, 4]));
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn partial_overlap() {
        // C = {1,2,3,4}, Ĉ = {3,4,5,6}: prec = recall = 0.5 → F1 = 0.5.
        let s = f1_score(&vs(&[1, 2, 3, 4]), &vs(&[3, 4, 5, 6]));
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert!((s.recall - 0.5).abs() < 1e-12);
        assert!((s.f1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oversized_detection_hurts_precision_only() {
        let s = f1_score(&vs(&[1, 2, 3, 4, 5, 6, 7, 8]), &vs(&[1, 2, 3, 4]));
        assert!((s.precision - 0.5).abs() < 1e-12);
        assert_eq!(s.recall, 1.0);
    }

    #[test]
    fn empty_sides_are_zero() {
        assert_eq!(f1_score(&[], &vs(&[1])).f1, 0.0);
        assert_eq!(f1_score(&vs(&[1]), &[]).f1, 0.0);
    }

    #[test]
    fn duplicates_ignored() {
        let s = f1_score(&vs(&[1, 1, 2]), &vs(&[1, 2, 2]));
        assert_eq!(s.f1, 1.0);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }
}
