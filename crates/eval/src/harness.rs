//! Experiment harness: timed, budgeted, optionally parallel runs over query
//! workloads.
//!
//! The paper reports averages over 100 (Exp-1) or 1000 (Exp-3) random query
//! sets with a one-hour per-query timeout ("we treat the runtime of a query
//! as infinite if its runtime exceeds 1 hour"). [`run_workload`] mirrors
//! that: a wall-clock budget per *workload*, failures and timeouts recorded
//! rather than panicking, and an optional thread pool (std scoped
//! threads) since the queries are independent.

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Result of running one algorithm over one query set.
#[derive(Clone, Debug)]
pub enum RunOutcome<T> {
    /// Completed with a value in the given time.
    Done(T, Duration),
    /// Errored (e.g. disconnected query).
    Failed(String),
    /// Skipped: the workload's time budget was already exhausted.
    OverBudget,
}

impl<T> RunOutcome<T> {
    /// The wall time, if completed.
    pub fn duration(&self) -> Option<Duration> {
        match self {
            RunOutcome::Done(_, d) => Some(*d),
            _ => None,
        }
    }

    /// The value, if completed.
    pub fn value(&self) -> Option<&T> {
        match self {
            RunOutcome::Done(v, _) => Some(v),
            _ => None,
        }
    }
}

/// Aggregate statistics over a workload run.
#[derive(Clone, Debug, Default)]
pub struct WorkloadStats {
    /// Number of completed queries.
    pub completed: usize,
    /// Number of failed queries.
    pub failed: usize,
    /// Number skipped over budget.
    pub skipped: usize,
    /// Mean wall time of completed queries (seconds).
    pub mean_seconds: f64,
}

/// Runs `f` over every query in `queries` sequentially, respecting a total
/// wall-clock `budget` (queries after exhaustion are [`RunOutcome::OverBudget`]).
///
/// ```
/// use ctc_eval::run_workload;
/// use std::time::Duration;
///
/// let queries = [1u32, 2, 3];
/// let (outcomes, stats) =
///     run_workload(&queries, Duration::from_secs(60), |&q| Ok::<_, String>(q * 2));
/// assert_eq!((stats.completed, stats.failed, stats.skipped), (3, 0, 0));
/// assert_eq!(outcomes[1].value(), Some(&4));
/// ```
pub fn run_workload<Q, T>(
    queries: &[Q],
    budget: Duration,
    mut f: impl FnMut(&Q) -> Result<T, String>,
) -> (Vec<RunOutcome<T>>, WorkloadStats) {
    let start = Instant::now();
    let mut out = Vec::with_capacity(queries.len());
    for q in queries {
        if start.elapsed() > budget {
            out.push(RunOutcome::OverBudget);
            continue;
        }
        let t0 = Instant::now();
        match f(q) {
            Ok(v) => out.push(RunOutcome::Done(v, t0.elapsed())),
            Err(e) => out.push(RunOutcome::Failed(e)),
        }
    }
    let stats = summarize(&out);
    (out, stats)
}

/// Parallel variant: shards `queries` over `threads` std-scoped
/// workers. `f` must be `Sync` (it only borrows shared read-only state).
pub fn run_workload_parallel<Q: Sync, T: Send>(
    queries: &[Q],
    budget: Duration,
    threads: usize,
    f: impl Fn(&Q) -> Result<T, String> + Sync,
) -> (Vec<RunOutcome<T>>, WorkloadStats) {
    let threads = threads.max(1);
    let start = Instant::now();
    let results: Mutex<Vec<(usize, RunOutcome<T>)>> = Mutex::new(Vec::with_capacity(queries.len()));
    let next: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= queries.len() {
                    break;
                }
                let outcome = if start.elapsed() > budget {
                    RunOutcome::OverBudget
                } else {
                    let t0 = Instant::now();
                    match f(&queries[i]) {
                        Ok(v) => RunOutcome::Done(v, t0.elapsed()),
                        Err(e) => RunOutcome::Failed(e),
                    }
                };
                results.lock().unwrap().push((i, outcome));
            });
        }
    });
    let mut indexed = results.into_inner().unwrap();
    indexed.sort_by_key(|(i, _)| *i);
    let out: Vec<RunOutcome<T>> = indexed.into_iter().map(|(_, o)| o).collect();
    let stats = summarize(&out);
    (out, stats)
}

fn summarize<T>(outcomes: &[RunOutcome<T>]) -> WorkloadStats {
    let mut stats = WorkloadStats::default();
    let mut total = Duration::ZERO;
    for o in outcomes {
        match o {
            RunOutcome::Done(_, d) => {
                stats.completed += 1;
                total += *d;
            }
            RunOutcome::Failed(_) => stats.failed += 1,
            RunOutcome::OverBudget => stats.skipped += 1,
        }
    }
    if stats.completed > 0 {
        stats.mean_seconds = total.as_secs_f64() / stats.completed as f64;
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_runs_everything_in_budget() {
        let qs: Vec<u32> = (0..10).collect();
        let (out, stats) =
            run_workload(&qs, Duration::from_secs(60), |&q| Ok::<u32, String>(q * 2));
        assert_eq!(stats.completed, 10);
        assert_eq!(out[3].value(), Some(&6));
    }

    #[test]
    fn failures_are_recorded_not_fatal() {
        let qs: Vec<u32> = (0..4).collect();
        let (out, stats) = run_workload(&qs, Duration::from_secs(60), |&q| {
            if q % 2 == 0 {
                Ok(q)
            } else {
                Err("odd".into())
            }
        });
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 2);
        assert!(matches!(out[1], RunOutcome::Failed(_)));
    }

    #[test]
    fn zero_budget_skips() {
        let qs: Vec<u32> = (0..5).collect();
        let (_, stats) = run_workload(&qs, Duration::ZERO, |_| {
            std::thread::sleep(Duration::from_millis(2));
            Ok::<(), String>(())
        });
        // First query may run (budget checked before each), rest skipped.
        assert!(stats.skipped >= 4);
    }

    #[test]
    fn parallel_matches_sequential_results() {
        let qs: Vec<u32> = (0..32).collect();
        let (par, pstats) = run_workload_parallel(&qs, Duration::from_secs(60), 4, |&q| {
            Ok::<u32, String>(q + 1)
        });
        assert_eq!(pstats.completed, 32);
        for (i, o) in par.iter().enumerate() {
            assert_eq!(o.value(), Some(&(i as u32 + 1)), "order must be preserved");
        }
    }

    #[test]
    fn mean_seconds_positive_when_work_done() {
        let qs = vec![(); 3];
        let (_, stats) = run_workload(&qs, Duration::from_secs(60), |_| {
            std::thread::sleep(Duration::from_millis(1));
            Ok::<(), String>(())
        });
        assert!(stats.mean_seconds > 0.0);
    }
}
