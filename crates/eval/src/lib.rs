//! # ctc-eval — evaluation harness
//!
//! Metrics (F1 vs ground truth, density, free-rider percentages), a timed
//! workload runner with per-workload budgets (sequential and std-thread
//! parallel), and paper-style table rendering used by every `exp_*` binary.
//!
//! ```
//! use ctc_eval::{f1_score, Table};
//! use ctc_graph::VertexId;
//!
//! let s = f1_score(&[VertexId(0), VertexId(1)], &[VertexId(1)]);
//! let mut t = Table::new(["metric", "value"]);
//! t.row(["precision", &format!("{:.2}", s.precision)]);
//! t.row(["recall", &format!("{:.2}", s.recall)]);
//! assert!(t.render().contains("precision"));
//! ```

#![warn(missing_docs)]

pub mod f1;
pub mod harness;
pub mod plot;
pub mod report;
pub mod tables;

pub use f1::{f1_score, mean_std, F1Score};
pub use harness::{run_workload, run_workload_parallel, RunOutcome, WorkloadStats};
pub use plot::BarChart;
pub use report::{Record, Report};
pub use tables::{fmt_f, fmt_mb, fmt_secs, Table};
