//! Minimal ASCII bar charts for the experiment binaries.
//!
//! The paper presents most results as plots; the experiment binaries print
//! tables plus, where a trend matters, one of these horizontal bar charts —
//! legible in a terminal and in EXPERIMENTS.md code blocks.

/// A labeled horizontal bar chart.
#[derive(Clone, Debug, Default)]
pub struct BarChart {
    title: String,
    rows: Vec<(String, f64)>,
    log_scale: bool,
}

impl BarChart {
    /// Creates an empty chart with a title.
    pub fn new(title: impl Into<String>) -> Self {
        BarChart {
            title: title.into(),
            rows: Vec::new(),
            log_scale: false,
        }
    }

    /// Switches to log10 bar lengths (for timing spreads across orders of
    /// magnitude, like the paper's log-scale time plots).
    pub fn log_scale(mut self) -> Self {
        self.log_scale = true;
        self
    }

    /// Adds one bar.
    pub fn bar(&mut self, label: impl Into<String>, value: f64) -> &mut Self {
        self.rows.push((label.into(), value));
        self
    }

    /// Renders with bars normalized to `width` characters.
    pub fn render(&self, width: usize) -> String {
        let width = width.max(8);
        let transform = |v: f64| -> f64 {
            if self.log_scale {
                // Map value v > 0 to log10, clamped at a -6 floor.
                (v.max(1e-6)).log10() + 6.0
            } else {
                v.max(0.0)
            }
        };
        let max = self
            .rows
            .iter()
            .map(|&(_, v)| transform(v))
            .fold(0.0f64, f64::max)
            .max(1e-12);
        let label_w = self.rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for (label, value) in &self.rows {
            let filled = ((transform(*value) / max) * width as f64).round() as usize;
            out.push_str(&format!(
                "{label:<label_w$}  {}{} {}\n",
                "█".repeat(filled.min(width)),
                "·".repeat(width - filled.min(width)),
                crate::tables::fmt_f(*value),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_proportional_bars() {
        let mut c = BarChart::new("test");
        c.bar("a", 10.0).bar("b", 5.0).bar("c", 0.0);
        let s = c.render(10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        let count = |l: &str| l.matches('█').count();
        assert_eq!(count(lines[1]), 10);
        assert_eq!(count(lines[2]), 5);
        assert_eq!(count(lines[3]), 0);
    }

    #[test]
    fn log_scale_compresses() {
        let mut c = BarChart::new("timings").log_scale();
        c.bar("fast", 0.001).bar("slow", 10.0);
        let s = c.render(20);
        let lines: Vec<&str> = s.lines().collect();
        let fast = lines[1].matches('█').count();
        let slow = lines[2].matches('█').count();
        assert!(slow > fast);
        assert!(fast > 0, "log floor keeps small values visible");
    }

    #[test]
    fn handles_empty_and_degenerate() {
        let c = BarChart::new("empty");
        assert_eq!(c.render(10).lines().count(), 1);
        let mut z = BarChart::new("zeros");
        z.bar("x", 0.0);
        assert!(z.render(10).contains('·'));
    }

    #[test]
    fn labels_are_aligned() {
        let mut c = BarChart::new("t");
        c.bar("short", 1.0).bar("a-very-long-label", 2.0);
        let s = c.render(10);
        let lines: Vec<&str> = s.lines().collect();
        let pos1 = lines[1].find('█').unwrap();
        let pos2 = lines[2].find('█').unwrap();
        assert_eq!(pos1, pos2);
    }
}
