//! Startup recovery for `.ctci` snapshots and their `.ctcd` delta logs:
//! the path a process takes after a crash, distinguishing damage that is
//! *expected* under the persistence protocol from damage that is not.
//!
//! The protocol ([`DeltaLogFile`]) guarantees that a crash at any point
//! leaves the snapshot either whole-old or whole-new, and the log a valid
//! record prefix followed by **at most one torn append** — one record plus
//! one trailer, `RECORD_LEN + TRAILER_LEN` bytes. That bound is the
//! discriminator [`recover`] is built on:
//!
//! * **Torn tail** — header valid, `k` chain-valid records, and at most
//!   one append's worth of undecodable bytes after them: the designed
//!   crash artifact. Recovery truncates to the valid prefix, rewrites the
//!   trailer durably, and keeps the log ([`LogRecovery::TruncatedTail`]).
//! * **Stale log** — the log parses but is bound (by base checksum) to a
//!   different snapshot: the crash fell between compaction's snapshot
//!   rename and its log reset. The renamed snapshot already contains every
//!   logged update, so the stale log is archived as `<log>.stale` and a
//!   fresh empty log is bound to the snapshot
//!   ([`LogRecovery::QuarantinedStale`]).
//! * **Interior corruption** — a bad header, more undecodable bytes than
//!   one torn append can explain, or records the snapshot rejects on
//!   replay: *not* something the protocol can produce, so nothing is
//!   guessed. The file is quarantined as `<log>.corrupt` (preserved for
//!   forensics, never deleted) and serving falls back to the last good
//!   snapshot ([`LogRecovery::QuarantinedCorrupt`]).
//!
//! A snapshot that is itself unreadable or corrupt is **fatal**: it is the
//! ground truth recovery replays onto, so the error propagates instead of
//! being papered over. Likewise a log written by a newer format version is
//! surfaced, not quarantined — an old binary must not archive data it
//! merely cannot read. The full taxonomy is documented in
//! `docs/RELIABILITY.md`.

use crate::dynamic::DynamicIndex;
use crate::snapshot::Snapshot;
use crate::wal::{
    chain_of, DeltaLog, DeltaLogFile, DeltaOp, DeltaRecord, DELTA_MAGIC, DELTA_VERSION, HEADER_LEN,
    RECORD_LEN, TRAILER_LEN,
};
use ctc_graph::error::{GraphError, Result};
use ctc_graph::io::fnv1a64;
use ctc_graph::storage::{real_env, tmp_path, write_durable, StorageEnv};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What recovery found — and did — about the delta log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LogRecovery {
    /// No log path was given; the snapshot alone was loaded.
    NoLog,
    /// The log file did not exist; a fresh empty log was created and
    /// bound to the snapshot.
    Created,
    /// The log parsed and validated end to end.
    Clean {
        /// Number of records the log carries.
        records: usize,
    },
    /// A torn tail (the designed crash artifact of an in-flight append)
    /// was truncated away; the valid prefix was kept and resealed.
    TruncatedTail {
        /// Records surviving in the repaired log.
        kept: usize,
        /// Undecodable bytes discarded past the last valid record.
        dropped_bytes: usize,
    },
    /// The log parsed but was bound to a different snapshot — the crash
    /// fell inside compaction, after the new snapshot's rename and before
    /// the log reset. The snapshot already contains every logged update,
    /// so the stale log was archived and a fresh one created.
    QuarantinedStale {
        /// Base checksum the stale log was bound to.
        log_base: u64,
        /// Checksum of the snapshot actually on disk.
        snapshot_base: u64,
        /// Where the stale file was archived (`<log>.stale`).
        quarantined_to: PathBuf,
    },
    /// Damage the persistence protocol cannot produce (bad header, too
    /// many trailing bytes, replay rejection). The file was quarantined —
    /// renamed aside, never deleted — and serving falls back to the last
    /// good snapshot with a fresh empty log.
    QuarantinedCorrupt {
        /// Why the log was declared corrupt rather than torn.
        reason: String,
        /// Where the corrupt file was moved (`<log>.corrupt`).
        quarantined_to: PathBuf,
    },
}

impl LogRecovery {
    /// `true` when the log needed no repair (including "no log").
    pub fn is_clean(&self) -> bool {
        matches!(
            self,
            LogRecovery::NoLog | LogRecovery::Created | LogRecovery::Clean { .. }
        )
    }

    /// `true` when the log was repaired in place (torn tail truncated).
    pub fn was_repaired(&self) -> bool {
        matches!(self, LogRecovery::TruncatedTail { .. })
    }

    /// `true` when the log was moved aside and replaced.
    pub fn was_quarantined(&self) -> bool {
        matches!(
            self,
            LogRecovery::QuarantinedStale { .. } | LogRecovery::QuarantinedCorrupt { .. }
        )
    }
}

/// What [`recover`] did, for logging and for the CLI's typed exit codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Disposition of the delta log.
    pub log: LogRecovery,
    /// Logged records replayed onto the snapshot after repair.
    pub replayed: usize,
    /// Stray temp files (from interrupted durable writes) swept away.
    pub removed_tmp: Vec<PathBuf>,
}

impl RecoveryReport {
    /// Human-readable one-per-line account of what recovery did.
    pub fn describe(&self) -> Vec<String> {
        let mut out = Vec::new();
        for p in &self.removed_tmp {
            out.push(format!("removed stray temp file {}", p.display()));
        }
        match &self.log {
            LogRecovery::NoLog => out.push("no delta log; snapshot only".into()),
            LogRecovery::Created => out.push("no delta log found; created a fresh one".into()),
            LogRecovery::Clean { records } => {
                out.push(format!("delta log clean ({records} records)"))
            }
            LogRecovery::TruncatedTail {
                kept,
                dropped_bytes,
            } => out.push(format!(
                "torn tail: truncated {dropped_bytes} trailing bytes, kept {kept} records"
            )),
            LogRecovery::QuarantinedStale {
                log_base,
                snapshot_base,
                quarantined_to,
            } => out.push(format!(
                "stale log (bound to {log_base:016x}, snapshot is {snapshot_base:016x}) \
                 from an interrupted compaction: archived to {} and reset",
                quarantined_to.display()
            )),
            LogRecovery::QuarantinedCorrupt {
                reason,
                quarantined_to,
            } => out.push(format!(
                "corrupt log ({reason}): quarantined to {}, serving from last good snapshot",
                quarantined_to.display()
            )),
        }
        if self.replayed > 0 {
            out.push(format!("replayed {} logged updates", self.replayed));
        }
        out
    }
}

/// Result of scanning raw log bytes for the longest chain-valid prefix.
enum TailScan {
    /// The 24-byte header itself is damaged.
    BadHeader(String),
    /// Header fine; `records` chain-validated, then `tail_bytes` of
    /// undecodable bytes follow (a clean log has exactly the trailer
    /// there, which [`DeltaLog::from_bytes`] accepts before we ever scan).
    Scanned {
        base: u64,
        records: Vec<DeltaRecord>,
        tail_bytes: usize,
    },
}

fn scan_log_bytes(data: &[u8]) -> TailScan {
    if data.len() < HEADER_LEN {
        return TailScan::BadHeader("shorter than the header".into());
    }
    if &data[..4] != DELTA_MAGIC {
        return TailScan::BadHeader("bad magic (want \"CTCL\")".into());
    }
    let header_check = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
    if header_check != fnv1a64(&data[..16]) {
        return TailScan::BadHeader("header checksum mismatch".into());
    }
    let version = u32::from_le_bytes(data[4..8].try_into().expect("4 bytes"));
    if version != DELTA_VERSION {
        return TailScan::BadHeader(format!("unsupported version {version}"));
    }
    let base = u64::from_le_bytes(data[8..16].try_into().expect("8 bytes"));
    let mut records = Vec::new();
    let mut chain = base;
    let mut off = HEADER_LEN;
    while off + RECORD_LEN <= data.len() {
        let rec_bytes = &data[off..off + RECORD_LEN];
        let Some(op) = DeltaOp::from_byte(rec_bytes[0]) else {
            break;
        };
        let u = u32::from_le_bytes(rec_bytes[1..5].try_into().expect("4 bytes"));
        let v = u32::from_le_bytes(rec_bytes[5..9].try_into().expect("4 bytes"));
        let stored = u64::from_le_bytes(rec_bytes[9..17].try_into().expect("8 bytes"));
        let rec = DeltaRecord::new(op, u, v);
        if stored != chain_of(chain, rec) {
            break;
        }
        chain = stored;
        records.push(rec);
        off += RECORD_LEN;
    }
    TailScan::Scanned {
        base,
        records,
        tail_bytes: data.len() - off,
    }
}

/// Moves `path` aside as `<path><suffix>` (replacing any previous
/// quarantine of the same name) and syncs the directory.
fn quarantine(env: &dyn StorageEnv, path: &Path, suffix: &str) -> Result<PathBuf> {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(suffix);
    let dest = path.with_file_name(name);
    if env.exists(&dest) {
        env.remove(&dest)?;
    }
    env.rename(path, &dest)?;
    env.sync_parent_dir(path)?;
    Ok(dest)
}

/// Recovers a serving state from `snapshot_path` and (optionally) its
/// delta log, against the real filesystem. See [`recover_in`].
pub fn recover<P: AsRef<Path>>(
    snapshot_path: P,
    log_path: Option<&Path>,
) -> Result<(Snapshot, Option<DeltaLogFile>, RecoveryReport)> {
    recover_in(real_env(), snapshot_path.as_ref(), log_path)
}

/// Recovers a serving state against an explicit storage environment:
/// sweeps stray temp files, loads the snapshot (fatal if unreadable — it
/// is the ground truth), repairs or quarantines the log per the module
/// taxonomy, replays the surviving records, and returns the fully
/// replayed state plus a usable log handle and a [`RecoveryReport`].
///
/// The returned [`Snapshot`] reflects every replayed record; the returned
/// [`DeltaLogFile`] (when a log path was given) is valid for further
/// appends and compaction.
pub fn recover_in(
    env: Arc<dyn StorageEnv>,
    snapshot_path: &Path,
    log_path: Option<&Path>,
) -> Result<(Snapshot, Option<DeltaLogFile>, RecoveryReport)> {
    // 1. Sweep temp files an interrupted durable write may have left.
    let mut removed_tmp = Vec::new();
    let mut strays = vec![tmp_path(snapshot_path)];
    if let Some(lp) = log_path {
        strays.push(tmp_path(lp));
    }
    for s in strays {
        if env.exists(&s) {
            env.remove(&s)?;
            removed_tmp.push(s);
        }
    }
    if !removed_tmp.is_empty() {
        env.sync_parent_dir(snapshot_path)?;
    }

    // 2. The snapshot is authoritative: unreadable or corrupt is fatal.
    let snap_bytes = env.read(snapshot_path)?;
    let mut snapshot = Snapshot::from_bytes(&snap_bytes)?;
    let base = fnv1a64(&snap_bytes);

    let Some(log_path) = log_path else {
        return Ok((
            snapshot,
            None,
            RecoveryReport {
                log: LogRecovery::NoLog,
                replayed: 0,
                removed_tmp,
            },
        ));
    };

    // 3. Classify and repair the log.
    let (mut log_state, mut logfile) = if !env.exists(log_path) {
        (
            LogRecovery::Created,
            DeltaLogFile::create_in(env.clone(), log_path, base)?,
        )
    } else {
        let raw = env.read(log_path)?;
        match DeltaLog::from_bytes(&raw) {
            Ok(log) if log.base_checksum() == base => (
                LogRecovery::Clean { records: log.len() },
                DeltaLogFile::open_in(env.clone(), log_path, base)?,
            ),
            Ok(log) => {
                let to = quarantine(env.as_ref(), log_path, ".stale")?;
                (
                    LogRecovery::QuarantinedStale {
                        log_base: log.base_checksum(),
                        snapshot_base: base,
                        quarantined_to: to,
                    },
                    DeltaLogFile::create_in(env.clone(), log_path, base)?,
                )
            }
            // A newer-format log is *surfaced*, never archived by a
            // binary that cannot read it.
            Err(e @ GraphError::UnsupportedVersion { .. }) => return Err(e),
            Err(_) => match scan_log_bytes(&raw) {
                TailScan::BadHeader(reason) => {
                    let to = quarantine(env.as_ref(), log_path, ".corrupt")?;
                    (
                        LogRecovery::QuarantinedCorrupt {
                            reason,
                            quarantined_to: to,
                        },
                        DeltaLogFile::create_in(env.clone(), log_path, base)?,
                    )
                }
                TailScan::Scanned { base: log_base, .. } if log_base != base => {
                    let to = quarantine(env.as_ref(), log_path, ".stale")?;
                    (
                        LogRecovery::QuarantinedStale {
                            log_base,
                            snapshot_base: base,
                            quarantined_to: to,
                        },
                        DeltaLogFile::create_in(env.clone(), log_path, base)?,
                    )
                }
                TailScan::Scanned {
                    records,
                    tail_bytes,
                    ..
                } if tail_bytes <= RECORD_LEN + TRAILER_LEN => {
                    // The designed crash artifact: at most one in-flight
                    // append past the valid prefix. Reseal durably.
                    let mut fixed = DeltaLog::new(base);
                    for &r in &records {
                        fixed.append(r);
                    }
                    write_durable(env.as_ref(), log_path, &fixed.to_bytes())?;
                    (
                        LogRecovery::TruncatedTail {
                            kept: records.len(),
                            dropped_bytes: tail_bytes,
                        },
                        DeltaLogFile::open_in(env.clone(), log_path, base)?,
                    )
                }
                TailScan::Scanned { tail_bytes, .. } => {
                    let to = quarantine(env.as_ref(), log_path, ".corrupt")?;
                    (
                        LogRecovery::QuarantinedCorrupt {
                            reason: format!(
                                "{tail_bytes} undecodable bytes past the last valid record \
                                 (more than one torn append can explain)"
                            ),
                            quarantined_to: to,
                        },
                        DeltaLogFile::create_in(env.clone(), log_path, base)?,
                    )
                }
            },
        }
    };

    // 4. Replay the surviving records onto the snapshot.
    let mut replayed = 0;
    if !logfile.log().is_empty() {
        let mut dynx = DynamicIndex::new(&snapshot.graph, &snapshot.index);
        match logfile.log().replay(&mut dynx) {
            Ok(()) => {
                replayed = logfile.log().len();
                let (graph, index) = dynx.materialize()?;
                snapshot = Snapshot {
                    graph,
                    index,
                    labels: snapshot.labels,
                };
            }
            Err(e) => {
                // Chain-valid but semantically impossible against this
                // snapshot: interior corruption by the taxonomy.
                let to = quarantine(env.as_ref(), log_path, ".corrupt")?;
                logfile = DeltaLogFile::create_in(env.clone(), log_path, base)?;
                log_state = LogRecovery::QuarantinedCorrupt {
                    reason: format!("replay rejected: {e}"),
                    quarantined_to: to,
                };
            }
        }
    }

    Ok((
        snapshot,
        Some(logfile),
        RecoveryReport {
            log: log_state,
            replayed,
            removed_tmp,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_graph;
    use ctc_graph::storage::FaultEnv;

    /// Snapshot + 3-record log (delete/insert/delete of one edge) in a
    /// fresh in-memory environment. Returns (env, snap_path, log_path,
    /// base checksum).
    fn setup() -> (Arc<dyn StorageEnv>, PathBuf, PathBuf, u64) {
        let env: Arc<dyn StorageEnv> = Arc::new(FaultEnv::new(11));
        let snap_path = PathBuf::from("g.ctci");
        let log_path = PathBuf::from("g.ctcd");
        let snap = Snapshot::build(figure1_graph());
        snap.save_in(env.as_ref(), &snap_path).unwrap();
        let base = fnv1a64(&env.read(&snap_path).unwrap());
        let mut lf = DeltaLogFile::create_in(env.clone(), &log_path, base).unwrap();
        let (u, v) = {
            let (_, u, v) = snap.graph.edges().next().unwrap();
            (u.0, v.0)
        };
        lf.append(DeltaRecord::new(DeltaOp::Delete, u, v)).unwrap();
        lf.append(DeltaRecord::new(DeltaOp::Insert, u, v)).unwrap();
        lf.append(DeltaRecord::new(DeltaOp::Delete, u, v)).unwrap();
        (env, snap_path, log_path, base)
    }

    #[test]
    fn clean_log_replays() {
        let (env, sp, lp, _) = setup();
        let (snap, lf, report) = recover_in(env, &sp, Some(&lp)).unwrap();
        assert_eq!(report.log, LogRecovery::Clean { records: 3 });
        assert_eq!(report.replayed, 3);
        assert_eq!(
            snap.graph.num_edges(),
            figure1_graph().num_edges() - 1,
            "net effect of delete/insert/delete is one fewer edge"
        );
        assert_eq!(lf.unwrap().log().len(), 3);
        assert!(!report.describe().is_empty());
    }

    #[test]
    fn torn_tail_is_truncated_and_resealed() {
        let (env, sp, lp, base) = setup();
        // Chop 10 bytes: the trailer is damaged but all records survive.
        let raw = env.read(&lp).unwrap();
        env.write(&lp, &raw[..raw.len() - 10]).unwrap();
        env.sync_file(&lp).unwrap();
        let (_, lf, report) = recover_in(env.clone(), &sp, Some(&lp)).unwrap();
        assert_eq!(
            report.log,
            LogRecovery::TruncatedTail {
                kept: 3,
                dropped_bytes: 6
            }
        );
        assert_eq!(report.replayed, 3);
        assert_eq!(lf.unwrap().log().len(), 3);
        // The repaired file now validates end to end.
        DeltaLogFile::open_in(env, &lp, base).unwrap();
    }

    #[test]
    fn torn_tail_mid_record_drops_the_partial_record() {
        let (env, sp, lp, base) = setup();
        // Chop into the last record: 16 trailer + 9 record bytes gone.
        let raw = env.read(&lp).unwrap();
        env.write(&lp, &raw[..raw.len() - 25]).unwrap();
        env.sync_file(&lp).unwrap();
        let (_, _, report) = recover_in(env.clone(), &sp, Some(&lp)).unwrap();
        assert_eq!(
            report.log,
            LogRecovery::TruncatedTail {
                kept: 2,
                dropped_bytes: 8
            }
        );
        assert_eq!(report.replayed, 2);
        DeltaLogFile::open_in(env, &lp, base).unwrap();
    }

    #[test]
    fn interior_flip_is_quarantined() {
        let (env, sp, lp, base) = setup();
        let mut raw = env.read(&lp).unwrap();
        // Flip a payload byte of the *first* record: every later chain
        // breaks, leaving far more than one torn append of invalid tail.
        raw[HEADER_LEN + 2] ^= 0xff;
        env.write(&lp, &raw).unwrap();
        env.sync_file(&lp).unwrap();
        let (snap, lf, report) = recover_in(env.clone(), &sp, Some(&lp)).unwrap();
        assert!(matches!(report.log, LogRecovery::QuarantinedCorrupt { .. }));
        assert_eq!(report.replayed, 0, "fell back to the snapshot");
        assert_eq!(snap.graph.num_edges(), figure1_graph().num_edges());
        assert!(env.exists(Path::new("g.ctcd.corrupt")));
        // The replacement log is empty and bound to the snapshot.
        let lf = lf.unwrap();
        assert!(lf.log().is_empty());
        assert_eq!(lf.log().base_checksum(), base);
    }

    #[test]
    fn bad_header_is_quarantined() {
        let (env, sp, lp, _) = setup();
        let mut raw = env.read(&lp).unwrap();
        raw[0] = b'X';
        env.write(&lp, &raw).unwrap();
        env.sync_file(&lp).unwrap();
        let (_, _, report) = recover_in(env.clone(), &sp, Some(&lp)).unwrap();
        assert!(matches!(report.log, LogRecovery::QuarantinedCorrupt { .. }));
        assert!(env.exists(Path::new("g.ctcd.corrupt")));
    }

    #[test]
    fn stale_log_after_interrupted_compaction_is_archived() {
        let (env, sp, lp, _) = setup();
        // Simulate the compaction crash window: the snapshot was replaced
        // (new base) but the log still binds to the old one.
        let snap = Snapshot::build(figure1_graph());
        let snap2 = Snapshot {
            labels: vec![7; snap.graph.num_vertices()],
            ..snap
        };
        snap2.save_in(env.as_ref(), &sp).unwrap();
        let new_base = fnv1a64(&env.read(&sp).unwrap());
        let (_, lf, report) = recover_in(env.clone(), &sp, Some(&lp)).unwrap();
        assert!(matches!(report.log, LogRecovery::QuarantinedStale { .. }));
        assert_eq!(report.replayed, 0);
        assert!(env.exists(Path::new("g.ctcd.stale")));
        assert_eq!(lf.unwrap().log().base_checksum(), new_base);
    }

    #[test]
    fn missing_log_is_created_and_strays_swept() {
        let (env, sp, lp, base) = setup();
        env.remove(&lp).unwrap();
        env.write(&tmp_path(&sp), b"partial").unwrap();
        let (_, lf, report) = recover_in(env.clone(), &sp, Some(&lp)).unwrap();
        assert_eq!(report.log, LogRecovery::Created);
        assert_eq!(report.removed_tmp, vec![tmp_path(&sp)]);
        assert!(!env.exists(&tmp_path(&sp)));
        assert_eq!(lf.unwrap().log().base_checksum(), base);
    }

    #[test]
    fn replay_rejection_is_quarantined() {
        let (env, sp, lp, _) = setup();
        // Append a chain-valid record whose op is impossible: deleting an
        // edge that no longer exists after the prior delete.
        let base = fnv1a64(&env.read(&sp).unwrap());
        let mut lf = DeltaLogFile::open_in(env.clone(), &lp, base).unwrap();
        let (u, v) = {
            let g = figure1_graph();
            let (_, u, v) = g.edges().next().unwrap();
            (u.0, v.0)
        };
        lf.append(DeltaRecord::new(DeltaOp::Delete, u, v)).unwrap();
        lf.append(DeltaRecord::new(DeltaOp::Delete, u, v)).unwrap();
        let (snap, _, report) = recover_in(env.clone(), &sp, Some(&lp)).unwrap();
        assert!(matches!(
            report.log,
            LogRecovery::QuarantinedCorrupt { ref reason, .. } if reason.contains("replay rejected")
        ));
        assert_eq!(snap.graph.num_edges(), figure1_graph().num_edges());
        assert!(env.exists(Path::new("g.ctcd.corrupt")));
    }

    #[test]
    fn out_of_range_endpoint_is_quarantined_not_panic() {
        let (env, sp, lp, _) = setup();
        let base = fnv1a64(&env.read(&sp).unwrap());
        let mut lf = DeltaLogFile::open_in(env.clone(), &lp, base).unwrap();
        lf.append(DeltaRecord::new(DeltaOp::Insert, 10_000, 10_001))
            .unwrap();
        let (_, _, report) = recover_in(env, &sp, Some(&lp)).unwrap();
        assert!(matches!(report.log, LogRecovery::QuarantinedCorrupt { .. }));
    }
}
