//! The paper's "simple truss index" (§4.3).
//!
//! For each vertex the incident arcs are re-sorted by **descending edge
//! trussness**, so "all incident edges with trussness ≥ k" is a row prefix;
//! vertex trussness is the first entry. A hashtable keyed by the canonical
//! vertex pair resolves edge trussness without the CSR lookup, exactly as
//! the paper describes. Construction costs one truss decomposition,
//! `O(ρ·m)` (Remark 1); the index occupies `O(m)` space.

use crate::decompose::{truss_decomposition_with, DecomposeScratch, TrussDecomposition};
use ctc_graph::fx::{fx_map_with_capacity, FxHashMap};
use ctc_graph::{CsrGraph, EdgeId, VertexId};
use std::sync::OnceLock;

/// Truss index over a fixed graph.
#[derive(Clone, Debug)]
pub struct TrussIndex {
    /// Trussness per edge id.
    edge_truss: Vec<u32>,
    /// Trussness per vertex (max incident edge trussness; 0 if isolated).
    vertex_truss: Vec<u32>,
    /// Maximum trussness of any edge — `τ̄(∅)`.
    max_truss: u32,
    /// Row offsets (copied from the CSR so the index is self-contained).
    offsets: Vec<u32>,
    /// Neighbor ids, each row sorted by (desc trussness, asc id).
    sorted_nbr: Vec<u32>,
    /// Edge ids parallel to `sorted_nbr`.
    sorted_edge: Vec<u32>,
    /// Canonical `(u, v) → edge id` hashtable (paper: "we build a hashtable
    /// to keep all the edges and their trussness values"). Built lazily on
    /// first pair lookup — the per-query index builds of the LCTC locate
    /// phase never pay the `m` hash inserts.
    edge_map: OnceLock<FxHashMap<(u32, u32), u32>>,
}

impl TrussIndex {
    /// Builds the index for `g` (runs a truss decomposition).
    ///
    /// ```
    /// use ctc_truss::{fixtures, TrussIndex};
    ///
    /// let g = fixtures::figure1_graph();
    /// let idx = TrussIndex::build(&g);
    /// assert_eq!(idx.max_truss(), 4);
    /// assert_eq!(idx.num_edges(), g.num_edges());
    /// ```
    pub fn build(g: &CsrGraph) -> Self {
        Self::build_with(g, &mut DecomposeScratch::new())
    }

    /// Builds the index for `g` using pooled decomposition `scratch`.
    /// Identical output to [`TrussIndex::build`]; a warmed scratch makes
    /// the decomposition phase allocation-free.
    pub fn build_with(g: &CsrGraph, scratch: &mut DecomposeScratch) -> Self {
        let decomp = truss_decomposition_with(g, scratch);
        Self::from_parts(g, decomp.edge_truss, decomp.max_truss)
    }

    /// Builds the index for `g`, running the truss decomposition across
    /// `par` worker threads. Produces the same index as [`TrussIndex::build`]
    /// for every thread count (only the decomposition is parallel; row
    /// sorting is cheap by comparison and stays serial).
    pub fn build_par(g: &CsrGraph, par: ctc_graph::Parallelism) -> Self {
        let decomp = crate::decompose::truss_decomposition_par(g, par);
        Self::from_parts(g, decomp.edge_truss, decomp.max_truss)
    }

    /// Builds the index from a precomputed decomposition.
    pub fn from_decomposition(g: &CsrGraph, decomp: &TrussDecomposition) -> Self {
        Self::from_parts(g, decomp.edge_truss.clone(), decomp.max_truss)
    }

    pub(crate) fn from_parts(g: &CsrGraph, edge_truss: Vec<u32>, max_truss: u32) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        debug_assert_eq!(edge_truss.len(), m);
        // Rows are (desc trussness, asc neighbor id). A per-row comparison
        // sort costs O(Σ deg log deg) — noticeable on the LCTC locate path,
        // which builds a local index per query. Instead: counting-sort the
        // edge ids by (desc truss, asc id) globally, then scatter each edge
        // into its two endpoint rows in that order. Within one truss level
        // ascending edge id IS ascending neighbor id (edge ids follow the
        // canonical ascending (min,max) pair order: a row's neighbors below
        // v come first, ascending, then those above v, ascending — both
        // monotone in id), so the result is byte-identical in O(m + K).
        let levels = max_truss as usize + 1;
        let mut level_count = vec![0u32; levels];
        for &t in &edge_truss {
            level_count[t as usize] += 1;
        }
        let mut level_start = vec![0u32; levels];
        let mut acc = 0u32;
        for t in (0..levels).rev() {
            level_start[t] = acc;
            acc += level_count[t];
        }
        let mut order = vec![0u32; m];
        for (e, &t) in edge_truss.iter().enumerate() {
            let slot = &mut level_start[t as usize];
            order[*slot as usize] = e as u32;
            *slot += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for v in 0..n {
            let next = offsets[v] + g.degree(VertexId::from(v)) as u32;
            offsets.push(next);
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut sorted_nbr = vec![0u32; 2 * m];
        let mut sorted_edge = vec![0u32; 2 * m];
        for &e in &order {
            let (u, v) = g.edge_endpoints(EdgeId(e));
            for (a, b) in [(u, v), (v, u)] {
                let slot = &mut cursor[a.index()];
                sorted_nbr[*slot as usize] = b.0;
                sorted_edge[*slot as usize] = e;
                *slot += 1;
            }
        }
        let mut vertex_truss = vec![0u32; n];
        for v in 0..n {
            let lo = offsets[v] as usize;
            if lo < offsets[v + 1] as usize {
                vertex_truss[v] = edge_truss[sorted_edge[lo] as usize];
            }
        }
        TrussIndex {
            edge_truss,
            vertex_truss,
            max_truss,
            offsets,
            sorted_nbr,
            sorted_edge,
            edge_map: OnceLock::new(),
        }
    }

    /// The lazily built pair hashtable. Reconstructed from the truss-sorted
    /// rows (each undirected edge appears in both endpoint rows; the `u < nb`
    /// direction yields the canonical key exactly once).
    fn edge_map(&self) -> &FxHashMap<(u32, u32), u32> {
        self.edge_map.get_or_init(|| {
            let m = self.edge_truss.len();
            let mut map = fx_map_with_capacity(m);
            for u in 0..self.num_vertices() {
                let lo = self.offsets[u] as usize;
                let hi = self.offsets[u + 1] as usize;
                for i in lo..hi {
                    let nb = self.sorted_nbr[i];
                    if (u as u32) < nb {
                        map.insert((u as u32, nb), self.sorted_edge[i]);
                    }
                }
            }
            debug_assert_eq!(map.len(), m);
            map
        })
    }

    /// Trussness of edge `e`.
    #[inline(always)]
    pub fn edge_truss(&self, e: EdgeId) -> u32 {
        self.edge_truss[e.index()]
    }

    /// The whole per-edge trussness array.
    #[inline]
    pub fn edge_truss_slice(&self) -> &[u32] {
        &self.edge_truss
    }

    /// Trussness of vertex `v` (Lemma 1 upper bound `k ≤ min_q τ(q)` uses
    /// this).
    #[inline(always)]
    pub fn vertex_truss(&self, v: VertexId) -> u32 {
        self.vertex_truss[v.index()]
    }

    /// `τ̄(∅)`: the maximum trussness of any edge of the indexed graph.
    #[inline(always)]
    pub fn max_truss(&self) -> u32 {
        self.max_truss
    }

    /// Number of vertices covered.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges covered.
    pub fn num_edges(&self) -> usize {
        self.edge_truss.len()
    }

    /// Trussness of the edge `{u, v}` via the hashtable (`None` if absent).
    pub fn truss_of_pair(&self, u: VertexId, v: VertexId) -> Option<u32> {
        let key = if u.0 < v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edge_map()
            .get(&key)
            .map(|&e| self.edge_truss[e as usize])
    }

    /// Edge id of `{u, v}` via the hashtable.
    pub fn edge_of_pair(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        let key = if u.0 < v.0 { (u.0, v.0) } else { (v.0, u.0) };
        self.edge_map().get(&key).map(|&e| EdgeId(e))
    }

    /// The truss-sorted row of `v`: parallel `(neighbors, edge ids)` slices
    /// ordered by descending edge trussness.
    #[inline]
    pub fn sorted_row(&self, v: VertexId) -> (&[u32], &[u32]) {
        let lo = self.offsets[v.index()] as usize;
        let hi = self.offsets[v.index() + 1] as usize;
        (&self.sorted_nbr[lo..hi], &self.sorted_edge[lo..hi])
    }

    /// Iterator over `(neighbor, edge, trussness)` of `v`'s incident edges
    /// with trussness ≥ `k` (a row prefix).
    pub fn incident_at_least(
        &self,
        v: VertexId,
        k: u32,
    ) -> impl Iterator<Item = (VertexId, EdgeId, u32)> + '_ {
        let (nbrs, edges) = self.sorted_row(v);
        nbrs.iter()
            .zip(edges.iter())
            .map(|(&nb, &e)| (VertexId(nb), EdgeId(e), self.edge_truss[e as usize]))
            .take_while(move |&(_, _, t)| t >= k)
    }

    /// Approximate in-memory footprint in bytes (used by Table 3).
    pub fn memory_bytes(&self) -> usize {
        self.edge_truss.len() * 4
            + self.vertex_truss.len() * 4
            + self.offsets.len() * 4
            + self.sorted_nbr.len() * 4
            + self.sorted_edge.len() * 4
            // hashtable entries: key (8) + value (4), plus ~1/0.875 load.
            // The table is lazy; an unbuilt one occupies nothing.
            + self.edge_map.get().map_or(0, |m| (m.len() * 12 * 8) / 7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_graph, Figure1Ids};
    use ctc_graph::graph_from_edges;

    #[test]
    fn rows_sorted_by_descending_truss() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        for v in g.vertices() {
            let (_, edges) = idx.sorted_row(v);
            let ts: Vec<u32> = edges.iter().map(|&e| idx.edge_truss(EdgeId(e))).collect();
            assert!(
                ts.windows(2).all(|w| w[0] >= w[1]),
                "row of {v} not sorted: {ts:?}"
            );
        }
    }

    #[test]
    fn vertex_truss_is_first_row_entry() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        assert_eq!(idx.vertex_truss(f.q2), 4);
        assert_eq!(idx.vertex_truss(f.t), 2);
        for v in g.vertices() {
            let (_, edges) = idx.sorted_row(v);
            let first = edges
                .first()
                .map(|&e| idx.edge_truss(EdgeId(e)))
                .unwrap_or(0);
            assert_eq!(idx.vertex_truss(v), first);
        }
    }

    #[test]
    fn hashtable_agrees_with_csr() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        for (e, u, v) in g.edges() {
            assert_eq!(idx.truss_of_pair(u, v), Some(idx.edge_truss(e)));
            assert_eq!(idx.truss_of_pair(v, u), Some(idx.edge_truss(e)));
            assert_eq!(idx.edge_of_pair(u, v), Some(e));
        }
        let f = Figure1Ids::default();
        assert_eq!(idx.truss_of_pair(f.q2, f.q3), None);
    }

    #[test]
    fn incident_at_least_is_prefix() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        // q1 has 4 trussness-4 edges and the trussness-2 edge to t.
        let at4: Vec<_> = idx.incident_at_least(f.q1, 4).collect();
        assert_eq!(at4.len(), 3);
        let at2: Vec<_> = idx.incident_at_least(f.q1, 2).collect();
        assert_eq!(at2.len(), 4);
        assert!(at2.iter().any(|&(nb, _, t)| nb == f.t && t == 2));
    }

    #[test]
    fn max_truss_matches_decomposition() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        assert_eq!(idx.max_truss(), 4);
        assert_eq!(idx.num_edges(), g.num_edges());
        assert_eq!(idx.num_vertices(), g.num_vertices());
    }

    #[test]
    fn counting_sorted_rows_match_comparison_sort() {
        // The O(m + K) scatter must reproduce exactly what the old per-row
        // comparison sort produced: (desc truss, asc neighbor id).
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        for v in g.vertices() {
            let (nbrs, edges) = idx.sorted_row(v);
            let mut row: Vec<(u32, u32, u32)> = g
                .incident(v)
                .map(|(nb, e)| (idx.edge_truss(e), nb.0, e.0))
                .collect();
            row.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let want_nbrs: Vec<u32> = row.iter().map(|&(_, nb, _)| nb).collect();
            let want_edges: Vec<u32> = row.iter().map(|&(_, _, e)| e).collect();
            assert_eq!(nbrs, &want_nbrs[..], "row of {v} diverged");
            assert_eq!(edges, &want_edges[..], "edge row of {v} diverged");
        }
    }

    #[test]
    fn memory_accounting_nonzero() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
        let idx = TrussIndex::build(&g);
        assert!(idx.memory_bytes() > 0);
    }

    #[test]
    fn isolated_vertex_truss_is_zero() {
        let mut b = ctc_graph::GraphBuilder::new();
        b.add_edge(0, 1);
        b.ensure_vertices(3);
        let g = b.build();
        let idx = TrussIndex::build(&g);
        assert_eq!(idx.vertex_truss(VertexId(2)), 0);
        assert!(idx.sorted_row(VertexId(2)).0.is_empty());
    }
}
