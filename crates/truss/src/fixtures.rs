//! Graphs from the paper's running examples, encoded once and shared by
//! tests across the workspace.
//!
//! The figures only draw the graphs; the edge sets below were reconstructed
//! so that every claim the text makes about them holds, and the unit tests
//! of this crate and `ctc-core` assert those claims.

use ctc_graph::{graph_from_edges, CsrGraph, VertexId};

/// Named vertices of the Figure 1 graph.
///
/// Layout: `q1..q3` are the query nodes, `v1..v5` the "good" community,
/// `p1..p3` the free riders, `t` the degree-2 bridge.
#[derive(Clone, Copy, Debug)]
pub struct Figure1Ids {
    /// Query node q1.
    pub q1: VertexId,
    /// Query node q2.
    pub q2: VertexId,
    /// Query node q3.
    pub q3: VertexId,
    /// Community node v1.
    pub v1: VertexId,
    /// Community node v2.
    pub v2: VertexId,
    /// Community node v3.
    pub v3: VertexId,
    /// Community node v4.
    pub v4: VertexId,
    /// Community node v5.
    pub v5: VertexId,
    /// Free rider p1.
    pub p1: VertexId,
    /// Free rider p2.
    pub p2: VertexId,
    /// Free rider p3.
    pub p3: VertexId,
    /// Bridge node t.
    pub t: VertexId,
}

impl Default for Figure1Ids {
    fn default() -> Self {
        Figure1Ids {
            q1: VertexId(0),
            q2: VertexId(1),
            q3: VertexId(2),
            v1: VertexId(3),
            v2: VertexId(4),
            v3: VertexId(5),
            v4: VertexId(6),
            v5: VertexId(7),
            p1: VertexId(8),
            p2: VertexId(9),
            p3: VertexId(10),
            t: VertexId(11),
        }
    }
}

/// The Figure 1 graph `G` of the paper.
///
/// Properties asserted by tests:
/// * the grey region (everything except `t`) is a 4-truss with diameter 4;
/// * `sup(q2,v2) = 3` but `τ(q2,v2) = 4` (§2 example);
/// * Figure 1(b) = grey minus `{p1,p2,p3}` is a 4-truss with diameter 3 —
///   the CTC for `Q = {q1,q2,q3}`;
/// * the 5-cycle `q1–t–q3–v4–q2–q1` exists (Example 2) and is the
///   min-diameter connected subgraph containing `Q`;
/// * `distG0(p1, Q) = 4` so Basic deletes `p1` first (Example 4).
pub fn figure1_graph() -> CsrGraph {
    let f = Figure1Ids::default();
    let (q1, q2, q3) = (f.q1.0, f.q2.0, f.q3.0);
    let (v1, v2, v3, v4, v5) = (f.v1.0, f.v2.0, f.v3.0, f.v4.0, f.v5.0);
    let (p1, p2, p3) = (f.p1.0, f.p2.0, f.p3.0);
    let t = f.t.0;
    graph_from_edges(&[
        // K4 on {q1, q2, v1, v2}
        (q1, q2),
        (q1, v1),
        (q1, v2),
        (q2, v1),
        (q2, v2),
        (v1, v2),
        // K4 on {q3, v3, v4, v5}
        (q3, v3),
        (q3, v4),
        (q3, v5),
        (v3, v4),
        (v3, v5),
        (v4, v5),
        // K4 on {q3, p1, p2, p3} — the free riders
        (q3, p1),
        (q3, p2),
        (q3, p3),
        (p1, p2),
        (p1, p3),
        (p2, p3),
        // stitching edges keeping the grey region a 4-truss
        (q2, v5),
        (v2, v5),
        (v1, v5),
        (q2, v4),
        (v1, v4),
        // the bridge t: support-0 edges (trussness 2)
        (q1, t),
        (t, q3),
    ])
}

/// Vertices of Figure 1(b) — the closest truss community for
/// `Q = {q1, q2, q3}`.
pub fn figure1b_vertices() -> Vec<VertexId> {
    let f = Figure1Ids::default();
    vec![f.q1, f.q2, f.q3, f.v1, f.v2, f.v3, f.v4, f.v5]
}

/// Vertices of the grey region of Figure 1 (the 4-truss `G0`).
pub fn figure1_grey_vertices() -> Vec<VertexId> {
    let f = Figure1Ids::default();
    vec![
        f.q1, f.q2, f.q3, f.v1, f.v2, f.v3, f.v4, f.v5, f.p1, f.p2, f.p3,
    ]
}

/// Named vertices of the Figure 4 graph.
#[derive(Clone, Copy, Debug)]
pub struct Figure4Ids {
    /// Query node q1 (left K4).
    pub q1: VertexId,
    /// Query node q2 (right K4).
    pub q2: VertexId,
    /// Left community nodes.
    pub v1: VertexId,
    /// Left community nodes.
    pub v2: VertexId,
    /// Right community nodes.
    pub v3: VertexId,
    /// Right community nodes.
    pub v4: VertexId,
    /// Left bridge endpoint.
    pub t1: VertexId,
    /// Right bridge endpoint.
    pub t2: VertexId,
}

impl Default for Figure4Ids {
    fn default() -> Self {
        Figure4Ids {
            q1: VertexId(0),
            q2: VertexId(1),
            v1: VertexId(2),
            v2: VertexId(3),
            v3: VertexId(4),
            v4: VertexId(5),
            t1: VertexId(6),
            t2: VertexId(7),
        }
    }
}

/// The Figure 4 graph: two K4s (`{q1,v1,v2,t1}` and `{q2,v3,v4,t2}`)
/// bridged by the trussness-2 edge `t1–t2`.
///
/// Example 6 runs FindG0 on it with `Q = {q1, q2}`: level 4 leaves `Q`
/// disconnected, level 3 is empty, level 2 adds the bridge and succeeds, so
/// `G0` is the whole graph with `k = 2`.
pub fn figure4_graph() -> CsrGraph {
    let f = Figure4Ids::default();
    graph_from_edges(&[
        (f.q1.0, f.v1.0),
        (f.q1.0, f.v2.0),
        (f.q1.0, f.t1.0),
        (f.v1.0, f.v2.0),
        (f.v1.0, f.t1.0),
        (f.v2.0, f.t1.0),
        (f.q2.0, f.v3.0),
        (f.q2.0, f.v4.0),
        (f.q2.0, f.t2.0),
        (f.v3.0, f.v4.0),
        (f.v3.0, f.t2.0),
        (f.v4.0, f.t2.0),
        (f.t1.0, f.t2.0),
    ])
}

/// A clique `K_n` on vertices `0..n` — trussness `n`.
pub fn clique(n: u32) -> CsrGraph {
    let mut edges = Vec::new();
    for u in 0..n {
        for v in (u + 1)..n {
            edges.push((u, v));
        }
    }
    graph_from_edges(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::{diameter_exact, graph_query_distance, induced_subgraph, BfsScratch};

    #[test]
    fn figure1_shape() {
        let g = figure1_graph();
        assert_eq!(g.num_vertices(), 12);
        assert_eq!(g.num_edges(), 25);
    }

    #[test]
    fn figure1_grey_is_4truss_with_diameter_4() {
        let g = figure1_graph();
        let grey = induced_subgraph(&g, &figure1_grey_vertices());
        assert!(crate::decompose::is_k_truss(&grey.graph, 4));
        assert_eq!(crate::decompose::graph_trussness(&grey.graph), 4);
        assert_eq!(diameter_exact(&grey.graph), 4);
    }

    #[test]
    fn figure1b_is_4truss_with_diameter_3() {
        let g = figure1_graph();
        let b = induced_subgraph(&g, &figure1b_vertices());
        assert!(crate::decompose::is_k_truss(&b.graph, 4));
        assert_eq!(diameter_exact(&b.graph), 3);
    }

    #[test]
    fn figure1_p1_query_distance_is_4() {
        // Example 4: distG0(p1, Q) = 4 for Q = {q1,q2,q3} within the grey
        // region.
        let g = figure1_graph();
        let f = Figure1Ids::default();
        let grey = induced_subgraph(&g, &figure1_grey_vertices());
        let q: Vec<_> = [f.q1, f.q2, f.q3]
            .iter()
            .map(|&v| grey.local(v).unwrap())
            .collect();
        let mut s = BfsScratch::new(grey.num_vertices());
        let d = ctc_graph::query_distances(&grey.graph, &q, &mut s);
        let p1 = grey.local(f.p1).unwrap();
        assert_eq!(d[p1.index()], 4);
        assert_eq!(graph_query_distance(&grey.graph, &q, &mut s), 4);
    }

    #[test]
    fn figure1_five_cycle_exists() {
        let g = figure1_graph();
        let f = Figure1Ids::default();
        for (a, b) in [
            (f.q1, f.t),
            (f.t, f.q3),
            (f.q3, f.v4),
            (f.v4, f.q2),
            (f.q2, f.q1),
        ] {
            assert!(g.has_edge(a, b), "missing cycle edge ({a:?},{b:?})");
        }
        // Example 2 relies on q2–q3 and q1–q3 NOT being edges.
        assert!(!g.has_edge(f.q2, f.q3));
        assert!(!g.has_edge(f.q1, f.q3));
    }

    #[test]
    fn figure4_shape_and_trussness() {
        let g = figure4_graph();
        let f = Figure4Ids::default();
        assert_eq!(g.num_edges(), 13);
        let d = crate::decompose::truss_decomposition(&g);
        let bridge = g.edge_between(f.t1, f.t2).unwrap();
        assert_eq!(d.truss(bridge), 2);
        for (e, _, _) in g.edges() {
            if e != bridge {
                assert_eq!(d.truss(e), 4, "edge {e} should be trussness 4");
            }
        }
    }

    #[test]
    fn clique_trussness_is_n() {
        for n in 3..=6 {
            let g = clique(n);
            assert_eq!(crate::decompose::graph_trussness(&g), n);
        }
    }
}
