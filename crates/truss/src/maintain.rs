//! K-truss maintenance under deletions (Algorithm 3).
//!
//! After the peeling steps of Basic/BulkDelete remove vertices, the working
//! graph may stop being a k-truss: edges can fall below `k − 2` triangles.
//! [`TrussMaintainer`] owns the edge-support array and cascades deletions —
//! every edge that drops below threshold is queued, its triangles unwound,
//! and isolated vertices are swept — restoring the k-truss property exactly
//! as the paper's Algorithm 3 does.

use ctc_graph::{edge_supports_dyn_pooled, BitsetBuffers, DynGraph, EdgeId, VertexId};

/// What a maintenance round removed: the requested vertices, every cascade
/// victim, and all deleted edges. The peeling algorithms use this to stamp
/// per-iteration removal times without rescanning the graph.
#[derive(Clone, Debug, Default)]
pub struct CascadeReport {
    /// All vertices removed this round (requested + cascade + isolated).
    pub vertices: Vec<VertexId>,
    /// All edges removed this round.
    pub edges: Vec<EdgeId>,
}

impl CascadeReport {
    /// Empties both lists, keeping their allocations.
    pub fn clear(&mut self) {
        self.vertices.clear();
        self.edges.clear();
    }
}

/// Incremental k-truss maintenance state over a [`DynGraph`].
///
/// All working memory (support array, deletion queue, triangle scratch) is
/// owned and reusable: a maintainer can be re-armed for a different graph
/// or level with [`reset_for`](Self::reset_for) without reallocating, which
/// is how the pooled peel scratch of `ctc-core` keeps the warm query path
/// allocation-free.
pub struct TrussMaintainer {
    /// Current support of each alive edge (garbage for dead edges).
    support: Vec<u32>,
    /// The enforced trussness level `k`.
    k: u32,
    /// Scratch: edges already queued for deletion this round.
    in_queue: Vec<bool>,
    /// Pooled deletion queue (always drained after a call).
    queue: Vec<EdgeId>,
    /// Pooled per-edge triangle scratch for the cascade.
    touched: Vec<(EdgeId, EdgeId)>,
    /// Pooled isolated-vertex scratch for the sweep.
    orphans: Vec<VertexId>,
    /// Pooled bitset-adjacency slab for the support recomputation.
    bitset: BitsetBuffers,
}

impl TrussMaintainer {
    /// Builds maintenance state for `live`, computing initial supports
    /// (line 15 of Algorithm 2) and enforcing level `k`.
    pub fn new(live: &DynGraph<'_>, k: u32) -> Self {
        let mut m = TrussMaintainer {
            support: Vec::new(),
            k,
            in_queue: Vec::new(),
            queue: Vec::new(),
            touched: Vec::new(),
            orphans: Vec::new(),
            bitset: BitsetBuffers::default(),
        };
        m.reset_for(live, k);
        m
    }

    /// Re-arms the maintainer for `live` at level `k`, recomputing the
    /// supports in place. Equivalent to `TrussMaintainer::new` but reuses
    /// every buffer.
    pub fn reset_for(&mut self, live: &DynGraph<'_>, k: u32) {
        edge_supports_dyn_pooled(live, &mut self.support, &mut self.bitset);
        self.k = k;
        self.in_queue.clear();
        self.in_queue.resize(live.base().num_edges(), false);
        self.queue.clear();
        self.touched.clear();
        self.orphans.clear();
    }

    /// Re-arms the maintainer with precomputed supports for a fully-alive
    /// `live` (must be `edge_supports_dyn(live)`-equal — the caller's
    /// contract when serving them from a cache keyed on the exact
    /// subgraph). Skips the support recomputation entirely.
    pub fn reset_with(&mut self, supports: &[u32], live: &DynGraph<'_>, k: u32) {
        let m = live.base().num_edges();
        assert_eq!(supports.len(), m, "support table does not match graph");
        self.support.clear();
        self.support.extend_from_slice(supports);
        self.k = k;
        self.in_queue.clear();
        self.in_queue.resize(m, false);
        self.queue.clear();
        self.touched.clear();
        self.orphans.clear();
    }

    /// The enforced trussness level.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Current support of edge `e` (meaningful only while `e` is alive).
    pub fn support(&self, e: EdgeId) -> u32 {
        self.support[e.index()]
    }

    /// The whole support table (meaningful entries: alive edges).
    pub fn supports(&self) -> &[u32] {
        &self.support
    }

    /// Deletes the vertices `vd` (with incident edges) from `live` and
    /// restores the k-truss property by cascading (Algorithm 3). Returns
    /// everything that died, cascade victims included.
    pub fn delete_vertices(&mut self, live: &mut DynGraph<'_>, vd: &[VertexId]) -> CascadeReport {
        let mut report = CascadeReport::default();
        self.delete_vertices_into(live, vd, &mut report);
        report
    }

    /// [`delete_vertices`](Self::delete_vertices) writing into a
    /// caller-owned report, so pooled callers pay no per-round allocation.
    pub fn delete_vertices_into(
        &mut self,
        live: &mut DynGraph<'_>,
        vd: &[VertexId],
        report: &mut CascadeReport,
    ) {
        report.clear();
        // Lines 1–3: seed S with all edges incident to Vd.
        debug_assert!(self.queue.is_empty(), "deletion queue must start drained");
        let mut queue = std::mem::take(&mut self.queue);
        for &v in vd {
            if !live.is_vertex_alive(v) {
                continue;
            }
            for (_, e) in live.alive_neighbors(v) {
                if !self.in_queue[e.index()] {
                    self.in_queue[e.index()] = true;
                    queue.push(e);
                }
            }
        }
        self.cascade(live, &mut queue, report);
        queue.clear();
        self.queue = queue;
        // Mark the requested vertices dead even if they had no edges left.
        for &v in vd {
            if live.is_vertex_alive(v) && live.degree(v) == 0 {
                live.mark_vertex_dead(v);
                report.vertices.push(v);
            }
        }
        // Line 10: sweep vertices isolated by the cascade.
        self.sweep_isolated(live, report);
    }

    /// Deletes a set of edges directly and cascades.
    pub fn delete_edges(&mut self, live: &mut DynGraph<'_>, ed: &[EdgeId]) -> CascadeReport {
        let mut queue = std::mem::take(&mut self.queue);
        for &e in ed {
            if live.is_edge_alive(e) && !self.in_queue[e.index()] {
                self.in_queue[e.index()] = true;
                queue.push(e);
            }
        }
        let mut report = CascadeReport::default();
        self.cascade(live, &mut queue, &mut report);
        queue.clear();
        self.queue = queue;
        self.sweep_isolated(live, &mut report);
        report
    }

    /// Lines 4–9: process the deletion queue, unwinding triangles.
    fn cascade(
        &mut self,
        live: &mut DynGraph<'_>,
        queue: &mut Vec<EdgeId>,
        report: &mut CascadeReport,
    ) {
        let mut head = 0usize;
        let mut touched = std::mem::take(&mut self.touched);
        while head < queue.len() {
            let e = queue[head];
            head += 1;
            if !live.is_edge_alive(e) {
                self.in_queue[e.index()] = false;
                continue;
            }
            let (u, v) = live.base().edge_endpoints(e);
            touched.clear();
            // The maintained support of `e` is exactly its alive-triangle
            // count, so the row merge can stop after that many matches —
            // and be skipped outright at support 0, which is the common
            // case deep in a teardown cascade.
            let mut remaining = self.support[e.index()];
            if remaining > 0 {
                live.for_each_common_neighbor_while(u, v, |_, euw, evw| {
                    touched.push((euw, evw));
                    remaining -= 1;
                    remaining > 0
                });
            }
            for &(euw, evw) in &touched {
                for f in [euw, evw] {
                    let s = &mut self.support[f.index()];
                    *s = s.saturating_sub(1);
                    if *s + 2 < self.k && !self.in_queue[f.index()] {
                        self.in_queue[f.index()] = true;
                        queue.push(f);
                    }
                }
            }
            live.remove_edge(e);
            report.edges.push(e);
            self.in_queue[e.index()] = false;
        }
        touched.clear();
        self.touched = touched;
    }

    /// Removes alive vertices of live-degree zero.
    fn sweep_isolated(&mut self, live: &mut DynGraph<'_>, report: &mut CascadeReport) {
        let mut orphans = std::mem::take(&mut self.orphans);
        orphans.clear();
        orphans.extend(
            live.alive_vertex_list()
                .iter()
                .copied()
                .filter(|&v| live.degree(v) == 0),
        );
        // The alive list is swap-removal-ordered; report in ascending id
        // order so the cascade report is independent of deletion history.
        orphans.sort_unstable();
        for &v in &orphans {
            live.mark_vertex_dead(v);
            report.vertices.push(v);
        }
        orphans.clear();
        self.orphans = orphans;
    }

    /// Test/debug invariant: every alive edge meets the support threshold
    /// and the stored supports match a fresh recount.
    pub fn check_invariants(&self, live: &DynGraph<'_>) -> std::result::Result<(), String> {
        let fresh = ctc_graph::edge_supports_dyn(live);
        for (e, u, v) in live.alive_edges() {
            if self.support[e.index()] != fresh[e.index()] {
                return Err(format!(
                    "edge {e} ({u},{v}): stored support {} != recomputed {}",
                    self.support[e.index()],
                    fresh[e.index()]
                ));
            }
            if fresh[e.index()] + 2 < self.k {
                return Err(format!(
                    "edge {e} ({u},{v}): support {} violates k={}",
                    fresh[e.index()],
                    self.k
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_graph, figure1_grey_vertices, Figure1Ids};
    use ctc_graph::{graph_from_edges, induced_subgraph};

    #[test]
    fn deleting_p1_cascades_to_p2_p3() {
        // Example 4: removing p1 from the grey 4-truss forces p2, p3 out.
        let g = figure1_graph();
        let grey = induced_subgraph(&g, &figure1_grey_vertices());
        let f = Figure1Ids::default();
        let mut live = DynGraph::new(&grey.graph);
        let mut m = TrussMaintainer::new(&live, 4);
        let p1 = grey.local(f.p1).unwrap();
        let removed = m.delete_vertices(&mut live, &[p1]).vertices.len();
        assert_eq!(removed, 3, "p1 plus cascade victims p2 and p3");
        assert!(!live.is_vertex_alive(grey.local(f.p2).unwrap()));
        assert!(!live.is_vertex_alive(grey.local(f.p3).unwrap()));
        assert!(live.is_vertex_alive(grey.local(f.q3).unwrap()));
        assert_eq!(live.num_alive_vertices(), 8);
        m.check_invariants(&live).unwrap();
    }

    #[test]
    fn cascade_preserves_rest_of_truss() {
        let g = figure1_graph();
        let grey = induced_subgraph(&g, &figure1_grey_vertices());
        let f = Figure1Ids::default();
        let mut live = DynGraph::new(&grey.graph);
        let mut m = TrussMaintainer::new(&live, 4);
        m.delete_vertices(&mut live, &[grey.local(f.p1).unwrap()]);
        // Remaining graph is Figure 1(b): a 4-truss on 8 vertices, 17 edges.
        assert_eq!(live.num_alive_edges(), 17);
        let sub = ctc_graph::alive_subgraph(&live);
        assert!(crate::decompose::is_k_truss(&sub.graph, 4));
    }

    #[test]
    fn whole_truss_can_collapse() {
        // K4 at k=4: deleting any vertex kills everything.
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut live = DynGraph::new(&g);
        let mut m = TrussMaintainer::new(&live, 4);
        let removed = m.delete_vertices(&mut live, &[VertexId(0)]).vertices.len();
        assert_eq!(removed, 4);
        assert_eq!(live.num_alive_edges(), 0);
        assert_eq!(live.num_alive_vertices(), 0);
    }

    #[test]
    fn k2_never_cascades() {
        // At k=2 the truss condition is vacuous: deleting a vertex removes
        // only that vertex (and newly isolated neighbors).
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3)]);
        let mut live = DynGraph::new(&g);
        let mut m = TrussMaintainer::new(&live, 2);
        let removed = m.delete_vertices(&mut live, &[VertexId(1)]).vertices.len();
        // vertex 1 dies; vertex 0 becomes isolated and is swept.
        assert_eq!(removed, 2);
        assert!(live.is_vertex_alive(VertexId(2)));
        assert!(live.is_vertex_alive(VertexId(3)));
        m.check_invariants(&live).unwrap();
    }

    #[test]
    fn delete_edges_cascades_like_vertices() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut live = DynGraph::new(&g);
        let mut m = TrussMaintainer::new(&live, 4);
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        m.delete_edges(&mut live, &[e]);
        assert_eq!(live.num_alive_edges(), 0, "K4 minus an edge has no 4-truss");
    }

    #[test]
    fn maintenance_agrees_with_fresh_decomposition() {
        // After deleting a vertex, the alive graph must equal the k-truss of
        // the from-scratch graph-minus-vertex.
        let g = figure1_graph();
        let grey = induced_subgraph(&g, &figure1_grey_vertices());
        let f = Figure1Ids::default();
        let p1 = grey.local(f.p1).unwrap();

        let mut live = DynGraph::new(&grey.graph);
        let mut m = TrussMaintainer::new(&live, 4);
        m.delete_vertices(&mut live, &[p1]);
        let incremental = ctc_graph::alive_subgraph(&live);

        // From scratch: remove p1, take the 4-truss.
        let rest: Vec<VertexId> = grey.graph.vertices().filter(|&v| v != p1).collect();
        let minus = induced_subgraph(&grey.graph, &rest);
        let d = crate::decompose::truss_decomposition(&minus.graph);
        let surviving: Vec<EdgeId> = minus
            .graph
            .edges()
            .filter(|&(e, _, _)| d.truss(e) >= 4)
            .map(|(e, _, _)| e)
            .collect();
        assert_eq!(incremental.num_edges(), surviving.len());
    }

    #[test]
    fn double_delete_is_harmless() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)]);
        let mut live = DynGraph::new(&g);
        let mut m = TrussMaintainer::new(&live, 3);
        m.delete_vertices(&mut live, &[VertexId(0)]);
        let before = live.num_alive_vertices();
        m.delete_vertices(&mut live, &[VertexId(0)]);
        assert_eq!(live.num_alive_vertices(), before);
        m.check_invariants(&live).unwrap();
    }
}
