//! Triangle-connected k-truss communities — the model of Huang et al.
//! SIGMOD'14 (the paper's reference \[17\]) that CTC is contrasted against.
//!
//! A k-truss community of a query vertex `q` is a maximal set of k-truss
//! edges reachable from an edge incident to `q` through *triangle
//! adjacency*: two edges are adjacent iff they share a triangle whose three
//! edges all have trussness ≥ k. Triangle connectivity is strictly stronger
//! than connectivity — the paper's introduction exploits exactly this to
//! motivate CTC (`Q = {v4, q3, p1}` in Figure 1 has no TCP community for
//! any k).

use crate::index::TrussIndex;
use ctc_graph::{BitsetAdjacency, CsrGraph, EdgeId, VertexId};

/// One triangle-connected k-truss community.
#[derive(Clone, Debug)]
pub struct TcpCommunity {
    /// The trussness parameter the community was extracted at.
    pub k: u32,
    /// Edges of the community.
    pub edges: Vec<EdgeId>,
}

impl TcpCommunity {
    /// Vertices covered by the community.
    pub fn vertices(&self, g: &CsrGraph) -> Vec<VertexId> {
        crate::ktruss::edge_list_vertices(g, &self.edges)
    }
}

/// All k-truss communities containing the query vertex `q` at level `k`
/// (possibly several — the model finds overlapping communities).
pub fn tcp_communities(g: &CsrGraph, idx: &TrussIndex, q: VertexId, k: u32) -> Vec<TcpCommunity> {
    // The intersection kernel hands back both side-edge ids of every
    // triangle directly — no per-w allocation and no `edge_between` probes.
    let adj = BitsetAdjacency::build(g);
    let mut visited = vec![false; g.num_edges()];
    let mut out = Vec::new();
    for (_, e, t) in idx.incident_at_least(q, k) {
        let _ = t;
        if visited[e.index()] {
            continue;
        }
        let mut comm = Vec::new();
        let mut stack = vec![e];
        visited[e.index()] = true;
        while let Some(cur) = stack.pop() {
            comm.push(cur);
            let (u, v) = g.edge_endpoints(cur);
            // Triangle adjacency: common neighbors w with both side edges
            // in the k-truss.
            adj.for_each_common(g, u, v, 0, |_, euw, evw| {
                if idx.edge_truss(euw) >= k && idx.edge_truss(evw) >= k {
                    for f in [euw, evw] {
                        if !visited[f.index()] {
                            visited[f.index()] = true;
                            stack.push(f);
                        }
                    }
                }
            });
        }
        comm.sort_unstable();
        out.push(TcpCommunity { k, edges: comm });
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.edges.len()));
    out
}

/// `true` if some single triangle-connected k-truss community contains every
/// vertex of `q`, for some `k ≥ 3` — the feasibility question the paper's
/// introduction answers negatively for `Q = {v4, q3, p1}`.
pub fn tcp_feasible(g: &CsrGraph, idx: &TrussIndex, q: &[VertexId]) -> bool {
    let Some(&first) = q.first() else {
        return false;
    };
    let k_hi = q.iter().map(|&v| idx.vertex_truss(v)).min().unwrap_or(0);
    for k in (3..=k_hi).rev() {
        for comm in tcp_communities(g, idx, first, k) {
            let vs = comm.vertices(g);
            if q.iter().all(|v| vs.contains(v)) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_graph, Figure1Ids};
    use crate::index::TrussIndex;

    #[test]
    fn q3_has_two_overlapping_4truss_communities() {
        // §3.2: the K4s {q3,p1,p2,p3} and {q3,v3,v4,v5} are separate
        // triangle-connected communities of q3... they are also joined
        // through the grey 4-truss stitching; verify the count at k=4.
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let comms = tcp_communities(&g, &idx, f.q3, 4);
        assert!(!comms.is_empty());
        // The p-side K4 shares no triangle with the v-side edges, so q3 must
        // belong to at least 2 distinct triangle-connected communities.
        assert!(comms.len() >= 2, "got {} communities", comms.len());
        // Every community is internally a set of trussness-≥4 edges.
        for c in &comms {
            for &e in &c.edges {
                assert!(idx.edge_truss(e) >= 4);
            }
        }
    }

    #[test]
    fn intro_example_infeasible_query() {
        // Q = {v4, q3, p1}: no triangle-connected k-truss community covers
        // all three for any k ≥ 3 (edges (v4,q3) and (q3,p1) are not
        // triangle connected).
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        assert!(!tcp_feasible(&g, &idx, &[f.v4, f.q3, f.p1]));
        // Whereas {q1, q2} clearly is feasible (same K4).
        assert!(tcp_feasible(&g, &idx, &[f.q1, f.q2]));
    }

    #[test]
    fn k3_merges_more_than_k4() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let at4: usize = tcp_communities(&g, &idx, f.q3, 4)
            .iter()
            .map(|c| c.edges.len())
            .sum();
        let at2: usize = tcp_communities(&g, &idx, f.q3, 3)
            .iter()
            .map(|c| c.edges.len())
            .sum();
        assert!(at2 >= at4);
    }

    #[test]
    fn no_community_above_vertex_truss() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        assert!(tcp_communities(&g, &idx, f.t, 3).is_empty());
        assert!(!tcp_communities(&g, &idx, f.t, 2).is_empty());
    }
}
