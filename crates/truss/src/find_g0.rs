//! `FindG0` (Algorithm 2): the maximal connected k-truss containing the
//! query nodes with the largest `k`.
//!
//! Edges stream in by descending trussness level, expanding outward from
//! the query vertices. A per-vertex cursor over the truss-sorted rows of the
//! [`TrussIndex`] makes every edge O(1) to visit (Remark 2: `O(m')` total),
//! and a union-find answers the per-level "is Q connected yet?" check in
//! near-constant amortized time.

use crate::index::TrussIndex;
use ctc_graph::error::{GraphError, Result};
use ctc_graph::{BfsScratch, CsrGraph, EdgeId, EpochMarks, EpochUnionFind, Subgraph, VertexId};

/// Output of [`find_g0`]: the maximal connected k-truss containing `Q` with
/// the largest `k`, as an edge/vertex set of the parent graph.
#[derive(Clone, Debug)]
pub struct G0 {
    /// The trussness `k` of the community (`τ(G0)`).
    pub k: u32,
    /// Edges of `G0` (parent edge ids).
    pub edges: Vec<EdgeId>,
    /// Vertices of `G0` (parent vertex ids), ascending.
    pub vertices: Vec<VertexId>,
}

const NO_LEVEL: u32 = u32::MAX;

/// Pooled working state for [`find_g0_with`] / [`find_ktruss_containing_with`].
///
/// Every per-vertex / per-edge array is epoch-stamped, so arming a query
/// costs O(|touched last time|) amortized rather than O(n + m) — the
/// expansion only ever pays for the vertices and edges it actually visits.
#[derive(Clone, Debug, Default)]
pub struct FindScratch {
    /// Per-vertex cursor into the truss-sorted row; stale stamp reads as 0.
    cursor: Vec<u32>,
    cursor_set: EpochMarks,
    /// Level a vertex was last enqueued at; stale stamp reads as NO_LEVEL.
    pending: Vec<u32>,
    pending_set: EpochMarks,
    in_g0_vertex: EpochMarks,
    in_g0_edge: EpochMarks,
    uf: EpochUnionFind,
    g0_edges: Vec<EdgeId>,
    /// Every vertex first marked `in_g0_vertex`, in discovery order.
    touched: Vec<u32>,
    /// Per-level worklists; inner vecs keep their capacity across queries.
    levels: Vec<Vec<u32>>,
    q_raw: Vec<u32>,
    comp: EpochMarks,
    bfs: BfsScratch,
}

impl FindScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn cursor_of(&self, v: usize) -> u32 {
        if self.cursor_set.contains(v) {
            self.cursor[v]
        } else {
            0
        }
    }

    #[inline]
    fn pending_of(&self, v: usize) -> u32 {
        if self.pending_set.contains(v) {
            self.pending[v]
        } else {
            NO_LEVEL
        }
    }
}

/// Runs Algorithm 2 on `g` with query set `q`.
///
/// Errors with [`GraphError::EmptyQuery`] for an empty query,
/// [`GraphError::VertexOutOfRange`] for bad ids, and
/// [`GraphError::Disconnected`] when the query vertices do not share a
/// connected component (they can never be covered by one connected k-truss).
pub fn find_g0(g: &CsrGraph, idx: &TrussIndex, q: &[VertexId]) -> Result<G0> {
    find_g0_with(g, idx, q, &mut FindScratch::new())
}

/// [`find_g0`] with pooled `scratch` buffers: identical output, but the
/// warm path performs no allocation and touches no O(n)/O(m) state.
pub fn find_g0_with(
    g: &CsrGraph,
    idx: &TrussIndex,
    q: &[VertexId],
    scratch: &mut FindScratch,
) -> Result<G0> {
    if q.is_empty() {
        return Err(GraphError::EmptyQuery);
    }
    let n = g.num_vertices();
    for &v in q {
        if v.index() >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v.0, n });
        }
        if g.degree(v) == 0 {
            // An isolated query vertex cannot sit in any k-truss.
            return Err(GraphError::Disconnected);
        }
    }
    // Lemma 1: k ≤ min_q τ(q).
    let k_start = q
        .iter()
        .map(|&v| idx.vertex_truss(v))
        .min()
        .expect("q nonempty");
    debug_assert!(k_start >= 2);

    scratch.cursor.resize(n.max(scratch.cursor.len()), 0);
    scratch.cursor_set.ensure(n);
    scratch.cursor_set.clear();
    scratch.pending.resize(n.max(scratch.pending.len()), 0);
    scratch.pending_set.ensure(n);
    scratch.pending_set.clear();
    scratch.in_g0_vertex.ensure(n);
    scratch.in_g0_vertex.clear();
    scratch.in_g0_edge.ensure(g.num_edges());
    scratch.in_g0_edge.clear();
    scratch.uf.reset(n);
    scratch.g0_edges.clear();
    scratch.touched.clear();
    // Worklists per level, indexed by k (0..=k_start). `pending[v]` is the
    // level the vertex was last enqueued at (loose dedup; reprocessing is
    // idempotent thanks to the cursors).
    while scratch.levels.len() <= k_start as usize {
        scratch.levels.push(Vec::new());
    }
    for lvl in scratch.levels.iter_mut() {
        lvl.clear();
    }
    for &qv in q {
        if scratch.pending_of(qv.index()) != k_start {
            scratch.pending_set.insert(qv.index());
            scratch.pending[qv.index()] = k_start;
            scratch.levels[k_start as usize].push(qv.0);
        }
    }
    scratch.q_raw.clear();
    scratch.q_raw.extend(q.iter().map(|v| v.0));

    let mut k = k_start;
    loop {
        // Drain the worklist of level k; it may grow while we iterate.
        let mut worklist = std::mem::take(&mut scratch.levels[k as usize]);
        let mut head = 0usize;
        while head < worklist.len() {
            let v = VertexId(worklist[head]);
            head += 1;
            let (nbrs, edges) = idx.sorted_row(v);
            let mut c = scratch.cursor_of(v.index()) as usize;
            while c < edges.len() {
                let e = EdgeId(edges[c]);
                if idx.edge_truss(e) < k {
                    break;
                }
                let u = VertexId(nbrs[c]);
                c += 1;
                if scratch.in_g0_edge.insert(e.index()) {
                    scratch.g0_edges.push(e);
                    if scratch.in_g0_vertex.insert(v.index()) {
                        scratch.touched.push(v.0);
                    }
                    if scratch.in_g0_vertex.insert(u.index()) {
                        scratch.touched.push(u.0);
                    }
                    scratch.uf.union(v.0, u.0);
                }
                if scratch.pending_of(u.index()) != k {
                    scratch.pending_set.insert(u.index());
                    scratch.pending[u.index()] = k;
                    worklist.push(u.0);
                }
            }
            scratch.cursor_set.insert(v.index());
            scratch.cursor[v.index()] = c as u32;
            // Line 12–13: requeue v at the level of its next untaken edge.
            if c < edges.len() {
                let l = idx.edge_truss(EdgeId(edges[c]));
                debug_assert!(l < k);
                if scratch.pending_of(v.index()) != l {
                    scratch.pending_set.insert(v.index());
                    scratch.pending[v.index()] = l;
                    scratch.levels[l as usize].push(v.0);
                }
            }
        }
        // Hand the (possibly grown) worklist's capacity back to the pool.
        worklist.clear();
        scratch.levels[k as usize] = worklist;
        // Level complete: is Q connected inside G0?
        let FindScratch { uf, q_raw, .. } = scratch;
        if uf.all_connected(q_raw) && q.iter().all(|&v| scratch.in_g0_vertex.contains(v.index())) {
            return Ok(extract_component(g, scratch, q[0], k));
        }
        if k == 2 {
            return Err(GraphError::Disconnected);
        }
        k -= 1;
    }
}

/// Keeps only the connected component of the accumulated edge set that
/// contains `root`, producing the final `G0`.
///
/// The edge ids of a CSR built from sorted, deduplicated pairs ascend in
/// lexicographic `(min, max)` endpoint order, so walking the component's
/// vertices in ascending id order and each CSR row's upper neighbors
/// (`nb > v`) in place emits the canonical ascending edge list directly —
/// no O(|E0| log |E0|) sort and no O(n) vertex-set scan. Canonical order
/// matters: every query inside one community produces a byte-identical
/// edge list — and therefore a byte-identical peel subgraph, which is what
/// lets the pooled peel scratch reuse its initial-supports table across
/// queries.
fn extract_component(g: &CsrGraph, scratch: &mut FindScratch, root: VertexId, k: u32) -> G0 {
    let rep = scratch.uf.find(root.0);
    scratch.comp.ensure(g.num_vertices());
    scratch.comp.clear();
    let mut vertices: Vec<VertexId> = Vec::new();
    for i in 0..scratch.touched.len() {
        let v = scratch.touched[i];
        if scratch.uf.find(v) == rep {
            scratch.comp.insert(v as usize);
            vertices.push(VertexId(v));
        }
    }
    vertices.sort_unstable();
    let mut edges = Vec::with_capacity(scratch.g0_edges.len());
    for &v in &vertices {
        for (nb, e) in g.incident(v) {
            if nb > v && scratch.in_g0_edge.contains(e.index()) && scratch.comp.contains(nb.index())
            {
                edges.push(e);
            }
        }
    }
    debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "canonical order");
    G0 { k, edges, vertices }
}

/// Materializes a [`G0`] as a standalone [`Subgraph`] of `g`.
pub fn g0_subgraph(g: &CsrGraph, g0: &G0) -> Subgraph {
    ctc_graph::edge_subgraph(g, &g0.edges)
}

/// Fixed-k variant (§7.1 "trading trussness for diameter"): the maximal
/// connected k-truss containing `q` for a *given* `k`, or `None` if the
/// query is not covered / not connected at that level.
pub fn find_ktruss_containing(
    g: &CsrGraph,
    idx: &TrussIndex,
    q: &[VertexId],
    k: u32,
) -> Option<G0> {
    find_ktruss_containing_with(g, idx, q, k, &mut FindScratch::new())
}

/// [`find_ktruss_containing`] with pooled `scratch` buffers (the BFS
/// frontier state is the only per-query memory). Identical output.
pub fn find_ktruss_containing_with(
    g: &CsrGraph,
    idx: &TrussIndex,
    q: &[VertexId],
    k: u32,
    scratch: &mut FindScratch,
) -> Option<G0> {
    if q.is_empty() || q.iter().any(|&v| idx.vertex_truss(v) < k) {
        return None;
    }
    // BFS from q[0] over edges with trussness ≥ k.
    let view = ctc_graph::FilteredGraph::new(g, |e| idx.edge_truss(e) >= k);
    let bfs = &mut scratch.bfs;
    bfs.ensure(g.num_vertices());
    bfs.run(&view, q[0]);
    if q.iter().any(|&v| bfs.dist(v) == ctc_graph::INF) {
        return None;
    }
    let mut vertices: Vec<VertexId> = bfs.reached().collect();
    vertices.sort_unstable();
    let mut edges = Vec::new();
    for &v in &vertices {
        for (nb, e) in g.incident(v) {
            if v < nb && idx.edge_truss(e) >= k && bfs.dist(nb) != ctc_graph::INF {
                edges.push(e);
            }
        }
    }
    // Ascending-vertex, ascending-row iteration emits the same canonical
    // edge order as `find_g0` (see `extract_component`) with no sort.
    debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "canonical order");
    // Drop vertices that have no qualifying incident edge (can only be the
    // root itself in degenerate cases).
    vertices.retain(|&v| {
        g.incident(v)
            .any(|(nb, e)| idx.edge_truss(e) >= k && bfs.dist(nb) != ctc_graph::INF)
    });
    Some(G0 { k, edges, vertices })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_graph, figure4_graph, Figure1Ids, Figure4Ids};
    use ctc_graph::graph_from_edges;

    #[test]
    fn figure1_query_q123_returns_grey_4truss() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q1, f.q2, f.q3]).unwrap();
        assert_eq!(g0.k, 4);
        // grey region: 11 vertices, 23 edges (everything but t and its 2 edges)
        assert_eq!(g0.vertices.len(), 11);
        assert_eq!(g0.edges.len(), 23);
        assert!(!g0.vertices.contains(&f.t));
    }

    #[test]
    fn figure4_example6_descends_to_level_2() {
        let g = figure4_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure4Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q1, f.q2]).unwrap();
        assert_eq!(g0.k, 2, "Example 6: bridge forces k down to 2");
        assert_eq!(g0.vertices.len(), 8);
        assert_eq!(g0.edges.len(), 13, "G0 coincides with the whole graph");
    }

    #[test]
    fn single_query_vertex_gets_its_best_truss() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q3]).unwrap();
        assert_eq!(g0.k, 4);
        // q3's 4-truss component: the whole grey region (connected via q3).
        assert!(g0.vertices.contains(&f.p1));
        assert!(g0.vertices.contains(&f.v3));
        assert!(!g0.vertices.contains(&f.t));
    }

    #[test]
    fn component_trimming_drops_unreached_side() {
        // Two disjoint K4s; query inside one of them.
        let g = graph_from_edges(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
        ]);
        let idx = TrussIndex::build(&g);
        let g0 = find_g0(&g, &idx, &[VertexId(0)]).unwrap();
        assert_eq!(g0.k, 4);
        assert_eq!(g0.vertices.len(), 4);
        assert!(g0.vertices.iter().all(|v| v.0 <= 3));
    }

    #[test]
    fn disconnected_query_errors() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let idx = TrussIndex::build(&g);
        let err = find_g0(&g, &idx, &[VertexId(0), VertexId(3)]).unwrap_err();
        assert_eq!(err, GraphError::Disconnected);
    }

    #[test]
    fn empty_and_bad_queries_error() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
        let idx = TrussIndex::build(&g);
        assert_eq!(find_g0(&g, &idx, &[]).unwrap_err(), GraphError::EmptyQuery);
        assert!(matches!(
            find_g0(&g, &idx, &[VertexId(99)]).unwrap_err(),
            GraphError::VertexOutOfRange { .. }
        ));
    }

    #[test]
    fn isolated_query_vertex_errors() {
        let mut b = ctc_graph::GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.ensure_vertices(4);
        let g = b.build();
        let idx = TrussIndex::build(&g);
        assert_eq!(
            find_g0(&g, &idx, &[VertexId(3)]).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn g0_is_a_genuine_k_truss() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q1, f.q2, f.q3]).unwrap();
        let sub = g0_subgraph(&g, &g0);
        assert!(crate::decompose::is_k_truss(&sub.graph, g0.k));
        assert!(ctc_graph::is_connected(&sub.graph));
    }

    #[test]
    fn fixed_k_variant_matches_levels() {
        let g = figure4_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure4Ids::default();
        // k=4: q1's own K4 only.
        let a = find_ktruss_containing(&g, &idx, &[f.q1], 4).unwrap();
        assert_eq!(a.vertices.len(), 4);
        // k=4 with both queries: impossible (bridge is trussness 2).
        assert!(find_ktruss_containing(&g, &idx, &[f.q1, f.q2], 4).is_none());
        // k=2: whole graph.
        let b = find_ktruss_containing(&g, &idx, &[f.q1, f.q2], 2).unwrap();
        assert_eq!(b.vertices.len(), 8);
        assert_eq!(b.edges.len(), 13);
    }

    /// One pooled scratch serving many queries (including error paths in
    /// between) must answer each exactly like a fresh scratch would.
    #[test]
    fn pooled_scratch_reuse_matches_fresh() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let queries: Vec<Vec<VertexId>> = vec![
            vec![f.q1, f.q2, f.q3],
            vec![f.q3],
            vec![f.t],
            vec![f.q1, f.t],
            vec![f.q2],
            vec![f.q1, f.q2, f.q3],
        ];
        let mut scratch = FindScratch::new();
        for q in &queries {
            let pooled = find_g0_with(&g, &idx, q, &mut scratch);
            let fresh = find_g0(&g, &idx, q);
            match (pooled, fresh) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a.k, b.k, "query {q:?}");
                    assert_eq!(a.edges, b.edges, "query {q:?}");
                    assert_eq!(a.vertices, b.vertices, "query {q:?}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "query {q:?}"),
                (a, b) => panic!("divergence on {q:?}: {a:?} vs {b:?}"),
            }
            // Interleave the fixed-k variant on the same scratch.
            let with = find_ktruss_containing_with(&g, &idx, q, 4, &mut scratch);
            let plain = find_ktruss_containing(&g, &idx, q, 4);
            match (with, plain) {
                (Some(a), Some(b)) => {
                    assert_eq!(a.edges, b.edges);
                    assert_eq!(a.vertices, b.vertices);
                }
                (None, None) => {}
                (a, b) => panic!("fixed-k divergence on {q:?}: {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn find_g0_matches_fixed_k_at_its_level() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let q = [f.q1, f.q3];
        let g0 = find_g0(&g, &idx, &q).unwrap();
        let fixed = find_ktruss_containing(&g, &idx, &q, g0.k).unwrap();
        let mut a = g0.edges.clone();
        let mut b = fixed.edges.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "streaming and filtered construction must agree");
    }
}
