//! `FindG0` (Algorithm 2): the maximal connected k-truss containing the
//! query nodes with the largest `k`.
//!
//! Edges stream in by descending trussness level, expanding outward from
//! the query vertices. A per-vertex cursor over the truss-sorted rows of the
//! [`TrussIndex`] makes every edge O(1) to visit (Remark 2: `O(m')` total),
//! and a union-find answers the per-level "is Q connected yet?" check in
//! near-constant amortized time.

use crate::index::TrussIndex;
use ctc_graph::error::{GraphError, Result};
use ctc_graph::union_find::UnionFind;
use ctc_graph::{CsrGraph, EdgeId, Subgraph, VertexId};

/// Output of [`find_g0`]: the maximal connected k-truss containing `Q` with
/// the largest `k`, as an edge/vertex set of the parent graph.
#[derive(Clone, Debug)]
pub struct G0 {
    /// The trussness `k` of the community (`τ(G0)`).
    pub k: u32,
    /// Edges of `G0` (parent edge ids).
    pub edges: Vec<EdgeId>,
    /// Vertices of `G0` (parent vertex ids), ascending.
    pub vertices: Vec<VertexId>,
}

const NO_LEVEL: u32 = u32::MAX;

/// Runs Algorithm 2 on `g` with query set `q`.
///
/// Errors with [`GraphError::EmptyQuery`] for an empty query,
/// [`GraphError::VertexOutOfRange`] for bad ids, and
/// [`GraphError::Disconnected`] when the query vertices do not share a
/// connected component (they can never be covered by one connected k-truss).
pub fn find_g0(g: &CsrGraph, idx: &TrussIndex, q: &[VertexId]) -> Result<G0> {
    if q.is_empty() {
        return Err(GraphError::EmptyQuery);
    }
    let n = g.num_vertices();
    for &v in q {
        if v.index() >= n {
            return Err(GraphError::VertexOutOfRange { vertex: v.0, n });
        }
        if g.degree(v) == 0 {
            // An isolated query vertex cannot sit in any k-truss.
            return Err(GraphError::Disconnected);
        }
    }
    // Lemma 1: k ≤ min_q τ(q).
    let k_start = q
        .iter()
        .map(|&v| idx.vertex_truss(v))
        .min()
        .expect("q nonempty");
    debug_assert!(k_start >= 2);

    let mut cursor = vec![0u32; n];
    let mut in_g0_vertex = vec![false; n];
    let mut in_g0_edge = vec![false; g.num_edges()];
    let mut g0_edges: Vec<EdgeId> = Vec::new();
    let mut uf = UnionFind::new(n);
    // Worklists per level, indexed by k (0..=k_start). `pending[v]` is the
    // level the vertex was last enqueued at (loose dedup; reprocessing is
    // idempotent thanks to the cursors).
    let mut levels: Vec<Vec<u32>> = vec![Vec::new(); k_start as usize + 1];
    let mut pending = vec![NO_LEVEL; n];
    for &qv in q {
        if pending[qv.index()] != k_start {
            pending[qv.index()] = k_start;
            levels[k_start as usize].push(qv.0);
        }
    }
    let q_raw: Vec<u32> = q.iter().map(|v| v.0).collect();

    let mut k = k_start;
    loop {
        // Drain the worklist of level k; it may grow while we iterate.
        let mut worklist = std::mem::take(&mut levels[k as usize]);
        let mut head = 0usize;
        while head < worklist.len() {
            let v = VertexId(worklist[head]);
            head += 1;
            let (nbrs, edges) = idx.sorted_row(v);
            let mut c = cursor[v.index()] as usize;
            while c < edges.len() {
                let e = EdgeId(edges[c]);
                if idx.edge_truss(e) < k {
                    break;
                }
                let u = VertexId(nbrs[c]);
                c += 1;
                if !in_g0_edge[e.index()] {
                    in_g0_edge[e.index()] = true;
                    g0_edges.push(e);
                    in_g0_vertex[v.index()] = true;
                    in_g0_vertex[u.index()] = true;
                    uf.union(v.0, u.0);
                }
                if pending[u.index()] != k {
                    pending[u.index()] = k;
                    worklist.push(u.0);
                }
            }
            cursor[v.index()] = c as u32;
            // Line 12–13: requeue v at the level of its next untaken edge.
            if c < edges.len() {
                let l = idx.edge_truss(EdgeId(edges[c]));
                debug_assert!(l < k);
                if pending[v.index()] != l {
                    pending[v.index()] = l;
                    levels[l as usize].push(v.0);
                }
            }
        }
        // Level complete: is Q connected inside G0?
        if uf.all_connected(&q_raw) && q.iter().all(|&v| in_g0_vertex[v.index()]) {
            return Ok(extract_component(g, idx, &mut uf, &g0_edges, q[0], k));
        }
        if k == 2 {
            return Err(GraphError::Disconnected);
        }
        k -= 1;
    }
}

/// Keeps only the connected component of the accumulated edge set that
/// contains `root`, producing the final `G0`.
fn extract_component(
    g: &CsrGraph,
    _idx: &TrussIndex,
    uf: &mut UnionFind,
    g0_edges: &[EdgeId],
    root: VertexId,
    k: u32,
) -> G0 {
    let rep = uf.find(root.0);
    let mut edges = Vec::with_capacity(g0_edges.len());
    let mut vertex_set: Vec<bool> = vec![false; g.num_vertices()];
    for &e in g0_edges {
        let (u, v) = g.edge_endpoints(e);
        if uf.find(u.0) == rep {
            edges.push(e);
            vertex_set[u.index()] = true;
            vertex_set[v.index()] = true;
        }
    }
    let vertices = vertex_set
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| VertexId::from(i))
        .collect();
    // Canonical order: the accumulation above follows the (query-dependent)
    // expansion order, but G0 itself is a property of the community alone.
    // Sorting makes every query inside one community produce a
    // byte-identical edge list — and therefore a byte-identical peel
    // subgraph, which is what lets the pooled peel scratch reuse its
    // initial-supports table across queries.
    edges.sort_unstable();
    G0 { k, edges, vertices }
}

/// Materializes a [`G0`] as a standalone [`Subgraph`] of `g`.
pub fn g0_subgraph(g: &CsrGraph, g0: &G0) -> Subgraph {
    ctc_graph::edge_subgraph(g, &g0.edges)
}

/// Fixed-k variant (§7.1 "trading trussness for diameter"): the maximal
/// connected k-truss containing `q` for a *given* `k`, or `None` if the
/// query is not covered / not connected at that level.
pub fn find_ktruss_containing(
    g: &CsrGraph,
    idx: &TrussIndex,
    q: &[VertexId],
    k: u32,
) -> Option<G0> {
    if q.is_empty() || q.iter().any(|&v| idx.vertex_truss(v) < k) {
        return None;
    }
    // BFS from q[0] over edges with trussness ≥ k.
    let view = ctc_graph::FilteredGraph::new(g, |e| idx.edge_truss(e) >= k);
    let mut scratch = ctc_graph::BfsScratch::new(g.num_vertices());
    scratch.run(&view, q[0]);
    if q.iter().any(|&v| scratch.dist(v) == ctc_graph::INF) {
        return None;
    }
    let mut vertices: Vec<VertexId> = scratch.reached().collect();
    vertices.sort_unstable();
    let mut edges = Vec::new();
    for &v in &vertices {
        for (nb, e) in g.incident(v) {
            if v < nb && idx.edge_truss(e) >= k && scratch.dist(nb) != ctc_graph::INF {
                edges.push(e);
            }
        }
    }
    // Drop vertices that have no qualifying incident edge (can only be the
    // root itself in degenerate cases).
    vertices.retain(|&v| {
        g.incident(v)
            .any(|(nb, e)| idx.edge_truss(e) >= k && scratch.dist(nb) != ctc_graph::INF)
    });
    // Same canonical edge order as `find_g0` (see `extract_component`).
    edges.sort_unstable();
    Some(G0 { k, edges, vertices })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_graph, figure4_graph, Figure1Ids, Figure4Ids};
    use ctc_graph::graph_from_edges;

    #[test]
    fn figure1_query_q123_returns_grey_4truss() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q1, f.q2, f.q3]).unwrap();
        assert_eq!(g0.k, 4);
        // grey region: 11 vertices, 23 edges (everything but t and its 2 edges)
        assert_eq!(g0.vertices.len(), 11);
        assert_eq!(g0.edges.len(), 23);
        assert!(!g0.vertices.contains(&f.t));
    }

    #[test]
    fn figure4_example6_descends_to_level_2() {
        let g = figure4_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure4Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q1, f.q2]).unwrap();
        assert_eq!(g0.k, 2, "Example 6: bridge forces k down to 2");
        assert_eq!(g0.vertices.len(), 8);
        assert_eq!(g0.edges.len(), 13, "G0 coincides with the whole graph");
    }

    #[test]
    fn single_query_vertex_gets_its_best_truss() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q3]).unwrap();
        assert_eq!(g0.k, 4);
        // q3's 4-truss component: the whole grey region (connected via q3).
        assert!(g0.vertices.contains(&f.p1));
        assert!(g0.vertices.contains(&f.v3));
        assert!(!g0.vertices.contains(&f.t));
    }

    #[test]
    fn component_trimming_drops_unreached_side() {
        // Two disjoint K4s; query inside one of them.
        let g = graph_from_edges(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (4, 5),
            (4, 6),
            (4, 7),
            (5, 6),
            (5, 7),
            (6, 7),
        ]);
        let idx = TrussIndex::build(&g);
        let g0 = find_g0(&g, &idx, &[VertexId(0)]).unwrap();
        assert_eq!(g0.k, 4);
        assert_eq!(g0.vertices.len(), 4);
        assert!(g0.vertices.iter().all(|v| v.0 <= 3));
    }

    #[test]
    fn disconnected_query_errors() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        let idx = TrussIndex::build(&g);
        let err = find_g0(&g, &idx, &[VertexId(0), VertexId(3)]).unwrap_err();
        assert_eq!(err, GraphError::Disconnected);
    }

    #[test]
    fn empty_and_bad_queries_error() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2)]);
        let idx = TrussIndex::build(&g);
        assert_eq!(find_g0(&g, &idx, &[]).unwrap_err(), GraphError::EmptyQuery);
        assert!(matches!(
            find_g0(&g, &idx, &[VertexId(99)]).unwrap_err(),
            GraphError::VertexOutOfRange { .. }
        ));
    }

    #[test]
    fn isolated_query_vertex_errors() {
        let mut b = ctc_graph::GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.ensure_vertices(4);
        let g = b.build();
        let idx = TrussIndex::build(&g);
        assert_eq!(
            find_g0(&g, &idx, &[VertexId(3)]).unwrap_err(),
            GraphError::Disconnected
        );
    }

    #[test]
    fn g0_is_a_genuine_k_truss() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let g0 = find_g0(&g, &idx, &[f.q1, f.q2, f.q3]).unwrap();
        let sub = g0_subgraph(&g, &g0);
        assert!(crate::decompose::is_k_truss(&sub.graph, g0.k));
        assert!(ctc_graph::is_connected(&sub.graph));
    }

    #[test]
    fn fixed_k_variant_matches_levels() {
        let g = figure4_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure4Ids::default();
        // k=4: q1's own K4 only.
        let a = find_ktruss_containing(&g, &idx, &[f.q1], 4).unwrap();
        assert_eq!(a.vertices.len(), 4);
        // k=4 with both queries: impossible (bridge is trussness 2).
        assert!(find_ktruss_containing(&g, &idx, &[f.q1, f.q2], 4).is_none());
        // k=2: whole graph.
        let b = find_ktruss_containing(&g, &idx, &[f.q1, f.q2], 2).unwrap();
        assert_eq!(b.vertices.len(), 8);
        assert_eq!(b.edges.len(), 13);
    }

    #[test]
    fn find_g0_matches_fixed_k_at_its_level() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let f = Figure1Ids::default();
        let q = [f.q1, f.q3];
        let g0 = find_g0(&g, &idx, &q).unwrap();
        let fixed = find_ktruss_containing(&g, &idx, &q, g0.k).unwrap();
        let mut a = g0.edges.clone();
        let mut b = fixed.edges.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "streaming and filtered construction must agree");
    }
}
