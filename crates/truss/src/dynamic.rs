//! Online truss-index maintenance: [`DynamicIndex`].
//!
//! The paper's incremental theme (Algorithm 3 repairs a k-truss under
//! deletion instead of recomputing) lifted from the fixed-`k` peel case to
//! the *full trussness array*: a [`DynamicIndex`] holds a mutable edge set
//! plus per-edge trussness and repairs trussness **locally** after each
//! edge insertion or deletion — a bounded cascade over affected triangles —
//! instead of re-running the `O(ρm)` decomposition.
//!
//! Correctness rests on the local characterization of trussness: `τ` is the
//! (unique, pointwise-largest) labelling `φ` such that every edge `f` lies
//! in at least `φ(f) − 2` triangles whose other two edges both have
//! `φ ≥ φ(f)`. Both repair paths drive the labelling back to a stable
//! fixpoint of that rule:
//!
//! * **Deletion** of `e` with `τ(e) = k_e` can only lower trussness, and
//!   only for edges with `τ ≤ k_e`. Seed a queue with the triangle partners
//!   of `e` at those levels and cascade: an edge `f` at working level `k`
//!   whose counted support (triangles with both partners at `τ' ≥ k`)
//!   drops below `k − 2` is demoted to `k − 1`, re-examined, and its
//!   counted partners at level `k` re-enqueued. The working labelling stays
//!   pointwise ≥ the true one and every demotion lowers `Στ'` by one, so
//!   the cascade terminates exactly at the new decomposition.
//!
//! * **Insertion** of `e` can only raise trussness, by at most one per
//!   affected edge. Start `e` at the floor `τ(e) = 2` and climb levels
//!   `k = 3, 4, …`: gather the candidate set (edges at `τ = k − 1`
//!   triangle-reachable from `e` through triangles whose other two edges
//!   sit at `τ ≥ k − 1`), then peel candidates whose support at level `k`
//!   (triangles whose partners are alive candidates or settled `τ ≥ k`
//!   edges) falls below `k − 2`. If `e` survives, all survivors are
//!   promoted to `k` and the climb continues; once `e` is peeled no other
//!   candidate can stand (a stable set not containing the only new edge
//!   would already have had `τ ≥ k`), so the climb stops.
//!
//! The final, *failing* climb level is pure refutation — nothing gets
//! promoted — so it is engineered to quit as early as possible: the level
//! is skipped outright when the new edge's own support upper bound
//! (triangles with both partners at `τ ≥ k − 1`; a partner below that can
//! never reach `k` on a single insert) is already short of `k − 2`, and
//! the candidate peel aborts the moment the new edge dies instead of
//! completing the fixpoint (the peel mutates nothing until the level is
//! known to stand, so bailing is free). Hot paths run on dense per-edge
//! ids — adjacency rows store `(neighbor, edge id)` so a triangle probe
//! is two array reads, not hash lookups.
//!
//! The maintained state [materializes](DynamicIndex::materialize) into a
//! ([`CsrGraph`], [`TrussIndex`]) pair **byte-identical** to a cold
//! [`TrussIndex::build`] on the mutated edge list — the differential
//! oracle `tests/maintain_props.rs` pins on hundreds of random update
//! schedules.
//!
//! ```
//! use ctc_graph::VertexId;
//! use ctc_truss::{fixtures, DynamicIndex, TrussIndex};
//!
//! let g = fixtures::figure1_graph();
//! let mut dynx = DynamicIndex::build(&g);
//! let f = fixtures::Figure1Ids::default();
//! dynx.delete_edge(f.q1, f.q2).unwrap();
//! let (g2, idx2) = dynx.materialize().unwrap();
//! let cold = TrussIndex::build(&g2);
//! assert_eq!(idx2.edge_truss_slice(), cold.edge_truss_slice());
//! ```

use crate::index::TrussIndex;
use ctc_graph::error::{GraphError, Result};
use ctc_graph::{CsrGraph, FxHashMap, FxHashSet, VertexId};
use std::collections::VecDeque;

/// Canonical (smaller, larger) form of an undirected edge.
#[inline(always)]
fn canon(a: u32, b: u32) -> (u32, u32) {
    if a < b {
        (a, b)
    } else {
        (b, a)
    }
}

/// What one [`DynamicIndex::insert_edge`] / [`DynamicIndex::delete_edge`]
/// call did — in particular which trussness *classes* it touched, the key
/// serving-side answer caches invalidate on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateReport {
    /// Trussness of the edge itself: its new trussness after an insert,
    /// its former trussness after a delete.
    pub edge_truss: u32,
    /// How many *other* edges changed trussness in the repair cascade.
    pub changed: usize,
    /// Largest trussness class touched: the maximum over the old and new
    /// trussness of every edge the update moved (including the updated
    /// edge itself). A cached answer at level `k > max_class` is provably
    /// unaffected — no edge crossed any `τ ≥ j` threshold for `j > max_class`,
    /// so every `τ ≥ j` subgraph those answers were computed from is
    /// byte-identical.
    pub max_class: u32,
}

/// A mutable truss index: edge set + per-edge trussness, repaired locally
/// on every insert/delete (module docs spell out both cascades).
///
/// The vertex set is fixed at construction; updates address vertices by
/// dense id and are rejected with typed [`GraphError`]s (never panics) on
/// out-of-range endpoints, self-loops, duplicate inserts and missing
/// deletes.
///
/// Edges live in dense id *slots*: trussness and endpoints are flat arrays
/// indexed by edge id, deleted ids go on a freelist and are recycled by
/// later inserts, and the per-vertex adjacency rows carry
/// `(neighbor, edge id)` pairs sorted by neighbor.
#[derive(Clone, Debug)]
pub struct DynamicIndex {
    /// Fixed vertex count.
    n: usize,
    /// Per-vertex `(neighbor, edge id)` rows, sorted by neighbor.
    adj: Vec<Vec<(u32, u32)>>,
    /// Per-slot trussness, indexed by edge id (freed slots hold garbage).
    truss: Vec<u32>,
    /// Per-slot canonical endpoints, indexed by edge id.
    ends: Vec<(u32, u32)>,
    /// Recycled edge-id slots.
    free: Vec<u32>,
    /// Live edge count.
    m: usize,
    /// Reusable eid → candidate-index scratch for the insertion climb
    /// (`u32::MAX` = not a candidate; always fully reset between levels).
    /// Direct-mapped so the climb's hot loops never touch a hash table.
    scratch: Vec<u32>,
}

impl DynamicIndex {
    /// Adopts an existing graph + index (no decomposition runs). The index
    /// must belong to the graph.
    pub fn new(g: &CsrGraph, index: &TrussIndex) -> Self {
        assert_eq!(
            index.num_edges(),
            g.num_edges(),
            "index does not match graph"
        );
        let n = g.num_vertices();
        let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        let mut truss = Vec::with_capacity(g.num_edges());
        let mut ends = Vec::with_capacity(g.num_edges());
        for (e, u, v) in g.edges() {
            let eid = truss.len() as u32;
            truss.push(index.edge_truss(e));
            ends.push((u.0, v.0));
            adj[u.index()].push((v.0, eid));
            adj[v.index()].push((u.0, eid));
        }
        for row in &mut adj {
            row.sort_unstable();
        }
        let scratch = vec![u32::MAX; truss.len()];
        DynamicIndex {
            n,
            adj,
            truss,
            ends,
            free: Vec::new(),
            m: g.num_edges(),
            scratch,
        }
    }

    /// Builds cold: runs the truss decomposition on `g` and adopts it.
    pub fn build(g: &CsrGraph) -> Self {
        Self::new(g, &TrussIndex::build(g))
    }

    /// Number of vertices (fixed at construction).
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Current number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// The edge id of `{a, b}`, if present (probes the shorter row).
    fn edge_between(&self, a: u32, b: u32) -> Option<u32> {
        let (x, y) = if self.adj[a as usize].len() <= self.adj[b as usize].len() {
            (a, b)
        } else {
            (b, a)
        };
        let row = &self.adj[x as usize];
        row.binary_search_by_key(&y, |p| p.0).ok().map(|i| row[i].1)
    }

    /// Current trussness of edge `{u, v}`, if present.
    pub fn truss_of(&self, u: VertexId, v: VertexId) -> Option<u32> {
        if u.index() >= self.n || v.index() >= self.n {
            return None;
        }
        self.edge_between(u.0, v.0).map(|e| self.truss[e as usize])
    }

    /// `true` if `{u, v}` is currently an edge.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.truss_of(u, v).is_some()
    }

    /// Iterates the current edges as `((u, v), τ)`, canonical pairs in
    /// lexicographic order.
    pub fn edge_truss_iter(&self) -> impl Iterator<Item = ((u32, u32), u32)> + '_ {
        (0..self.n as u32).flat_map(move |u| {
            self.adj[u as usize]
                .iter()
                .filter(move |&&(v, _)| v > u)
                .map(move |&(v, e)| ((u, v), self.truss[e as usize]))
        })
    }

    /// Validates an update's endpoints; returns the canonical pair.
    fn check_pair(&self, u: VertexId, v: VertexId) -> Result<(u32, u32)> {
        for x in [u, v] {
            if x.index() >= self.n {
                return Err(GraphError::VertexOutOfRange {
                    vertex: x.0,
                    n: self.n,
                });
            }
        }
        if u == v {
            return Err(GraphError::SelfLoop { v: u.0 });
        }
        Ok(canon(u.0, v.0))
    }

    /// Calls `f(w, e_aw, e_bw)` for every common neighbor `w` of `a` and
    /// `b` — `w` plus the ids of the two closing edges — in ascending
    /// order (sorted-merge of the two rows).
    fn for_each_common_neighbor(&self, a: u32, b: u32, mut f: impl FnMut(u32, u32, u32)) {
        let ra = &self.adj[a as usize];
        let rb = &self.adj[b as usize];
        let (mut i, mut j) = (0usize, 0usize);
        // Branchless advance: the two index bumps compile to setcc/add, so
        // the only unpredictable branch left is the (rare) match hit.
        while i < ra.len() && j < rb.len() {
            let (va, ea) = ra[i];
            let (vb, eb) = rb[j];
            if va == vb {
                f(va, ea, eb);
            }
            i += (va <= vb) as usize;
            j += (vb <= va) as usize;
        }
    }

    fn adj_insert(&mut self, v: u32, nbr: u32, eid: u32) {
        let row = &mut self.adj[v as usize];
        let pos = row.binary_search_by_key(&nbr, |p| p.0).unwrap_err();
        row.insert(pos, (nbr, eid));
    }

    fn adj_remove(&mut self, v: u32, nbr: u32) {
        let row = &mut self.adj[v as usize];
        let pos = row
            .binary_search_by_key(&nbr, |p| p.0)
            .expect("adjacency out of sync");
        row.remove(pos);
    }

    /// Allocates a slot for new edge `{a, b}` at the trussness floor and
    /// links it into the adjacency.
    fn alloc_edge(&mut self, a: u32, b: u32) -> u32 {
        let eid = match self.free.pop() {
            Some(id) => {
                self.truss[id as usize] = 2;
                self.ends[id as usize] = (a, b);
                id
            }
            None => {
                self.truss.push(2);
                self.ends.push((a, b));
                self.scratch.push(u32::MAX);
                (self.truss.len() - 1) as u32
            }
        };
        self.adj_insert(a, b, eid);
        self.adj_insert(b, a, eid);
        self.m += 1;
        eid
    }

    /// Unlinks edge `eid = {a, b}` and recycles its slot.
    fn free_edge(&mut self, a: u32, b: u32, eid: u32) {
        self.adj_remove(a, b);
        self.adj_remove(b, a);
        self.free.push(eid);
        self.m -= 1;
    }

    /// Inserts edge `{u, v}` and repairs trussness locally (level-climbing
    /// candidate peel; see module docs). `O(local triangle neighborhood)`,
    /// not `O(ρm)`.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateReport> {
        let (a, b) = self.check_pair(u, v)?;
        if self.edge_between(a, b).is_some() {
            return Err(GraphError::DuplicateEdge { u: a, v: b });
        }
        let seed = self.alloc_edge(a, b);
        let mut scratch = std::mem::take(&mut self.scratch);

        // Original trussness of every edge this insert ends up promoting,
        // recorded at first promotion (an edge can be a candidate at
        // several consecutive levels).
        let mut original: FxHashMap<u32, u32> = FxHashMap::default();
        let mut k = 3u32;
        while let Some(survivors) = self.climb_level(seed, (a, b), k, &mut scratch) {
            for f in survivors {
                original.entry(f).or_insert(k - 1);
                self.truss[f as usize] = k;
            }
            k += 1;
        }
        self.scratch = scratch;
        let edge_truss = self.truss[seed as usize];
        let mut max_class = edge_truss;
        let mut changed = 0usize;
        for (&f, &orig) in &original {
            let now = self.truss[f as usize];
            max_class = max_class.max(now).max(orig);
            if f != seed && now != orig {
                changed += 1;
            }
        }
        Ok(UpdateReport {
            edge_truss,
            changed,
            max_class,
        })
    }

    /// One insertion climb level. Discovers the level-`k` candidate set
    /// (edges at `τ = k − 1` triangle-reachable from `seed` through
    /// triangles whose other two edges have `τ ≥ k − 1`; `seed` is at
    /// `k − 1` by the climb invariant) together with each candidate's
    /// initial support in one BFS pass, peels to the fixpoint, and returns
    /// the surviving edge ids if the seed stands at `k` — or `None`, with
    /// nothing mutated, the moment the seed is refuted: up front when its
    /// own support upper bound cannot reach `k − 2`, or mid-peel the
    /// instant the seed dies (no candidate can stand without the only new
    /// edge, so the fixpoint needn't complete).
    fn climb_level(
        &self,
        seed: u32,
        seed_ends: (u32, u32),
        k: u32,
        idx: &mut [u32],
    ) -> Option<Vec<u32>> {
        debug_assert_eq!(self.truss[seed as usize], k - 1);
        debug_assert!(idx.iter().all(|&i| i == u32::MAX));
        let (a, b) = seed_ends;
        let mut ub = 0u32;
        self.for_each_common_neighbor(a, b, |_, e1, e2| {
            if self.truss[e1 as usize] >= k - 1 && self.truss[e2 as usize] >= k - 1 {
                ub += 1;
            }
        });
        if ub + 2 < k {
            return None;
        }
        // Refined bound, one hop deeper: a `τ = k − 1` partner whose own
        // plain bound falls short of `k − 2` is dead on arrival in any
        // peel, so a triangle through it can never support the seed.
        // Refutes most failing levels without touching the candidate
        // component; the scan stops paying for partner bounds as soon as
        // refutation is off the table.
        let mut refined = 0u32;
        self.for_each_common_neighbor(a, b, |_, e1, e2| {
            if refined + 2 >= k {
                return;
            }
            let t1 = self.truss[e1 as usize];
            let t2 = self.truss[e2 as usize];
            if t1 >= k - 1 && t2 >= k - 1 {
                let alive_on_arrival = |e: u32, t: u32| {
                    t >= k || {
                        let (x, y) = self.ends[e as usize];
                        let mut pu = 0u32;
                        self.for_each_common_neighbor(x, y, |_, f1, f2| {
                            if self.truss[f1 as usize] >= k - 1 && self.truss[f2 as usize] >= k - 1
                            {
                                pu += 1;
                            }
                        });
                        pu + 2 >= k
                    }
                };
                if alive_on_arrival(e1, t1) && alive_on_arrival(e2, t2) {
                    refined += 1;
                }
            }
        });
        if refined + 2 < k {
            return None;
        }

        // BFS discovery + initial supports in one pass: every `τ = k − 1`
        // partner in a counted triangle of a candidate is necessarily a
        // candidate itself, so each candidate's full support is on the
        // table by the time its own neighborhood is scanned. Counted
        // triangles go into a flat arena (partner-edge pairs, one range
        // per candidate) so the peel never re-merges a neighborhood.
        let mut cand: Vec<u32> = Vec::new();
        let mut sup: Vec<u32> = Vec::new();
        let mut tris: Vec<[u32; 2]> = Vec::new();
        let mut tri_start: Vec<u32> = Vec::new();
        idx[seed as usize] = 0;
        cand.push(seed);
        let mut head = 0usize;
        while head < cand.len() {
            let (x, y) = self.ends[cand[head] as usize];
            tri_start.push(tris.len() as u32);
            let mut s = 0u32;
            self.for_each_common_neighbor(x, y, |_, e1, e2| {
                let t1 = self.truss[e1 as usize];
                let t2 = self.truss[e2 as usize];
                if t1 >= k - 1 && t2 >= k - 1 {
                    s += 1;
                    tris.push([e1, e2]);
                    for (e, t) in [(e1, t1), (e2, t2)] {
                        if t == k - 1 && idx[e as usize] == u32::MAX {
                            idx[e as usize] = cand.len() as u32;
                            cand.push(e);
                        }
                    }
                }
            });
            sup.push(s);
            head += 1;
        }
        tri_start.push(tris.len() as u32);

        let result = self.peel_level(k, &cand, &mut sup, idx, &tris, &tri_start);
        // The scratch map must leave every touched slot reset, including
        // on the early-refuted path.
        for &e in &cand {
            idx[e as usize] = u32::MAX;
        }
        result
    }

    /// The peel half of [`Self::climb_level`]: drives the candidate set to
    /// the level-`k` fixpoint and returns the survivors — or `None` the
    /// moment the seed (candidate index 0) dies. `tris`/`tri_start` is the
    /// flat arena of each candidate's initially-counted triangles, so a
    /// death walks its stored partner pairs instead of re-merging rows.
    fn peel_level(
        &self,
        k: u32,
        cand: &[u32],
        sup: &mut [u32],
        idx: &[u32],
        tris: &[[u32; 2]],
        tri_start: &[u32],
    ) -> Option<Vec<u32>> {
        let mut alive = vec![true; cand.len()];
        let mut queue: VecDeque<u32> = (0..cand.len() as u32)
            .filter(|&i| sup[i as usize] + 2 < k)
            .collect();
        while let Some(i) = queue.pop_front() {
            if !alive[i as usize] {
                continue;
            }
            alive[i as usize] = false;
            if i == 0 {
                return None;
            }
            // A stored triangle of the dead edge still qualifies (both
            // partners alive candidates or settled at `τ ≥ k`) iff it is
            // still counted by each alive candidate partner — decrement
            // exactly those. Triangles never stored (a partner below
            // `k − 1`) never qualified for anyone at this level.
            let (lo, hi) = (tri_start[i as usize], tri_start[i as usize + 1]);
            for &[e1, e2] in &tris[lo as usize..hi as usize] {
                let j1 = idx[e1 as usize];
                let j2 = idx[e2 as usize];
                let q1 = self.truss[e1 as usize] >= k || (j1 != u32::MAX && alive[j1 as usize]);
                let q2 = self.truss[e2 as usize] >= k || (j2 != u32::MAX && alive[j2 as usize]);
                if q1 && q2 {
                    for j in [j1, j2] {
                        if j != u32::MAX && alive[j as usize] {
                            sup[j as usize] = sup[j as usize].saturating_sub(1);
                            if sup[j as usize] + 2 < k {
                                queue.push_back(j);
                            }
                        }
                    }
                }
            }
        }
        Some(
            cand.iter()
                .zip(&alive)
                .filter_map(|(&e, &al)| al.then_some(e))
                .collect(),
        )
    }

    /// Deletes edge `{u, v}` and repairs trussness locally (demotion
    /// cascade; see module docs).
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> Result<UpdateReport> {
        let (a, b) = self.check_pair(u, v)?;
        let Some(doomed) = self.edge_between(a, b) else {
            return Err(GraphError::MissingEdge { u: a, v: b });
        };
        let ke = self.truss[doomed as usize];
        // Seed: triangle partners of the doomed edge at levels ≤ τ(e) —
        // the only edges a deletion can directly deficit. Collected before
        // the edge leaves the adjacency.
        let mut seeds: Vec<u32> = Vec::new();
        self.for_each_common_neighbor(a, b, |_, e1, e2| {
            for e in [e1, e2] {
                if self.truss[e as usize] <= ke {
                    seeds.push(e);
                }
            }
        });
        self.free_edge(a, b, doomed);

        let mut queue: VecDeque<u32> = VecDeque::new();
        let mut in_q: FxHashSet<u32> = FxHashSet::default();
        let mut original: FxHashMap<u32, u32> = FxHashMap::default();
        for f in seeds {
            if in_q.insert(f) {
                queue.push_back(f);
            }
        }
        let mut tris: Vec<[u32; 2]> = Vec::new();
        while let Some(f) = queue.pop_front() {
            in_q.remove(&f);
            let k = self.truss[f as usize];
            if k <= 2 {
                continue; // the floor: a 2-truss needs no triangles
            }
            let (x, y) = self.ends[f as usize];
            let mut sup = 0u32;
            tris.clear();
            self.for_each_common_neighbor(x, y, |_, e1, e2| {
                if self.truss[e1 as usize] >= k && self.truss[e2 as usize] >= k {
                    sup += 1;
                    tris.push([e1, e2]);
                }
            });
            if sup + 2 >= k {
                continue; // stable at its current level
            }
            original.entry(f).or_insert(k);
            self.truss[f as usize] = k - 1;
            // f itself may still be deficient at k − 1 …
            if in_q.insert(f) {
                queue.push_back(f);
            }
            // … and every partner that counted a now-broken triangle at
            // level k loses support there.
            for &[e1, e2] in &tris {
                for e in [e1, e2] {
                    if self.truss[e as usize] == k && in_q.insert(e) {
                        queue.push_back(e);
                    }
                }
            }
        }
        let mut max_class = ke;
        let mut changed = 0usize;
        for (&f, &orig) in &original {
            let now = self.truss[f as usize];
            max_class = max_class.max(orig).max(now);
            if now != orig {
                changed += 1;
            }
        }
        Ok(UpdateReport {
            edge_truss: ke,
            changed,
            max_class,
        })
    }

    /// Materializes the maintained state into an immutable
    /// ([`CsrGraph`], [`TrussIndex`]) pair — byte-identical to
    /// [`TrussIndex::build`] on the same edge list (the property suite's
    /// oracle). `O(n + m)` — the adjacency rows are already sorted.
    pub fn materialize(&self) -> Result<(CsrGraph, TrussIndex)> {
        let mut edges = Vec::with_capacity(self.m);
        let mut edge_truss = Vec::with_capacity(self.m);
        let mut max_truss = 0u32;
        for ((u, v), t) in self.edge_truss_iter() {
            edges.push((u, v));
            edge_truss.push(t);
            max_truss = max_truss.max(t);
        }
        let g = CsrGraph::from_canonical_edges(self.n, edges)?;
        let index = TrussIndex::from_parts(&g, edge_truss, max_truss);
        Ok((g, index))
    }

    /// Debug-only invariant check: recomputes the decomposition from
    /// scratch and asserts the maintained trussness matches. `O(ρm)` —
    /// test code only.
    #[doc(hidden)]
    pub fn check_against_rebuild(&self) -> Result<()> {
        let (g, idx) = self.materialize()?;
        let cold = TrussIndex::build(&g);
        if idx.edge_truss_slice() != cold.edge_truss_slice() {
            return Err(GraphError::Corrupt(
                "maintained trussness diverged from rebuild".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_graph, Figure1Ids};
    use ctc_graph::graph_from_edges;

    fn assert_matches_rebuild(dynx: &DynamicIndex) {
        let (g, idx) = dynx.materialize().unwrap();
        let cold = TrussIndex::build(&g);
        assert_eq!(idx.edge_truss_slice(), cold.edge_truss_slice());
        assert_eq!(idx.max_truss(), cold.max_truss());
        for v in g.vertices() {
            assert_eq!(idx.vertex_truss(v), cold.vertex_truss(v), "vertex {v}");
        }
    }

    #[test]
    fn insert_closes_a_triangle() {
        // Path 0-1-2; inserting (0,2) closes a triangle: all edges τ=3.
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        let mut dynx = DynamicIndex::build(&g);
        let rep = dynx
            .insert_edge(VertexId(0), VertexId(2))
            .expect("insert accepted");
        assert_eq!(rep.edge_truss, 3);
        assert_eq!(rep.changed, 2);
        assert_eq!(rep.max_class, 3);
        assert_eq!(dynx.truss_of(VertexId(0), VertexId(1)), Some(3));
        assert_matches_rebuild(&dynx);
    }

    #[test]
    fn insert_completing_k4_promotes_to_4() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]);
        let mut dynx = DynamicIndex::build(&g);
        let rep = dynx.insert_edge(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(rep.edge_truss, 4);
        assert_matches_rebuild(&dynx);
    }

    #[test]
    fn delete_from_k4_demotes() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let mut dynx = DynamicIndex::build(&g);
        let rep = dynx.delete_edge(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(rep.edge_truss, 4);
        assert_eq!(rep.max_class, 4);
        assert_matches_rebuild(&dynx);
        assert_eq!(dynx.truss_of(VertexId(0), VertexId(1)), Some(3));
    }

    #[test]
    fn dangling_edge_insert_stays_at_floor() {
        let g = graph_from_edges(&[(0, 1)]);
        let mut dynx = DynamicIndex::build(&g);
        // 4 vertices? graph_from_edges infers n = 2; both endpoints exist.
        let rep = dynx.delete_edge(VertexId(0), VertexId(1)).unwrap();
        assert_eq!(rep.edge_truss, 2);
        assert_eq!(dynx.num_edges(), 0);
        let rep = dynx.insert_edge(VertexId(1), VertexId(0)).unwrap();
        assert_eq!(rep.edge_truss, 2);
        assert_eq!(rep.changed, 0);
        assert_matches_rebuild(&dynx);
    }

    #[test]
    fn figure1_full_teardown_and_rebuild_matches() {
        let g = figure1_graph();
        let mut dynx = DynamicIndex::build(&g);
        let edges: Vec<(VertexId, VertexId)> = g.edges().map(|(_, u, v)| (u, v)).collect();
        // Tear every edge out, checking the oracle along the way…
        for &(u, v) in &edges {
            dynx.delete_edge(u, v).unwrap();
            dynx.check_against_rebuild().unwrap();
        }
        assert_eq!(dynx.num_edges(), 0);
        // … then grow the whole graph back edge by edge.
        for &(u, v) in edges.iter().rev() {
            dynx.insert_edge(u, v).unwrap();
            dynx.check_against_rebuild().unwrap();
        }
        let (g2, idx2) = dynx.materialize().unwrap();
        assert_eq!(g2, g);
        assert_eq!(
            idx2.edge_truss_slice(),
            TrussIndex::build(&g).edge_truss_slice()
        );
    }

    #[test]
    fn typed_rejections() {
        let g = figure1_graph();
        let f = Figure1Ids::default();
        let mut dynx = DynamicIndex::build(&g);
        let m = dynx.num_edges();
        assert_eq!(
            dynx.insert_edge(f.q1, f.q2),
            Err(GraphError::DuplicateEdge {
                u: f.q1.0.min(f.q2.0),
                v: f.q1.0.max(f.q2.0),
            })
        );
        assert_eq!(
            dynx.delete_edge(VertexId(0), VertexId(0)),
            Err(GraphError::SelfLoop { v: 0 })
        );
        assert!(matches!(
            dynx.insert_edge(VertexId(0), VertexId(999)),
            Err(GraphError::VertexOutOfRange { vertex: 999, .. })
        ));
        assert!(matches!(
            dynx.delete_edge(VertexId(998), VertexId(999)),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        // A vertex pair with no edge between them.
        let missing = (0..12u32)
            .flat_map(|a| (a + 1..12u32).map(move |b| (a, b)))
            .find(|&(a, b)| !dynx.has_edge(VertexId(a), VertexId(b)))
            .expect("figure 1 is not complete");
        assert_eq!(
            dynx.delete_edge(VertexId(missing.0), VertexId(missing.1)),
            Err(GraphError::MissingEdge {
                u: missing.0,
                v: missing.1
            })
        );
        // Rejections left the state untouched.
        assert_eq!(dynx.num_edges(), m);
        assert_matches_rebuild(&dynx);
    }

    #[test]
    fn report_classes_bound_the_damage() {
        let g = figure1_graph();
        let mut dynx = DynamicIndex::build(&g);
        let before: FxHashMap<(u32, u32), u32> = dynx.edge_truss_iter().collect();
        let f = Figure1Ids::default();
        let rep = dynx.delete_edge(f.q1, f.q2).unwrap();
        for (&(u, v), &t0) in &before {
            let now = dynx.truss_of(VertexId(u), VertexId(v));
            if now != Some(t0) {
                // Every moved edge (and the deleted one) is covered by
                // max_class, both its old and new level.
                assert!(t0 <= rep.max_class, "old class {t0} > {}", rep.max_class);
                if let Some(t1) = now {
                    assert!(t1 <= rep.max_class);
                }
            }
        }
    }

    #[test]
    fn edge_slots_recycle_across_updates() {
        let g = figure1_graph();
        let mut dynx = DynamicIndex::build(&g);
        let m = dynx.num_edges();
        let edges: Vec<(VertexId, VertexId)> = g.edges().map(|(_, u, v)| (u, v)).take(5).collect();
        for &(u, v) in &edges {
            dynx.delete_edge(u, v).unwrap();
        }
        for &(u, v) in edges.iter().rev() {
            dynx.insert_edge(u, v).unwrap();
        }
        // Slot reuse keeps the backing store at the original size.
        assert_eq!(dynx.num_edges(), m);
        assert_eq!(dynx.truss.len(), m);
        assert_matches_rebuild(&dynx);
    }
}
