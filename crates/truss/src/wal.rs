//! The `.ctcd` write-ahead delta log: durable edge updates on top of a
//! `.ctci` snapshot.
//!
//! A [`DynamicIndex`] makes a loaded snapshot mutable
//! in memory; the delta log makes those mutations durable without
//! rewriting the snapshot per update. Updates append fixed-size records to
//! a sidecar `.ctcd` file; on restart the log replays over the freshly
//! loaded snapshot; compaction folds the replayed state back into a clean
//! snapshot and resets the log.
//!
//! Byte-level layout (specified independently in `docs/INDEX_FORMAT.md`):
//!
//! ```text
//! magic       "CTCL"                                   4 bytes
//! version     u32 LE                                   (currently 1)
//! base        u64 LE — FNV-1a 64 of the bound          8 bytes
//!             snapshot file's bytes
//! hdr check   u64 LE — FNV-1a 64 over the 16           8 bytes
//!             header bytes above
//! records     op u8 (1=insert, 2=delete),              17 bytes each
//!             u u32 LE, v u32 LE (dense ids),
//!             chain u64 LE
//! trailer     record count u64 LE, final chain u64 LE  16 bytes
//! ```
//!
//! Every record's `chain` is `FNV-1a 64` over the previous chain value
//! (little-endian, seeded with `base`) concatenated with the record's 9
//! payload bytes — so records validate in sequence against the snapshot
//! they extend, and any bit flip poisons every later checksum. The trailer
//! repeats the count and final chain, so truncation *at a record boundary*
//! (which per-record checksums alone cannot see) is also rejected. Torn or
//! corrupt logs yield typed [`GraphError`]s, never panics, mirroring the
//! snapshot loader's discipline.
//!
//! ```
//! use ctc_truss::{DeltaLog, DeltaOp, DeltaRecord};
//!
//! let mut log = DeltaLog::new(0xfeed);
//! log.append(DeltaRecord::new(DeltaOp::Insert, 3, 17));
//! log.append(DeltaRecord::new(DeltaOp::Delete, 5, 9));
//! let loaded = DeltaLog::from_bytes(&log.to_bytes()).unwrap();
//! assert_eq!(loaded, log);
//! assert_eq!(loaded.records().len(), 2);
//! ```

use crate::dynamic::DynamicIndex;
use crate::snapshot::Snapshot;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ctc_graph::error::{GraphError, Result};
use ctc_graph::io::fnv1a64;
use ctc_graph::storage::{real_env, write_durable, StorageEnv};
use ctc_graph::VertexId;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic bytes opening a `.ctcd` delta-log file.
pub const DELTA_MAGIC: &[u8; 4] = b"CTCL";
/// Newest delta-log format version this build reads and writes.
pub const DELTA_VERSION: u32 = 1;
/// Header bytes: magic + version + base checksum + header checksum.
pub(crate) const HEADER_LEN: usize = 4 + 4 + 8 + 8;
/// Bytes of one encoded record.
pub(crate) const RECORD_LEN: usize = 1 + 4 + 4 + 8;
/// Trailer bytes: record count + final chain value.
pub(crate) const TRAILER_LEN: usize = 8 + 8;

/// The two update operations a delta log records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOp {
    /// Edge insertion.
    Insert,
    /// Edge deletion.
    Delete,
}

impl DeltaOp {
    fn to_byte(self) -> u8 {
        match self {
            DeltaOp::Insert => 1,
            DeltaOp::Delete => 2,
        }
    }

    pub(crate) fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(DeltaOp::Insert),
            2 => Some(DeltaOp::Delete),
            _ => None,
        }
    }
}

/// One logged update: an operation on the edge `{u, v}` (dense ids of the
/// bound snapshot's vertex space).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaRecord {
    /// Insert or delete.
    pub op: DeltaOp,
    /// One endpoint (dense id).
    pub u: u32,
    /// The other endpoint (dense id).
    pub v: u32,
}

impl DeltaRecord {
    /// A record for the edge `{u, v}`.
    pub fn new(op: DeltaOp, u: u32, v: u32) -> Self {
        DeltaRecord { op, u, v }
    }
}

/// Chains `prev` with a record's payload bytes: FNV-1a 64 over
/// `prev_le ‖ op ‖ u_le ‖ v_le`.
pub(crate) fn chain_of(prev: u64, rec: DeltaRecord) -> u64 {
    let mut buf = [0u8; 17];
    buf[..8].copy_from_slice(&prev.to_le_bytes());
    buf[8] = rec.op.to_byte();
    buf[9..13].copy_from_slice(&rec.u.to_le_bytes());
    buf[13..17].copy_from_slice(&rec.v.to_le_bytes());
    fnv1a64(&buf)
}

/// An in-memory delta log: the record sequence plus the running chain
/// checksum, bound to a base snapshot by that snapshot's file checksum.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeltaLog {
    base: u64,
    chain: u64,
    records: Vec<DeltaRecord>,
}

impl DeltaLog {
    /// An empty log bound to the snapshot whose file bytes hash (FNV-1a
    /// 64) to `base_checksum`.
    pub fn new(base_checksum: u64) -> Self {
        DeltaLog {
            base: base_checksum,
            chain: base_checksum,
            records: Vec::new(),
        }
    }

    /// The bound snapshot's file checksum.
    pub fn base_checksum(&self) -> u64 {
        self.base
    }

    /// The logged records, oldest first.
    pub fn records(&self) -> &[DeltaRecord] {
        &self.records
    }

    /// Number of logged records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no records are logged.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends a record, advancing the chain checksum. Returns the
    /// record's encoded bytes (what [`DeltaLogFile::append`] writes).
    pub fn append(&mut self, rec: DeltaRecord) -> [u8; RECORD_LEN] {
        self.chain = chain_of(self.chain, rec);
        self.records.push(rec);
        let mut out = [0u8; RECORD_LEN];
        out[0] = rec.op.to_byte();
        out[1..5].copy_from_slice(&rec.u.to_le_bytes());
        out[5..9].copy_from_slice(&rec.v.to_le_bytes());
        out[9..17].copy_from_slice(&self.chain.to_le_bytes());
        out
    }

    /// The 16 trailer bytes for the log's current state.
    fn trailer_bytes(&self) -> [u8; TRAILER_LEN] {
        let mut out = [0u8; TRAILER_LEN];
        out[..8].copy_from_slice(&(self.records.len() as u64).to_le_bytes());
        out[8..].copy_from_slice(&self.chain.to_le_bytes());
        out
    }

    /// Serializes to the `.ctcd` byte image.
    pub fn to_bytes(&self) -> Bytes {
        delta_log_to_bytes(self)
    }

    /// Parses and fully validates a `.ctcd` byte image.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        delta_log_from_bytes(data)
    }

    /// Replays every logged record onto `dynx`, in order. A record the
    /// index rejects (duplicate insert, missing delete, bad endpoint)
    /// means the log does not belong to this snapshot state — the typed
    /// rejection is surfaced as-is and `dynx` is left mid-replay.
    pub fn replay(&self, dynx: &mut DynamicIndex) -> Result<()> {
        for rec in &self.records {
            let (u, v) = (VertexId(rec.u), VertexId(rec.v));
            match rec.op {
                DeltaOp::Insert => dynx.insert_edge(u, v)?,
                DeltaOp::Delete => dynx.delete_edge(u, v)?,
            };
        }
        Ok(())
    }
}

/// Serializes a delta log to its `.ctcd` byte image.
pub fn delta_log_to_bytes(log: &DeltaLog) -> Bytes {
    let mut buf =
        BytesMut::with_capacity(HEADER_LEN + log.records.len() * RECORD_LEN + TRAILER_LEN);
    buf.put_slice(DELTA_MAGIC);
    buf.put_u32_le(DELTA_VERSION);
    buf.put_u64_le(log.base);
    buf.put_u64_le(fnv1a64(&buf[..16]));
    let mut chain = log.base;
    for &rec in &log.records {
        chain = chain_of(chain, rec);
        buf.put_slice(&[rec.op.to_byte()]);
        buf.put_u32_le(rec.u);
        buf.put_u32_le(rec.v);
        buf.put_u64_le(chain);
    }
    debug_assert_eq!(chain, log.chain);
    buf.put_slice(&log.trailer_bytes());
    buf.freeze()
}

/// Parses and fully validates a `.ctcd` byte image: magic, header
/// checksum, version, per-record chained checksums, op tags, and the
/// count/chain trailer. Every violation is a typed error, never a panic;
/// in particular truncation at a record boundary — invisible to the
/// per-record checksums — is caught by the trailer.
pub fn delta_log_from_bytes(mut data: &[u8]) -> Result<DeltaLog> {
    let corrupt = |msg: &str| GraphError::Corrupt(format!("delta log: {msg}"));
    if data.len() < HEADER_LEN + TRAILER_LEN {
        return Err(corrupt("shorter than header + trailer"));
    }
    if &data[..4] != DELTA_MAGIC {
        return Err(corrupt("bad magic (want \"CTCL\")"));
    }
    let header_check = u64::from_le_bytes(data[16..24].try_into().expect("8 bytes"));
    if header_check != fnv1a64(&data[..16]) {
        return Err(corrupt("header checksum mismatch"));
    }
    let body = data.len() - HEADER_LEN - TRAILER_LEN;
    if !body.is_multiple_of(RECORD_LEN) {
        return Err(corrupt("torn record (body is not a whole record count)"));
    }
    let count = body / RECORD_LEN;
    data = &data[4..]; // magic, validated above
    let version = data.get_u32_le();
    if version != DELTA_VERSION {
        return Err(GraphError::UnsupportedVersion {
            found: version,
            supported: DELTA_VERSION,
        });
    }
    let base = data.get_u64_le();
    data = &data[8..]; // header checksum, validated above
    let mut log = DeltaLog::new(base);
    for i in 0..count {
        let op_byte = data[0];
        data = &data[1..];
        let op = DeltaOp::from_byte(op_byte)
            .ok_or_else(|| corrupt(&format!("record {i}: unknown op tag")))?;
        let u = data.get_u32_le();
        let v = data.get_u32_le();
        let chain = data.get_u64_le();
        log.append(DeltaRecord::new(op, u, v));
        if chain != log.chain {
            return Err(corrupt(&format!("record {i}: chain checksum mismatch")));
        }
    }
    let trailer_count = data.get_u64_le();
    let trailer_chain = data.get_u64_le();
    if trailer_count != count as u64 {
        return Err(corrupt("trailer record count mismatch"));
    }
    if trailer_chain != log.chain {
        return Err(corrupt("trailer chain mismatch"));
    }
    Ok(log)
}

/// A delta log with an on-disk home: appends go straight to the file
/// (record + rewritten trailer), loads validate the full image, and
/// [`compact`](DeltaLogFile::compact) folds the current state back into a
/// fresh snapshot.
///
/// All file traffic goes through a [`StorageEnv`] (the real filesystem by
/// default, a fault injector under test). No file handle is held between
/// calls; every operation writes and syncs, so a crash at any point leaves
/// either the old or the new image plus at most one torn trailing append —
/// which [`crate::recover()`] repairs on the next open.
///
/// After an append or compact **error** the in-memory view may be ahead of
/// the file: drop the handle and go through recovery rather than
/// continuing to use it.
#[derive(Clone, Debug)]
pub struct DeltaLogFile {
    path: PathBuf,
    log: DeltaLog,
    env: Arc<dyn StorageEnv>,
}

impl DeltaLogFile {
    /// Creates a fresh, empty log at `path`, bound to `base_checksum`.
    /// Overwrites any existing file. The file and its directory entry are
    /// synced before returning.
    pub fn create<P: AsRef<Path>>(path: P, base_checksum: u64) -> Result<Self> {
        Self::create_in(real_env(), path.as_ref(), base_checksum)
    }

    /// [`create`](Self::create) against an explicit storage environment.
    pub fn create_in(env: Arc<dyn StorageEnv>, path: &Path, base_checksum: u64) -> Result<Self> {
        let log = DeltaLog::new(base_checksum);
        env.write(path, &log.to_bytes())?;
        env.sync_file(path)?;
        env.sync_parent_dir(path)?;
        Ok(DeltaLogFile {
            path: path.to_path_buf(),
            log,
            env,
        })
    }

    /// Loads and validates the log at `path`, additionally checking that
    /// it is bound to the snapshot hashing to `expected_base`.
    pub fn open<P: AsRef<Path>>(path: P, expected_base: u64) -> Result<Self> {
        Self::open_in(real_env(), path.as_ref(), expected_base)
    }

    /// [`open`](Self::open) against an explicit storage environment.
    pub fn open_in(env: Arc<dyn StorageEnv>, path: &Path, expected_base: u64) -> Result<Self> {
        let bytes = env.read(path)?;
        let log = DeltaLog::from_bytes(&bytes)?;
        if log.base_checksum() != expected_base {
            return Err(GraphError::Corrupt(format!(
                "delta log bound to snapshot {:016x}, but the loaded snapshot hashes to {:016x}",
                log.base_checksum(),
                expected_base
            )));
        }
        Ok(DeltaLogFile {
            path: path.to_path_buf(),
            log,
            env,
        })
    }

    /// Opens the log at `path` if it exists (validating the binding),
    /// otherwise creates a fresh one.
    pub fn open_or_create<P: AsRef<Path>>(path: P, base_checksum: u64) -> Result<Self> {
        Self::open_or_create_in(real_env(), path.as_ref(), base_checksum)
    }

    /// [`open_or_create`](Self::open_or_create) against an explicit
    /// storage environment.
    pub fn open_or_create_in(
        env: Arc<dyn StorageEnv>,
        path: &Path,
        base_checksum: u64,
    ) -> Result<Self> {
        if env.exists(path) {
            Self::open_in(env, path, base_checksum)
        } else {
            Self::create_in(env, path, base_checksum)
        }
    }

    /// The log's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The in-memory view of the log.
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// The storage environment this log writes through.
    pub fn env(&self) -> &Arc<dyn StorageEnv> {
        &self.env
    }

    /// Appends one record durably: the encoded record overwrites the old
    /// trailer position, a fresh trailer follows, and the file is synced
    /// before returning. A crash mid-append leaves at most one torn
    /// record+trailer past the last valid record — a *torn tail*, which
    /// recovery truncates.
    pub fn append(&mut self, rec: DeltaRecord) -> Result<()> {
        let encoded = self.log.append(rec);
        let mut buf = Vec::with_capacity(RECORD_LEN + TRAILER_LEN);
        buf.extend_from_slice(&encoded);
        buf.extend_from_slice(&self.log.trailer_bytes());
        self.env
            .write_at_end(&self.path, TRAILER_LEN as u64, &buf)?;
        self.env.sync_file(&self.path)?;
        Ok(())
    }

    /// Compacts: writes `snap` (the fully replayed state) to
    /// `snapshot_path` durably (temp file → fsync → rename → parent-dir
    /// fsync), then resets this log to empty — bound to the new snapshot's
    /// checksum — with the same discipline. Returns that checksum.
    ///
    /// A crash between the two renames leaves the new snapshot with the
    /// old (now stale) log; recovery detects the base-checksum mismatch
    /// and archives the stale log, which is safe because the renamed
    /// snapshot already contains every logged update.
    pub fn compact<P: AsRef<Path>>(&mut self, snapshot_path: P, snap: &Snapshot) -> Result<u64> {
        let bytes = snap.to_bytes();
        let base = fnv1a64(&bytes);
        write_durable(self.env.as_ref(), snapshot_path.as_ref(), &bytes)?;
        let fresh = DeltaLog::new(base);
        write_durable(self.env.as_ref(), &self.path, &fresh.to_bytes())?;
        self.log = fresh;
        Ok(base)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_graph;

    fn sample_log() -> DeltaLog {
        let mut log = DeltaLog::new(0xdead_beef_cafe_f00d);
        log.append(DeltaRecord::new(DeltaOp::Insert, 0, 7));
        log.append(DeltaRecord::new(DeltaOp::Delete, 3, 4));
        log.append(DeltaRecord::new(DeltaOp::Insert, 1, 2));
        log
    }

    #[test]
    fn roundtrip() {
        let log = sample_log();
        let parsed = DeltaLog::from_bytes(&log.to_bytes()).unwrap();
        assert_eq!(parsed, log);
        let empty = DeltaLog::new(42);
        assert_eq!(DeltaLog::from_bytes(&empty.to_bytes()).unwrap(), empty);
        assert!(empty.is_empty());
        assert_eq!(sample_log().len(), 3);
    }

    #[test]
    fn unsupported_version_is_typed() {
        let log = DeltaLog::new(9);
        let mut bytes = log.to_bytes().to_vec();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        // Re-seal the header checksum so only the version differs.
        let hc = fnv1a64(&bytes[..16]);
        bytes[16..24].copy_from_slice(&hc.to_le_bytes());
        assert_eq!(
            DeltaLog::from_bytes(&bytes),
            Err(GraphError::UnsupportedVersion {
                found: 99,
                supported: DELTA_VERSION
            })
        );
    }

    #[test]
    fn boundary_truncation_is_rejected() {
        let log = sample_log();
        let bytes = log.to_bytes();
        // Drop the last record but keep a byte-count that still parses as
        // header + 2 records + trailer: the per-record chains all pass,
        // only the trailer can catch it.
        let mut cut = bytes[..bytes.len() - TRAILER_LEN - RECORD_LEN].to_vec();
        cut.extend_from_slice(&2u64.to_le_bytes());
        let chain_two = {
            let mut l = DeltaLog::new(log.base_checksum());
            l.append(log.records()[0]);
            l.append(log.records()[1]);
            l.chain
        };
        cut.extend_from_slice(&chain_two.to_le_bytes());
        // A forged trailer *does* parse (it is a valid 2-record log)…
        assert!(DeltaLog::from_bytes(&cut).is_ok());
        // …but naive boundary truncation (no forged trailer) is rejected.
        let naive = &bytes[..bytes.len() - RECORD_LEN];
        assert!(matches!(
            DeltaLog::from_bytes(naive),
            Err(GraphError::Corrupt(_))
        ));
    }

    #[test]
    fn file_append_and_reload() {
        let dir = std::env::temp_dir().join("ctc_wal_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("append.ctcd");
        let mut f = DeltaLogFile::create(&path, 77).unwrap();
        for i in 0..5u32 {
            f.append(DeltaRecord::new(DeltaOp::Insert, i, i + 1))
                .unwrap();
        }
        let reloaded = DeltaLogFile::open(&path, 77).unwrap();
        assert_eq!(reloaded.log(), f.log());
        assert_eq!(reloaded.log().len(), 5);
        assert!(matches!(
            DeltaLogFile::open(&path, 78),
            Err(GraphError::Corrupt(_))
        ));
    }

    #[test]
    fn compact_resets_log_and_rewrites_snapshot() {
        let dir = std::env::temp_dir().join("ctc_wal_compact_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let snap_path = dir.join("g.ctci");
        let log_path = dir.join("g.ctcd");
        let snap = Snapshot::build(figure1_graph());
        std::fs::write(&snap_path, snap.to_bytes()).unwrap();
        let base = fnv1a64(&std::fs::read(&snap_path).unwrap());
        let mut f = DeltaLogFile::create(&log_path, base).unwrap();
        f.append(DeltaRecord::new(DeltaOp::Delete, 0, 1)).unwrap();
        let new_base = f.compact(&snap_path, &snap).unwrap();
        assert_eq!(new_base, fnv1a64(&std::fs::read(&snap_path).unwrap()));
        let reopened = DeltaLogFile::open(&log_path, new_base).unwrap();
        assert!(reopened.log().is_empty());
    }

    #[test]
    fn replay_applies_in_order_and_surfaces_rejections() {
        let g = figure1_graph();
        let mut dynx = DynamicIndex::build(&g);
        let (a, b) = {
            let (_, u, v) = g.edges().next().unwrap();
            (u, v)
        };
        let mut log = DeltaLog::new(1);
        log.append(DeltaRecord::new(DeltaOp::Delete, a.0, b.0));
        log.append(DeltaRecord::new(DeltaOp::Insert, a.0, b.0));
        log.replay(&mut dynx).unwrap();
        assert_eq!(dynx.num_edges(), g.num_edges());
        // A log that does not belong to this state (inserting an edge the
        // graph already carries) surfaces the typed rejection.
        let mut bad = DeltaLog::new(1);
        bad.append(DeltaRecord::new(DeltaOp::Insert, a.0, b.0));
        assert!(matches!(
            bad.replay(&mut dynx),
            Err(GraphError::DuplicateEdge { .. })
        ));
    }
}
