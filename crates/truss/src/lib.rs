//! # ctc-truss — the k-truss engine
//!
//! Truss decomposition, the paper's compact truss index, `FindG0`
//! (Algorithm 2), k-truss maintenance under deletion (Algorithm 3), k-truss
//! component extraction, and the triangle-connected (TCP) community model
//! that *Approximate Closest Community Search in Networks* (VLDB'15)
//! contrasts against.
//!
//! ```
//! use ctc_truss::{TrussIndex, find_g0, fixtures};
//! use ctc_graph::VertexId;
//!
//! let g = fixtures::figure1_graph();
//! let f = fixtures::Figure1Ids::default();
//! let idx = TrussIndex::build(&g);
//! let g0 = find_g0(&g, &idx, &[f.q1, f.q2, f.q3]).unwrap();
//! assert_eq!(g0.k, 4);           // the largest k covering the query
//! assert_eq!(g0.vertices.len(), 11); // the grey region of Figure 1
//! ```
//!
//! The decomposition behind the index — the offline cost of Table 3 — has
//! a multi-core variant ([`truss_decomposition_par`] /
//! [`TrussIndex::build_par`]) that peels same-trussness frontiers
//! concurrently and matches the serial path byte for byte:
//!
//! ```
//! use ctc_graph::Parallelism;
//! use ctc_truss::{fixtures, truss_decomposition, truss_decomposition_par};
//!
//! let g = fixtures::figure1_graph();
//! let serial = truss_decomposition(&g);
//! let parallel = truss_decomposition_par(&g, Parallelism::threads(4));
//! assert_eq!(serial.edge_truss, parallel.edge_truss);
//! ```
//!
//! The offline build can be paid once and persisted: a [`Snapshot`] writes
//! graph + index to a checksummed `.ctci` file that loads back without
//! re-running the decomposition (see [`snapshot`]):
//!
//! ```
//! use ctc_truss::{fixtures, Snapshot};
//!
//! let snap = Snapshot::build(fixtures::figure1_graph());
//! let loaded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
//! assert_eq!(loaded.index.edge_truss_slice(), snap.index.edge_truss_slice());
//! ```

#![warn(missing_docs)]

pub mod decompose;
pub mod dynamic;
pub mod find_g0;
pub mod fixtures;
pub mod index;
pub mod ktruss;
pub mod maintain;
pub mod recover;
pub mod snapshot;
pub mod tcp;
pub mod wal;

pub use decompose::{
    graph_trussness, is_k_truss, naive_truss_decomposition, truss_decomposition,
    truss_decomposition_par, truss_decomposition_with, DecomposeScratch, TrussDecomposition,
};
pub use dynamic::{DynamicIndex, UpdateReport};
pub use find_g0::{
    find_g0, find_g0_with, find_ktruss_containing, find_ktruss_containing_with, g0_subgraph,
    FindScratch, G0,
};
pub use index::TrussIndex;
pub use ktruss::{connected_ktruss_components, edge_list_vertices, ktruss_edges};
pub use maintain::{CascadeReport, TrussMaintainer};
pub use recover::{recover, recover_in, LogRecovery, RecoveryReport};
pub use snapshot::{snapshot_from_bytes, snapshot_to_bytes, Snapshot};
pub use tcp::{tcp_communities, tcp_feasible, TcpCommunity};
pub use wal::{
    delta_log_from_bytes, delta_log_to_bytes, DeltaLog, DeltaLogFile, DeltaOp, DeltaRecord,
};
