//! Persistent truss-index snapshots: the `.ctci` on-disk format.
//!
//! The paper splits CTC search into an offline `O(ρ·m)` index construction
//! (§4.3, Remark 1) and fast online queries — but an index that only lives
//! in memory pays the offline cost on every process start. A [`Snapshot`]
//! captures everything the online phase needs — the CSR graph, the
//! per-edge trussness array, and the original vertex labels — in one
//! versioned, checksummed little-endian file, so a serving process loads
//! in `O(n + m)` with no triangle counting, no peeling, and no row
//! sorting beyond the deterministic truss-order rebuild.
//!
//! Byte-level layout (specified independently in `docs/INDEX_FORMAT.md`):
//!
//! ```text
//! magic   "CTCI"                          4 bytes
//! version u32 LE                          (currently 1)
//! graph   n, m, offsets, neighbors,       u32-LE sections
//!         arc edge ids, edge endpoints
//! labels  dense id → original label       u64-LE section (may be empty)
//! truss   per-edge trussness, max truss   u32-LE section + u32
//! trailer FNV-1a 64 over all prior bytes  8 bytes LE
//! ```
//!
//! Corruption (truncation, bit flips, inconsistent arrays) surfaces as
//! [`GraphError::Corrupt`]; a file written by a newer format surfaces as
//! [`GraphError::UnsupportedVersion`]. Neither path panics.
//!
//! ```
//! use ctc_truss::{fixtures, Snapshot};
//!
//! let snap = Snapshot::build(fixtures::figure1_graph());
//! let bytes = snap.to_bytes();
//! let loaded = Snapshot::from_bytes(&bytes).unwrap();
//! assert_eq!(loaded.graph, snap.graph);
//! assert_eq!(loaded.index.edge_truss_slice(), snap.index.edge_truss_slice());
//! ```

use crate::decompose::TrussDecomposition;
use crate::index::TrussIndex;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use ctc_graph::error::{GraphError, Result};
use ctc_graph::io::{
    fnv1a64, get_graph_section, get_u32_section, get_u64_section, put_graph_section,
    put_u32_section, put_u64_section,
};
use ctc_graph::storage::{write_durable, RealEnv, StorageEnv};
use ctc_graph::{CsrGraph, Parallelism, VertexId};
use std::path::Path;

/// Magic bytes opening a `.ctci` snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"CTCI";
/// Newest snapshot format version this build reads and writes.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Bytes of the FNV-1a 64 checksum trailer.
const TRAILER_LEN: usize = 8;
/// Bytes of magic + version header.
const HEADER_LEN: usize = 8;

/// A graph, its truss index, and the vertex-label table, as one loadable
/// unit.
///
/// `labels` maps dense vertex ids back to the input file's original vertex
/// labels (the table [`ctc_graph::io::read_edge_list`] returns); an empty
/// table means labels equal dense ids. Keeping it inside the snapshot is
/// what lets `ctc-cli search --index` answer label-addressed queries
/// identically to a cold run over the original edge list.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The indexed graph.
    pub graph: CsrGraph,
    /// Its truss index.
    pub index: TrussIndex,
    /// Dense id → original label (empty ⇒ identity).
    pub labels: Vec<u64>,
}

impl Snapshot {
    /// Builds graph + index into a snapshot (serial decomposition; the
    /// offline cost of Table 3).
    pub fn build(graph: CsrGraph) -> Self {
        Self::build_par(graph, Parallelism::serial())
    }

    /// Builds with the decomposition spread over `par` worker threads.
    /// Identical output for every thread count.
    pub fn build_par(graph: CsrGraph, par: Parallelism) -> Self {
        let index = TrussIndex::build_par(&graph, par);
        Snapshot {
            graph,
            index,
            labels: Vec::new(),
        }
    }

    /// Attaches a dense-id → original-label table (must have one entry per
    /// vertex, or be empty for the identity mapping).
    pub fn with_labels(mut self, labels: Vec<u64>) -> Result<Self> {
        if !labels.is_empty() && labels.len() != self.graph.num_vertices() {
            return Err(GraphError::Corrupt(format!(
                "label table has {} entries for {} vertices",
                labels.len(),
                self.graph.num_vertices()
            )));
        }
        self.labels = labels;
        Ok(self)
    }

    /// The original label of dense vertex `v`.
    pub fn label_of(&self, v: VertexId) -> u64 {
        label_of(&self.labels, v)
    }

    /// The dense id carrying original label `label`, if any (linear scan,
    /// mirroring the CLI's label resolution).
    pub fn vertex_of_label(&self, label: u64) -> Option<VertexId> {
        vertex_of_label(&self.labels, self.graph.num_vertices(), label)
    }

    /// Serializes to the `.ctci` byte image.
    pub fn to_bytes(&self) -> Bytes {
        snapshot_to_bytes(&self.graph, &self.index, &self.labels)
    }

    /// Deserializes a `.ctci` byte image, verifying the checksum and every
    /// structural invariant.
    pub fn from_bytes(data: &[u8]) -> Result<Self> {
        snapshot_from_bytes(data)
    }

    /// Writes the snapshot to `path` (conventionally `*.ctci`) with
    /// crash-safety discipline: sibling temp file → fsync → rename →
    /// parent-directory fsync. After a crash at any point `path` holds
    /// either the complete old image or the complete new one.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> Result<()> {
        self.save_in(&RealEnv, path.as_ref())
    }

    /// [`save`](Self::save) against an explicit storage environment.
    pub fn save_in(&self, env: &dyn StorageEnv, path: &Path) -> Result<()> {
        write_durable(env, path, &self.to_bytes())
    }

    /// Loads a snapshot file written by [`Snapshot::save`].
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self> {
        Self::load_in(&RealEnv, path.as_ref())
    }

    /// [`load`](Self::load) against an explicit storage environment.
    pub fn load_in(env: &dyn StorageEnv, path: &Path) -> Result<Self> {
        let data = env.read(path)?;
        Self::from_bytes(&data)
    }
}

/// The original label of dense vertex `v` under a label table (empty ⇒
/// identity). Shared by [`Snapshot`] and the warm-start engine so the two
/// can never diverge on label semantics.
pub fn label_of(labels: &[u64], v: VertexId) -> u64 {
    if labels.is_empty() {
        v.0 as u64
    } else {
        labels[v.index()]
    }
}

/// The dense id carrying original label `label` under a table covering `n`
/// vertices, if any (linear scan; empty table ⇒ identity).
pub fn vertex_of_label(labels: &[u64], n: usize, label: u64) -> Option<VertexId> {
    if labels.is_empty() {
        let v = label as usize;
        return (v < n).then_some(VertexId::from(v));
    }
    labels.iter().position(|&l| l == label).map(VertexId::from)
}

/// Serializes graph + index + labels without requiring ownership (the
/// warm-start engine saves through this from its shared `Arc`s).
pub fn snapshot_to_bytes(g: &CsrGraph, idx: &TrussIndex, labels: &[u64]) -> Bytes {
    let mut buf = BytesMut::with_capacity(HEADER_LEN + 40 * g.num_edges() + 8 * labels.len());
    buf.put_slice(SNAPSHOT_MAGIC);
    buf.put_u32_le(SNAPSHOT_VERSION);
    put_graph_section(&mut buf, g);
    put_u64_section(&mut buf, labels);
    put_u32_section(&mut buf, idx.edge_truss_slice());
    buf.put_u32_le(idx.max_truss());
    let checksum = fnv1a64(&buf);
    buf.put_u64_le(checksum);
    buf.freeze()
}

/// Deserializes a `.ctci` image into its three parts.
///
/// Validation order: magic, version, checksum over everything before the
/// trailer, then section-by-section structural checks. The truss index is
/// rebuilt from the stored per-edge trussness via the same deterministic
/// row sort as a cold [`TrussIndex::build`], so every query answer is
/// byte-identical to a cold build's.
pub fn snapshot_from_bytes(data: &[u8]) -> Result<Snapshot> {
    if data.len() < HEADER_LEN + TRAILER_LEN {
        return Err(GraphError::Corrupt("snapshot shorter than header".into()));
    }
    if &data[..4] != SNAPSHOT_MAGIC {
        return Err(GraphError::Corrupt("bad snapshot magic".into()));
    }
    let mut cursor = &data[4..];
    let version = cursor.get_u32_le();
    if version != SNAPSHOT_VERSION {
        return Err(GraphError::UnsupportedVersion {
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let body = &data[..data.len() - TRAILER_LEN];
    let mut trailer = &data[data.len() - TRAILER_LEN..];
    let want = trailer.get_u64_le();
    let got = fnv1a64(body);
    if got != want {
        return Err(GraphError::Corrupt(format!(
            "checksum mismatch: file says {want:#018x}, content hashes to {got:#018x}"
        )));
    }
    let mut cursor = &body[HEADER_LEN..];
    let graph = get_graph_section(&mut cursor)?;
    let labels = get_u64_section(&mut cursor, "labels")?;
    if !labels.is_empty() && labels.len() != graph.num_vertices() {
        return Err(GraphError::Corrupt(format!(
            "label table has {} entries for {} vertices",
            labels.len(),
            graph.num_vertices()
        )));
    }
    let edge_truss = get_u32_section(&mut cursor, "edge trussness")?;
    if edge_truss.len() != graph.num_edges() {
        return Err(GraphError::Corrupt(format!(
            "trussness section has {} entries for {} edges",
            edge_truss.len(),
            graph.num_edges()
        )));
    }
    if cursor.remaining() < 4 {
        return Err(GraphError::Corrupt("truncated before max trussness".into()));
    }
    let max_truss = cursor.get_u32_le();
    if max_truss != edge_truss.iter().copied().max().unwrap_or(0) {
        return Err(GraphError::Corrupt(format!(
            "stored max trussness {max_truss} disagrees with the trussness array"
        )));
    }
    if cursor.remaining() > 0 {
        return Err(GraphError::Corrupt(format!(
            "{} trailing bytes after the truss section",
            cursor.remaining()
        )));
    }
    let decomp = TrussDecomposition {
        edge_truss,
        max_truss,
    };
    let index = TrussIndex::from_decomposition(&graph, &decomp);
    Ok(Snapshot {
        graph,
        index,
        labels,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_graph;
    use ctc_graph::graph_from_edges;

    fn fig1_snapshot() -> Snapshot {
        Snapshot::build(figure1_graph())
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = fig1_snapshot()
            .with_labels((0..12).map(|i| 1000 + i as u64).collect())
            .unwrap();
        let loaded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(loaded.graph, snap.graph);
        assert_eq!(
            loaded.index.edge_truss_slice(),
            snap.index.edge_truss_slice()
        );
        assert_eq!(loaded.index.max_truss(), snap.index.max_truss());
        assert_eq!(loaded.labels, snap.labels);
        for v in snap.graph.vertices() {
            assert_eq!(loaded.index.sorted_row(v), snap.index.sorted_row(v));
            assert_eq!(loaded.index.vertex_truss(v), snap.index.vertex_truss(v));
        }
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("ctc_snapshot_unit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.ctci");
        let snap = fig1_snapshot();
        snap.save(&path).unwrap();
        let loaded = Snapshot::load(&path).unwrap();
        assert_eq!(loaded.graph, snap.graph);
        assert_eq!(
            loaded.index.edge_truss_slice(),
            snap.index.edge_truss_slice()
        );
    }

    #[test]
    fn every_truncation_is_an_error() {
        let raw = fig1_snapshot().to_bytes();
        for cut in 0..raw.len() {
            assert!(
                Snapshot::from_bytes(&raw[..cut]).is_err(),
                "truncation to {cut} bytes accepted"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_an_error() {
        let raw = fig1_snapshot().to_bytes().to_vec();
        for i in 0..raw.len() {
            let mut bad = raw.clone();
            bad[i] ^= 0x01;
            assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "flip at byte {i} accepted"
            );
        }
    }

    #[test]
    fn newer_version_is_typed_not_corrupt() {
        let mut raw = fig1_snapshot().to_bytes().to_vec();
        raw[4] = 2; // version field
        assert_eq!(
            Snapshot::from_bytes(&raw).unwrap_err(),
            GraphError::UnsupportedVersion {
                found: 2,
                supported: SNAPSHOT_VERSION
            }
        );
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let mut raw = fig1_snapshot().to_bytes().to_vec();
        raw[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(&raw).unwrap_err(),
            GraphError::Corrupt(_)
        ));
    }

    #[test]
    fn wrong_label_count_rejected() {
        let snap = fig1_snapshot();
        assert!(snap.with_labels(vec![1, 2, 3]).is_err());
    }

    #[test]
    fn label_resolution_identity_and_table() {
        let g = graph_from_edges(&[(0, 1), (1, 2)]);
        let bare = Snapshot::build(g.clone());
        assert_eq!(bare.label_of(VertexId(1)), 1);
        assert_eq!(bare.vertex_of_label(2), Some(VertexId(2)));
        assert_eq!(bare.vertex_of_label(99), None);
        let labeled = Snapshot::build(g).with_labels(vec![50, 60, 70]).unwrap();
        assert_eq!(labeled.label_of(VertexId(1)), 60);
        assert_eq!(labeled.vertex_of_label(70), Some(VertexId(2)));
        assert_eq!(labeled.vertex_of_label(0), None);
    }

    #[test]
    fn empty_graph_snapshots() {
        let g = graph_from_edges(&[]);
        let snap = Snapshot::build(g);
        let loaded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(loaded.graph.num_vertices(), 0);
        assert_eq!(loaded.index.max_truss(), 0);
    }
}
