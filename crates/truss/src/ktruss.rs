//! K-truss extraction helpers on top of the index.

use crate::index::TrussIndex;
use ctc_graph::{CsrGraph, EdgeId, UnionFind, VertexId};

/// All edges with trussness ≥ `k` (the maximal, possibly disconnected,
/// k-truss of the indexed graph).
pub fn ktruss_edges(idx: &TrussIndex, k: u32) -> Vec<EdgeId> {
    idx.edge_truss_slice()
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t >= k)
        .map(|(e, _)| EdgeId::from(e))
        .collect()
}

/// Connected components of the maximal k-truss, each as an edge list.
///
/// These are the paper's "maximal connected k-trusses"; `FindG0` returns the
/// one covering the query set.
pub fn connected_ktruss_components(g: &CsrGraph, idx: &TrussIndex, k: u32) -> Vec<Vec<EdgeId>> {
    let edges = ktruss_edges(idx, k);
    let mut uf = UnionFind::new(g.num_vertices());
    for &e in &edges {
        let (u, v) = g.edge_endpoints(e);
        uf.union(u.0, v.0);
    }
    let mut by_rep: ctc_graph::FxHashMap<u32, Vec<EdgeId>> = Default::default();
    for &e in &edges {
        let (u, _) = g.edge_endpoints(e);
        by_rep.entry(uf.find(u.0)).or_default().push(e);
    }
    let mut comps: Vec<Vec<EdgeId>> = by_rep.into_values().collect();
    comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
    comps
}

/// Vertices covered by an edge list (ascending, deduplicated).
pub fn edge_list_vertices(g: &CsrGraph, edges: &[EdgeId]) -> Vec<VertexId> {
    let mut vs: Vec<u32> = Vec::with_capacity(edges.len());
    for &e in edges {
        let (u, v) = g.edge_endpoints(e);
        vs.push(u.0);
        vs.push(v.0);
    }
    vs.sort_unstable();
    vs.dedup();
    vs.into_iter().map(VertexId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::{figure1_graph, figure4_graph};
    use crate::index::TrussIndex;

    #[test]
    fn figure4_level4_has_two_components() {
        let g = figure4_graph();
        let idx = TrussIndex::build(&g);
        let comps = connected_ktruss_components(&g, &idx, 4);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 6);
        assert_eq!(comps[1].len(), 6);
        let comps2 = connected_ktruss_components(&g, &idx, 2);
        assert_eq!(comps2.len(), 1);
        assert_eq!(comps2[0].len(), 13);
    }

    #[test]
    fn figure1_level4_is_one_component() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        let comps = connected_ktruss_components(&g, &idx, 4);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].len(), 23);
        let vs = edge_list_vertices(&g, &comps[0]);
        assert_eq!(vs.len(), 11);
    }

    #[test]
    fn level_above_max_is_empty() {
        let g = figure1_graph();
        let idx = TrussIndex::build(&g);
        assert!(ktruss_edges(&idx, idx.max_truss() + 1).is_empty());
        assert!(connected_ktruss_components(&g, &idx, 99).is_empty());
    }
}
