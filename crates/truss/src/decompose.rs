//! Truss decomposition: compute the trussness of every edge.
//!
//! Implements the in-memory peeling algorithm of Wang & Cheng (PVLDB'12,
//! the paper's \[29\]): repeatedly remove the edge of minimum support,
//! assigning it trussness `sup + 2`, and decrement the supports of the two
//! other edges of each triangle it closed. A bucket queue keyed by support
//! gives `O(1)` re-prioritization, for `O(m^{1.5})` total time.
//!
//! [`truss_decomposition_par`] is the multi-core variant: instead of one
//! edge at a time, it peels whole same-trussness *frontiers* — every live
//! edge whose support has fallen to `k − 2` — concurrently, in the style of
//! the PKT algorithm (Kabir & Madduri, HPEC'17). Trussness is a
//! well-defined function of the graph, so both paths produce byte-identical
//! arrays; the serial path remains the correctness oracle for the parallel
//! one.

use ctc_graph::{
    edge_supports, edge_supports_par, BitsetAdjacency, BitsetBuffers, CsrGraph, DynGraph, EdgeId,
    Parallelism, VertexId, DEFAULT_DENSE_DEGREE,
};
use std::sync::atomic::{AtomicU32, Ordering};

/// The result of a truss decomposition.
#[derive(Clone, Debug)]
pub struct TrussDecomposition {
    /// `edge_truss[e]` = trussness of edge `e` (≥ 2).
    pub edge_truss: Vec<u32>,
    /// Maximum edge trussness, `τ̄(∅)` in the paper (2 for triangle-free
    /// graphs with at least one edge, 0 for edgeless graphs).
    pub max_truss: u32,
}

impl TrussDecomposition {
    /// Trussness of edge `e`.
    #[inline]
    pub fn truss(&self, e: EdgeId) -> u32 {
        self.edge_truss[e.index()]
    }

    /// Vertex trussness `τ(v) = max` incident edge trussness (0 if
    /// isolated).
    pub fn vertex_truss(&self, g: &CsrGraph, v: VertexId) -> u32 {
        g.neighbor_edge_ids(v)
            .iter()
            .map(|&e| self.edge_truss[e as usize])
            .max()
            .unwrap_or(0)
    }

    /// Vertex trussness for every vertex.
    pub fn vertex_truss_all(&self, g: &CsrGraph) -> Vec<u32> {
        (0..g.num_vertices())
            .map(|v| self.vertex_truss(g, VertexId::from(v)))
            .collect()
    }
}

/// Bucket queue over edges keyed by current support.
///
/// `sorted` holds all edge ids ordered by support; `pos[e]` locates an edge;
/// `bin_start[s]` is the first index of the bucket with support `s`.
/// Decrementing an edge's support swaps it with the first element of its
/// bucket — the classic O(1) trick from k-core decomposition.
#[derive(Clone, Debug, Default)]
struct SupportBuckets {
    sorted: Vec<u32>,
    pos: Vec<u32>,
    bin_start: Vec<u32>,
    sup: Vec<u32>,
    cursor: Vec<u32>,
}

impl SupportBuckets {
    /// Rebuilds the bucket queue for `sup`, reusing pooled capacity.
    fn reset_from(&mut self, sup: &[u32]) {
        let m = sup.len();
        self.sup.clear();
        self.sup.extend_from_slice(sup);
        let max_sup = sup.iter().copied().max().unwrap_or(0) as usize;
        self.bin_start.clear();
        self.bin_start.resize(max_sup + 2, 0);
        for &s in sup {
            self.bin_start[s as usize] += 1;
        }
        let mut acc = 0u32;
        for slot in self.bin_start.iter_mut() {
            let c = *slot;
            *slot = acc;
            acc += c;
        }
        self.cursor.clear();
        self.cursor.extend_from_slice(&self.bin_start);
        self.sorted.clear();
        self.sorted.resize(m, 0);
        self.pos.clear();
        self.pos.resize(m, 0);
        for (e, &s) in sup.iter().enumerate() {
            let p = self.cursor[s as usize];
            self.sorted[p as usize] = e as u32;
            self.pos[e] = p;
            self.cursor[s as usize] += 1;
        }
    }

    /// Decrements `e`'s support by one, keeping buckets valid. Must only be
    /// called when `sup[e] > floor` for the current processing frontier.
    fn decrement(&mut self, e: u32) {
        let s = self.sup[e as usize];
        debug_assert!(s > 0);
        let p = self.pos[e as usize];
        let first = self.bin_start[s as usize];
        // Swap e with the first edge of its bucket, then shrink the bucket.
        let other = self.sorted[first as usize];
        self.sorted.swap(first as usize, p as usize);
        self.pos[e as usize] = first;
        self.pos[other as usize] = p;
        self.bin_start[s as usize] = first + 1;
        self.sup[e as usize] = s - 1;
    }
}

/// Pooled working memory for [`truss_decomposition_with`]: the bitset
/// adjacency slab, the flat triangle pre-index, the `peeled` flags, and the
/// bucket-queue arrays. One scratch serves any number of decompositions;
/// a warmed scratch makes repeated per-query decompositions (LCTC's locate
/// phase) allocation-free.
#[derive(Clone, Debug, Default)]
pub struct DecomposeScratch {
    bitset: BitsetBuffers,
    sup: Vec<u32>,
    tri_start: Vec<u32>,
    tri: Vec<u32>,
    peeled: Vec<bool>,
    touched: Vec<u32>,
    buckets: SupportBuckets,
    /// Lazy bucket queue for the pre-index peel: `lazy[s]` holds edges whose
    /// support last *became* `s`; stale entries are skipped on pop.
    lazy: Vec<Vec<u32>>,
}

impl DecomposeScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Ceiling on the triangle pre-index size, in (edge, edge) slot pairs.
/// Graphs whose triangle mass exceeds it fall back to the DynGraph merge
/// loop rather than materializing a huge flat index.
fn pre_index_cap_pairs(m: usize) -> u64 {
    (32 * m as u64).max(1 << 20)
}

/// Runs the truss decomposition on `g`.
pub fn truss_decomposition(g: &CsrGraph) -> TrussDecomposition {
    truss_decomposition_with(g, &mut DecomposeScratch::new())
}

/// Runs the truss decomposition on `g` using pooled `scratch` buffers.
///
/// Identical output to [`truss_decomposition`] (which delegates here with a
/// fresh scratch). The hot path replaces the per-edge adjacency merges of
/// the classic peel with a flat *triangle pre-index*: one bitset-kernel
/// sweep lists every triangle's other two edge ids into per-edge slots, and
/// the peel loop then touches only those slots, skipping triangles already
/// broken by a `peeled` flag — no deletion overlay, no merges. Graphs whose
/// triangle mass exceeds the pre-index cap use the classic
/// [`DynGraph`] merge peel instead (same answers, bounded memory).
pub fn truss_decomposition_with(
    g: &CsrGraph,
    scratch: &mut DecomposeScratch,
) -> TrussDecomposition {
    let m = g.num_edges();
    let mut edge_truss = vec![0u32; m];
    if m == 0 {
        return TrussDecomposition {
            edge_truss,
            max_truss: 0,
        };
    }
    let adj =
        BitsetAdjacency::build_in(g, DEFAULT_DENSE_DEGREE, std::mem::take(&mut scratch.bitset));
    // Pass 1: per-edge supports via the intersection kernel (identical to
    // `edge_supports`); their sum is the triangle-slot budget.
    scratch.sup.clear();
    scratch.sup.reserve(m);
    let mut total_pairs = 0u64;
    for (_, u, v) in g.edges() {
        let s = adj.intersection_count(g, u, v);
        total_pairs += s as u64;
        scratch.sup.push(s);
    }
    let use_pre_index = total_pairs <= pre_index_cap_pairs(m) && total_pairs * 2 <= u32::MAX as u64;
    let mut max_truss = 2u32;
    if use_pre_index {
        // Pass 2: flatten every triangle into its owning edge's slot range.
        // Edges are visited in id order and the kernel emits common
        // neighbors in ascending order, so slots are filled sequentially.
        scratch.tri_start.clear();
        scratch.tri_start.reserve(m + 1);
        let mut off = 0u32;
        for &s in &scratch.sup {
            scratch.tri_start.push(off);
            off += 2 * s;
        }
        scratch.tri_start.push(off);
        scratch.tri.clear();
        scratch.tri.reserve(off as usize);
        let tri = &mut scratch.tri;
        for (_, u, v) in g.edges() {
            adj.for_each_common(g, u, v, 0, |_, euw, evw| {
                tri.push(euw.0);
                tri.push(evw.0);
            });
        }
        debug_assert_eq!(scratch.tri.len(), off as usize);
        scratch.peeled.clear();
        scratch.peeled.resize(m, false);
        // Lazy bucket peel: a decrement is one store plus one push — no
        // positional swap maintenance. `lazy[s]` may hold stale entries
        // (the edge moved on or was peeled); the pop re-checks `sup`.
        // Trussness is a confluent fixpoint of the peel, so the different
        // within-level order cannot change any output value.
        let max_sup = scratch.sup.iter().copied().max().unwrap_or(0) as usize;
        for bucket in scratch.lazy.iter_mut() {
            bucket.clear();
        }
        if scratch.lazy.len() <= max_sup {
            scratch.lazy.resize_with(max_sup + 1, Vec::new);
        }
        for (e, &s) in scratch.sup.iter().enumerate() {
            scratch.lazy[s as usize].push(e as u32);
        }
        for k in 0..=max_sup {
            let mut i = 0;
            while i < scratch.lazy[k].len() {
                let e = scratch.lazy[k][i] as usize;
                i += 1;
                if scratch.peeled[e] || scratch.sup[e] as usize != k {
                    continue; // stale entry: the edge moved on or is gone
                }
                scratch.peeled[e] = true;
                let truss = k as u32 + 2;
                edge_truss[e] = truss;
                max_truss = max_truss.max(truss);
                // A triangle survives iff neither of its other two edges
                // has been peeled — exactly the aliveness the deletion
                // overlay's merge used to test. Supports never drop below
                // the current level (the old `k_floor` clamp).
                let (a, b) = (
                    scratch.tri_start[e] as usize,
                    scratch.tri_start[e + 1] as usize,
                );
                for pair in scratch.tri[a..b].chunks_exact(2) {
                    let (e1, e2) = (pair[0] as usize, pair[1] as usize);
                    if scratch.peeled[e1] || scratch.peeled[e2] {
                        continue;
                    }
                    for f in [e1, e2] {
                        if scratch.sup[f] as usize > k {
                            scratch.sup[f] -= 1;
                            scratch.lazy[scratch.sup[f] as usize].push(f as u32);
                        }
                    }
                }
            }
            scratch.lazy[k].clear();
        }
    } else {
        scratch.buckets.reset_from(&scratch.sup);
        // Peel edges in ascending current-support order. `k_floor` tracks
        // the highest support seen at removal time; supports of later edges
        // are clamped to it implicitly because `decrement` is skipped when
        // a neighbor edge's support has already fallen to the frontier.
        let mut k_floor = 0u32;
        let buckets = &mut scratch.buckets;
        let mut live = DynGraph::new(g);
        let touched = &mut scratch.touched;
        for i in 0..m {
            let e = EdgeId(buckets.sorted[i]);
            let s = buckets.sup[e.index()];
            k_floor = k_floor.max(s);
            let truss = k_floor + 2;
            edge_truss[e.index()] = truss;
            max_truss = max_truss.max(truss);
            let (u, v) = g.edge_endpoints(e);
            // Collect first: decrementing re-orders the bucket arrays, which
            // must not race with the common-neighbor merge borrowing `live`.
            touched.clear();
            live.for_each_common_neighbor(u, v, |_, euw, evw| {
                touched.push(euw.0);
                touched.push(evw.0);
            });
            for &f in touched.iter() {
                if buckets.sup[f as usize] > k_floor {
                    buckets.decrement(f);
                }
            }
            live.remove_edge(e);
        }
    }
    scratch.bitset = adj.into_buffers();
    TrussDecomposition {
        edge_truss,
        max_truss,
    }
}

// Edge lifecycle states of the parallel peeling. Transitions are
// LIVE → NEXT (support fell to the frontier threshold mid-cascade),
// NEXT → CURR (promoted when its sub-round starts), CURR → DEAD (peeled);
// the initial per-level scan promotes LIVE → CURR directly.
const LIVE: u32 = 0;
const CURR: u32 = 1;
const NEXT: u32 = 2;
const DEAD: u32 = 3;

/// Runs the truss decomposition on `g` across `par` worker threads,
/// peeling same-trussness frontiers concurrently.
///
/// For each level `k` the frontier is the set of live edges with support
/// `≤ k − 2`; every frontier edge is assigned trussness `k`, its surviving
/// triangles are unwound with atomic support decrements, and edges whose
/// support drops to the threshold join the next sub-round's frontier.
/// A triangle shared by two frontier edges is unwound exactly once (the
/// smaller edge id wins), mirroring the serial algorithm where the second
/// removal finds the triangle already broken.
///
/// `threads = 1` delegates to the serial [`truss_decomposition`]; any
/// thread count produces a byte-identical `edge_truss` array.
///
/// ```
/// use ctc_graph::{graph_from_edges, Parallelism};
/// use ctc_truss::{truss_decomposition, truss_decomposition_par};
///
/// let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3), (3, 4)]);
/// let serial = truss_decomposition(&g);
/// let parallel = truss_decomposition_par(&g, Parallelism::threads(4));
/// assert_eq!(serial.edge_truss, parallel.edge_truss);
/// ```
pub fn truss_decomposition_par(g: &CsrGraph, par: Parallelism) -> TrussDecomposition {
    if par.is_serial() {
        return truss_decomposition(g);
    }
    let m = g.num_edges();
    let mut edge_truss = vec![0u32; m];
    if m == 0 {
        return TrussDecomposition {
            edge_truss,
            max_truss: 0,
        };
    }
    let sup: Vec<AtomicU32> = edge_supports_par(g, par)
        .into_iter()
        .map(AtomicU32::new)
        .collect();
    let state: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(LIVE)).collect();
    let mut live: Vec<u32> = (0..m as u32).collect();
    let mut remaining = m;
    let mut max_truss = 2u32;
    let mut k = 2u32;
    while remaining > 0 {
        live.retain(|&e| state[e as usize].load(Ordering::Relaxed) != DEAD);
        let mut frontier: Vec<u32> = Vec::new();
        for &e in &live {
            if sup[e as usize].load(Ordering::Relaxed) + 2 <= k {
                state[e as usize].store(CURR, Ordering::Relaxed);
                frontier.push(e);
            }
        }
        while !frontier.is_empty() {
            remaining -= frontier.len();
            max_truss = max_truss.max(k);
            for &e in &frontier {
                edge_truss[e as usize] = k;
            }
            // Unwind the frontier's triangles in parallel. Workers only
            // read CURR/DEAD states (both frozen for the whole sub-round),
            // so the racy LIVE → NEXT transitions never change a decrement
            // decision — only which worker first schedules an edge.
            let scheduled: Vec<Vec<u32>> = par.map_chunks(frontier.len(), |range| {
                let mut local_next: Vec<u32> = Vec::new();
                let decrement = |f: u32, out: &mut Vec<u32>| {
                    let prev = sup[f as usize].fetch_sub(1, Ordering::Relaxed);
                    debug_assert!(prev > 0, "support underflow on edge {f}");
                    if prev - 1 + 2 <= k
                        && state[f as usize]
                            .compare_exchange(LIVE, NEXT, Ordering::Relaxed, Ordering::Relaxed)
                            .is_ok()
                    {
                        out.push(f);
                    }
                };
                for &e in &frontier[range] {
                    let (u, v) = g.edge_endpoints(EdgeId(e));
                    let (ru, eu) = (g.neighbors(u), g.neighbor_edge_ids(u));
                    let (rv, ev) = (g.neighbors(v), g.neighbor_edge_ids(v));
                    let (mut i, mut j) = (0usize, 0usize);
                    while i < ru.len() && j < rv.len() {
                        if ru[i] < rv[j] {
                            i += 1;
                        } else if rv[j] < ru[i] {
                            j += 1;
                        } else {
                            let (e1, e2) = (eu[i], ev[j]);
                            let s1 = state[e1 as usize].load(Ordering::Relaxed);
                            let s2 = state[e2 as usize].load(Ordering::Relaxed);
                            if s1 != DEAD && s2 != DEAD {
                                match (s1 == CURR, s2 == CURR) {
                                    // Both peers outlive this sub-round:
                                    // the triangle dies with e alone.
                                    (false, false) => {
                                        decrement(e1, &mut local_next);
                                        decrement(e2, &mut local_next);
                                    }
                                    // A frontier peer shares the triangle:
                                    // exactly one of the two unwinds it.
                                    (true, false) => {
                                        if e < e1 {
                                            decrement(e2, &mut local_next);
                                        }
                                    }
                                    (false, true) => {
                                        if e < e2 {
                                            decrement(e1, &mut local_next);
                                        }
                                    }
                                    // Whole triangle is being peeled now.
                                    (true, true) => {}
                                }
                            }
                            i += 1;
                            j += 1;
                        }
                    }
                }
                local_next
            });
            for &e in &frontier {
                state[e as usize].store(DEAD, Ordering::Relaxed);
            }
            frontier = scheduled.concat();
            for &e in &frontier {
                state[e as usize].store(CURR, Ordering::Relaxed);
            }
        }
        k += 1;
    }
    TrussDecomposition {
        edge_truss,
        max_truss,
    }
}

/// Trussness of a *standalone* graph: `2 + min edge support` (Def. 2),
/// or 0 when the graph has no edges.
pub fn graph_trussness(g: &CsrGraph) -> u32 {
    if g.num_edges() == 0 {
        return 0;
    }
    2 + edge_supports(g).iter().copied().min().unwrap_or(0)
}

/// `true` if every edge of `g` has support ≥ `k − 2` within `g`.
pub fn is_k_truss(g: &CsrGraph, k: u32) -> bool {
    if g.num_edges() == 0 {
        return true; // vacuously: no edge violates the bound
    }
    edge_supports(g).iter().all(|&s| s + 2 >= k)
}

/// Reference decomposition used as a test oracle: repeatedly strip edges of
/// support `< k − 2` for increasing `k`. O(m²)-ish; test-only.
pub fn naive_truss_decomposition(g: &CsrGraph) -> TrussDecomposition {
    let m = g.num_edges();
    let mut edge_truss = vec![0u32; m];
    if m == 0 {
        return TrussDecomposition {
            edge_truss,
            max_truss: 0,
        };
    }
    let mut live = DynGraph::new(g);
    let mut k = 2u32;
    let mut max_truss = 2u32;
    while live.num_alive_edges() > 0 {
        loop {
            let doomed: Vec<EdgeId> = live
                .alive_edges()
                .filter(|&(_, u, v)| {
                    let mut c = 0u32;
                    live.for_each_common_neighbor(u, v, |_, _, _| c += 1);
                    c + 2 < k + 1 // support < k-1, i.e. not in the (k+1)-truss
                })
                .map(|(e, _, _)| e)
                .collect();
            if doomed.is_empty() {
                break;
            }
            for e in doomed {
                if live.is_edge_alive(e) {
                    edge_truss[e.index()] = k;
                    max_truss = max_truss.max(k);
                    live.remove_edge(e);
                }
            }
        }
        k += 1;
    }
    TrussDecomposition {
        edge_truss,
        max_truss,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ctc_graph::graph_from_edges;

    #[test]
    fn k4_is_a_4_truss() {
        let g = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        let d = truss_decomposition(&g);
        assert!(d.edge_truss.iter().all(|&t| t == 4));
        assert_eq!(d.max_truss, 4);
        assert_eq!(graph_trussness(&g), 4);
        assert!(is_k_truss(&g, 4));
        assert!(!is_k_truss(&g, 5));
    }

    #[test]
    fn triangle_free_graph_is_all_2() {
        let g = graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let d = truss_decomposition(&g);
        assert!(d.edge_truss.iter().all(|&t| t == 2));
        assert_eq!(d.max_truss, 2);
    }

    #[test]
    fn pendant_edge_on_triangle() {
        // Triangle {0,1,2} plus pendant 2-3: triangle edges τ=3, pendant τ=2.
        let g = graph_from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let d = truss_decomposition(&g);
        let pendant = g.edge_between(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(d.truss(pendant), 2);
        for (e, _, _) in g.edges() {
            if e != pendant {
                assert_eq!(d.truss(e), 3);
            }
        }
        assert_eq!(d.vertex_truss(&g, VertexId(2)), 3);
        assert_eq!(d.vertex_truss(&g, VertexId(3)), 2);
    }

    #[test]
    fn paper_example_support_vs_truss() {
        // §2: τ(e(q2,v2)) = 4 even though sup(e) = 3 in G. Figure 1 graph.
        let g = crate::fixtures::figure1_graph();
        let f = crate::fixtures::Figure1Ids::default();
        let d = truss_decomposition(&g);
        let e = g.edge_between(f.q2, f.v2).unwrap();
        assert_eq!(ctc_graph::support_of(&g, f.q2, f.v2), Some(3));
        assert_eq!(d.truss(e), 4);
        // Whole grey region is a 4-truss; t's edges are trussness 2.
        let et1 = g.edge_between(f.q1, f.t).unwrap();
        let et2 = g.edge_between(f.t, f.q3).unwrap();
        assert_eq!(d.truss(et1), 2);
        assert_eq!(d.truss(et2), 2);
        assert_eq!(d.max_truss, 4);
        assert_eq!(d.vertex_truss(&g, f.q2), 4);
    }

    #[test]
    fn matches_naive_oracle_on_mixed_graph() {
        let g = graph_from_edges(&[
            // K5 on 0..5 → 5-truss
            (0, 1),
            (0, 2),
            (0, 3),
            (0, 4),
            (1, 2),
            (1, 3),
            (1, 4),
            (2, 3),
            (2, 4),
            (3, 4),
            // triangle hanging off vertex 4
            (4, 5),
            (5, 6),
            (4, 6),
            // chain
            (6, 7),
            (7, 8),
        ]);
        let fast = truss_decomposition(&g);
        let slow = naive_truss_decomposition(&g);
        assert_eq!(fast.edge_truss, slow.edge_truss);
        assert_eq!(fast.max_truss, 5);
    }

    #[test]
    fn empty_graph() {
        let g = graph_from_edges(&[]);
        let d = truss_decomposition(&g);
        assert_eq!(d.max_truss, 0);
        assert_eq!(graph_trussness(&g), 0);
        assert!(is_k_truss(&g, 99));
    }

    /// The parallel frontier peeling must agree with the serial bucket
    /// peeling byte for byte on every fixture, at several thread counts.
    #[test]
    fn parallel_matches_serial_on_all_fixtures() {
        let graphs: Vec<(&str, CsrGraph)> = vec![
            ("figure1", crate::fixtures::figure1_graph()),
            ("figure4", crate::fixtures::figure4_graph()),
            ("k4", crate::fixtures::clique(4)),
            ("k7", crate::fixtures::clique(7)),
            ("c4", graph_from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0)])),
            ("single_edge", graph_from_edges(&[(0, 1)])),
            ("empty", graph_from_edges(&[])),
            (
                "mixed",
                graph_from_edges(&[
                    (0, 1),
                    (0, 2),
                    (0, 3),
                    (0, 4),
                    (1, 2),
                    (1, 3),
                    (1, 4),
                    (2, 3),
                    (2, 4),
                    (3, 4),
                    (4, 5),
                    (5, 6),
                    (4, 6),
                    (6, 7),
                    (7, 8),
                ]),
            ),
        ];
        for (name, g) in &graphs {
            let serial = truss_decomposition(g);
            for threads in [2usize, 4, 8] {
                let par = truss_decomposition_par(g, Parallelism::threads(threads));
                assert_eq!(
                    par.edge_truss, serial.edge_truss,
                    "{name} diverged at threads={threads}"
                );
                assert_eq!(par.max_truss, serial.max_truss, "{name} max_truss");
            }
        }
    }

    #[test]
    fn parallel_with_one_thread_is_the_serial_path() {
        let g = crate::fixtures::figure1_graph();
        let serial = truss_decomposition(&g);
        let one = truss_decomposition_par(&g, Parallelism::serial());
        assert_eq!(one.edge_truss, serial.edge_truss);
        assert_eq!(one.max_truss, serial.max_truss);
    }

    #[test]
    fn two_overlapping_k4s_share_peel_level() {
        // Two K4s sharing an edge: the shared edge has higher support but
        // still trussness 4 (no 5-truss exists).
        let g = graph_from_edges(&[
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
        ]);
        let d = truss_decomposition(&g);
        assert_eq!(d.max_truss, 4);
        let shared = g.edge_between(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(d.truss(shared), 4);
    }
}
