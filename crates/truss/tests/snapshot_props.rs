//! Property tests for the `.ctci` snapshot: round-tripping through bytes
//! is lossless on random graphs, and any single-byte corruption or
//! truncation is rejected with an error, never a panic.

use ctc_gen::planted::planted_equal;
use ctc_gen::random::{barabasi_albert, erdos_renyi_nm};
use ctc_graph::error::GraphError;
use ctc_graph::{CsrGraph, VertexId};
use ctc_truss::{find_g0, Snapshot, TrussIndex};
use proptest::prelude::*;

/// Round-trips `g` through snapshot bytes and checks the loaded state is
/// indistinguishable from the cold-built one — structurally and through
/// the query path (`find_g0` for assorted query sets).
fn assert_roundtrip_lossless(g: &CsrGraph, label: &str) {
    let cold = TrussIndex::build(g);
    let labels: Vec<u64> = (0..g.num_vertices()).map(|i| 10_000 + i as u64).collect();
    let snap = Snapshot::build(g.clone())
        .with_labels(labels.clone())
        .unwrap();
    let loaded = Snapshot::from_bytes(&snap.to_bytes()).unwrap();
    assert_eq!(&loaded.graph, g, "{label}: graph changed");
    assert_eq!(loaded.labels, labels, "{label}: labels changed");
    assert_eq!(
        loaded.index.edge_truss_slice(),
        cold.edge_truss_slice(),
        "{label}: trussness changed"
    );
    assert_eq!(loaded.index.max_truss(), cold.max_truss());
    for v in g.vertices() {
        assert_eq!(
            loaded.index.sorted_row(v),
            cold.sorted_row(v),
            "{label}: truss-sorted row of {v} changed"
        );
        assert_eq!(loaded.index.vertex_truss(v), cold.vertex_truss(v));
    }
    // Query answers must be byte-identical, success or failure alike.
    let n = g.num_vertices();
    if n == 0 {
        return;
    }
    let queries: Vec<Vec<VertexId>> = vec![
        vec![VertexId(0)],
        vec![VertexId((n / 2) as u32)],
        vec![VertexId(0), VertexId((n - 1) as u32)],
    ];
    for q in &queries {
        let a = find_g0(g, &cold, q);
        let b = find_g0(&loaded.graph, &loaded.index, q);
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.k, y.k, "{label}: k diverged for {q:?}");
                assert_eq!(x.vertices, y.vertices, "{label}: G0 diverged for {q:?}");
                assert_eq!(x.edges, y.edges, "{label}: G0 edges diverged for {q:?}");
            }
            (Err(x), Err(y)) => assert_eq!(x, y, "{label}: errors diverged for {q:?}"),
            other => panic!("{label}: cold/loaded disagree for {q:?}: {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn roundtrip_on_random_graphs(
        n in 4usize..60,
        edges_per_vertex in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        assert_roundtrip_lossless(&g, "erdos_renyi_nm");
    }

    #[test]
    fn roundtrip_on_preferential_attachment(
        n in 10usize..80,
        m_per_node in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let g = barabasi_albert(n, m_per_node, seed);
        assert_roundtrip_lossless(&g, "barabasi_albert");
    }

    #[test]
    fn roundtrip_on_planted_communities(
        communities in 2usize..5,
        size in 5usize..16,
        seed in 0u64..10_000,
    ) {
        let gt = planted_equal(communities, size, 0.7, 1.0, seed);
        assert_roundtrip_lossless(&gt.graph, "planted_equal");
    }

    #[test]
    fn random_single_byte_corruption_is_always_rejected(
        n in 4usize..40,
        seed in 0u64..10_000,
        flip_seed in 1u64..10_000,
    ) {
        let g = erdos_renyi_nm(n, 3 * n, seed);
        let raw = Snapshot::build(g).to_bytes().to_vec();
        // Deterministic pseudo-random positions/masks derived from the seed.
        let pos = (flip_seed as usize * 7919) % raw.len();
        let mask = ((flip_seed >> 3) as u8 % 255) + 1; // never 0
        let mut bad = raw.clone();
        bad[pos] ^= mask;
        prop_assert!(
            Snapshot::from_bytes(&bad).is_err(),
            "flip {mask:#x} at byte {pos}/{} accepted", raw.len()
        );
        // Truncation at a random cut is also always an error.
        let cut = (flip_seed as usize * 104729) % raw.len();
        prop_assert!(Snapshot::from_bytes(&raw[..cut]).is_err(), "cut at {cut} accepted");
    }
}

/// The three typed failure modes, on a fixed graph: truncation and bit
/// flips are [`GraphError::Corrupt`] (or at least errors), a newer format
/// version is [`GraphError::UnsupportedVersion`].
#[test]
fn corruption_error_taxonomy() {
    let g = erdos_renyi_nm(20, 60, 42);
    let raw = Snapshot::build(g).to_bytes().to_vec();
    assert!(Snapshot::from_bytes(&[]).is_err());
    assert!(Snapshot::from_bytes(&raw[..raw.len() / 2]).is_err());
    let mut flipped = raw.clone();
    *flipped.last_mut().unwrap() ^= 0xFF; // trailer byte: checksum mismatch
    assert!(matches!(
        Snapshot::from_bytes(&flipped).unwrap_err(),
        GraphError::Corrupt(_)
    ));
    let mut newer = raw.clone();
    newer[4] = 200;
    assert!(matches!(
        Snapshot::from_bytes(&newer).unwrap_err(),
        GraphError::UnsupportedVersion { found: 200, .. }
    ));
}
