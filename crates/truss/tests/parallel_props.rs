//! Property tests pinning the parallel frontier-peeling decomposition to
//! the serial oracle: at 2/4/8 threads the per-edge trussness array must be
//! byte-identical to `truss_decomposition`'s on random and planted graphs.

use ctc_gen::planted::{planted_equal, planted_partition, PlantedConfig};
use ctc_gen::random::{barabasi_albert, erdos_renyi_nm};
use ctc_graph::{edge_supports, edge_supports_par, CsrGraph, Parallelism};
use ctc_truss::{truss_decomposition, truss_decomposition_par};
use proptest::prelude::*;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

fn assert_parallel_matches_serial(g: &CsrGraph, label: &str) {
    let serial = truss_decomposition(g);
    let sup = edge_supports(g);
    for t in THREAD_COUNTS {
        let par = Parallelism::threads(t);
        let parallel = truss_decomposition_par(g, par);
        assert_eq!(
            parallel.edge_truss,
            serial.edge_truss,
            "{label}: trussness diverged at {t} threads (n={}, m={})",
            g.num_vertices(),
            g.num_edges()
        );
        assert_eq!(
            parallel.max_truss, serial.max_truss,
            "{label}: max_truss diverged at {t} threads"
        );
        assert_eq!(
            edge_supports_par(g, par),
            sup,
            "{label}: supports diverged at {t} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn parallel_matches_serial_on_random_graphs(
        n in 4usize..80,
        edges_per_vertex in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        assert_parallel_matches_serial(&g, "erdos_renyi_nm");
    }

    #[test]
    fn parallel_matches_serial_on_preferential_attachment(
        n in 10usize..120,
        m_per_node in 2usize..5,
        seed in 0u64..10_000,
    ) {
        // BA graphs have the skewed degree distributions where the frontier
        // cascades run deepest.
        let g = barabasi_albert(n, m_per_node, seed);
        assert_parallel_matches_serial(&g, "barabasi_albert");
    }

    #[test]
    fn parallel_matches_serial_on_planted_graphs(
        communities in 2usize..5,
        size in 6usize..20,
        seed in 0u64..10_000,
    ) {
        let gt = planted_equal(communities, size, 0.7, 1.0, seed);
        assert_parallel_matches_serial(&gt.graph, "planted_equal");
    }
}

/// One denser configuration with background noise, run deterministically:
/// planted partitions give the many-truss-level structure where the
/// per-level frontier logic (tie-breaks, cross-frontier triangles) is
/// stressed hardest.
#[test]
fn parallel_matches_serial_on_noisy_partition() {
    let gt = planted_partition(&PlantedConfig {
        community_sizes: vec![24, 16, 12, 8],
        background_vertices: 20,
        p_in: 0.8,
        noise_edges_per_vertex: 2.0,
        seed: 0xC0FFEE,
    });
    assert_parallel_matches_serial(&gt.graph, "planted_partition");
}

/// High thread counts relative to the frontier size force the chunking
/// edge cases (more workers than frontier edges).
#[test]
fn thread_count_exceeding_edge_count_is_safe() {
    let g = erdos_renyi_nm(12, 24, 3);
    let serial = truss_decomposition(&g);
    let parallel = truss_decomposition_par(&g, Parallelism::threads(64));
    assert_eq!(parallel.edge_truss, serial.edge_truss);
}
