//! Property tests pinning the bitset-kernel locate path to merge-based
//! oracles at the truss layer: `find_g0` under pooled scratch reuse,
//! `tcp_communities` against a sorted-merge reimplementation, and the
//! triangle pre-index decomposition against itself across scratch reuse —
//! byte-identical on ER / BA / planted graphs.

use ctc_gen::planted::planted_equal;
use ctc_gen::random::{barabasi_albert, erdos_renyi_nm};
use ctc_graph::{common_neighbors, CsrGraph, VertexId};
use ctc_truss::{
    find_g0, find_g0_with, tcp_communities, truss_decomposition, truss_decomposition_with,
    DecomposeScratch, FindScratch, TcpCommunity, TrussIndex,
};
use proptest::prelude::*;

/// Merge-oracle reimplementation of `tcp_communities`: same traversal
/// structure, but triangle adjacency via `common_neighbors` + explicit
/// `edge_between` probes instead of the bitset kernel. Output must be
/// byte-identical (both sort community edges and order communities by
/// descending size with stable ties).
fn tcp_oracle(g: &CsrGraph, idx: &TrussIndex, q: VertexId, k: u32) -> Vec<TcpCommunity> {
    let mut visited = vec![false; g.num_edges()];
    let mut out = Vec::new();
    for (_, e, _) in idx.incident_at_least(q, k) {
        if visited[e.index()] {
            continue;
        }
        let mut comm = Vec::new();
        let mut stack = vec![e];
        visited[e.index()] = true;
        while let Some(cur) = stack.pop() {
            comm.push(cur);
            let (u, v) = g.edge_endpoints(cur);
            for w in common_neighbors(g, u, v) {
                let euw = g.edge_between(u, w).expect("triangle side edge");
                let evw = g.edge_between(v, w).expect("triangle side edge");
                if idx.edge_truss(euw) >= k && idx.edge_truss(evw) >= k {
                    for f in [euw, evw] {
                        if !visited[f.index()] {
                            visited[f.index()] = true;
                            stack.push(f);
                        }
                    }
                }
            }
        }
        comm.sort_unstable();
        out.push(TcpCommunity { k, edges: comm });
    }
    out.sort_by_key(|c| std::cmp::Reverse(c.edges.len()));
    out
}

/// Runs every cross-check on one graph; `scratch` persists across calls so
/// reuse across *different* graphs is exercised too.
fn check_truss_kernels(
    g: &CsrGraph,
    find: &mut FindScratch,
    decomp: &mut DecomposeScratch,
    seed: u64,
) -> Result<(), TestCaseError> {
    // Decomposition: pooled scratch (triangle pre-index path) must match a
    // fresh run byte-for-byte.
    let fresh = truss_decomposition(g);
    let pooled = truss_decomposition_with(g, decomp);
    prop_assert_eq!(
        &pooled.edge_truss,
        &fresh.edge_truss,
        "trussness diverged under scratch reuse"
    );
    prop_assert_eq!(pooled.max_truss, fresh.max_truss);

    let idx = TrussIndex::build(g);
    let n = g.num_vertices();
    if n == 0 {
        return Ok(());
    }
    // A few deterministic pseudo-random queries per graph; both success and
    // error outcomes must agree between pooled and fresh locate.
    for i in 0..4u64 {
        let a = VertexId(((seed.wrapping_mul(31).wrapping_add(i * 7)) % n as u64) as u32);
        let b = VertexId(((seed.wrapping_mul(17).wrapping_add(i * 13)) % n as u64) as u32);
        let q = if i % 2 == 0 { vec![a] } else { vec![a, b] };
        let fresh = find_g0(g, &idx, &q);
        let pooled = find_g0_with(g, &idx, &q, find);
        match (&fresh, &pooled) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.k, y.k, "G0 trussness diverged for {:?}", &q);
                prop_assert_eq!(&x.edges, &y.edges, "G0 edges diverged for {:?}", &q);
                prop_assert_eq!(
                    &x.vertices,
                    &y.vertices,
                    "G0 vertices diverged for {:?}",
                    &q
                );
            }
            (Err(x), Err(y)) => {
                prop_assert_eq!(
                    format!("{x:?}"),
                    format!("{y:?}"),
                    "errors diverged for {:?}",
                    &q
                )
            }
            _ => prop_assert!(
                false,
                "pooled/fresh outcome diverged for {:?}: {:?} vs {:?}",
                &q,
                fresh,
                pooled
            ),
        }
        // TCP communities from the same query vertex at every feasible k.
        for k in 3..=idx.max_truss().min(6) {
            let kernel = tcp_communities(g, &idx, a, k);
            let oracle = tcp_oracle(g, &idx, a, k);
            prop_assert_eq!(
                kernel.len(),
                oracle.len(),
                "tcp community count diverged at k={}",
                k
            );
            for (x, y) in kernel.iter().zip(&oracle) {
                prop_assert_eq!(x.k, y.k);
                prop_assert_eq!(&x.edges, &y.edges, "tcp edges diverged at k={}", k);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn kernels_match_oracles_on_er_graphs(
        n in 4usize..60,
        edges_per_vertex in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        let mut find = FindScratch::default();
        let mut decomp = DecomposeScratch::default();
        check_truss_kernels(&g, &mut find, &mut decomp, seed)?;
    }

    #[test]
    fn kernels_match_oracles_on_ba_graphs(
        n in 6usize..60,
        attach in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let g = barabasi_albert(n, attach, seed);
        let mut find = FindScratch::default();
        let mut decomp = DecomposeScratch::default();
        check_truss_kernels(&g, &mut find, &mut decomp, seed)?;
    }

    #[test]
    fn kernels_match_oracles_on_planted_graphs(
        communities in 2usize..4,
        size in 4usize..10,
        seed in 0u64..10_000,
    ) {
        let gt = planted_equal(communities, size, 0.85, 0.05, seed);
        let mut find = FindScratch::default();
        let mut decomp = DecomposeScratch::default();
        check_truss_kernels(&gt.graph, &mut find, &mut decomp, seed)?;
    }
}

/// One long-lived scratch pair across a stream of differently-sized graphs
/// — the engine-pool usage pattern (grow, shrink, error paths in between).
#[test]
fn scratch_survives_graph_stream() {
    let mut find = FindScratch::default();
    let mut decomp = DecomposeScratch::default();
    for (i, g) in [
        erdos_renyi_nm(40, 160, 1),
        erdos_renyi_nm(5, 6, 2),
        barabasi_albert(50, 3, 3),
        erdos_renyi_nm(0, 0, 4),
        planted_equal(3, 8, 0.9, 0.05, 5).graph,
    ]
    .iter()
    .enumerate()
    {
        check_truss_kernels(g, &mut find, &mut decomp, i as u64)
            .expect("pooled kernels agree across the graph stream");
    }
}
