//! Property tests for the `.ctcd` delta log: round-tripping through bytes
//! is lossless, any single-byte corruption or truncation is rejected with
//! a typed error (never a panic), and a log replayed over its base
//! snapshot — before or after compaction — reproduces the live
//! [`DynamicIndex`] state exactly. The corruption discipline mirrors
//! `snapshot_props.rs`: every byte of the image is covered by some
//! checksum (header check, per-record chain, or trailer), so there is no
//! position where a flip can silently survive.

use ctc_gen::random::erdos_renyi_nm;
use ctc_graph::error::GraphError;
use ctc_graph::io::fnv1a64;
use ctc_graph::VertexId;
use ctc_truss::{DeltaLog, DeltaLogFile, DeltaOp, DeltaRecord, DynamicIndex, Snapshot, TrussIndex};
use proptest::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A log with `count` pseudo-random records (content does not need to be
/// a valid schedule for byte-level properties).
fn arbitrary_log(base: u64, count: usize, seed: u64) -> DeltaLog {
    let mut log = DeltaLog::new(base);
    let mut rng = seed;
    for _ in 0..count {
        let op = if splitmix(&mut rng) & 1 == 0 {
            DeltaOp::Insert
        } else {
            DeltaOp::Delete
        };
        let u = (splitmix(&mut rng) % 1000) as u32;
        let v = 1 + (splitmix(&mut rng) % 1000) as u32;
        log.append(DeltaRecord::new(op, u, v));
    }
    log
}

/// Applies a random insert/delete schedule to `dynx`, appending every
/// applied operation to `file`, and returns the applied records.
fn random_logged_schedule(
    dynx: &mut DynamicIndex,
    file: &mut DeltaLogFile,
    steps: usize,
    seed: u64,
) -> Vec<DeltaRecord> {
    let n = dynx.num_vertices();
    let mut rng = seed ^ 0x10_6ca5e;
    let mut applied = Vec::new();
    for _ in 0..steps {
        let u = VertexId((splitmix(&mut rng) % n as u64) as u32);
        let v = VertexId((splitmix(&mut rng) % n as u64) as u32);
        if u == v {
            continue;
        }
        let rec = if dynx.has_edge(u, v) {
            dynx.delete_edge(u, v).unwrap();
            DeltaRecord::new(DeltaOp::Delete, u.0, v.0)
        } else {
            dynx.insert_edge(u, v).unwrap();
            DeltaRecord::new(DeltaOp::Insert, u.0, v.0)
        };
        file.append(rec).unwrap();
        applied.push(rec);
    }
    applied
}

fn temp_dir(name: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ctc_wal_props_{name}_{seed}"));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn log_bytes_roundtrip_losslessly(
        base in 0u64..u64::MAX,
        count in 0usize..40,
        seed in 0u64..100_000,
    ) {
        let log = arbitrary_log(base, count, seed);
        let parsed = DeltaLog::from_bytes(&log.to_bytes()).unwrap();
        prop_assert_eq!(&parsed, &log);
        prop_assert_eq!(parsed.base_checksum(), base);
        prop_assert_eq!(parsed.len(), count);
    }

    /// Every single-byte flip anywhere in the image — header, any record's
    /// payload or chain field, trailer — must be rejected. The chained
    /// checksums leave no unprotected byte.
    #[test]
    fn random_single_byte_corruption_is_always_rejected(
        base in 0u64..u64::MAX,
        count in 1usize..30,
        seed in 0u64..100_000,
        flip_seed in 1u64..10_000,
    ) {
        let raw = arbitrary_log(base, count, seed).to_bytes().to_vec();
        let pos = (flip_seed as usize * 7919) % raw.len();
        let mask = ((flip_seed >> 3) as u8 % 255) + 1; // never 0
        let mut bad = raw.clone();
        bad[pos] ^= mask;
        let res = DeltaLog::from_bytes(&bad);
        prop_assert!(
            matches!(
                res,
                Err(GraphError::Corrupt(_)) | Err(GraphError::UnsupportedVersion { .. })
            ),
            "flip {mask:#x} at byte {pos}/{} accepted: {res:?}",
            raw.len()
        );
        // Truncation at any cut — record-boundary or mid-record — is an
        // error too: mid-record cuts fail the whole-record-count check,
        // boundary cuts leave real record bytes posing as the trailer.
        let cut = (flip_seed as usize * 104_729) % raw.len();
        prop_assert!(
            DeltaLog::from_bytes(&raw[..cut]).is_err(),
            "cut at {cut}/{} accepted",
            raw.len()
        );
    }

    /// The durability loop end to end: live updates appended to a `.ctcd`
    /// file replay over a cold snapshot load into the *identical* index
    /// state, and compaction folds that state into a fresh snapshot that
    /// needs no replay at all.
    #[test]
    fn replay_and_compaction_reproduce_the_live_state(
        n in 6usize..32,
        edges_per_vertex in 1usize..4,
        seed in 0u64..100_000,
    ) {
        let dir = temp_dir("replay", seed.wrapping_mul(31).wrapping_add(n as u64));
        let snap_path = dir.join("g.ctci");
        let log_path = dir.join("g.ctcd");

        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        let snap = Snapshot::build(g);
        std::fs::write(&snap_path, snap.to_bytes()).unwrap();
        let base = fnv1a64(&std::fs::read(&snap_path).unwrap());

        // Live: mutate + log.
        let mut live = DynamicIndex::new(&snap.graph, &snap.index);
        let mut file = DeltaLogFile::create(&log_path, base).unwrap();
        let applied = random_logged_schedule(&mut live, &mut file, 10, seed);
        let (live_g, live_idx) = live.materialize().unwrap();

        // Crash-restart path: cold snapshot + validated log replay.
        let cold_snap = Snapshot::load(&snap_path).unwrap();
        let reopened =
            DeltaLogFile::open(&log_path, fnv1a64(&std::fs::read(&snap_path).unwrap())).unwrap();
        prop_assert_eq!(reopened.log().records(), &applied[..]);
        let mut replayed = DynamicIndex::new(&cold_snap.graph, &cold_snap.index);
        reopened.log().replay(&mut replayed).unwrap();
        replayed.check_against_rebuild().unwrap();
        let (rep_g, rep_idx) = replayed.materialize().unwrap();
        prop_assert_eq!(rep_g.num_edges(), live_g.num_edges());
        prop_assert_eq!(rep_idx.edge_truss_slice(), live_idx.edge_truss_slice());

        // Compaction: fold the replayed state into the snapshot, reset the
        // log, and verify a replay-free reload matches — and that the old
        // log no longer opens against the new snapshot.
        let mut file = DeltaLogFile::open(&log_path, base).unwrap();
        let folded = Snapshot {
            graph: live_g.clone(),
            index: live_idx.clone(),
            labels: (0..live_g.num_vertices() as u64).collect(),
        };
        let new_base = file.compact(&snap_path, &folded).unwrap();
        prop_assert_eq!(new_base, fnv1a64(&std::fs::read(&snap_path).unwrap()));
        prop_assert!(file.log().is_empty());

        let compacted = Snapshot::load(&snap_path).unwrap();
        prop_assert_eq!(compacted.index.edge_truss_slice(), live_idx.edge_truss_slice());
        prop_assert_eq!(
            compacted.index.max_truss(),
            TrussIndex::build(&compacted.graph).max_truss()
        );
        let empty = DeltaLogFile::open(&log_path, new_base).unwrap();
        prop_assert!(empty.log().is_empty());
        if new_base != base {
            prop_assert!(matches!(
                DeltaLogFile::open(&log_path, base),
                Err(GraphError::Corrupt(_))
            ));
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Fixed-position taxonomy on a concrete log: which typed error each
/// corruption class maps to.
#[test]
fn corruption_error_taxonomy() {
    let raw = arbitrary_log(0xfeed_f00d, 5, 7).to_bytes().to_vec();

    assert!(DeltaLog::from_bytes(&[]).is_err());
    assert!(matches!(
        DeltaLog::from_bytes(&raw[..raw.len() - 1]),
        Err(GraphError::Corrupt(_)) // torn record / short trailer
    ));

    let mut bad_magic = raw.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        DeltaLog::from_bytes(&bad_magic),
        Err(GraphError::Corrupt(_))
    ));

    // A version bump alone trips the header checksum; re-sealing the
    // checksum exposes the typed version error.
    let mut newer = raw.clone();
    newer[4] = 99;
    assert!(matches!(
        DeltaLog::from_bytes(&newer),
        Err(GraphError::Corrupt(_))
    ));
    let hc = fnv1a64(&newer[..16]);
    newer[16..24].copy_from_slice(&hc.to_le_bytes());
    assert!(matches!(
        DeltaLog::from_bytes(&newer),
        Err(GraphError::UnsupportedVersion { found: 99, .. })
    ));

    // Unknown op tag in the first record (chain re-sealed so only the tag
    // check can fire).
    let mut bad_op = raw.clone();
    bad_op[24] = 9;
    assert!(matches!(
        DeltaLog::from_bytes(&bad_op),
        Err(GraphError::Corrupt(_))
    ));

    let mut bad_trailer = raw.clone();
    *bad_trailer.last_mut().unwrap() ^= 0x01;
    assert!(matches!(
        DeltaLog::from_bytes(&bad_trailer),
        Err(GraphError::Corrupt(_))
    ));
}
