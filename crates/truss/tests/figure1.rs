//! Pins the paper's Figure 1 ground truth independently of the doctests:
//! per-edge trussness, the k=4 grey region of 11 vertices returned by
//! `FindG0`, and the diameter-3 optimal community of Figure 1(b).

use ctc_graph::{diameter_exact, induced_subgraph, support_of, VertexId};
use ctc_truss::fixtures::{figure1_graph, figure1_grey_vertices, figure1b_vertices, Figure1Ids};
use ctc_truss::{find_g0, is_k_truss, truss_decomposition, TrussIndex};

#[test]
fn every_edge_trussness_matches_figure1() {
    // The grey region is a (maximal) 4-truss, so every edge inside it has
    // trussness exactly 4; the two bridge edges through `t` close no
    // triangle and sit at the floor trussness of 2.
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let d = truss_decomposition(&g);
    assert_eq!(d.max_truss, 4);
    let bridges = [
        g.edge_between(f.q1, f.t).expect("q1-t edge"),
        g.edge_between(f.t, f.q3).expect("t-q3 edge"),
    ];
    for (e, u, v) in g.edges() {
        let expected = if bridges.contains(&e) { 2 } else { 4 };
        assert_eq!(d.truss(e), expected, "trussness of edge ({u:?},{v:?})");
    }
}

#[test]
fn vertex_trussness_matches_figure1() {
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let idx = TrussIndex::build(&g);
    for v in figure1_grey_vertices() {
        assert_eq!(idx.vertex_truss(v), 4, "vertex {v:?} sits in the 4-truss");
    }
    assert_eq!(
        idx.vertex_truss(f.t),
        2,
        "the bridge t only reaches trussness 2"
    );
}

#[test]
fn section2_support_vs_trussness_example() {
    // §2's worked example: sup(q2, v2) = 3 yet τ(q2, v2) = 4.
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let idx = TrussIndex::build(&g);
    assert_eq!(support_of(&g, f.q2, f.v2), Some(3));
    assert_eq!(idx.truss_of_pair(f.q2, f.v2), Some(4));
}

#[test]
fn find_g0_returns_the_grey_region() {
    // FindG0 on Q = {q1,q2,q3}: k = 4 and exactly the 11 grey vertices
    // (everything but the bridge t).
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let idx = TrussIndex::build(&g);
    let g0 = find_g0(&g, &idx, &[f.q1, f.q2, f.q3]).expect("query is connected");
    assert_eq!(g0.k, 4);
    assert_eq!(g0.vertices.len(), 11);
    let mut got = g0.vertices.clone();
    got.sort();
    let mut grey = figure1_grey_vertices();
    grey.sort();
    assert_eq!(got, grey);
    assert!(!g0.vertices.contains(&f.t));
}

#[test]
fn optimal_community_has_diameter_3() {
    // Figure 1(b) — grey minus the free riders {p1,p2,p3} — is itself a
    // 4-truss and achieves the optimal diameter 3 (the grey region has 4).
    let g = figure1_graph();
    let b = induced_subgraph(&g, &figure1b_vertices());
    assert_eq!(b.num_vertices(), 8);
    assert!(is_k_truss(&b.graph, 4));
    assert_eq!(diameter_exact(&b.graph), 3);
    let grey = induced_subgraph(&g, &figure1_grey_vertices());
    assert_eq!(diameter_exact(&grey.graph), 4);
}

#[test]
fn free_riders_are_furthest_from_the_query() {
    // Example 4: within G0 the free riders sit at query distance 4, strictly
    // further than every community vertex, which is why Basic peels them.
    let g = figure1_graph();
    let f = Figure1Ids::default();
    let grey = induced_subgraph(&g, &figure1_grey_vertices());
    let q: Vec<VertexId> = [f.q1, f.q2, f.q3]
        .iter()
        .map(|&v| grey.local(v).expect("query is grey"))
        .collect();
    let mut scratch = ctc_graph::BfsScratch::new(grey.num_vertices());
    let dist = ctc_graph::query_distances(&grey.graph, &q, &mut scratch);
    for p in [f.p1, f.p2, f.p3] {
        assert_eq!(dist[grey.local(p).unwrap().index()], 4, "free rider {p:?}");
    }
    for v in [f.v1, f.v2, f.v3, f.v4, f.v5] {
        assert!(
            dist[grey.local(v).unwrap().index()] < 4,
            "community vertex {v:?} must be closer than the free riders"
        );
    }
}
