//! The paper's structural lemmas (§3.1), tested mechanically.

use ctc_graph::{
    bfs_distances, diameter_exact, edge_subgraph, graph_from_edges, is_connected, CsrGraph,
    DynGraph, VertexId, INF,
};
use ctc_truss::fixtures::{clique, figure1_graph, figure1b_vertices, Figure1Ids};
use ctc_truss::{connected_ktruss_components, find_g0, truss_decomposition, TrussIndex};
use proptest::prelude::*;

/// Lemma 1: the trussness of any connected k-truss containing Q is at most
/// `min_q τ(q)`.
#[test]
fn lemma1_k_bounded_by_query_vertex_truss() {
    let g = figure1_graph();
    let idx = TrussIndex::build(&g);
    let f = Figure1Ids::default();
    for q in [vec![f.q1], vec![f.q1, f.t], vec![f.q2, f.q3], vec![f.t]] {
        if let Ok(g0) = find_g0(&g, &idx, &q) {
            let bound = q.iter().map(|&v| idx.vertex_truss(v)).min().unwrap();
            assert!(g0.k <= bound, "k {} exceeds Lemma 1 bound {}", g0.k, bound);
        }
    }
}

/// §3.1: the diameter of a connected k-truss with n vertices is at most
/// ⌊(2n − 2) / k⌋.
#[test]
fn ktruss_diameter_bound() {
    let g = figure1_graph();
    let idx = TrussIndex::build(&g);
    for k in 3..=idx.max_truss() {
        for comp in connected_ktruss_components(&g, &idx, k) {
            let sub = edge_subgraph(&g, &comp);
            let n = sub.num_vertices() as u32;
            let d = diameter_exact(&sub.graph);
            assert!(
                d <= (2 * n - 2) / k,
                "k={k}: diameter {d} exceeds bound {}",
                (2 * n - 2) / k
            );
        }
    }
}

/// §3.1: a connected k-truss is (k−1)-edge-connected — removing any k−2
/// edges leaves it connected. Exhaustive over all (k−2)-subsets on the
/// Figure 1(b) community (k = 4: all edge pairs).
#[test]
fn ktruss_edge_connectivity() {
    let g = figure1_graph();
    let b = ctc_graph::induced_subgraph(&g, &figure1b_vertices());
    let m = b.graph.num_edges();
    for e1 in 0..m {
        for e2 in (e1 + 1)..m {
            let mut live = DynGraph::new(&b.graph);
            live.remove_edge(ctc_graph::EdgeId::from(e1));
            live.remove_edge(ctc_graph::EdgeId::from(e2));
            assert!(
                is_connected(&live),
                "removing edges {e1},{e2} disconnected a 4-truss"
            );
        }
    }
}

/// Hierarchy: the k-truss is contained in the (k−1)-truss for all k ≥ 3.
#[test]
fn truss_hierarchy_nesting() {
    let g = figure1_graph();
    let d = truss_decomposition(&g);
    for k in 3..=d.max_truss {
        for (e, _, _) in g.edges() {
            if d.truss(e) >= k {
                assert!(d.truss(e) >= k - 1, "hierarchy violated");
            }
        }
    }
    // Cliques: τ(K_n) = n and every subset relation holds trivially.
    for n in 4..=7u32 {
        let kn = clique(n);
        let dk = truss_decomposition(&kn);
        assert!(dk.edge_truss.iter().all(|&t| t == n));
    }
}

/// Fact 1 (the engine behind Lemma 3): distances are non-decreasing under
/// subgraph shrinkage.
fn check_fact1(edges: &[(u32, u32)], removed: &[usize], src: u32) {
    let g = graph_from_edges(edges);
    let n = g.num_vertices();
    if n == 0 {
        return;
    }
    let src = VertexId(src % n as u32);
    let before = bfs_distances(&g, src);
    let mut live = DynGraph::new(&g);
    for &r in removed {
        if g.num_edges() > 0 {
            live.remove_edge(ctc_graph::EdgeId::from(r % g.num_edges()));
        }
    }
    if !live.is_vertex_alive(src) {
        return;
    }
    let mut scratch = ctc_graph::BfsScratch::new(n);
    scratch.run(&live, src);
    for v in 0..n {
        let v = VertexId::from(v);
        let after = scratch.dist(v);
        if after != INF {
            assert!(
                after >= before[v.index()],
                "distance decreased after deletion: {} < {}",
                after,
                before[v.index()]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn fact1_distances_monotone_under_shrinkage(
        edges in proptest::collection::vec((0u32..12, 0u32..12), 1..40),
        removed in proptest::collection::vec(0usize..64, 0..8),
        src in 0u32..12,
    ) {
        check_fact1(&edges, &removed, src);
    }

    /// Lemma 2 on arbitrary connected graphs: dist(G,Q) ≤ diam ≤ 2·dist(G,Q).
    #[test]
    fn lemma2_bounds(
        edges in proptest::collection::vec((0u32..10, 0u32..10), 4..40),
        q_raw in proptest::collection::vec(0u32..10, 1..4),
    ) {
        let g = graph_from_edges(&edges);
        if g.num_vertices() == 0 || !is_connected(&g) {
            return Ok(());
        }
        let n = g.num_vertices() as u32;
        let mut q: Vec<VertexId> = q_raw.iter().map(|&v| VertexId(v % n)).collect();
        q.sort();
        q.dedup();
        let mut scratch = ctc_graph::BfsScratch::new(n as usize);
        let qd = ctc_graph::graph_query_distance(&g, &q, &mut scratch);
        let diam = diameter_exact(&g);
        prop_assert!(qd <= diam);
        prop_assert!(diam <= 2 * qd.max(1));
    }

    /// Every edge's trussness is realized: the τ(e)-truss containing e is a
    /// genuine τ(e)-truss, and e is not in any (τ(e)+1)-truss.
    #[test]
    fn trussness_is_tight(edges in proptest::collection::vec((0u32..10, 0u32..10), 3..40)) {
        let g = graph_from_edges(&edges);
        let d = truss_decomposition(&g);
        let idx = TrussIndex::build(&g);
        for (e, _, _) in g.edges() {
            let k = d.truss(e);
            // e appears among the τ ≥ k components...
            let comps = connected_ktruss_components(&g, &idx, k);
            prop_assert!(comps.iter().any(|c| c.contains(&e)));
            // ...and each such component is a valid k-truss.
            for c in &comps {
                if c.contains(&e) {
                    let sub = edge_subgraph(&g, c);
                    prop_assert!(ctc_truss::is_k_truss(&sub.graph, k));
                }
            }
            // but never at level k+1.
            let higher = connected_ktruss_components(&g, &idx, k + 1);
            prop_assert!(!higher.iter().any(|c| c.contains(&e)));
        }
    }
}

/// Degenerate inputs stay sane end to end.
#[test]
fn degenerate_graphs() {
    // Single edge.
    let g: CsrGraph = graph_from_edges(&[(0, 1)]);
    let d = truss_decomposition(&g);
    assert_eq!(d.max_truss, 2);
    let idx = TrussIndex::build(&g);
    let g0 = find_g0(&g, &idx, &[VertexId(0), VertexId(1)]).unwrap();
    assert_eq!(g0.k, 2);
    assert_eq!(g0.edges.len(), 1);
    // Star: no triangles anywhere.
    let star = graph_from_edges(&[(0, 1), (0, 2), (0, 3), (0, 4)]);
    let ds = truss_decomposition(&star);
    assert!(ds.edge_truss.iter().all(|&t| t == 2));
}
