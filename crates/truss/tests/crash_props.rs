//! The crash-recovery differential battery: every crash point × every
//! fault kind, across randomized insert/delete/compact schedules, run
//! against the deterministic [`FaultEnv`] storage simulator.
//!
//! The invariant pinned here is the crash-safety contract of
//! `docs/RELIABILITY.md`:
//!
//! 1. **Prefix atomicity** — after a crash at *any* storage operation and
//!    recovery, the surviving edge set equals the state after some legal
//!    prefix of the schedule: at least every acknowledged (synced) update,
//!    at most every attempted one — pre-op or post-op of the in-flight
//!    update, never in between and never reordered. (Under a *lying*
//!    fsync — [`Fault::IgnoredSync`] — durability is void: acknowledged
//!    updates may be lost, and even the snapshot can be destroyed; the
//!    surviving promise is a legal prefix *or* a detected, typed failure —
//!    never a silently wrong answer.)
//! 2. **Differential oracle** — the recovered index's trussness is
//!    byte-identical to a cold [`TrussIndex::build`] of the recovered
//!    graph (the PR-7 maintained-vs-rebuilt oracle, through the crash
//!    matrix).
//! 3. **Forward progress** — the recovered log accepts further appends.

use ctc_gen::random::erdos_renyi_nm;
use ctc_graph::error::GraphError;
use ctc_graph::io::fnv1a64;
use ctc_graph::storage::{Fault, FaultEnv, StorageEnv};
use ctc_graph::{CsrGraph, VertexId};
use ctc_truss::{
    recover_in, DeltaLogFile, DeltaOp, DeltaRecord, DynamicIndex, Snapshot, TrussIndex,
};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::path::Path;
use std::sync::Arc;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn snap_path() -> &'static Path {
    Path::new("g.ctci")
}

fn log_path() -> &'static Path {
    Path::new("g.ctcd")
}

fn edge_set(g: &CsrGraph) -> BTreeSet<(u32, u32)> {
    g.edges()
        .map(|(_, u, v)| (u.0.min(v.0), u.0.max(v.0)))
        .collect()
}

/// What a schedule run left behind, for judging the recovered state.
#[derive(Default)]
struct Trace {
    /// `states[i]` = edge set after `i` logical updates (so `states[0]`
    /// is the initial graph).
    states: Vec<BTreeSet<(u32, u32)>>,
    /// Updates whose durable append was acknowledged.
    committed: usize,
    /// Updates attempted (committed plus at most one in-flight).
    attempted: usize,
    /// `true` once the initial snapshot save returned — before that a
    /// crash legitimately leaves nothing to recover.
    established: bool,
}

/// Runs a deterministic insert/delete schedule with periodic compaction
/// against `env`, journaling through the full persistence protocol.
/// Stops at the first storage error (crash or injected fault), leaving
/// `trace` describing exactly how far it got.
fn run_schedule(
    env: Arc<dyn StorageEnv>,
    g0: &CsrGraph,
    steps: usize,
    seed: u64,
    trace: &mut Trace,
) -> Result<(), GraphError> {
    trace.states.push(edge_set(g0));
    let snap = Snapshot::build(g0.clone());
    snap.save_in(env.as_ref(), snap_path())?;
    trace.established = true;
    let base = fnv1a64(&env.read(snap_path())?);
    let mut lf = DeltaLogFile::create_in(env.clone(), log_path(), base)?;
    let mut dynx = DynamicIndex::build(g0);
    let mut rng = seed ^ 0xc4a5_0f37;
    let n = g0.num_vertices() as u64;
    for step in 1..=steps {
        if step % 5 == 0 {
            // Fold the replayed state into a fresh snapshot + empty log.
            let (graph, index) = dynx.materialize().expect("in-memory materialize");
            let folded = Snapshot {
                graph,
                index,
                labels: Vec::new(),
            };
            lf.compact(snap_path(), &folded)?;
            continue;
        }
        let u = VertexId((splitmix(&mut rng) % n) as u32);
        let v = VertexId((splitmix(&mut rng) % n) as u32);
        if u == v {
            continue;
        }
        let key = (u.0.min(v.0), u.0.max(v.0));
        let mut next = trace.states.last().expect("initial state").clone();
        let rec = if dynx.has_edge(u, v) {
            dynx.delete_edge(u, v).expect("in-memory delete");
            next.remove(&key);
            DeltaRecord::new(DeltaOp::Delete, u.0, v.0)
        } else {
            dynx.insert_edge(u, v).expect("in-memory insert");
            next.insert(key);
            DeltaRecord::new(DeltaOp::Insert, u.0, v.0)
        };
        trace.states.push(next);
        trace.attempted += 1;
        lf.append(rec)?;
        trace.committed += 1;
    }
    Ok(())
}

/// Recovers from `env` (post-restart) and asserts the three contract
/// clauses against `trace`. `floor` is the earliest legal prefix (the
/// committed count normally, 0 under a lying fsync).
fn verify_recovery(env: Arc<dyn StorageEnv>, trace: &Trace, floor: usize, ctx: &str) {
    let (snap, lf, report) = recover_in(env, snap_path(), Some(log_path()))
        .unwrap_or_else(|e| panic!("recovery must not fail ({ctx}): {e}"));
    // 1. Prefix atomicity.
    let got = edge_set(&snap.graph);
    let matched = (floor..=trace.attempted).find(|&j| trace.states[j] == got);
    assert!(
        matched.is_some(),
        "recovered edge set matches no legal schedule prefix \
         ({ctx}; committed {}, attempted {}, log {:?})",
        trace.committed,
        trace.attempted,
        report.log,
    );
    // 2. Maintained == rebuilt, byte for byte.
    let cold = TrussIndex::build(&snap.graph);
    assert_eq!(
        snap.index.edge_truss_slice(),
        cold.edge_truss_slice(),
        "recovered trussness diverges from a cold rebuild ({ctx})"
    );
    assert_eq!(snap.index.max_truss(), cold.max_truss(), "{ctx}");
    // 3. The recovered log accepts further appends.
    let mut lf = lf.expect("log handle after recovery");
    let first_edge = snap.graph.edges().next().map(|(_, u, v)| (u.0, v.0));
    if let Some((u, v)) = first_edge {
        lf.append(DeltaRecord::new(DeltaOp::Delete, u, v))
            .unwrap_or_else(|e| panic!("recovered log rejects appends ({ctx}): {e}"));
    }
}

/// One faulted run: schedule against a fresh env with `configure` applied,
/// then crash-restart and verify recovery.
///
/// `lying` marks [`Fault::IgnoredSync`] runs, which void every durability
/// guarantee: an fsync that acknowledges without persisting can leave even
/// the snapshot itself torn under its durable name (the rename commits, the
/// content never did). No protocol recovers from a disk that lies — the
/// contract degrades to *detected, typed failure* (checksum mismatch),
/// never a silently wrong answer; and when recovery does succeed, the
/// result must still be a legal prefix (floor 0: acknowledged updates may
/// be lost).
fn faulted_run(
    seed: u64,
    g0: &CsrGraph,
    steps: usize,
    lying: bool,
    ctx: &str,
    configure: impl Fn(&FaultEnv),
) {
    let fenv = Arc::new(FaultEnv::new(seed.wrapping_mul(0x9e37) ^ 0x51ed));
    configure(&fenv);
    let env: Arc<dyn StorageEnv> = fenv.clone();
    let mut trace = Trace::default();
    let _ = run_schedule(env.clone(), g0, steps, seed, &mut trace);
    fenv.restart();
    if !trace.established {
        // Crash before the first durable snapshot: the system never came
        // into existence, and recovery correctly reports the absence.
        assert!(
            recover_in(env, snap_path(), Some(log_path())).is_err(),
            "no snapshot was ever durable, yet recovery found one ({ctx})"
        );
        return;
    }
    if lying {
        match recover_in(env.clone(), snap_path(), Some(log_path())) {
            // Typed, detected loss — the strongest promise a lying disk
            // leaves standing.
            Err(GraphError::Corrupt(_)) | Err(GraphError::Io(_)) => return,
            Err(e) => panic!("unexpected error class under lying fsync ({ctx}): {e}"),
            Ok(_) => verify_recovery(env, &trace, 0, ctx),
        }
        return;
    }
    verify_recovery(env, &trace, trace.committed, ctx);
}

const STEPS: usize = 14;

/// Every crash point of every schedule: run fault-free once to count the
/// storage operations, then re-run once per operation index with a crash
/// scheduled there.
#[test]
fn crash_matrix_every_point() {
    for seed in [1u64, 2, 3] {
        let g0 = erdos_renyi_nm(28, 70, seed * 97 + 5);
        let fenv = Arc::new(FaultEnv::new(seed));
        let env: Arc<dyn StorageEnv> = fenv.clone();
        let mut trace = Trace::default();
        run_schedule(env.clone(), &g0, STEPS, seed, &mut trace).expect("fault-free run");
        let total = fenv.ops();
        assert!(total > 20, "schedule exercised too few storage ops");
        assert_eq!(trace.committed, trace.attempted);
        // Even the clean image recovers to the final state.
        verify_recovery(env, &trace, trace.committed, "clean");
        for point in 0..total {
            faulted_run(
                seed,
                &g0,
                STEPS,
                false,
                &format!("seed {seed}, crash at op {point}"),
                |f| f.crash_at(point),
            );
        }
    }
}

/// Every fault kind at every operation index. Non-crash faults surface as
/// errors the schedule stops on; the run is then crash-restarted anyway,
/// so each case also exercises "fault, then power loss". A lying fsync
/// ([`Fault::IgnoredSync`]) weakens the floor to zero: acknowledged
/// updates may be lost, but the result must still be a legal prefix.
#[test]
fn fault_kind_matrix_every_point() {
    let seed = 5u64;
    let g0 = erdos_renyi_nm(26, 60, 11);
    let fenv = Arc::new(FaultEnv::new(seed));
    let env: Arc<dyn StorageEnv> = fenv.clone();
    let mut trace = Trace::default();
    run_schedule(env, &g0, STEPS, seed, &mut trace).expect("fault-free run");
    let total = fenv.ops();
    for kind in [
        Fault::ShortWrite,
        Fault::TornWrite,
        Fault::FailedSync,
        Fault::Enospc,
        Fault::IgnoredSync,
    ] {
        let lying = kind == Fault::IgnoredSync;
        for point in 0..total {
            faulted_run(
                seed,
                &g0,
                STEPS,
                lying,
                &format!("{kind:?} at op {point}"),
                |f| f.fault_at(point, kind),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Randomized seeds and graph shapes: a crash lands somewhere inside
    /// the schedule (by modulo); recovery must hold regardless.
    #[test]
    fn random_schedule_random_crash_recovers(
        seed in 0u64..10_000,
        n in 12u32..40,
        crash_pick in 0u64..1_000,
    ) {
        let g0 = erdos_renyi_nm(n as usize, (n as usize) * 3, seed ^ 0xbeef);
        let fenv = Arc::new(FaultEnv::new(seed));
        let env: Arc<dyn StorageEnv> = fenv.clone();
        let mut trace = Trace::default();
        run_schedule(env, &g0, STEPS, seed, &mut trace).expect("fault-free run");
        let total = fenv.ops();
        let point = crash_pick % total;
        faulted_run(seed, &g0, STEPS, false, &format!("random crash at {point}"), |f| {
            f.crash_at(point)
        });
    }
}
