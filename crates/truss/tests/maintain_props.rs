//! The maintained-vs-rebuilt differential battery for [`DynamicIndex`].
//!
//! The contract under test: after ANY schedule of edge insertions and
//! deletions, the locally maintained per-edge trussness is *byte-identical*
//! to a [`TrussIndex::build`] from scratch on the mutated edge set — not
//! approximately, not eventually, but after every single update. The
//! oracle (`check_against_rebuild`) re-runs the full `O(ρ·m)`
//! decomposition and compares every edge's trussness, every vertex's
//! trussness, and the max; `materialize` round-trips the mutable state
//! back into the immutable CSR + index pair and is pinned against
//! `TrussIndex::build_par` at 1/2/4 threads.

use ctc_gen::planted::planted_equal;
use ctc_gen::random::{barabasi_albert, erdos_renyi_nm};
use ctc_graph::error::GraphError;
use ctc_graph::{CsrGraph, Parallelism, VertexId};
use ctc_truss::{DynamicIndex, TrussIndex};
use proptest::prelude::*;

/// SplitMix64 — a tiny deterministic stream for schedule sampling, so the
/// tests need no RNG dependency and every failure reproduces from (seed,
/// case) alone.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Runs a random interleaved insert/delete schedule over `g`, checking
/// the full rebuild oracle after every step, and finishes with the
/// materialize + multithread parity check.
fn run_schedule(g: &CsrGraph, seed: u64, steps: usize, label: &str) {
    let n = g.num_vertices();
    if n < 2 {
        return;
    }
    let mut dynx = DynamicIndex::build(g);
    let mut present: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();
    let mut rng = seed ^ 0xc7c_71a55;
    for step in 0..steps {
        // Delete when there is something to delete and the coin says so;
        // otherwise probe a random pair and insert it if absent.
        let coin = splitmix(&mut rng);
        if !present.is_empty() && coin & 1 == 0 {
            let i = (splitmix(&mut rng) % present.len() as u64) as usize;
            let (u, v) = present.swap_remove(i);
            dynx.delete_edge(VertexId(u), VertexId(v))
                .unwrap_or_else(|e| panic!("{label}: delete ({u},{v}) step {step}: {e}"));
        } else {
            let u = (splitmix(&mut rng) % n as u64) as u32;
            let v = (splitmix(&mut rng) % n as u64) as u32;
            if u == v || dynx.has_edge(VertexId(u), VertexId(v)) {
                continue;
            }
            dynx.insert_edge(VertexId(u), VertexId(v))
                .unwrap_or_else(|e| panic!("{label}: insert ({u},{v}) step {step}: {e}"));
            present.push((u.min(v), u.max(v)));
        }
        dynx.check_against_rebuild()
            .unwrap_or_else(|e| panic!("{label}: oracle diverged at step {step}: {e}"));
    }
    assert_materialize_parity(&dynx, label);
}

/// `materialize()` must reproduce exactly what a cold build — serial or
/// parallel — computes on the mutated edge set.
fn assert_materialize_parity(dynx: &DynamicIndex, label: &str) {
    let (mg, midx) = dynx.materialize().expect("materialize");
    assert_eq!(mg.num_edges(), dynx.num_edges(), "{label}: edge count");
    for threads in [1usize, 2, 4] {
        let cold = TrussIndex::build_par(&mg, Parallelism::threads(threads));
        assert_eq!(
            midx.edge_truss_slice(),
            cold.edge_truss_slice(),
            "{label}: maintained truss differs from a {threads}-thread rebuild"
        );
        assert_eq!(midx.max_truss(), cold.max_truss(), "{label}: max_truss");
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn maintained_matches_rebuild_on_er_graphs(
        n in 4usize..48,
        edges_per_vertex in 1usize..5,
        seed in 0u64..100_000,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        run_schedule(&g, seed, 12, "erdos_renyi_nm");
    }

    #[test]
    fn maintained_matches_rebuild_on_preferential_attachment(
        n in 10usize..60,
        m_per_node in 2usize..5,
        seed in 0u64..100_000,
    ) {
        // Skewed degrees: the deepest promotion/demotion cascades live
        // where hubs share many triangles.
        let g = barabasi_albert(n, m_per_node, seed);
        run_schedule(&g, seed, 12, "barabasi_albert");
    }

    #[test]
    fn maintained_matches_rebuild_on_planted_communities(
        communities in 2usize..5,
        size in 4usize..9,
        seed in 0u64..100_000,
    ) {
        // Dense planted blocks: high trussness classes, so updates cross
        // many k-levels.
        let g = planted_equal(communities, size, 0.9, 0.05, seed).graph;
        run_schedule(&g, seed, 10, "planted_equal");
    }

    /// Tear down a whole random graph edge by edge, then regrow it in a
    /// shuffled order: the final index must equal the original cold build
    /// byte for byte (and the oracle holds at every intermediate state).
    #[test]
    fn full_teardown_and_regrow_restores_the_index(
        n in 4usize..24,
        edges_per_vertex in 1usize..4,
        seed in 0u64..100_000,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        let reference = TrussIndex::build(&g);
        let mut dynx = DynamicIndex::build(&g);
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(_, u, v)| (u.0, v.0)).collect();

        // Shuffle deterministically (Fisher–Yates on splitmix).
        let mut rng = seed ^ 0x7ea2_d011_5eed_0001;
        for i in (1..edges.len()).rev() {
            let j = (splitmix(&mut rng) % (i as u64 + 1)) as usize;
            edges.swap(i, j);
        }
        for &(u, v) in &edges {
            dynx.delete_edge(VertexId(u), VertexId(v)).unwrap();
        }
        prop_assert_eq!(dynx.num_edges(), 0);
        dynx.check_against_rebuild().unwrap();

        for &(u, v) in edges.iter().rev() {
            dynx.insert_edge(VertexId(u), VertexId(v)).unwrap();
            dynx.check_against_rebuild().unwrap();
        }
        let (mg, midx) = dynx.materialize().unwrap();
        prop_assert_eq!(mg.num_edges(), g.num_edges());
        prop_assert_eq!(midx.edge_truss_slice(), reference.edge_truss_slice());
        prop_assert_eq!(midx.max_truss(), reference.max_truss());
    }

    /// Rejected updates must leave the index bit-for-bit untouched.
    #[test]
    fn rejections_are_total_noops(
        n in 4usize..32,
        edges_per_vertex in 1usize..4,
        seed in 0u64..100_000,
    ) {
        let g = erdos_renyi_nm(n, n * edges_per_vertex, seed);
        let mut dynx = DynamicIndex::build(&g);
        let before = dynx.clone();
        let (u, v) = match g.edges().next() {
            Some((_, u, v)) => (u, v),
            None => return Ok(()),
        };
        // Duplicate insert of a present edge.
        prop_assert!(matches!(
            dynx.insert_edge(u, v),
            Err(GraphError::DuplicateEdge { .. })
        ));
        // Missing delete: find an absent pair (a small dense graph can be
        // complete, so the probe must be bounded).
        let mut rng = seed;
        let absent = std::iter::repeat_with(|| {
            (
                VertexId((splitmix(&mut rng) % n as u64) as u32),
                VertexId((splitmix(&mut rng) % n as u64) as u32),
            )
        })
        .take(500)
        .find(|&(a, b)| a != b && !dynx.has_edge(a, b));
        if let Some((a, b)) = absent {
            prop_assert!(matches!(
                dynx.delete_edge(a, b),
                Err(GraphError::MissingEdge { .. })
            ));
        }
        // Out-of-range endpoint and self-loop, both directions.
        let oob = VertexId(n as u32 + 3);
        prop_assert!(matches!(
            dynx.insert_edge(u, oob),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        prop_assert!(matches!(
            dynx.delete_edge(oob, v),
            Err(GraphError::VertexOutOfRange { .. })
        ));
        prop_assert!(matches!(
            dynx.insert_edge(u, u),
            Err(GraphError::SelfLoop { .. })
        ));
        let (bg, bidx) = before.materialize().unwrap();
        let (ag, aidx) = dynx.materialize().unwrap();
        prop_assert_eq!(bg.num_edges(), ag.num_edges());
        prop_assert_eq!(bidx.edge_truss_slice(), aidx.edge_truss_slice());
    }
}
