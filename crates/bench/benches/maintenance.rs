//! Microbench: Algorithm 3 — k-truss maintenance cascades after vertex
//! deletion, the inner step of every peeling iteration — plus the online
//! [`DynamicIndex`] update path (local trussness repair per edge
//! insert/delete) against the full-rebuild alternative it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_gen::mini_network;
use ctc_graph::DynGraph;
use ctc_truss::{truss_decomposition, DynamicIndex, TrussIndex, TrussMaintainer};
use std::time::Duration;

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ktruss_maintenance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let net = mini_network("facebook", 7).expect("mini preset");
    let g = net.graph;
    let d = truss_decomposition(&g);
    let mut levels: Vec<u32> = [3u32, d.max_truss / 2, d.max_truss]
        .into_iter()
        .filter(|&k| k >= 3)
        .collect();
    levels.sort_unstable();
    levels.dedup();
    for k in levels {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k={k}")),
            &k,
            |b, &k| {
                b.iter(|| {
                    let mut live = DynGraph::new(&g);
                    let mut m = TrussMaintainer::new(&live, k);
                    // Delete a spread of ten vertices and cascade.
                    let victims: Vec<_> = (0..10)
                        .map(|i| ctc_graph::VertexId(i * 37 % g.num_vertices() as u32))
                        .collect();
                    m.delete_vertices(&mut live, &victims)
                })
            },
        );
    }
    group.finish();
}

/// Online single-edge updates: a delete+insert restore cycle on strided
/// edges through the maintained [`DynamicIndex`], versus the full
/// `TrussIndex::build` a rebuild-per-update design would pay for *each*
/// op. The restore cycle keeps the index state identical across
/// iterations, so every sample measures the same work.
fn bench_dynamic_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_update");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let net = mini_network("facebook", 7).expect("mini preset");
    let g = net.graph;
    let edges: Vec<_> = g.edges().map(|(_, u, v)| (u, v)).collect();
    let stride = (edges.len() / 16).max(1);
    let victims: Vec<_> = edges.iter().step_by(stride).take(16).copied().collect();

    group.bench_function(
        BenchmarkId::from_parameter(format!("maintain_{}_cycles", victims.len())),
        |b| {
            let mut dynx = DynamicIndex::build(&g);
            b.iter(|| {
                for &(u, v) in &victims {
                    dynx.delete_edge(u, v).expect("edge present");
                    dynx.insert_edge(u, v).expect("edge absent");
                }
            })
        },
    );
    group.bench_function(BenchmarkId::from_parameter("rebuild_once"), |b| {
        b.iter(|| TrussIndex::build(&g))
    });
    group.finish();
}

criterion_group!(benches, bench_maintenance, bench_dynamic_update);
criterion_main!(benches);
