//! Microbench: Algorithm 3 — k-truss maintenance cascades after vertex
//! deletion, the inner step of every peeling iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_gen::mini_network;
use ctc_graph::DynGraph;
use ctc_truss::{truss_decomposition, TrussMaintainer};
use std::time::Duration;

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("ktruss_maintenance");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let net = mini_network("facebook", 7).expect("mini preset");
    let g = net.graph;
    let d = truss_decomposition(&g);
    let mut levels: Vec<u32> = [3u32, d.max_truss / 2, d.max_truss]
        .into_iter()
        .filter(|&k| k >= 3)
        .collect();
    levels.sort_unstable();
    levels.dedup();
    for k in levels {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("k={k}")),
            &k,
            |b, &k| {
                b.iter(|| {
                    let mut live = DynGraph::new(&g);
                    let mut m = TrussMaintainer::new(&live, k);
                    // Delete a spread of ten vertices and cascade.
                    let victims: Vec<_> = (0..10)
                        .map(|i| ctc_graph::VertexId(i * 37 % g.num_vertices() as u32))
                        .collect();
                    m.delete_vertices(&mut live, &victims)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maintenance);
criterion_main!(benches);
