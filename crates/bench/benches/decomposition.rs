//! Microbench: truss decomposition and truss-index construction — the
//! offline cost behind Table 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_gen::mini_network;
use ctc_truss::{truss_decomposition, TrussIndex};
use std::time::Duration;

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("truss_decomposition");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for name in ["facebook", "dblp"] {
        let net = mini_network(name, 7).expect("mini preset");
        let g = net.graph;
        group.bench_with_input(
            BenchmarkId::new("decompose", format!("{name}-mini/m={}", g.num_edges())),
            &g,
            |b, g| b.iter(|| truss_decomposition(g)),
        );
        group.bench_with_input(
            BenchmarkId::new("index_build", format!("{name}-mini/m={}", g.num_edges())),
            &g,
            |b, g| b.iter(|| TrussIndex::build(g)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
