//! Microbench: truss decomposition and truss-index construction — the
//! offline cost behind Table 3 — plus serial-vs-parallel comparisons of
//! the frontier-peeling decomposition at 1/2/4/8 threads.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_gen::{mini_network, network_by_name};
use ctc_graph::Parallelism;
use ctc_truss::{truss_decomposition, truss_decomposition_par, TrussIndex};
use std::time::Duration;

fn bench_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("truss_decomposition");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for name in ["facebook", "dblp"] {
        let net = mini_network(name, 7).expect("mini preset");
        let g = net.graph;
        group.bench_with_input(
            BenchmarkId::new("decompose", format!("{name}-mini/m={}", g.num_edges())),
            &g,
            |b, g| b.iter(|| truss_decomposition(g)),
        );
        group.bench_with_input(
            BenchmarkId::new("index_build", format!("{name}-mini/m={}", g.num_edges())),
            &g,
            |b, g| b.iter(|| TrussIndex::build(g)),
        );
    }
    group.finish();

    // Serial vs parallel on the largest generated graph (the full facebook
    // preset — the densest of the Table 2 analogues). threads=1 routes
    // through the serial bucket peeling and is the baseline; speedups at
    // ≥2 threads require real cores, so run this on multi-core hardware.
    let net = network_by_name("facebook").expect("full preset");
    let g = net.data.graph;
    let mut group = c.benchmark_group("truss_decomposition_parallel");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new(
                format!("facebook/m={}", g.num_edges()),
                format!("t={threads}"),
            ),
            &g,
            |b, g| b.iter(|| truss_decomposition_par(g, Parallelism::threads(threads))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_decomposition);
criterion_main!(benches);
