//! Ablation bench: exact path-min truss distance (Def. 7) vs the additive
//! surrogate (DESIGN.md §4) in the Steiner stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_core::{steiner_tree, SteinerMode};
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_truss::TrussIndex;
use std::time::Duration;

fn bench_steiner(c: &mut Criterion) {
    let mut group = c.benchmark_group("steiner_truss_distance");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let net = mini_network("dblp", 7).expect("mini preset");
    let g = net.graph;
    let idx = TrussIndex::build(&g);
    for size in [2usize, 4, 8] {
        let mut qg = QueryGenerator::new(&g, 13);
        let q = qg.sample(size, DegreeRank::any(), 3).expect("query");
        group.bench_with_input(
            BenchmarkId::new("path_min_exact", format!("|Q|={size}")),
            &q,
            |b, q| b.iter(|| steiner_tree(&g, &idx, q, 3.0, SteinerMode::PathMinExact)),
        );
        group.bench_with_input(
            BenchmarkId::new("edge_additive", format!("|Q|={size}")),
            &q,
            |b, q| b.iter(|| steiner_tree(&g, &idx, q, 3.0, SteinerMode::EdgeAdditive)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_steiner);
criterion_main!(benches);
