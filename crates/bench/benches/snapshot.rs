//! Microbench: the serving split — offline index construction (cold) vs
//! `.ctci` snapshot load (warm start) vs batched warm queries.
//!
//! The paper's Remark 1 prices the offline build at `O(ρ·m)`; a snapshot
//! load replaces that with an `O(n + m)` validated array read plus the
//! deterministic truss-order row rebuild. The warm-batch group then prices
//! what a serving process actually pays per request once the engine is up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_core::{CommunityEngine, EngineQuery, SearchAlgo};
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_truss::{Snapshot, TrussIndex};
use std::time::Duration;

fn bench_snapshot(c: &mut Criterion) {
    let net = mini_network("facebook", 7).expect("mini preset");
    let g = net.graph;
    let snap = Snapshot::build(g.clone());
    let raw = snap.to_bytes();

    // Offline: the cost a process pays without a snapshot.
    let mut group = c.benchmark_group("snapshot_cold_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("truss_index_build", |b| b.iter(|| TrussIndex::build(&g)));
    group.finish();

    // Warm start: parse + validate + deterministic row rebuild.
    let mut group = c.benchmark_group("snapshot_load");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_with_input(
        BenchmarkId::from_parameter(format!("{}B", raw.len())),
        &raw,
        |b, raw| b.iter(|| Snapshot::from_bytes(raw).expect("valid snapshot")),
    );
    group.finish();

    // Online: batched queries against the shared engine.
    let engine = CommunityEngine::from_snapshot(snap);
    let mut qg = QueryGenerator::new(engine.graph(), 11);
    let mut group = c.benchmark_group("snapshot_warm_batch");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for batch in [1usize, 8, 32] {
        let queries: Vec<EngineQuery> = (0..batch)
            .map(|_| {
                EngineQuery::new(qg.sample(2, DegreeRank::top(0.8), 2).expect("query"))
                    .algo(SearchAlgo::Local)
            })
            .collect();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("batch={batch}")),
            &queries,
            |b, queries| b.iter(|| engine.search_batch(queries)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_snapshot);
criterion_main!(benches);
