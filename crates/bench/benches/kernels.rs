//! Microbench: the locate-phase intersection kernels — blocked u64-bitset
//! adjacency vs the pure sorted-merge path — on the mini presets.
//!
//! `BitsetAdjacency::with_threshold(g, u32::MAX)` promotes no vertex to a
//! bitset row, so every intersection takes the sorted-merge arm; the
//! default threshold exercises the hybrid dispatch the query engine runs.
//! Both produce byte-identical supports (pinned by the proptest suite);
//! this bench pins the *speed* gap that justifies the hybrid. CI runs it
//! in `--test` smoke mode so the harness cannot rot.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_gen::mini_network;
use ctc_graph::{edge_supports_adj, BitsetAdjacency, CsrGraph};
use std::time::Duration;

/// Sum of per-edge supports via `adj` — the pass-1 workload of every
/// truss decomposition, and the densest intersection traffic in locate.
fn support_sum(g: &CsrGraph, adj: &BitsetAdjacency, sup: &mut Vec<u32>) -> u64 {
    edge_supports_adj(g, adj, sup);
    sup.iter().map(|&s| s as u64).sum()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersection_kernels");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for name in ["facebook", "dblp"] {
        let net = mini_network(name, 7).expect("mini preset");
        let g = net.graph;
        let id = format!("{name}-mini/m={}", g.num_edges());

        // Kernel dispatch: hybrid bitset vs forced all-merge, same API.
        let hybrid = BitsetAdjacency::build(&g);
        let merge = BitsetAdjacency::with_threshold(&g, u32::MAX);
        let mut sup = Vec::new();
        let want = support_sum(&g, &hybrid, &mut sup);
        assert_eq!(want, support_sum(&g, &merge, &mut sup));
        group.bench_with_input(BenchmarkId::new("edge_supports_bitset", &id), &g, |b, g| {
            b.iter(|| support_sum(g, &hybrid, &mut sup))
        });
        group.bench_with_input(BenchmarkId::new("edge_supports_merge", &id), &g, |b, g| {
            b.iter(|| support_sum(g, &merge, &mut sup))
        });

        // Sidecar construction: what a cold locate pays before the first
        // intersection (the engine amortises this through scratch pools).
        group.bench_with_input(BenchmarkId::new("bitset_build", &id), &g, |b, g| {
            b.iter(|| BitsetAdjacency::build(g).num_dense())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
