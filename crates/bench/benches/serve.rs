//! Microbench: request latency through the full serving path —
//! parse → dispatch → search/cache → encode — cached vs uncached.
//!
//! Drives [`AppState::respond`] directly (no socket), so the numbers are
//! the per-request CPU cost a `ctc-cli serve` worker pays, isolated from
//! network effects. The contrast that matters: a warm LRU hit skips the
//! whole search path and should be orders of magnitude cheaper than an
//! uncached request, while still paying the same HTTP + JSON cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_core::CommunityEngine;
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_server::{AppState, ServeConfig};
use std::time::Duration;

/// A framed `/search` request for `labels` under `algo`.
fn search_request(labels: &[u32], algo: &str) -> Vec<u8> {
    let ids = labels
        .iter()
        .map(|l| l.to_string())
        .collect::<Vec<_>>()
        .join(",");
    let body = format!(r#"{{"query":[{ids}],"algo":"{algo}"}}"#);
    format!(
        "POST /search HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{}",
        body.len(),
        body
    )
    .into_bytes()
}

fn bench_serve(c: &mut Criterion) {
    let net = mini_network("facebook", 7).expect("mini preset");
    let engine = CommunityEngine::build(net.graph);
    let mut qg = QueryGenerator::new(engine.graph(), 11);
    let queries: Vec<Vec<u32>> = (0..8)
        .map(|_| {
            qg.sample(2, DegreeRank::top(0.8), 2)
                .expect("query")
                .into_iter()
                .map(|v| v.0)
                .collect()
        })
        .collect();

    let uncached = AppState::new(
        engine.clone(),
        &ServeConfig {
            cache_cap: 0, // disabled: every request runs the search
            ..ServeConfig::default()
        },
    );
    let cached = AppState::new(engine, &ServeConfig::default());
    // Prime the cache so every benched request is a hit.
    for q in &queries {
        for algo in ["lctc", "truss"] {
            let response = cached.respond(&search_request(q, algo)).expect("response");
            assert!(response.starts_with(b"HTTP/1.1 200"), "prime failed");
        }
    }

    let mut group = c.benchmark_group("serve_request");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for algo in ["lctc", "truss"] {
        let requests: Vec<Vec<u8>> = queries.iter().map(|q| search_request(q, algo)).collect();
        group.bench_with_input(
            BenchmarkId::new("uncached", algo),
            &requests,
            |b, requests| {
                b.iter(|| {
                    for raw in requests {
                        criterion::black_box(uncached.respond(raw).expect("response"));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached_warm", algo),
            &requests,
            |b, requests| {
                b.iter(|| {
                    for raw in requests {
                        criterion::black_box(cached.respond(raw).expect("response"));
                    }
                })
            },
        );
    }
    group.finish();

    // The wire floor: parse + route + encode with no search at all.
    let mut group = c.benchmark_group("serve_overhead");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let healthz = b"GET /healthz HTTP/1.1\r\nHost: bench\r\n\r\n".to_vec();
    group.bench_function("healthz", |b| {
        b.iter(|| criterion::black_box(cached.respond(&healthz).expect("response")))
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
