//! Microbench: the three CTC search algorithms end to end — the timing
//! series behind Figures 5–10 (Basic ≫ BD ≫ LCTC is the expected order) —
//! plus the peel-phase hot loop in isolation, cold-scratch vs warm-pooled
//! vs the full-recompute reference oracle.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_core::{peel_reference, peel_with, CtcConfig, CtcSearcher, DeletePolicy, PeelScratch};
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_graph::Parallelism;
use ctc_truss::find_g0;
use std::time::Duration;

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctc_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let net = mini_network("facebook", 7).expect("mini preset");
    let g = net.graph;
    let searcher = CtcSearcher::new(&g);
    let cfg = CtcConfig::default();
    let mut qg = QueryGenerator::new(&g, 5);
    let q = qg.sample(3, DegreeRank::top(0.8), 2).expect("query");
    group.bench_with_input(BenchmarkId::new("basic", "fb-mini"), &q, |b, q| {
        b.iter(|| searcher.basic(q, &cfg).expect("basic"))
    });
    group.bench_with_input(BenchmarkId::new("bulk_delete", "fb-mini"), &q, |b, q| {
        b.iter(|| searcher.bulk_delete(q, &cfg).expect("bd"))
    });
    group.bench_with_input(BenchmarkId::new("lctc", "fb-mini"), &q, |b, q| {
        b.iter(|| searcher.local(q, &cfg).expect("lctc"))
    });
    group.bench_with_input(BenchmarkId::new("truss_only", "fb-mini"), &q, |b, q| {
        b.iter(|| searcher.truss_only(q, &cfg).expect("truss"))
    });
    group.finish();
}

/// The peel phase alone on the Basic/BD subgraph of the mini preset:
/// what the incremental distance engine (PR 5) actually accelerates.
fn bench_peel_phase(c: &mut Criterion) {
    let mut group = c.benchmark_group("peel_phase");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let net = mini_network("facebook", 7).expect("mini preset");
    let g = net.graph;
    let searcher = CtcSearcher::new(&g);
    let mut qg = QueryGenerator::new(&g, 5);
    let q = qg.sample(3, DegreeRank::top(0.8), 2).expect("query");
    let g0 = find_g0(&g, searcher.index(), &q).expect("G0 exists");
    let sub = ctc_graph::edge_subgraph(&g, &g0.edges);
    let ql = sub.locals(&q).expect("query inside G0");
    for (label, policy) in [
        ("bd", DeletePolicy::BulkAtLeast),
        ("lctc_inner", DeletePolicy::LocalGreedy),
        ("basic", DeletePolicy::SingleFurthest),
    ] {
        // Warm pooled scratch: the serving path (allocation-free rounds,
        // support-cache hits on the repeated community).
        let mut scratch = PeelScratch::new();
        let _ = peel_with(
            &sub.graph,
            &ql,
            g0.k,
            policy,
            None,
            Parallelism::serial(),
            &mut scratch,
        );
        group.bench_with_input(BenchmarkId::new("warm", label), &ql, |b, ql| {
            b.iter(|| {
                peel_with(
                    &sub.graph,
                    ql,
                    g0.k,
                    policy,
                    None,
                    Parallelism::serial(),
                    &mut scratch,
                )
            })
        });
        // Cold scratch per call: what a pool miss pays.
        group.bench_with_input(BenchmarkId::new("cold", label), &ql, |b, ql| {
            b.iter(|| {
                let mut fresh = PeelScratch::new();
                peel_with(
                    &sub.graph,
                    ql,
                    g0.k,
                    policy,
                    None,
                    Parallelism::serial(),
                    &mut fresh,
                )
            })
        });
        // Full-recompute oracle: the pre-incremental loop.
        group.bench_with_input(BenchmarkId::new("reference", label), &ql, |b, ql| {
            b.iter(|| peel_reference(&sub.graph, ql, g0.k, policy, None))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_search, bench_peel_phase);
criterion_main!(benches);
