//! Microbench: the three CTC search algorithms end to end — the timing
//! series behind Figures 5–10 (Basic ≫ BD ≫ LCTC is the expected order).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_core::{CtcConfig, CtcSearcher};
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use std::time::Duration;

fn bench_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("ctc_search");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let net = mini_network("facebook", 7).expect("mini preset");
    let g = net.graph;
    let searcher = CtcSearcher::new(&g);
    let cfg = CtcConfig::default();
    let mut qg = QueryGenerator::new(&g, 5);
    let q = qg.sample(3, DegreeRank::top(0.8), 2).expect("query");
    group.bench_with_input(BenchmarkId::new("basic", "fb-mini"), &q, |b, q| {
        b.iter(|| searcher.basic(q, &cfg).expect("basic"))
    });
    group.bench_with_input(BenchmarkId::new("bulk_delete", "fb-mini"), &q, |b, q| {
        b.iter(|| searcher.bulk_delete(q, &cfg).expect("bd"))
    });
    group.bench_with_input(BenchmarkId::new("lctc", "fb-mini"), &q, |b, q| {
        b.iter(|| searcher.local(q, &cfg).expect("lctc"))
    });
    group.bench_with_input(BenchmarkId::new("truss_only", "fb-mini"), &q, |b, q| {
        b.iter(|| searcher.truss_only(q, &cfg).expect("truss"))
    });
    group.finish();
}

criterion_group!(benches, bench_search);
criterion_main!(benches);
