//! Microbench: `FindG0` (Algorithm 2) — the `O(|E(G0)|)` claim of Remark 2
//! — and the serial-vs-parallel offline index build that feeds it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_graph::Parallelism;
use ctc_truss::{find_g0, TrussIndex};
use std::time::Duration;

fn bench_find_g0(c: &mut Criterion) {
    let mut group = c.benchmark_group("find_g0");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    let net = mini_network("facebook", 7).expect("mini preset");
    let g = net.graph;
    let idx = TrussIndex::build(&g);
    for size in [1usize, 4, 16] {
        let mut qg = QueryGenerator::new(&g, 11);
        let q = qg.sample(size, DegreeRank::top(0.8), 2).expect("query");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("|Q|={size}")),
            &q,
            |b, q| b.iter(|| find_g0(&g, &idx, q).expect("connected")),
        );
    }
    group.finish();

    // The index build is FindG0's offline prerequisite (Table 3's
    // construction column): compare the serial decomposition against the
    // parallel frontier peeling feeding the same index.
    let mut group = c.benchmark_group("find_g0_index_build");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("t={threads}")),
            &g,
            |b, g| b.iter(|| TrussIndex::build_par(g, Parallelism::threads(threads))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_find_g0);
criterion_main!(benches);
