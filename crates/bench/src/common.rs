//! Shared plumbing for the experiment binaries.

use ctc_core::{Community, CtcConfig, CtcSearcher};
use ctc_gen::{DegreeRank, Network, QueryGenerator};
use ctc_graph::{CsrGraph, Parallelism, VertexId};
use std::time::Duration;

/// Experiment knobs, read from the environment so `run_all` and CI can
/// scale workloads without code changes.
///
/// * `CTC_QUERIES` — query sets per data point (default per experiment);
/// * `CTC_BUDGET_SECS` — wall-clock budget per workload point (default 60);
/// * `CTC_SEED` — workload RNG seed (default 42);
/// * `CTC_THREADS` — worker threads for index builds (0 = all cores,
///   default 1 = serial).
#[derive(Clone, Debug)]
pub struct ExpEnv {
    /// Query sets per data point.
    pub queries: usize,
    /// Budget per workload point.
    pub budget: Duration,
    /// Workload seed.
    pub seed: u64,
    /// Thread count for the parallel phases (truss decomposition).
    pub parallelism: Parallelism,
}

impl ExpEnv {
    /// Reads the environment with an experiment-specific default query
    /// count.
    pub fn with_default_queries(default_queries: usize) -> Self {
        let queries = std::env::var("CTC_QUERIES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(default_queries);
        let budget = std::env::var("CTC_BUDGET_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Duration::from_secs)
            .unwrap_or(Duration::from_secs(60));
        let seed = std::env::var("CTC_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(42);
        let parallelism = std::env::var("CTC_THREADS")
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Parallelism::threads)
            .unwrap_or_else(Parallelism::serial);
        ExpEnv {
            queries,
            budget,
            seed,
            parallelism,
        }
    }

    /// Builds a searcher for `g` honoring `CTC_THREADS`.
    pub fn searcher<'g>(&self, g: &'g CsrGraph) -> CtcSearcher<'g> {
        CtcSearcher::with_parallelism(g, self.parallelism)
    }
}

/// An algorithm under test, boxed for uniform tables.
pub type Algo<'a> = (
    &'a str,
    Box<dyn Fn(&[VertexId]) -> Result<Community, String> + 'a>,
);

/// The three CTC algorithms as named closures over a searcher.
///
/// Basic runs with a generous iteration cap (`CTC_BASIC_CAP`, default
/// 1500): uncapped, a single wide-G0 query can run for hours — the paper
/// itself reports Basic as "Inf" on DBLP-scale inputs. A capped run still
/// returns its best (valid) snapshot; the workload budget then surfaces
/// "Inf" in the timing tables exactly like the paper's one-hour cutoff.
pub fn ctc_algos<'a>(searcher: &'a CtcSearcher<'a>, cfg: &'a CtcConfig) -> Vec<Algo<'a>> {
    let cap = std::env::var("CTC_BASIC_CAP")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1500usize);
    let basic_cfg = {
        let mut c = cfg.clone();
        c.max_iterations = Some(cap);
        c
    };
    vec![
        (
            "Basic",
            Box::new(move |q: &[VertexId]| {
                searcher.basic(q, &basic_cfg).map_err(|e| e.to_string())
            }),
        ),
        (
            "BD",
            Box::new(move |q| searcher.bulk_delete(q, cfg).map_err(|e| e.to_string())),
        ),
        (
            "LCTC",
            Box::new(move |q| searcher.local(q, cfg).map_err(|e| e.to_string())),
        ),
    ]
}

/// Samples `count` query sets with the given shape; skips failures.
pub fn sample_queries(
    net: &Network,
    count: usize,
    size: usize,
    rank: DegreeRank,
    inter_distance: u32,
    seed: u64,
) -> Vec<Vec<VertexId>> {
    let mut qg = QueryGenerator::new(&net.data.graph, seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count * 4 {
        if out.len() == count {
            break;
        }
        if let Some(q) = qg.sample(size, rank, inter_distance) {
            out.push(q);
        }
    }
    out
}

/// Mean of an iterator of f64 (0 for empty).
pub fn mean(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Standard banner printed by every experiment binary.
pub fn banner(title: &str, net_line: &str) {
    println!("=== {title} ===");
    println!("{net_line}");
    println!();
}
