//! Zipfian load generator for the evented serving stack (`BENCH_8.json`).
//!
//! Self-hosts a [`CtcServer`] on an ephemeral loopback port with two named
//! tenants (the mini presets), then drives it with keep-alive client
//! threads at increasing concurrency levels. Queries are drawn from a
//! fixed per-tenant pool with Zipf-distributed popularity — the classic
//! serving mix where a hot head amortizes through the answer cache while
//! the tail keeps the search path honest. Every request's wall latency is
//! recorded client-side; the document reports the p50/p99 trajectory per
//! level plus any admission sheds observed (429/503).
//!
//! Determinism: the query pool, the Zipf draw sequence, and the
//! tenant interleave are all seeded (splitmix64 — the vendored `rand` has
//! no distributions, so the sampler is hand-rolled); latencies are of
//! course machine-dependent, which is why the committed bars in
//! `bench_record --check` validate shape (schema, p50 ≤ p99, exact
//! request accounting), never absolute microseconds.

use ctc_core::CommunityEngine;
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_graph::{Parallelism, VertexId};
use ctc_server::{AppState, CtcServer, Json, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The two tenants every load run serves, in `/t/<name>/search` order.
pub const TENANTS: [&str; 2] = ["fb", "dblp"];

/// Network seed shared with the other recorded benches.
const NET_SEED: u64 = 7;

/// What to drive at the server.
#[derive(Clone, Debug)]
pub struct LoadSpec {
    /// Concurrency levels (keep-alive connections driving in parallel).
    pub levels: Vec<usize>,
    /// Total requests per level, split evenly across its connections.
    pub requests_per_level: usize,
    /// Zipf exponent for query popularity (1.0 ≈ classic web skew).
    pub zipf_s: f64,
    /// Distinct query sets per tenant in the popularity-ranked pool.
    pub pool_size: usize,
    /// Seed for the query pool and the draw sequence.
    pub seed: u64,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            levels: vec![1, 4, 16, 64],
            requests_per_level: 512,
            zipf_s: 1.0,
            pool_size: 32,
            seed: 0xc7c8,
        }
    }
}

impl LoadSpec {
    /// A tiny spec for smoking the harness in `--check` runs.
    pub fn smoke() -> Self {
        LoadSpec {
            levels: vec![1, 2],
            requests_per_level: 16,
            pool_size: 4,
            ..LoadSpec::default()
        }
    }
}

/// One level's aggregated result.
#[derive(Clone, Debug)]
pub struct LevelResult {
    /// Connections driving concurrently.
    pub concurrency: usize,
    /// Requests answered 200 across all connections.
    pub ok: u64,
    /// Requests shed with 429 (per-tenant in-flight cap).
    pub shed_429: u64,
    /// Requests shed with 503 (accept/queue admission).
    pub shed_503: u64,
    /// Median request latency, microseconds.
    pub p50_us: u64,
    /// 99th-percentile request latency, microseconds.
    pub p99_us: u64,
}

/// splitmix64: tiny, seedable, and good enough for load shaping.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A unit-interval draw from the top 53 bits.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Rank-popularity sampler: `P(i) ∝ 1/(i+1)^s` over `n` ranks, drawn by
/// binary search over the precomputed CDF.
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// A sampler over `n` ranks with exponent `s`.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws a rank in `0..n`.
    pub fn sample(&self, state: &mut u64) -> usize {
        let u = unit(state);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Builds the popularity-ranked query pool for one preset graph.
fn query_pool(preset: &str, pool_size: usize, seed: u64) -> (CommunityEngine, Vec<String>) {
    let name = preset.strip_prefix("mini-").unwrap_or(preset);
    let net = mini_network(name, NET_SEED).expect("known mini preset");
    let graph = net.graph;
    let mut qg = QueryGenerator::new(&graph, seed);
    let bodies: Vec<String> = (0..pool_size)
        .map(|_| {
            let q: Vec<VertexId> = qg
                .sample(3, DegreeRank::top(0.8), 2)
                .expect("mini preset yields queries");
            let labels: Vec<String> = q.iter().map(|v| v.0.to_string()).collect();
            format!(r#"{{"query":[{}],"algo":"basic"}}"#, labels.join(","))
        })
        .collect();
    (CommunityEngine::build(graph), bodies)
}

/// Reads one keep-alive HTTP response; returns `(status_code, closed)`.
fn read_status(conn: &mut TcpStream, scratch: &mut Vec<u8>) -> std::io::Result<(u16, bool)> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(head_end) = scratch.windows(4).position(|w| w == b"\r\n\r\n") {
            let head = String::from_utf8_lossy(&scratch[..head_end]).to_string();
            let status: u16 = head
                .split_whitespace()
                .nth(1)
                .and_then(|s| s.parse().ok())
                .unwrap_or(0);
            let closed = head.contains("connection: close");
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("content-length: "))
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
            let body_start = head_end + 4;
            while scratch.len() < body_start + len {
                let n = conn.read(&mut chunk)?;
                if n == 0 {
                    break;
                }
                scratch.extend_from_slice(&chunk[..n]);
            }
            scratch.drain(..(body_start + len).min(scratch.len()));
            return Ok((status, closed));
        }
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            return Ok((0, true));
        }
        scratch.extend_from_slice(&chunk[..n]);
    }
}

/// One client connection's share of a level: keep-alive, reconnecting
/// only if the server closed the connection (e.g. after a shed).
fn drive_conn(
    addr: SocketAddr,
    pools: &[(String, Vec<String>)],
    zipf: &Zipf,
    mut rng: u64,
    requests: usize,
) -> (Vec<u64>, u64, u64, u64) {
    let connect = || -> TcpStream {
        let conn = TcpStream::connect(addr).expect("load connect");
        conn.set_read_timeout(Some(Duration::from_secs(30)))
            .unwrap();
        let _ = conn.set_nodelay(true);
        conn
    };
    let mut conn = connect();
    let mut scratch = Vec::new();
    let (mut ok, mut s429, mut s503) = (0u64, 0u64, 0u64);
    let mut lat = Vec::with_capacity(requests);
    for _ in 0..requests {
        let (tenant, bodies) = &pools[(splitmix64(&mut rng) % pools.len() as u64) as usize];
        let body = &bodies[zipf.sample(&mut rng)];
        let raw = format!(
            "POST /t/{tenant}/search HTTP/1.1\r\nHost: load\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        let t0 = Instant::now();
        if conn.write_all(raw.as_bytes()).is_err() {
            conn = connect();
            scratch.clear();
            conn.write_all(raw.as_bytes())
                .expect("write after reconnect");
        }
        let (status, closed) = read_status(&mut conn, &mut scratch).expect("read status");
        lat.push(t0.elapsed().as_micros() as u64);
        match status {
            200 => ok += 1,
            429 => s429 += 1,
            503 => s503 += 1,
            other => panic!("unexpected status {other}"),
        }
        if closed {
            conn = connect();
            scratch.clear();
        }
    }
    (lat, ok, s429, s503)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Runs the whole trajectory: one self-hosted server, every level in
/// `spec.levels` in order, cache state carried across levels (a serving
/// process is warm; re-cold-starting per level would measure builds).
pub fn run(spec: &LoadSpec) -> Vec<LevelResult> {
    let cfg = ServeConfig {
        pool: Parallelism::threads(2),
        max_conns: spec.levels.iter().copied().max().unwrap_or(1) + 16,
        request_deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let (fb_engine, fb_pool) = query_pool("mini-facebook", spec.pool_size, spec.seed);
    let (dblp_engine, dblp_pool) = query_pool("mini-dblp", spec.pool_size, spec.seed ^ 1);
    let state = Arc::new(AppState::new(fb_engine.clone(), &cfg));
    state
        .add_tenant_engine(TENANTS[0], fb_engine)
        .expect("register fb");
    state
        .add_tenant_engine(TENANTS[1], dblp_engine)
        .expect("register dblp");
    let pools: Vec<(String, Vec<String>)> = vec![
        (TENANTS[0].to_string(), fb_pool),
        (TENANTS[1].to_string(), dblp_pool),
    ];
    let server = CtcServer::bind_state(Arc::clone(&state), "127.0.0.1:0", &cfg).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.serve());

    let zipf = Zipf::new(spec.pool_size, spec.zipf_s);
    let mut results = Vec::with_capacity(spec.levels.len());
    for (li, &level) in spec.levels.iter().enumerate() {
        let level = level.max(1);
        let share = spec.requests_per_level / level;
        let extra = spec.requests_per_level % level;
        let outcomes: Vec<(Vec<u64>, u64, u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..level)
                .map(|ci| {
                    let pools = &pools;
                    let zipf = &zipf;
                    let requests = share + usize::from(ci < extra);
                    let rng = spec
                        .seed
                        .wrapping_mul(0x100_0003)
                        .wrapping_add((li as u64) << 32 | ci as u64);
                    scope.spawn(move || drive_conn(addr, pools, zipf, rng, requests))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client"))
                .collect()
        });
        let mut lat: Vec<u64> = Vec::with_capacity(spec.requests_per_level);
        let (mut ok, mut s429, mut s503) = (0u64, 0u64, 0u64);
        for (l, o, a, b) in outcomes {
            lat.extend(l);
            ok += o;
            s429 += a;
            s503 += b;
        }
        lat.sort_unstable();
        results.push(LevelResult {
            concurrency: level,
            ok,
            shed_429: s429,
            shed_503: s503,
            p50_us: percentile(&lat, 0.50),
            p99_us: percentile(&lat, 0.99),
        });
    }
    handle.shutdown();
    let _ = join.join();
    results
}

/// The `levels` array of the `ctc-bench-8` document.
pub fn encode_levels(results: &[LevelResult]) -> Json {
    Json::Array(
        results
            .iter()
            .map(|r| {
                Json::Object(vec![
                    ("concurrency".into(), Json::Uint(r.concurrency as u64)),
                    ("ok".into(), Json::Uint(r.ok)),
                    ("shed_429".into(), Json::Uint(r.shed_429)),
                    ("shed_503".into(), Json::Uint(r.shed_503)),
                    ("p50_us".into(), Json::Uint(r.p50_us)),
                    ("p99_us".into(), Json::Uint(r.p99_us)),
                ])
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_deterministic_and_head_heavy() {
        let z = Zipf::new(16, 1.0);
        let mut a = 42u64;
        let mut b = 42u64;
        let draws_a: Vec<usize> = (0..100).map(|_| z.sample(&mut a)).collect();
        let draws_b: Vec<usize> = (0..100).map(|_| z.sample(&mut b)).collect();
        assert_eq!(draws_a, draws_b, "same seed, same sequence");
        let head = draws_a.iter().filter(|&&r| r < 4).count();
        assert!(head > 40, "zipf(1.0) head must dominate: {head}/100");
        assert!(draws_a.iter().all(|&r| r < 16));
    }

    #[test]
    fn smoke_load_run_accounts_every_request() {
        let spec = LoadSpec::smoke();
        let results = run(&spec);
        assert_eq!(results.len(), spec.levels.len());
        for r in &results {
            assert_eq!(
                r.ok + r.shed_429 + r.shed_503,
                spec.requests_per_level as u64,
                "every request resolves: {r:?}"
            );
            assert!(r.p50_us <= r.p99_us, "{r:?}");
            assert!(r.p99_us > 0, "{r:?}");
        }
    }
}
