//! Exp-4 (Fig. 13: diameter/trussness approximation), Exp-5 (Fig. 14:
//! fixed-k sweep) and Exp-6 (Figs. 15–16: LCTC parameter sweeps).

use crate::common::{banner, mean, sample_queries, ExpEnv};
use ctc_core::CtcConfig;
use ctc_eval::{f1_score, fmt_f, fmt_secs, run_workload, Table};
use ctc_gen::{network_by_name, DegreeRank, QueryGenerator};
use ctc_graph::VertexId;
use rand::Rng;

/// Fig. 13: diameters of Basic/BD/LCTC vs the optimal-diameter bounds
/// (LB-OPT = Basic's query distance, UB-OPT = 2·LB — Lemma 2), plus the
/// trussness each algorithm certifies, varying inter-distance `l` on the
/// Facebook analogue.
pub fn fig13() {
    let env = ExpEnv::with_default_queries(15);
    let net = network_by_name("facebook").expect("facebook preset");
    let g = &net.data.graph;
    banner(
        "Fig. 13 — diameter & trussness approximation (facebook)",
        &format!("{} query sets per point, |Q| = 3", env.queries),
    );
    let searcher = env.searcher(g);
    let cfg = CtcConfig::default();
    // Cap Basic like the rest of the harness (see common::ctc_algos).
    let basic_cfg = CtcConfig::new().max_iterations(1500);
    let mut diam_t = Table::new(["l", "Basic", "BD", "LCTC", "LB-OPT", "UB-OPT"]);
    let mut truss_t = Table::new(["l", "Basic", "BD", "LCTC"]);
    for l in 1u32..=5 {
        let queries = sample_queries(
            &net,
            env.queries,
            3,
            DegreeRank::top(0.8),
            l,
            env.seed + l as u64,
        );
        let mut diams: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut trusses: Vec<Vec<f64>> = vec![Vec::new(); 3];
        let mut lb: Vec<f64> = Vec::new();
        for q in &queries {
            let results = [
                searcher.basic(q, &basic_cfg),
                searcher.bulk_delete(q, &cfg),
                searcher.local(q, &cfg),
            ];
            if let Ok(b) = &results[0] {
                lb.push(b.query_distance as f64);
            }
            for (i, r) in results.iter().enumerate() {
                if let Ok(c) = r {
                    diams[i].push(c.diameter() as f64);
                    trusses[i].push(c.k as f64);
                }
            }
        }
        let lb_m = mean(lb.iter().copied());
        diam_t.row([
            l.to_string(),
            fmt_f(mean(diams[0].iter().copied())),
            fmt_f(mean(diams[1].iter().copied())),
            fmt_f(mean(diams[2].iter().copied())),
            fmt_f(lb_m),
            fmt_f(2.0 * lb_m),
        ]);
        truss_t.row([
            l.to_string(),
            fmt_f(mean(trusses[0].iter().copied())),
            fmt_f(mean(trusses[1].iter().copied())),
            fmt_f(mean(trusses[2].iter().copied())),
        ]);
    }
    println!("(a) mean diameter vs optimal bounds\n{}", diam_t.render());
    println!(
        "(b) mean trussness of the detected community\n{}",
        truss_t.render()
    );
}

/// Fig. 14: LCTC with a fixed maximum trussness k — diameter vs k on the
/// Facebook analogue ("trading trussness for diameter", §7.1).
pub fn fig14() {
    let env = ExpEnv::with_default_queries(15);
    let net = network_by_name("facebook").expect("facebook preset");
    let g = &net.data.graph;
    banner(
        "Fig. 14 — diameter vs fixed trussness k (facebook, LCTC)",
        "",
    );
    let searcher = env.searcher(g);
    // Tight (l = 1) queries keep a single query population feasible across
    // the whole k sweep: for k below a query's maximum, a connected k-truss
    // containing it always exists, so every point averages the same sets.
    let queries = sample_queries(&net, env.queries, 3, DegreeRank::top(0.8), 1, env.seed);
    // Baseline at the true maximum trussness (Basic capped as elsewhere).
    let max_cfg = CtcConfig::new().max_iterations(1500);
    let mut t = Table::new(["k", "LCTC diameter", "LB-OPT"]);
    let lb = mean(queries.iter().filter_map(|q| {
        searcher
            .basic(q, &max_cfg)
            .ok()
            .map(|c| c.query_distance as f64)
    }));
    let max_k = queries
        .iter()
        .filter_map(|q| searcher.local(q, &max_cfg).ok().map(|c| c.k))
        .min() // the largest k feasible for *every* query in the population
        .unwrap_or(4);
    let mut ks: Vec<u32> = (2..max_k)
        .step_by(2.max((max_k as usize - 2) / 4))
        .collect();
    ks.push(max_k);
    for k in ks {
        let cfg = CtcConfig::new().fixed_k(k);
        let d = mean(
            queries
                .iter()
                .filter_map(|q| searcher.local(q, &cfg).ok().map(|c| c.diameter() as f64)),
        );
        let label = if k == max_k {
            format!("{k} (max)")
        } else {
            k.to_string()
        };
        t.row([label, fmt_f(d), fmt_f(lb)]);
    }
    println!("{}", t.render());
}

/// Figs. 15–16: LCTC parameter sweeps (η then γ) on the DBLP analogue:
/// community size, F1 vs ground truth, query time.
pub fn fig15_16() {
    let env = ExpEnv::with_default_queries(30);
    let net = network_by_name("dblp").expect("dblp preset");
    let g = &net.data.graph;
    banner(
        "Figs. 15/16 — LCTC parameter sweeps (dblp)",
        &format!("{} ground-truth query sets per point", env.queries),
    );
    let searcher = env.searcher(g);
    let mut qg = QueryGenerator::new(g, env.seed);
    let mut rng = rand::rngs::StdRng::clone(&rand::SeedableRng::seed_from_u64(env.seed ^ 0x15));
    let mut workload: Vec<(Vec<VertexId>, usize)> = Vec::new();
    for _ in 0..env.queries * 4 {
        if workload.len() == env.queries {
            break;
        }
        let size = 1 + rng.gen_range(0..8usize);
        if let Some((q, ci)) = qg.sample_from_ground_truth(&net.data, size) {
            workload.push((q, ci));
        }
    }
    let sweep = |cfgs: Vec<(String, CtcConfig)>, knob: &str| {
        let mut t = Table::new([knob, "|V|", "F1", "time"]);
        for (label, cfg) in cfgs {
            let (outs, stats) = run_workload(&workload, env.budget, |(q, _)| {
                searcher.local(q, &cfg).map_err(|e| e.to_string())
            });
            let nv = mean(
                outs.iter()
                    .filter_map(|o| o.value())
                    .map(|c| c.num_vertices() as f64),
            );
            let f1 = mean(outs.iter().zip(&workload).filter_map(|(o, (_, ci))| {
                o.value()
                    .map(|c| f1_score(&c.vertices, &net.data.communities[*ci]).f1)
            }));
            t.row([label, fmt_f(nv), fmt_f(f1), fmt_secs(stats.mean_seconds)]);
        }
        println!("{}", t.render());
    };
    println!("Fig. 15 — varying η (γ = 3):");
    sweep(
        [100usize, 500, 1000, 1500, 2000]
            .iter()
            .map(|&eta| (eta.to_string(), CtcConfig::new().eta(eta)))
            .collect(),
        "η",
    );
    // γ only matters when the query's connecting paths can trade length for
    // trussness — i.e. for *spread* queries whose members sit in different
    // dense regions. Ground-truth (single-community) queries never exercise
    // it, so Fig. 16 uses spread workloads and reports the structural
    // series (|V|, trussness, diameter) instead of F1.
    println!("Fig. 16 — varying γ (η = 1000, spread queries l = 3):");
    let spread = sample_queries(
        &net,
        env.queries,
        3,
        ctc_gen::DegreeRank::any(),
        3,
        env.seed ^ 7,
    );
    let mut t = Table::new(["γ", "|V|", "k", "diameter", "time"]);
    for gamma in [0.0f64, 1.0, 3.0, 5.0, 7.0, 9.0] {
        let cfg = CtcConfig::new().gamma(gamma);
        let (outs, stats) = run_workload(&spread, env.budget, |q| {
            searcher.local(q, &cfg).map_err(|e| e.to_string())
        });
        t.row([
            format!("{gamma}"),
            fmt_f(mean(
                outs.iter()
                    .filter_map(|o| o.value())
                    .map(|c| c.num_vertices() as f64),
            )),
            fmt_f(mean(
                outs.iter().filter_map(|o| o.value()).map(|c| c.k as f64),
            )),
            fmt_f(mean(
                outs.iter()
                    .filter_map(|o| o.value())
                    .map(|c| c.diameter() as f64),
            )),
            fmt_secs(stats.mean_seconds),
        ]);
    }
    println!("{}", t.render());
}
