//! Exp-2 (Figure 11): the collaboration-network case study.

use crate::common::banner;
use ctc_core::{CtcConfig, CtcSearcher};
use ctc_eval::Table;
use ctc_gen::case_study_network;

/// Runs the case study and prints the G0-vs-LCTC comparison.
pub fn run() {
    let net = case_study_network(0xD81);
    let g = &net.graph;
    banner(
        "Fig. 11 — case study on a synthetic collaboration network",
        &format!(
            "{} authors, {} co-author edges",
            g.num_vertices(),
            g.num_edges()
        ),
    );
    let q = net.query_authors.clone();
    println!(
        "query authors: {}",
        q.iter()
            .map(|&v| net.names[v.index()].clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let searcher = CtcSearcher::new(g);
    let cfg = CtcConfig::default();
    let g0 = searcher.truss_only(&q, &cfg).expect("G0");
    let lctc = searcher.local(&q, &cfg).expect("LCTC");
    let mut t = Table::new(["community", "k", "authors", "edges", "diameter", "density"]);
    for (name, c) in [("G0 (Fig. 11a)", &g0), ("LCTC (Fig. 11b)", &lctc)] {
        t.row([
            name.to_string(),
            c.k.to_string(),
            c.num_vertices().to_string(),
            c.num_edges().to_string(),
            c.diameter().to_string(),
            format!("{:.2}", c.density()),
        ]);
    }
    println!("\n{}", t.render());
    println!(
        "paper: G0 = 73 authors, diam 4, density 0.18 → LCTC = 14 authors, diam 2, density 0.89"
    );
    println!("\nLCTC community members:");
    for &v in &lctc.vertices {
        let marker = if q.contains(&v) { " [query]" } else { "" };
        println!("  {}{}", net.names[v.index()], marker);
    }
}
