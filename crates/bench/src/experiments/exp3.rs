//! Exp-3 (Figure 12): quality against ground-truth communities on the five
//! evaluation networks — F1, query time, and the Truss-vs-LCTC size
//! reduction.

use crate::common::{banner, mean, ExpEnv};
use ctc_baselines::{mdc, qdc, MdcConfig, QdcConfig};
use ctc_core::{Community, CtcConfig};
use ctc_eval::{f1_score, fmt_f, fmt_secs, run_workload, Table};
use ctc_gen::{ground_truth_networks, QueryGenerator};
use ctc_graph::VertexId;
use rand::{Rng, SeedableRng};

/// Per-network aggregate row.
struct NetRow {
    name: String,
    f1: Vec<f64>,   // per method
    time: Vec<f64>, // per method (mean seconds)
    truss_v: f64,
    truss_e: f64,
    lctc_v: f64,
    lctc_e: f64,
}

const METHODS: [&str; 4] = ["MDC", "QDC", "Truss", "LCTC"];

/// Runs Exp-3 over all ground-truth networks.
pub fn run() {
    let env = ExpEnv::with_default_queries(60);
    banner(
        "Fig. 12 — quality on networks with ground-truth communities",
        &format!(
            "{} query sets per network, |Q| uniform in 1..=16, sampled within single \
             ground-truth communities (paper: 1000 sets; scale with CTC_QUERIES)",
            env.queries
        ),
    );
    let mut rows: Vec<NetRow> = Vec::new();
    for net in ground_truth_networks() {
        let g = &net.data.graph;
        eprintln!(
            "[exp3] {}: {} vertices, {} edges — building index...",
            net.name,
            g.num_vertices(),
            g.num_edges()
        );
        let searcher = env.searcher(g);
        let cfg = CtcConfig::default();
        // Workload: (query, ground-truth community index).
        let mut qg = QueryGenerator::new(g, env.seed);
        let mut rng = rand::rngs::StdRng::seed_from_u64(env.seed ^ 0x5a5a);
        let mut workload: Vec<(Vec<VertexId>, usize)> = Vec::new();
        for _ in 0..env.queries * 4 {
            if workload.len() == env.queries {
                break;
            }
            let size = 1 + rng.gen_range(0..16usize);
            if let Some((q, ci)) = qg.sample_from_ground_truth(&net.data, size) {
                workload.push((q, ci));
            }
        }
        type Method<'a> = (
            &'a str,
            Box<dyn Fn(&[VertexId]) -> Result<Community, String> + 'a>,
        );
        let methods: Vec<Method> = vec![
            (
                "MDC",
                Box::new(|q: &[VertexId]| {
                    mdc(g, q, &MdcConfig::default()).map_err(|e| e.to_string())
                }),
            ),
            (
                "QDC",
                Box::new(|q: &[VertexId]| {
                    qdc(g, q, &QdcConfig::default()).map_err(|e| e.to_string())
                }),
            ),
            (
                "Truss",
                Box::new(|q: &[VertexId]| searcher.truss_only(q, &cfg).map_err(|e| e.to_string())),
            ),
            (
                "LCTC",
                Box::new(|q: &[VertexId]| searcher.local(q, &cfg).map_err(|e| e.to_string())),
            ),
        ];
        let mut f1s = Vec::new();
        let mut times = Vec::new();
        let mut sizes: Vec<(f64, f64)> = Vec::new();
        for (name, f) in &methods {
            eprintln!("[exp3]   {name}...");
            let (outs, stats) = run_workload(&workload, env.budget, |(q, _)| f(q));
            let f1 = mean(outs.iter().zip(&workload).filter_map(|(o, (_, ci))| {
                let truth = &net.data.communities[*ci];
                // Failures score 0 (the paper counts them against the model).
                match o {
                    ctc_eval::RunOutcome::Done(c, _) => Some(f1_score(&c.vertices, truth).f1),
                    ctc_eval::RunOutcome::Failed(_) => Some(0.0),
                    ctc_eval::RunOutcome::OverBudget => None,
                }
            }));
            f1s.push(f1);
            times.push(stats.mean_seconds);
            sizes.push((
                mean(
                    outs.iter()
                        .filter_map(|o| o.value())
                        .map(|c| c.num_vertices() as f64),
                ),
                mean(
                    outs.iter()
                        .filter_map(|o| o.value())
                        .map(|c| c.num_edges() as f64),
                ),
            ));
        }
        rows.push(NetRow {
            name: net.name.to_string(),
            f1: f1s,
            time: times,
            truss_v: sizes[2].0,
            truss_e: sizes[2].1,
            lctc_v: sizes[3].0,
            lctc_e: sizes[3].1,
        });
    }

    let mut t = Table::new(["network", "MDC", "QDC", "Truss", "LCTC"]);
    for r in &rows {
        t.row([
            r.name.clone(),
            fmt_f(r.f1[0]),
            fmt_f(r.f1[1]),
            fmt_f(r.f1[2]),
            fmt_f(r.f1[3]),
        ]);
    }
    println!("(a) mean F1 score\n{}", t.render());

    let mut t = Table::new(["network", "MDC", "QDC", "Truss", "LCTC"]);
    for r in &rows {
        t.row([
            r.name.clone(),
            fmt_secs(r.time[0]),
            fmt_secs(r.time[1]),
            fmt_secs(r.time[2]),
            fmt_secs(r.time[3]),
        ]);
    }
    println!("(b) mean query time\n{}", t.render());

    let mut t = Table::new(["network", "|V|-Truss", "|V|-LCTC", "|E|-Truss", "|E|-LCTC"]);
    for r in &rows {
        t.row([
            r.name.clone(),
            fmt_f(r.truss_v),
            fmt_f(r.lctc_v),
            fmt_f(r.truss_e),
            fmt_f(r.lctc_e),
        ]);
    }
    println!("(c) community size reduction\n{}", t.render());
    let _ = METHODS;
}
