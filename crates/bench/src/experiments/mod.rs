//! One module per paper experiment; each `exp_*` binary is a thin wrapper.

pub mod ablation;
pub mod exp1;
pub mod exp2;
pub mod exp3;
pub mod exp456;
pub mod tables;
