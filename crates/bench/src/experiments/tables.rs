//! Table 2 (network statistics) and Table 3 (index size / build time).

use crate::common::banner;
use ctc_eval::{fmt_mb, fmt_secs, Table};
use ctc_gen::all_networks;
use ctc_truss::TrussIndex;
use std::time::Instant;

/// Table 2: `|V|, |E|, d_max, τ̄(∅)` for the six preset networks.
pub fn table2() {
    banner(
        "Table 2 — network statistics (synthetic analogues)",
        "paper sizes in parentheses",
    );
    let mut t = Table::new([
        "network",
        "|V|",
        "|E|",
        "dmax",
        "τ̄(∅)",
        "paper |V|/|E|",
        "scale",
    ]);
    for net in all_networks() {
        let g = &net.data.graph;
        let t0 = Instant::now();
        let idx = TrussIndex::build(g);
        let _ = t0;
        t.row([
            net.name.to_string(),
            g.num_vertices().to_string(),
            g.num_edges().to_string(),
            g.max_degree().to_string(),
            idx.max_truss().to_string(),
            format!("{}/{}", net.paper_size.0, net.paper_size.1),
            net.scale_note.to_string(),
        ]);
    }
    println!("{}", t.render());
}

/// Table 3: graph size, index size and index construction time.
pub fn table3() {
    banner(
        "Table 3 — index size and construction time",
        "sizes in MB; paper reports index ≈ 1.6× graph size",
    );
    let mut t = Table::new(["network", "graph (MB)", "index (MB)", "ratio", "build time"]);
    for net in all_networks() {
        let g = &net.data.graph;
        let t0 = Instant::now();
        let idx = TrussIndex::build(g);
        let secs = t0.elapsed().as_secs_f64();
        let gb = g.memory_bytes();
        let ib = idx.memory_bytes();
        t.row([
            net.name.to_string(),
            fmt_mb(gb),
            fmt_mb(ib),
            format!("{:.2}", ib as f64 / gb as f64),
            fmt_secs(secs),
        ]);
    }
    println!("{}", t.render());
}
