//! Ablations for the design choices DESIGN.md §4 calls out:
//!
//! 1. **Truss-distance semantics** — exact path-min (Def. 7) vs the
//!    additive surrogate in the LCTC Steiner stage;
//! 2. **Deletion policy** — single-furthest (Alg. 1) vs bulk `d−1`
//!    (Alg. 4) vs the LCTC `L'` greedy, run on identical `G0`s.

use crate::common::{banner, mean, sample_queries, ExpEnv};
use ctc_core::{peel, CtcConfig, DeletePolicy, SteinerMode};
use ctc_eval::{fmt_f, fmt_secs, run_workload, Table};
use ctc_gen::{network_by_name, DegreeRank};
use ctc_truss::g0_subgraph;
use std::time::Instant;

/// Steiner truss-distance mode ablation (LCTC end to end on dblp).
pub fn steiner_modes() {
    let env = ExpEnv::with_default_queries(20);
    let net = network_by_name("dblp").expect("dblp preset");
    let g = &net.data.graph;
    banner(
        "Ablation A — truss-distance mode in LCTC (dblp)",
        &format!("{} spread query sets (|Q| = 4, l = 3)", env.queries),
    );
    let searcher = env.searcher(g);
    let queries = sample_queries(&net, env.queries, 4, DegreeRank::any(), 3, env.seed);
    let mut t = Table::new(["mode", "k", "|V|", "diameter", "time"]);
    for (label, mode) in [
        ("PathMinExact (Def. 7)", SteinerMode::PathMinExact),
        ("EdgeAdditive (surrogate)", SteinerMode::EdgeAdditive),
    ] {
        let cfg = CtcConfig::new().steiner_mode(mode);
        let (outs, stats) = run_workload(&queries, env.budget, |q| {
            searcher.local(q, &cfg).map_err(|e| e.to_string())
        });
        t.row([
            label.to_string(),
            fmt_f(mean(
                outs.iter().filter_map(|o| o.value()).map(|c| c.k as f64),
            )),
            fmt_f(mean(
                outs.iter()
                    .filter_map(|o| o.value())
                    .map(|c| c.num_vertices() as f64),
            )),
            fmt_f(mean(
                outs.iter()
                    .filter_map(|o| o.value())
                    .map(|c| c.diameter() as f64),
            )),
            fmt_secs(stats.mean_seconds),
        ]);
    }
    println!("{}", t.render());
}

/// Deletion-policy ablation on shared `G0`s (facebook).
pub fn delete_policies() {
    let env = ExpEnv::with_default_queries(15);
    let net = network_by_name("facebook").expect("facebook preset");
    let g = &net.data.graph;
    banner(
        "Ablation B — peeling policy on identical G0 (facebook)",
        &format!("{} query sets (|Q| = 3, l = 2)", env.queries),
    );
    let searcher = env.searcher(g);
    let queries = sample_queries(&net, env.queries, 3, DegreeRank::top(0.8), 2, env.seed);
    type PolicyRow = (&'static str, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut rows: Vec<PolicyRow> = vec![
        ("SingleFurthest (Alg. 1)", vec![], vec![], vec![], vec![]),
        ("BulkAtLeast (Alg. 4)", vec![], vec![], vec![], vec![]),
        ("LocalGreedy (LCTC §5.2)", vec![], vec![], vec![], vec![]),
    ];
    for q in &queries {
        let Ok(g0) = ctc_truss::find_g0(g, searcher.index(), q) else {
            continue;
        };
        let sub = g0_subgraph(g, &g0);
        let Some(ql) = sub.locals(q) else { continue };
        for (i, policy) in [
            DeletePolicy::SingleFurthest,
            DeletePolicy::BulkAtLeast,
            DeletePolicy::LocalGreedy,
        ]
        .iter()
        .enumerate()
        {
            let t0 = Instant::now();
            let out = peel(&sub.graph, &ql, g0.k, *policy, Some(3000));
            let secs = t0.elapsed().as_secs_f64();
            rows[i].1.push(out.vertices.len() as f64);
            rows[i].2.push(out.query_distance as f64);
            rows[i].3.push(out.iterations as f64);
            rows[i].4.push(secs);
        }
    }
    let mut t = Table::new(["policy", "|V|", "dist(R,Q)", "iterations", "time"]);
    for (label, vs, ds, is_, ts) in rows {
        t.row([
            label.to_string(),
            fmt_f(mean(vs.into_iter())),
            fmt_f(mean(ds.into_iter())),
            fmt_f(mean(is_.into_iter())),
            fmt_secs(mean(ts.into_iter())),
        ]);
    }
    println!("{}", t.render());
}
