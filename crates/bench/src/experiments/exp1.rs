//! Exp-1 (Figures 5–10): query time, free-rider percentage and density as
//! the three workload knobs vary — query size `|Q|`, degree rank, and
//! inter-distance `l` — on the DBLP and Facebook analogues.

use crate::common::{banner, ctc_algos, mean, sample_queries, ExpEnv};
use ctc_core::CtcConfig;
use ctc_eval::{fmt_f, fmt_secs, run_workload, Table};
use ctc_gen::{network_by_name, DegreeRank, Network};
use ctc_graph::VertexId;

/// One workload point: label + the sampled query sets.
struct Point {
    label: String,
    queries: Vec<Vec<VertexId>>,
}

/// Which figure family to run.
#[derive(Clone, Copy)]
pub enum Knob {
    /// Figures 5–6: vary `|Q|` ∈ {1, 2, 4, 8, 16}.
    QuerySize,
    /// Figures 7–8: vary the degree-rank bucket.
    DegreeRank,
    /// Figures 9–10: vary the inter-distance `l` ∈ 1..5.
    InterDistance,
}

impl Knob {
    fn title(&self) -> &'static str {
        match self {
            Knob::QuerySize => "varying query size |Q| (Figs. 5/6)",
            Knob::DegreeRank => "varying degree rank (Figs. 7/8)",
            Knob::InterDistance => "varying inter-distance l (Figs. 9/10)",
        }
    }

    fn points(&self, net: &Network, env: &ExpEnv) -> Vec<Point> {
        match self {
            Knob::QuerySize => [1usize, 2, 4, 8, 16]
                .iter()
                .map(|&s| Point {
                    label: format!("|Q|={s}"),
                    queries: sample_queries(net, env.queries, s, DegreeRank::top(0.8), 2, env.seed),
                })
                .collect(),
            Knob::DegreeRank => (0..5)
                .map(|b| Point {
                    label: format!("rank {}%", (b + 1) * 20),
                    queries: sample_queries(
                        net,
                        env.queries,
                        3,
                        DegreeRank::bucket(b),
                        2,
                        env.seed + b as u64,
                    ),
                })
                .collect(),
            Knob::InterDistance => (1u32..=5)
                .map(|l| Point {
                    label: format!("l={l}"),
                    queries: sample_queries(
                        net,
                        env.queries,
                        3,
                        DegreeRank::top(0.8),
                        l,
                        env.seed + l as u64,
                    ),
                })
                .collect(),
        }
    }
}

/// Runs one Exp-1 family on one network.
pub fn run(network: &str, knob: Knob) {
    let env = ExpEnv::with_default_queries(20);
    let net = network_by_name(network).expect("unknown network preset");
    let g = &net.data.graph;
    banner(
        knob.title(),
        &format!(
            "network = {} ({} vertices, {} edges); {} query sets per point, budget {:?}/algo/point",
            net.name,
            g.num_vertices(),
            g.num_edges(),
            env.queries,
            env.budget
        ),
    );
    let searcher = env.searcher(g);
    let cfg = CtcConfig::default();
    let points = knob.points(&net, &env);

    let mut time_t = Table::new(["point", "Basic", "BD", "LCTC"]);
    let mut kept_t = Table::new(["point", "Basic %", "BD %", "LCTC %"]);
    let mut dens_t = Table::new(["point", "Basic", "BD", "LCTC"]);
    for p in &points {
        // Global Truss G0 sizes: the common denominator for the paper's
        // "kept %" free-rider metric, regardless of algorithm.
        let g0_sizes: Vec<Option<usize>> = p
            .queries
            .iter()
            .map(|q| searcher.truss_only(q, &cfg).ok().map(|c| c.num_vertices()))
            .collect();
        let mut times = Vec::new();
        let mut kepts = Vec::new();
        let mut denss = Vec::new();
        for (name, algo) in ctc_algos(&searcher, &cfg) {
            let _ = name;
            let (outs, stats) = run_workload(&p.queries, env.budget, |q| algo(q));
            let starved = stats.skipped > 0 && stats.completed < p.queries.len() / 2;
            times.push(if stats.completed == 0 || starved {
                "Inf".to_string()
            } else {
                fmt_secs(stats.mean_seconds)
            });
            kepts.push(fmt_f(
                100.0
                    * mean(outs.iter().zip(&g0_sizes).filter_map(|(o, g0)| {
                        match (o.value(), *g0) {
                            (Some(c), Some(g0)) if g0 > 0 => {
                                Some(c.num_vertices() as f64 / g0 as f64)
                            }
                            _ => None,
                        }
                    })),
            ));
            denss.push(fmt_f(mean(
                outs.iter().filter_map(|o| o.value()).map(|c| c.density()),
            )));
        }
        time_t.row([
            p.label.clone(),
            times[0].clone(),
            times[1].clone(),
            times[2].clone(),
        ]);
        kept_t.row([
            p.label.clone(),
            kepts[0].clone(),
            kepts[1].clone(),
            kepts[2].clone(),
        ]);
        dens_t.row([
            p.label.clone(),
            denss[0].clone(),
            denss[1].clone(),
            denss[2].clone(),
        ]);
    }
    println!("(a) mean query time\n{}", time_t.render());
    println!(
        "(b) kept % of G0 (lower = more free riders removed)\n{}",
        kept_t.render()
    );
    println!("(c) community edge density\n{}", dens_t.render());
}
