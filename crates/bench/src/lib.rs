//! # ctc-bench — experiment binaries and criterion benches
//!
//! One binary per paper table/figure (see DESIGN.md §6 for the index), all
//! driven by the `CTC_QUERIES` / `CTC_BUDGET_SECS` / `CTC_SEED` environment
//! knobs. `run_all` regenerates every result for EXPERIMENTS.md.

pub mod common;
pub mod experiments;
pub mod serveload;
