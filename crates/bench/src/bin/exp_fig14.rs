//! Regenerates Figure 14: diameter vs fixed trussness k.
fn main() {
    ctc_bench::experiments::exp456::fig14();
}
