//! Regenerates Figures 7 (dblp) / 8 (facebook): varying degree rank.
//! Usage: exp_fig7_8 [dblp|facebook]
use ctc_bench::experiments::exp1::{run, Knob};
fn main() {
    let net = std::env::args().nth(1).unwrap_or_else(|| "facebook".into());
    run(&net, Knob::DegreeRank);
}
