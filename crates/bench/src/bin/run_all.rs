//! Regenerates every table and figure in sequence (the EXPERIMENTS.md run).
use ctc_bench::experiments::*;
fn main() {
    tables::table2();
    tables::table3();
    for net in ["dblp", "facebook"] {
        exp1::run(net, exp1::Knob::QuerySize);
        exp1::run(net, exp1::Knob::DegreeRank);
        exp1::run(net, exp1::Knob::InterDistance);
    }
    exp2::run();
    exp3::run();
    exp456::fig13();
    exp456::fig14();
    exp456::fig15_16();
}
