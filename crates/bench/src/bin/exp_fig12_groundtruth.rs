//! Regenerates Figure 12: F1 / time / size-reduction vs ground truth.
fn main() {
    ctc_bench::experiments::exp3::run();
}
