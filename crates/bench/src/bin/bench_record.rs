//! Machine-readable phase benchmark recorder (`BENCH_6.json`,
//! `BENCH_7.json`).
//!
//! Measures median per-phase wall times (locate / peel / finish / total, in
//! microseconds) of the four search algorithms on the mini presets, using
//! the [`PhaseTimings`](ctc_core::PhaseTimings) every search already
//! reports — and, for the `ctc-bench-7` document, the online-update
//! trajectory: median wall time of single-edge delete+insert restore
//! cycles through the maintained [`DynamicIndex`] versus the full
//! `TrussIndex::build` a rebuild-per-update design would pay. Unlike the
//! criterion benches (relative, human-read), this binary emits stable
//! JSON documents that `scripts/bench_record.sh` commits to the repo, so
//! the hot-path trajectory is pinned in version control and checkable in
//! CI.
//!
//! ```text
//! bench_record [--samples N] [--quick] [--out BENCH_6.json]
//!              [--out7 BENCH_7.json] [--out8 BENCH_8.json] [--check FILE]
//! ```
//!
//! * default: measure and print the JSON measurement object to stdout;
//! * `--out FILE`: measure and merge into `FILE` — an existing `before`
//!   section is preserved (the pre-refactor baseline), the measurement
//!   becomes `after`; with no existing file both sections get the
//!   measurement;
//! * `--out7 FILE`: measure searches *and* updates, writing the
//!   `ctc-bench-7` document;
//! * `--out8 FILE`: drive the evented serving stack with the zipfian
//!   two-tenant load harness ([`ctc_bench::serveload`]), writing the
//!   `ctc-bench-8` p50/p99 concurrency trajectory;
//! * `--check FILE`: no full measurement — parse the committed file,
//!   dispatch on its `schema` field, and validate its recorded bars. For
//!   `ctc-bench-6`: the ≥ 2× locate bar (mini-facebook lctc) and the
//!   no-regression bars (locate on mini-facebook basic/truss, peel on
//!   mini-facebook bd/lctc). For `ctc-bench-7`: maintained updates ≥ 10×
//!   cheaper per op than a rebuild on mini-facebook, and the search
//!   medians within 10% (+50µs jitter floor) of the committed
//!   `BENCH_6.json` `after` section. Both run one quick measurement pass
//!   so the harness itself cannot rot.
//!
//! Accounting: per sample, `total_us` is the sum of the per-query
//! `timings.total` (not an outer wall clock, which also billed harness
//! overhead), and `finish_us` is accumulated as `total − locate − peel`
//! in integer microseconds — so within every sample the four phases sum
//! exactly. Medians are taken per phase independently, so the *recorded*
//! medians may be off-by-a-few from summing; the invariant lives at the
//! sample level and in the server's `/stats` counters.

use ctc_bench::serveload;
use ctc_core::{CommunityEngine, SearchAlgo};
use ctc_gen::{mini_network, DegreeRank, QueryGenerator};
use ctc_server::Json;
use ctc_truss::{DynamicIndex, TrussIndex};

const PRESETS: [&str; 2] = ["mini-facebook", "mini-dblp"];
const ALGOS: [(&str, SearchAlgo); 4] = [
    ("basic", SearchAlgo::Basic),
    ("bd", SearchAlgo::BulkDelete),
    ("lctc", SearchAlgo::Local),
    ("truss", SearchAlgo::TrussOnly),
];
const NET_SEED: u64 = 7;
const QUERY_SEED: u64 = 5;
const QUERY_SETS: usize = 3;

fn median_us(mut xs: Vec<u64>) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

/// One preset × algo measurement: medians over `samples` runs, where each
/// run answers every query set once and sums the per-phase times.
fn measure_algo(
    engine: &CommunityEngine,
    queries: &[Vec<ctc_graph::VertexId>],
    algo: SearchAlgo,
    samples: usize,
) -> Json {
    let mut locate = Vec::with_capacity(samples);
    let mut peel = Vec::with_capacity(samples);
    let mut finish = Vec::with_capacity(samples);
    let mut total = Vec::with_capacity(samples);
    // One warmup pass: scratch pools fill, page cache settles.
    for q in queries {
        let _ = engine.search(q, algo);
    }
    for _ in 0..samples {
        let (mut l, mut p, mut f, mut t) = (0u64, 0u64, 0u64, 0u64);
        for q in queries {
            let c = engine.search(q, algo).expect("mini preset query answers");
            let lu = c.timings.locate.as_micros() as u64;
            let pu = c.timings.peel.as_micros() as u64;
            let tu = c.timings.total.as_micros() as u64;
            l += lu;
            p += pu;
            f += tu.saturating_sub(lu).saturating_sub(pu);
            t += tu;
        }
        locate.push(l);
        peel.push(p);
        finish.push(f);
        total.push(t);
    }
    Json::Object(vec![
        ("locate_us".into(), Json::Uint(median_us(locate))),
        ("peel_us".into(), Json::Uint(median_us(peel))),
        ("finish_us".into(), Json::Uint(median_us(finish))),
        ("total_us".into(), Json::Uint(median_us(total))),
        ("samples".into(), Json::Uint(samples as u64)),
    ])
}

fn measure(samples: usize, query_sets: usize) -> Json {
    let mut presets = Vec::new();
    for preset in PRESETS {
        let name = preset.strip_prefix("mini-").expect("mini preset");
        let net = mini_network(name, NET_SEED).expect("known preset");
        let g = net.graph;
        let mut qg = QueryGenerator::new(&g, QUERY_SEED);
        let queries: Vec<_> = (0..query_sets)
            .map(|_| {
                qg.sample(3, DegreeRank::top(0.8), 2)
                    .expect("mini preset yields queries")
            })
            .collect();
        let engine = CommunityEngine::build(g);
        let mut algos = Vec::new();
        for (label, algo) in ALGOS {
            algos.push((
                label.to_string(),
                measure_algo(&engine, &queries, algo, samples),
            ));
        }
        presets.push((preset.to_string(), Json::Object(algos)));
    }
    Json::Object(presets)
}

/// Half the op budget as delete+insert pairs: 16 strided victim edges.
const UPDATE_OPS: usize = 32;

/// The online-update measurement: per preset, the wall time of applying
/// `UPDATE_OPS` single-edge updates (delete+insert restore cycles over
/// strided edges, so every sample repairs the same index state) through
/// [`DynamicIndex`], and the median wall time of one full
/// [`TrussIndex::build`] — what a rebuild-per-update design would pay for
/// *each* of those ops.
///
/// Every op is timed individually and `maintain_total_us` is the sum of
/// the per-op medians across samples. Medians are taken per op rather
/// than per 32-op sweep because a sweep-length window (~1 ms) almost
/// always absorbs a scheduler preemption on shared CI runners, which
/// inflates a median-of-sweeps by 2-3× over the cost actually paid; a
/// per-op window (µs-scale) is rarely hit, so per-op medians estimate the
/// same total robustly. The per-op figure still reflects *every* op —
/// cheap deletes and expensive cascade inserts alike.
fn measure_updates(samples: usize) -> Json {
    let mut presets = Vec::new();
    for preset in PRESETS {
        let name = preset.strip_prefix("mini-").expect("mini preset");
        let net = mini_network(name, NET_SEED).expect("known preset");
        let g = net.graph;
        let edges: Vec<_> = g.edges().map(|(_, u, v)| (u, v)).collect();
        let stride = (edges.len() / (UPDATE_OPS / 2)).max(1);
        let victims: Vec<_> = edges
            .iter()
            .step_by(stride)
            .take(UPDATE_OPS / 2)
            .copied()
            .collect();

        let mut dynx = DynamicIndex::build(&g);
        // Warmup cycle: allocator and adjacency pools settle.
        for &(u, v) in &victims {
            dynx.delete_edge(u, v).expect("victim edge present");
            dynx.insert_edge(u, v).expect("victim edge absent");
        }
        // op_ns[i] collects every sample of op i (op 2j = delete victim j,
        // op 2j+1 = its restoring insert).
        let mut op_ns: Vec<Vec<u64>> = vec![Vec::with_capacity(samples); victims.len() * 2];
        for _ in 0..samples {
            for (j, &(u, v)) in victims.iter().enumerate() {
                let t0 = std::time::Instant::now();
                dynx.delete_edge(u, v).expect("victim edge present");
                op_ns[2 * j].push(t0.elapsed().as_nanos() as u64);
                let t0 = std::time::Instant::now();
                dynx.insert_edge(u, v).expect("victim edge absent");
                op_ns[2 * j + 1].push(t0.elapsed().as_nanos() as u64);
            }
        }
        let total_ns: u64 = op_ns
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s[s.len() / 2]
            })
            .sum();

        std::hint::black_box(TrussIndex::build(&g)); // warmup
        let mut rebuild = Vec::with_capacity(samples);
        for _ in 0..samples {
            let t0 = std::time::Instant::now();
            std::hint::black_box(TrussIndex::build(&g));
            rebuild.push(t0.elapsed().as_micros() as u64);
        }

        let ops = (victims.len() * 2) as u64;
        let total = total_ns.div_ceil(1000);
        presets.push((
            preset.to_string(),
            Json::Object(vec![
                ("ops".into(), Json::Uint(ops)),
                ("maintain_total_us".into(), Json::Uint(total)),
                // Round up: the per-op figure only ever overstates the
                // maintained cost, so the ≥10× bar cannot lean on it.
                (
                    "maintain_per_op_us".into(),
                    Json::Uint(total.div_ceil(ops).max(1)),
                ),
                ("rebuild_us".into(), Json::Uint(median_us(rebuild))),
                ("samples".into(), Json::Uint(samples as u64)),
            ]),
        ));
    }
    Json::Object(presets)
}

fn document(before: Json, after: Json, samples: usize) -> Json {
    Json::Object(vec![
        ("schema".into(), Json::Str("ctc-bench-6".into())),
        ("unit".into(), Json::Str("microseconds_median".into())),
        ("samples".into(), Json::Uint(samples as u64)),
        ("before".into(), before),
        ("after".into(), after),
    ])
}

fn document7(search: Json, updates: Json, samples: usize) -> Json {
    Json::Object(vec![
        ("schema".into(), Json::Str("ctc-bench-7".into())),
        ("unit".into(), Json::Str("microseconds_median".into())),
        ("samples".into(), Json::Uint(samples as u64)),
        ("updates".into(), updates),
        ("search".into(), search),
    ])
}

/// The `ctc-bench-8` document: the serving-stack p50/p99 trajectory
/// under a zipfian two-tenant query mix at rising concurrency.
fn document8(spec: &serveload::LoadSpec, results: &[serveload::LevelResult]) -> Json {
    Json::Object(vec![
        ("schema".into(), Json::Str("ctc-bench-8".into())),
        ("unit".into(), Json::Str("microseconds_percentile".into())),
        ("zipf_s".into(), Json::Float(spec.zipf_s)),
        ("pool_size".into(), Json::Uint(spec.pool_size as u64)),
        (
            "requests_per_level".into(),
            Json::Uint(spec.requests_per_level as u64),
        ),
        (
            "tenants".into(),
            Json::Uint(serveload::TENANTS.len() as u64),
        ),
        ("levels".into(), serveload::encode_levels(results)),
    ])
}

fn phase_of<'a>(
    doc: &'a Json,
    section: &str,
    preset: &str,
    algo: &str,
) -> Result<&'a Json, String> {
    doc.get(section)
        .and_then(|s| s.get(preset))
        .and_then(|p| p.get(algo))
        .ok_or_else(|| format!("missing {section}.{preset}.{algo}"))
}

fn us_of(doc: &Json, section: &str, preset: &str, algo: &str, field: &str) -> Result<u64, String> {
    phase_of(doc, section, preset, algo)?
        .get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{section}.{preset}.{algo}.{field} missing"))
}

/// Validates a committed document, dispatching on its `schema` field.
fn check(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("parsing {path}: {e:?}"))?;
    match doc.get("schema").and_then(Json::as_str) {
        Some("ctc-bench-6") => check6(path, &doc),
        Some("ctc-bench-7") => check7(path, &doc),
        Some("ctc-bench-8") => check8(path, &doc),
        other => Err(format!(
            "unknown schema {other:?} (want \"ctc-bench-6/7/8\")"
        )),
    }
}

/// The `ctc-bench-6` bars: the PR-6 locate rebuild.
fn check6(path: &str, doc: &Json) -> Result<(), String> {
    for section in ["before", "after"] {
        for preset in PRESETS {
            for (algo, _) in ALGOS {
                for field in ["locate_us", "peel_us", "finish_us", "total_us"] {
                    us_of(doc, section, preset, algo, field)?;
                }
            }
        }
    }
    // Guard carried over from the PR-5 peel refactor: the rebuilt locate
    // path must not give the peel-phase wins back. (The 2× peel bar itself
    // was measured against the *pre-incremental* baseline and lives in
    // BENCH_5.json; this document's `before` is already post-PR-5.)
    for algo in ["bd", "lctc"] {
        let before_peel = us_of(doc, "before", "mini-facebook", algo, "peel_us")?;
        let after_peel = us_of(doc, "after", "mini-facebook", algo, "peel_us")?;
        if after_peel > before_peel {
            return Err(format!(
                "mini-facebook/{algo}: recorded peel median regressed \
                 ({before_peel}µs → {after_peel}µs)"
            ));
        }
    }
    // The bars this PR records: the bitset-kernel rebuild must halve the
    // LCTC locate median, and the PR-5 locate regression on the
    // non-decomposing algorithms must stay erased (no regression vs the
    // pre-rebuild baseline).
    let lctc_before = us_of(doc, "before", "mini-facebook", "lctc", "locate_us")?;
    let lctc_after = us_of(doc, "after", "mini-facebook", "lctc", "locate_us")?;
    if lctc_after.saturating_mul(2) > lctc_before {
        return Err(format!(
            "mini-facebook/lctc: recorded locate median {lctc_after}µs is not ≥2× \
             better than the {lctc_before}µs baseline"
        ));
    }
    for algo in ["basic", "truss"] {
        let before = us_of(doc, "before", "mini-facebook", algo, "locate_us")?;
        let after = us_of(doc, "after", "mini-facebook", algo, "locate_us")?;
        if after > before {
            return Err(format!(
                "mini-facebook/{algo}: recorded locate median regressed \
                 ({before}µs → {after}µs)"
            ));
        }
    }
    // Smoke the recorder itself so the harness cannot silently rot.
    let quick = measure(1, 1);
    for preset in PRESETS {
        for (algo, _) in ALGOS {
            quick
                .get(preset)
                .and_then(|p| p.get(algo))
                .ok_or_else(|| format!("quick measurement lost {preset}/{algo}"))?;
        }
    }
    println!(
        "bench_record --check: {path} ok (schema, ≥2× lctc locate bar, \
         no locate/peel regressions, harness smoke)"
    );
    Ok(())
}

/// The `ctc-bench-7` bars: the online-update path.
fn check7(path: &str, doc: &Json) -> Result<(), String> {
    for preset in PRESETS {
        let upd = doc
            .get("updates")
            .and_then(|u| u.get(preset))
            .ok_or_else(|| format!("missing updates.{preset}"))?;
        for field in [
            "ops",
            "maintain_total_us",
            "maintain_per_op_us",
            "rebuild_us",
        ] {
            upd.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("updates.{preset}.{field} missing"))?;
        }
        for (algo, _) in ALGOS {
            for field in ["locate_us", "peel_us", "finish_us", "total_us"] {
                us_of(doc, "search", preset, algo, field)?;
            }
        }
    }
    // The tentpole bar: a maintained single-edge update must be ≥10×
    // cheaper than the full rebuild a naive design would pay per op.
    let fb = doc
        .get("updates")
        .and_then(|u| u.get("mini-facebook"))
        .expect("checked above");
    let per_op = fb
        .get("maintain_per_op_us")
        .and_then(Json::as_u64)
        .expect("checked above");
    let rebuild = fb
        .get("rebuild_us")
        .and_then(Json::as_u64)
        .expect("checked above");
    if per_op.saturating_mul(10) > rebuild {
        return Err(format!(
            "mini-facebook: maintained update {per_op}µs/op is not ≥10× cheaper \
             than the {rebuild}µs full rebuild"
        ));
    }
    // The search path must not have paid for the dynamic machinery: every
    // recorded median stays within 10% (plus a 50µs jitter floor for
    // near-zero phases) of the committed BENCH_6 `after` section.
    let six_path = std::path::Path::new(path)
        .parent()
        .filter(|p| !p.as_os_str().is_empty())
        .map(|p| p.join("BENCH_6.json"))
        .unwrap_or_else(|| "BENCH_6.json".into());
    let six_text = std::fs::read_to_string(&six_path)
        .map_err(|e| format!("reading {}: {e}", six_path.display()))?;
    let six = Json::parse(&six_text).map_err(|e| format!("parsing BENCH_6.json: {e:?}"))?;
    for (algo, _) in ALGOS {
        for field in ["locate_us", "peel_us", "total_us"] {
            let base = us_of(&six, "after", "mini-facebook", algo, field)?;
            let now = us_of(doc, "search", "mini-facebook", algo, field)?;
            if now > base + base / 10 + 50 {
                return Err(format!(
                    "mini-facebook/{algo}: recorded {field} regressed past the \
                     BENCH_6 bar ({base}µs → {now}µs)"
                ));
            }
        }
    }
    // Smoke the update harness so it cannot silently rot.
    let quick = measure_updates(1);
    for preset in PRESETS {
        quick
            .get(preset)
            .and_then(|p| p.get("maintain_per_op_us"))
            .ok_or_else(|| format!("quick update measurement lost {preset}"))?;
    }
    println!(
        "bench_record --check: {path} ok (schema, ≥10× maintain-vs-rebuild bar, \
         search within the BENCH_6 bars, harness smoke)"
    );
    Ok(())
}

/// The `ctc-bench-8` bars: structural, not absolute — latency medians are
/// machine-bound, so the committed document is validated for shape
/// (schema, every level accounted, p50 ≤ p99, concurrency strictly
/// rising) and the load harness is smoked end-to-end against a live
/// server so it cannot silently rot.
fn check8(path: &str, doc: &Json) -> Result<(), String> {
    let levels = match doc.get("levels") {
        Some(Json::Array(levels)) if !levels.is_empty() => levels,
        _ => return Err("levels must be a non-empty array".into()),
    };
    let requests = doc
        .get("requests_per_level")
        .and_then(Json::as_u64)
        .ok_or("requests_per_level missing")?;
    let mut prev_conc = 0u64;
    for (i, level) in levels.iter().enumerate() {
        let field = |name: &str| -> Result<u64, String> {
            level
                .get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("levels[{i}].{name} missing"))
        };
        let conc = field("concurrency")?;
        if conc <= prev_conc {
            return Err(format!(
                "levels[{i}]: concurrency {conc} must rise past {prev_conc}"
            ));
        }
        prev_conc = conc;
        let (ok, s429, s503) = (field("ok")?, field("shed_429")?, field("shed_503")?);
        if ok + s429 + s503 != requests {
            return Err(format!(
                "levels[{i}]: ok {ok} + sheds {s429}+{s503} ≠ requests_per_level {requests}"
            ));
        }
        let (p50, p99) = (field("p50_us")?, field("p99_us")?);
        if p50 > p99 {
            return Err(format!("levels[{i}]: p50 {p50}µs > p99 {p99}µs"));
        }
        if p99 == 0 {
            return Err(format!("levels[{i}]: zero p99 means nothing was timed"));
        }
    }
    // Smoke the load harness: a tiny zipfian run against a live server,
    // every request accounted for.
    let spec = serveload::LoadSpec::smoke();
    let results = serveload::run(&spec);
    for r in &results {
        if r.ok + r.shed_429 + r.shed_503 != spec.requests_per_level as u64 {
            return Err(format!("smoke run lost requests: {r:?}"));
        }
    }
    println!(
        "bench_record --check: {path} ok (schema, {} levels accounted, \
         p50≤p99, live-server harness smoke)",
        levels.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    if let Some(path) = flag("--check") {
        return check(&path);
    }
    let quick = args.iter().any(|a| a == "--quick");
    let samples: usize = match flag("--samples") {
        Some(raw) => raw.parse().map_err(|_| format!("bad --samples {raw:?}"))?,
        None if quick => 3,
        None => 15,
    };
    let query_sets = if quick { 1 } else { QUERY_SETS };
    if let Some(path) = flag("--out8") {
        let spec = if quick {
            serveload::LoadSpec::smoke()
        } else {
            serveload::LoadSpec::default()
        };
        let results = serveload::run(&spec);
        let doc = document8(&spec, &results);
        std::fs::write(&path, format!("{}\n", doc.encode()))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
        return Ok(());
    }
    if let Some(path) = flag("--out7") {
        // Updates first: the search sweep heats caches/allocator enough to
        // visibly skew the much smaller per-op update timings.
        let updates = measure_updates(samples);
        let doc = document7(measure(samples, query_sets), updates, samples);
        std::fs::write(&path, format!("{}\n", doc.encode()))
            .map_err(|e| format!("writing {path}: {e}"))?;
        println!("wrote {path}");
        return Ok(());
    }
    let measured = measure(samples, query_sets);
    match flag("--out") {
        None => {
            println!("{}", document(measured.clone(), measured, samples).encode());
        }
        Some(path) => {
            let before = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| Json::parse(&text).ok())
                .and_then(|doc| doc.get("before").cloned())
                .unwrap_or_else(|| measured.clone());
            let doc = document(before, measured, samples);
            std::fs::write(&path, format!("{}\n", doc.encode()))
                .map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote {path}");
        }
    }
    Ok(())
}

fn main() -> std::process::ExitCode {
    match run() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("bench_record: {msg}");
            std::process::ExitCode::FAILURE
        }
    }
}
